// Quickstart: train a small face cascade on synthetic data, detect faces
// in a synthetic group photo on the virtual GPU, and write the annotated
// result to quickstart_out.ppm. Self-contained — runs in ~30 s.
//
//   ./example_quickstart [--faces 300] [--out quickstart_out.ppm]
#include <cstdio>

#include "core/cli.h"
#include "core/stopwatch.h"
#include "detect/pipeline.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "facegen/dataset.h"
#include "img/draw.h"
#include "img/io.h"
#include "train/boost.h"

int main(int argc, char** argv) {
  using namespace fdet;
  int faces = 300;
  std::string out = "quickstart_out.ppm";
  std::string trace_out;
  std::string metrics_out;
  std::string profile_out;
  core::Cli cli("quickstart");
  cli.flag("faces", faces, "training faces");
  cli.flag("out", out, "annotated output image (PPM)");
  cli.flag("trace-out", trace_out, "write a Perfetto trace-event JSON file");
  cli.flag("metrics-out", metrics_out, "write run metrics (JSON or .csv)");
  cli.flag("profile-out", profile_out, "write a kernel profile (JSON)");
  if (!cli.parse(argc, argv)) {
    return 1;
  }

  // With tracing on, host-side spans from training and detection land in
  // the trace automatically via the ambient session.
  obs::TraceSession session;
  if (!trace_out.empty()) {
    session.install();
  }
  // With profiling on, every vgpu launch of this thread is attributed to
  // its pipeline stage.
  obs::KernelProfiler profiler;
  const obs::ScopedProfileCollection profile_scope(profiler);

  // 1. Synthesize a training set and boost a small cascade.
  std::printf("[1/3] training a 5-stage GentleBoost cascade on %d synthetic "
              "faces...\n", faces);
  core::Stopwatch watch;
  const facegen::TrainingSet set =
      facegen::build_training_set(faces, 60, 64, /*seed=*/7);
  train::TrainOptions options;
  options.stage_sizes = {4, 8, 12, 16, 20};
  options.feature_pool = 400;
  options.negatives_per_stage = 400;
  options.seed = 7;
  const train::TrainResult trained =
      train::train_cascade(set, options, "quickstart");
  std::printf("      trained %d weak classifiers in %.1f s; per-stage hit "
              "rates:", trained.cascade.classifier_count(),
              watch.elapsed_seconds());
  for (const auto& stage : trained.stages) {
    std::printf(" %.3f", stage.hit_rate);
  }
  std::printf("\n");

  // 2. Compose a "group photo": several faces over a cluttered backdrop.
  std::printf("[2/3] rendering a synthetic group photo...\n");
  core::Rng rng(99);
  img::ImageU8 photo = facegen::render_background(480, 360, rng);
  std::vector<img::Rect> truth;
  for (int i = 0; i < 4; ++i) {
    const int size = rng.uniform_int(60, 110);
    const int x = (i % 2) * 240 + rng.uniform_int(10, 100);
    const int y = (i / 2) * 180 + rng.uniform_int(10, 40);
    const facegen::FaceInstance face =
        facegen::render_face(facegen::FaceParams::random(rng), size);
    for (int py = 0; py < size; ++py) {
      for (int px = 0; px < size; ++px) {
        photo(x + px, y + py) = face.image(px, py);
      }
    }
    truth.push_back({x, y, size, size});
  }

  // 3. Detect on the virtual GPU and annotate.
  std::printf("[3/3] running the detection pipeline on the virtual GPU...\n");
  const vgpu::DeviceSpec device;
  const detect::Pipeline pipeline(device, trained.cascade, {});
  const detect::FrameResult result = pipeline.process(photo);

  std::printf("      %zu raw windows -> %zu grouped detections in %.2f "
              "virtual ms (%.0f%% SM utilization)\n",
              result.raw_detections.size(), result.detections.size(),
              result.detect_ms, 100.0 * result.timeline.utilization());
  for (const detect::Detection& d : result.detections) {
    std::printf("      face at (%d, %d) size %d, score %.2f, %d neighbors\n",
                d.box.x, d.box.y, d.box.w, d.score, d.neighbors);
  }

  img::ImageU8 r = photo;
  img::ImageU8 g = photo;
  img::ImageU8 b = photo;
  for (const img::Rect& t : truth) {
    img::draw_rect(g, t, 255, 1);  // ground truth: green
  }
  for (const detect::Detection& d : result.detections) {
    img::draw_rect(r, d.box, 255, 2);  // detections: red
  }
  img::write_ppm(out, r, g, b);
  std::printf("wrote %s (red = detections, green = ground truth)\n",
              out.c_str());

  if (!trace_out.empty()) {
    session.add_timeline("detect", result.timeline);
    session.write_file(trace_out);
    std::printf("trace written to %s\n", trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    obs::Registry registry;
    result.publish_metrics(registry);
    registry.write_file(metrics_out);
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  if (!profile_out.empty()) {
    profiler.snapshot("quickstart").write_file(profile_out);
    std::printf("kernel profile written to %s (inspect with "
                "`fdet_report profile show %s`)\n",
                profile_out.c_str(), profile_out.c_str());
  }
  return 0;
}
