// Cascade training scenario: boost a cascade with either GentleBoost or
// discrete AdaBoost (paper Sec. IV), watch per-stage hit / false-positive
// rates and bootstrapping behaviour, evaluate on held-out data, and save
// the result as a portable .cascade file.
//
//   ./example_train_cascade --algorithm gentle --stages 8 --out my.cascade
#include <cstdio>

#include "core/cli.h"
#include "core/rng.h"
#include "facegen/dataset.h"
#include "haar/profile.h"
#include "integral/integral.h"
#include "train/boost.h"

int main(int argc, char** argv) {
  using namespace fdet;
  int faces = 600;
  int stages = 8;
  int pool = 600;
  int threads = 0;
  std::string algorithm = "gentle";
  std::string out = "trained.cascade";
  std::string checkpoint_dir;
  bool resume = true;
  core::Cli cli("train_cascade");
  cli.flag("faces", faces, "training faces");
  cli.flag("stages", stages, "cascade stages");
  cli.flag("pool", pool, "hypothesis pool size");
  cli.flag("threads", threads, "OpenMP threads (0 = library default)");
  cli.flag("algorithm", algorithm, "'gentle' or 'ada'");
  cli.flag("out", out, "output cascade file");
  cli.flag("checkpoint-dir", checkpoint_dir,
           "persist a checkpoint after every stage into this directory "
           "(empty = off)");
  cli.flag("resume", resume,
           "resume from the newest matching checkpoint in --checkpoint-dir");
  if (!cli.parse(argc, argv)) {
    return 1;
  }

  const facegen::TrainingSet set =
      facegen::build_training_set(faces, 120, 96, /*seed=*/2012);

  train::TrainOptions options;
  // Stage sizes follow the paper's growth profile, scaled down.
  const auto reference = haar::opencv_frontal_profile();
  options.stage_sizes.assign(reference.begin(), reference.begin() + stages);
  for (int& size : options.stage_sizes) {
    size = std::max(2, size / 2);
  }
  options.algorithm = (algorithm == "ada") ? train::BoostAlgorithm::kAdaBoost
                                           : train::BoostAlgorithm::kGentleBoost;
  options.feature_pool = pool;
  options.negatives_per_stage = 600;
  options.seed = 2012;
  options.threads = threads;
  // With --checkpoint-dir, a killed run (Ctrl-C, OOM, power loss) restarts
  // from the last completed stage and still produces the byte-identical
  // cascade an uninterrupted run would have — see DESIGN.md §7.
  options.checkpoint_dir = checkpoint_dir;
  options.resume = resume;

  std::printf("training %d stages with %s on %d faces / %zu backgrounds...\n",
              stages, algorithm.c_str(), faces, set.backgrounds.size());
  const train::TrainResult result =
      train::train_cascade(set, options, "example-" + algorithm);

  std::printf("\n%-6s %-11s %-10s %-10s %-10s %s\n", "stage", "classifiers",
              "hit rate", "fp rate", "negatives", "seconds");
  for (std::size_t s = 0; s < result.stages.size(); ++s) {
    const auto& st = result.stages[s];
    std::printf("%-6zu %-11d %-10.4f %-10.4f %-10d %.1f\n", s + 1,
                st.classifiers, st.hit_rate, st.false_positive_rate,
                st.negatives_mined, st.seconds);
  }
  std::printf("total: %d classifiers in %.1f s\n",
              result.cascade.classifier_count(), result.total_seconds);

  // Held-out evaluation.
  core::Rng rng(4242);
  int face_hits = 0;
  constexpr int kHoldout = 200;
  for (int i = 0; i < kHoldout; ++i) {
    const auto face = facegen::random_training_face(rng);
    face_hits += result.cascade
                     .evaluate(integral::integral_cpu(face.image), 0, 0)
                     .accepted;
  }
  int bg_hits = 0;
  for (int i = 0; i < kHoldout; ++i) {
    const auto bg = facegen::render_background(24, 24, rng);
    bg_hits += result.cascade
                   .evaluate(integral::integral_cpu(bg), 0, 0)
                   .accepted;
  }
  std::printf("\nheld-out: faces accepted %d/%d, background windows accepted "
              "%d/%d\n", face_hits, kHoldout, bg_hits, kHoldout);

  haar::save_cascade(out, result.cascade);
  std::printf("saved to %s (reload with haar::load_cascade)\n", out.c_str());
  return 0;
}
