// Virtual-GPU playground: the simulator is a reusable library, not just
// the face detector's substrate. This example writes a custom two-phase
// kernel (block-wise shared-memory reduction), launches it across several
// CUDA-style streams, and contrasts serial vs concurrent scheduling — a
// miniature of the paper's core systems idea.
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/cli.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "vgpu/scheduler.h"

int main(int argc, char** argv) {
  using namespace fdet;
  int streams = 6;
  int blocks_per_kernel = 3;
  std::string trace_out;
  std::string metrics_out;
  std::string profile_out;
  core::Cli cli("gpu_playground");
  cli.flag("streams", streams, "concurrent streams");
  cli.flag("blocks", blocks_per_kernel, "blocks per kernel");
  cli.flag("trace-out", trace_out, "write a Perfetto trace-event JSON file");
  cli.flag("metrics-out", metrics_out, "write run metrics (JSON or .csv)");
  cli.flag("profile-out", profile_out, "write a kernel profile (JSON)");
  if (!cli.parse(argc, argv)) {
    return 1;
  }

  // The profiler sees every execute_kernel below; the per-stream
  // "reduce_s<N>" launches roll up into one "reduce" row.
  obs::KernelProfiler profiler;
  const obs::ScopedProfileCollection profile_scope(profiler);

  const vgpu::DeviceSpec device;
  std::printf("device: %s — %d SMs, %d-lane warps, %.3f GHz, %d KiB shared "
              "per SM\n\n",
              device.name, device.sm_count, device.warp_size, device.clock_ghz,
              device.shared_mem_per_sm / 1024);

  constexpr int kThreads = 256;
  const int n = blocks_per_kernel * kThreads;

  // One reduction kernel per stream, each summing its own array.
  std::vector<std::vector<int>> inputs;
  std::vector<std::vector<int>> partials;
  std::vector<vgpu::Launch> launches;
  for (int s = 0; s < streams; ++s) {
    inputs.emplace_back(static_cast<std::size_t>(n));
    std::iota(inputs.back().begin(), inputs.back().end(), s);
    partials.emplace_back(static_cast<std::size_t>(blocks_per_kernel), 0);
    auto& input = inputs.back();
    auto& partial = partials.back();

    vgpu::KernelConfig config{
        .name = "reduce_s" + std::to_string(s),
        .grid = {blocks_per_kernel, 1, 1},
        .block = {kThreads, 1, 1},
        .shared_bytes = kThreads * static_cast<int>(sizeof(int)),
    };
    // Phase 1: load to shared. Phase 2: tree reduction (lane 0 finishes).
    vgpu::LaunchCost cost = execute_kernel(
        device, config,
        [&input](const vgpu::ThreadCoord& t, vgpu::LaneCtx& ctx,
                 vgpu::SharedMem& shared) {
          auto tile = shared.array<int>(kThreads);
          const int idx = static_cast<int>(t.flat_block()) * kThreads +
                          t.thread.x;
          tile[static_cast<std::size_t>(t.thread.x)] =
              input[static_cast<std::size_t>(idx)];
          ctx.global_load(static_cast<std::uint64_t>(idx) * 4, 4);
          ctx.shared_access();
        },
        [&partial](const vgpu::ThreadCoord& t, vgpu::LaneCtx& ctx,
                   vgpu::SharedMem& shared) {
          auto tile = shared.array<int>(kThreads);
          // Lane 0 walks the tile (divergent on purpose: see the SIMD
          // efficiency it reports).
          ctx.branch(t.thread.x == 0);
          if (t.thread.x != 0) {
            return;
          }
          int acc = 0;
          for (int i = 0; i < kThreads; ++i) {
            acc += tile[static_cast<std::size_t>(i)];
            ctx.shared_access();
            ctx.alu();
          }
          partial[static_cast<std::size_t>(t.flat_block())] = acc;
          ctx.global_store(static_cast<std::uint64_t>(t.flat_block()) * 4, 4);
        });
    launches.push_back({std::move(cost), s});
  }

  // Verify the functional results.
  for (int s = 0; s < streams; ++s) {
    const long long expected =
        std::accumulate(inputs[static_cast<std::size_t>(s)].begin(),
                        inputs[static_cast<std::size_t>(s)].end(), 0LL);
    const long long got =
        std::accumulate(partials[static_cast<std::size_t>(s)].begin(),
                        partials[static_cast<std::size_t>(s)].end(), 0LL);
    std::printf("stream %d: sum = %lld (%s)\n", s, got,
                got == expected ? "correct" : "WRONG");
  }

  const vgpu::Timeline serial =
      schedule(device, launches, vgpu::ExecMode::kSerial);
  const vgpu::Timeline concurrent =
      schedule(device, launches, vgpu::ExecMode::kConcurrent);

  std::printf("\nserial    : %.1f us makespan, %.0f%% utilization\n",
              serial.makespan_s * 1e6, 100.0 * serial.utilization());
  std::printf("concurrent: %.1f us makespan, %.0f%% utilization (%.2fx)\n",
              concurrent.makespan_s * 1e6, 100.0 * concurrent.utilization(),
              serial.makespan_s / concurrent.makespan_s);

  const vgpu::PerfCounters totals = concurrent.total_counters();
  std::printf("\ncounters: %llu threads, %llu transactions, SIMD efficiency "
              "%.1f%% (lane-0 reduction is deliberately divergent)\n",
              static_cast<unsigned long long>(totals.threads),
              static_cast<unsigned long long>(totals.global_transactions),
              100.0 * totals.simd_efficiency());
  std::printf("\n%s\n", concurrent.render_trace(80).c_str());

  if (!trace_out.empty()) {
    obs::TraceSession session;
    session.add_timeline("serial", serial);
    session.add_timeline("concurrent", concurrent);
    session.write_file(trace_out);
    std::printf("trace written to %s\n", trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    obs::Registry registry;
    obs::publish_timeline(registry, serial, {{"mode", "serial"}});
    obs::publish_timeline(registry, concurrent, {{"mode", "concurrent"}});
    registry.write_file(metrics_out);
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  if (!profile_out.empty()) {
    profiler.snapshot("playground").write_file(profile_out);
    std::printf("kernel profile written to %s (inspect with "
                "`fdet_report profile show %s`)\n",
                profile_out.c_str(), profile_out.c_str());
  }
  return 0;
}
