// Video surveillance scenario on the fault-tolerant serving layer: the
// full paper pipeline — hardware H.264 decode (mocked), pyramid scaling,
// filtering, integral images, concurrent cascade evaluation, grouping —
// served through serve::StreamingService, which adds a bounded frame
// queue with backpressure, per-frame deadline budgets with graceful
// degradation, retry with backoff, and per-stage circuit breakers.
// Optionally injects a fault plan (--faults) to watch the recovery
// machinery work; writes an annotated keyframe.
//
// The ingest layer makes the decode stage swappable: --format picks the
// container (the default mock hardware h264 path, or the validating
// raw/mjpeg/gif byte-stream parsers), and --ingest-corrupt damages named
// frames' payload bytes so the quarantine + degradation-ladder response
// to malformed input can be watched end to end.
//
// With --streams > 1 (or an explicit --tenant-mix) the scenario scales
// from one hardened stream to a fleet: serve::FleetScheduler multiplexes
// the streams over --devices virtual devices with QoS-aware admission,
// cross-stream batching, and device fault domains — --faults then also
// accepts the device fault vocabulary (device-lost@1:2+0.5,
// device-hang@0:3+0.2, device-slow@0.05*4) alongside the frame-level
// kinds, split by serve::parse_mixed_fault_plan. The run ends with a
// per-tenant QoS summary instead of a per-frame log.
//
// Uses the trained cascade pair (trains once into --cache-dir on first
// use; expect a few minutes on a cache miss).
#include <cstdio>
#include <memory>

#include "core/cli.h"
#include "img/draw.h"
#include "img/io.h"
#include "ingest/mutate.h"
#include "ingest/registry.h"
#include "obs/profile.h"
#include "serve/fleet.h"
#include "serve/service.h"
#include "train/pretrained.h"
#include "video/decoder.h"

int main(int argc, char** argv) {
  using namespace fdet;
  int frames = 6;
  int width = 1280;
  int height = 720;
  double fps = 24.0;
  double deadline_ms = 40.0;  // the 24 fps display deadline
  std::string faults;
  std::string cache_dir = "fdet_cache";
  std::string trailer_name = "50/50";
  std::string profile_out;
  std::string format_name = "h264";
  std::string ingest_corrupt;
  int streams = 1;
  int devices = 2;
  std::string tenant_mix;
  core::Cli cli("video_surveillance");
  cli.flag("frames", frames, "frames to process");
  cli.flag("width", width, "stream width");
  cli.flag("height", height, "stream height");
  cli.flag("fps", fps, "stream arrival rate");
  cli.flag("deadline-ms", deadline_ms, "per-frame latency budget");
  cli.flag("faults", faults,
           "fault plan, e.g. decode@2x2,corrupt@4 (see serve/faults.h)");
  cli.flag("cache-dir", cache_dir, "trained-cascade cache directory");
  cli.flag("trailer", trailer_name, "trailer preset title");
  cli.flag("profile-out", profile_out, "write a kernel profile (JSON)");
  cli.flag("format", format_name,
           "ingest container: h264 | raw | mjpeg | gif");
  cli.flag("ingest-corrupt", ingest_corrupt,
           "corrupt frame payloads, e.g. flip@2,zero@4 (see ingest/mutate.h)");
  cli.flag("streams", streams,
           "concurrent streams; > 1 serves a fleet (serve/fleet.h)");
  cli.flag("devices", devices, "virtual devices when serving a fleet");
  cli.flag("tenant-mix", tenant_mix,
           "fleet QoS mix, e.g. gold:2,best-effort:6 (implies fleet mode; "
           "default gold:1 + best-effort for the rest of --streams)");
  if (!cli.parse(argc, argv)) {
    return 1;
  }

  // Collect every vgpu launch the serving loop issues; the per-frame
  // trace contexts the service installs attribute cycles to frames.
  obs::KernelProfiler profiler;
  const obs::ScopedProfileCollection profile_scope(profiler);

  const train::CascadePair pair = train::get_or_train_cascades(cache_dir);
  const vgpu::DeviceSpec device;
  detect::PipelineOptions pipeline_options;
  pipeline_options.min_neighbors = 3;  // prune isolated windows (OpenCV-style)

  // Pick the requested preset.
  video::TrailerSpec spec;
  bool found = false;
  for (const auto& candidate : video::table2_trailers(frames, width, height)) {
    if (candidate.title == trailer_name) {
      spec = candidate;
      found = true;
      break;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown trailer '%s'; available presets:\n",
                 trailer_name.c_str());
    for (const auto& candidate : video::table2_trailers(1)) {
      std::fprintf(stderr, "  %s\n", candidate.title.c_str());
    }
    return 1;
  }

  const video::SyntheticTrailer trailer(spec);
  const video::MockH264Decoder decoder(trailer);

  // Route the footage through the requested ingest path. The byte-stream
  // formats serialize the trailer and re-open it through the validating
  // parser; --ingest-corrupt swaps in a CorruptingSource so the named
  // frames arrive with damaged payload bytes.
  std::unique_ptr<ingest::FrameSource> source;
  try {
    if (format_name == "h264") {
      if (!ingest_corrupt.empty()) {
        std::fprintf(stderr,
                     "--ingest-corrupt needs a byte-stream container; the "
                     "mock h264 decoder has none (try --format=raw)\n");
        return 1;
      }
      source = std::make_unique<ingest::H264FrameSource>(decoder);
    } else {
      const ingest::Format format = ingest::parse_format(format_name);
      std::string bytes = ingest::encode_stream(format, trailer);
      if (ingest_corrupt.empty()) {
        source = ingest::open_stream(std::move(bytes));
      } else {
        source = std::make_unique<ingest::CorruptingSource>(
            std::move(bytes),
            ingest::CorruptPlan::parse(ingest_corrupt, 20120926));
      }
    }
  } catch (const ingest::IngestError& error) {
    std::fprintf(stderr, "ingest setup failed: %s\n", error.what());
    return 1;
  }

  // Frame- and device-level fault vocabularies share the --faults flag;
  // the splitter routes device-* tokens to the device plan.
  const serve::MixedFaultPlan mixed =
      serve::parse_mixed_fault_plan(faults, 20120926);
  const bool fleet_mode = streams > 1 || !tenant_mix.empty();
  if (!fleet_mode && !mixed.device.empty()) {
    std::fprintf(stderr, "device faults (%s) need a fleet: pass --streams=N "
                         "or --tenant-mix\n",
                 mixed.device.describe().c_str());
    return 1;
  }

  if (fleet_mode) {
    std::vector<serve::TenantMixEntry> mix;
    if (!tenant_mix.empty()) {
      mix = serve::parse_tenant_mix(tenant_mix);
    } else {
      // Default mix: one gold tenant, the rest best-effort.
      serve::TenantMixEntry gold;
      gold.spec.name = "gold";
      gold.spec.cls = serve::QosClass::kGold;
      gold.streams = 1;
      mix.push_back(gold);
      if (streams > 1) {
        serve::TenantMixEntry rest;
        rest.spec.name = "best-effort";
        rest.spec.cls = serve::QosClass::kBestEffort;
        rest.streams = streams - 1;
        mix.push_back(rest);
      }
    }
    int total_streams = 0;
    for (const serve::TenantMixEntry& entry : mix) {
      total_streams += entry.streams;
    }

    serve::FleetOptions fleet_options;
    fleet_options.devices = devices;
    fleet_options.deadline_ms = deadline_ms;
    serve::FleetScheduler fleet(device, pair.ours, pipeline_options,
                                fleet_options);
    int stream_id = 0;
    for (const serve::TenantMixEntry& entry : mix) {
      const int tenant = fleet.add_tenant(entry.spec);
      for (int s = 0; s < entry.streams; ++s, ++stream_id) {
        fleet.add_stream(tenant, *source, fps,  frames,
                         (stream_id % 7) * (1.0 / fps) / 7.0);
      }
    }

    std::printf("serving a fleet: %d streams x %d frames of \"%s\" at "
                "%dx%d over %d devices, cascade '%s', deadline %.0f ms\n\n",
                total_streams, frames, spec.title.c_str(), width, height,
                devices, pair.ours.name().c_str(), deadline_ms);
    if (!mixed.frame.empty()) {
      std::printf("frame fault plan:  %s\n", mixed.frame.describe().c_str());
    }
    if (!mixed.device.empty()) {
      std::printf("device fault plan: %s\n", mixed.device.describe().c_str());
    }

    const serve::FleetReport report =
        fleet.run(mixed.device.empty() ? nullptr : &mixed.device,
                  mixed.frame.empty() ? nullptr : &mixed.frame);

    std::printf("\nper-tenant summary:\n");
    for (const serve::TenantReport& tenant : report.tenants) {
      std::printf("  %-12s %-11s streams=%2d frames=%4d admitted=%4d "
                  "rejected=%3d ok=%4d degraded=%3d dropped=%3d failed=%3d "
                  "misses=%3d failovers=%2d max_shed=%d p50=%7.2f ms "
                  "p99=%7.2f ms\n",
                  tenant.name.c_str(), serve::qos_class_name(tenant.cls),
                  tenant.streams, tenant.frames, tenant.admitted,
                  tenant.admission_rejected, tenant.ok, tenant.degraded,
                  tenant.dropped, tenant.failed, tenant.deadline_misses,
                  tenant.failovers, tenant.max_shed_level, tenant.p50_ms,
                  tenant.p99_ms);
    }
    std::printf("\nfleet: served=%d/%d, %d deadline misses, %d failovers, "
                "%d device faults (%d watchdog), %d cross-stream batches "
                "(%d frames), shed/recover %d/%d\n",
                report.served, report.admitted, report.deadline_misses,
                report.failovers, report.device_faults, report.watchdog_fires,
                report.batches, report.batched_frames, report.shed_steps,
                report.recover_steps);
    for (std::size_t d = 0; d < report.devices.size(); ++d) {
      const serve::DeviceReport& dev = report.devices[d];
      std::printf("  device %zu: frames=%4d faults=%d busy=%8.1f ms "
                  "final=%s\n",
                  d, dev.frames, dev.faults, dev.busy_ms,
                  serve::device_state_name(dev.final_state));
    }
    if (!profile_out.empty()) {
      profiler.snapshot("surveillance").write_file(profile_out);
      std::printf("kernel profile written to %s\n", profile_out.c_str());
    }
    return 0;
  }

  std::printf("serving %d frames of \"%s\" at %dx%d via %s ingest with "
              "cascade '%s' (%d stages, %d classifiers), deadline %.0f ms\n\n",
              frames, spec.title.c_str(), width, height,
              source->info().format.c_str(), pair.ours.name().c_str(),
              pair.ours.stage_count(), pair.ours.classifier_count(),
              deadline_ms);
  if (!ingest_corrupt.empty()) {
    std::printf("ingest corruption plan: %s\n\n", ingest_corrupt.c_str());
  }

  serve::ServiceOptions service_options;
  service_options.fps = fps;
  service_options.deadline_ms = deadline_ms;
  serve::StreamingService service(device, pair.ours, pipeline_options,
                                  service_options);
  const serve::FaultPlan& plan = mixed.frame;
  if (!plan.empty()) {
    std::printf("fault plan: %s\n\n", plan.describe().c_str());
  }
  const serve::ServiceReport report =
      service.run(*source, frames, plan.empty() ? nullptr : &plan);

  int matched_frames = 0;
  for (const serve::ServedFrame& frame : report.frames) {
    // Count ground-truth faces recovered (loose box-overlap check). Only
    // the synthetic h264 path carries ground truth; byte-stream
    // containers report an empty list.
    const auto gt = source->info().has_ground_truth
                        ? decoder.decode(frame.index).ground_truth
                        : std::vector<video::FaceGt>{};
    int recovered = 0;
    for (const auto& face : gt) {
      for (const auto& det : frame.detections) {
        if (detect::s_square(det.box, face.box) > 0.3) {
          ++recovered;
          break;
        }
      }
    }
    matched_frames += (!gt.empty() && recovered > 0);
    std::printf("frame %3d: %-8s level %d | decode %.1f ms + detect %.2f ms "
                "-> latency %.2f ms | faces %zu, detections %zu, recovered %d%s\n",
                frame.index, serve::frame_status_name(frame.status),
                frame.degradation_level, frame.decode_ms, frame.detect_ms,
                frame.latency_ms, gt.size(), frame.detections.size(),
                recovered,
                frame.error ? ("  [" + frame.error->stage + ": " +
                               frame.error->message + "]")
                                  .c_str()
                            : "");

    if (frame.index == 0 &&
        frame.status != serve::FrameStatus::kDropped) {
      // Skipped when frame 0 itself is corruption-targeted — the decode
      // would just rethrow the quarantined IngestError.
      try {
        img::ImageU8 r;
        img::ImageU8 g;
        img::ImageU8 b;
        source->decode(0).frame.to_rgb(r, g, b);
        for (const auto& det : frame.detections) {
          img::draw_rect(r, det.box, 255, 3);
          img::draw_rect(g, det.box, 32, 3);
          img::draw_rect(b, det.box, 32, 3);
        }
        img::write_ppm("surveillance_frame0.ppm", r, g, b);
        std::printf("           wrote surveillance_frame0.ppm\n");
      } catch (const ingest::IngestError&) {
      }
    }
  }

  std::printf("\nserved %d/%d frames (%d ok, %d degraded, %d dropped, "
              "%d failed), %d deadline misses, max latency %.2f ms\n",
              report.ok + report.degraded, frames, report.ok, report.degraded,
              report.dropped, report.failed, report.deadline_misses,
              report.max_latency_ms);
  std::printf("recovery: %d retries, %d faults injected, %d breaker trips, "
              "%d ladder shifts, final level %d\n",
              report.retries, report.faults_injected, report.breaker_trips,
              report.degradation_shifts, report.final_degradation_level);
  if (report.ingest_rejects > 0) {
    std::printf("ingest: %d malformed frame%s quarantined (typed "
                "IngestError, no retry)\n",
                report.ingest_rejects, report.ingest_rejects == 1 ? "" : "s");
  }
  std::printf("deadline (%.0f ms): %s\n", deadline_ms,
              report.deadline_misses == 0 ? "met on every served frame"
                                          : "MISSED");
  if (!profile_out.empty()) {
    profiler.snapshot("surveillance").write_file(profile_out);
    std::printf("kernel profile written to %s (inspect with "
                "`fdet_report profile show %s`)\n",
                profile_out.c_str(), profile_out.c_str());
  }
  return 0;
}
