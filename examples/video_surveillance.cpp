// Video surveillance scenario on the fault-tolerant serving layer: the
// full paper pipeline — hardware H.264 decode (mocked), pyramid scaling,
// filtering, integral images, concurrent cascade evaluation, grouping —
// served through serve::StreamingService, which adds a bounded frame
// queue with backpressure, per-frame deadline budgets with graceful
// degradation, retry with backoff, and per-stage circuit breakers.
// Optionally injects a fault plan (--faults) to watch the recovery
// machinery work; writes an annotated keyframe.
//
// Uses the trained cascade pair (trains once into --cache-dir on first
// use; expect a few minutes on a cache miss).
#include <cstdio>

#include "core/cli.h"
#include "img/draw.h"
#include "img/io.h"
#include "obs/profile.h"
#include "serve/service.h"
#include "train/pretrained.h"
#include "video/decoder.h"

int main(int argc, char** argv) {
  using namespace fdet;
  int frames = 6;
  int width = 1280;
  int height = 720;
  double fps = 24.0;
  double deadline_ms = 40.0;  // the 24 fps display deadline
  std::string faults;
  std::string cache_dir = "fdet_cache";
  std::string trailer_name = "50/50";
  std::string profile_out;
  core::Cli cli("video_surveillance");
  cli.flag("frames", frames, "frames to process");
  cli.flag("width", width, "stream width");
  cli.flag("height", height, "stream height");
  cli.flag("fps", fps, "stream arrival rate");
  cli.flag("deadline-ms", deadline_ms, "per-frame latency budget");
  cli.flag("faults", faults,
           "fault plan, e.g. decode@2x2,corrupt@4 (see serve/faults.h)");
  cli.flag("cache-dir", cache_dir, "trained-cascade cache directory");
  cli.flag("trailer", trailer_name, "trailer preset title");
  cli.flag("profile-out", profile_out, "write a kernel profile (JSON)");
  if (!cli.parse(argc, argv)) {
    return 1;
  }

  // Collect every vgpu launch the serving loop issues; the per-frame
  // trace contexts the service installs attribute cycles to frames.
  obs::KernelProfiler profiler;
  const obs::ScopedProfileCollection profile_scope(profiler);

  const train::CascadePair pair = train::get_or_train_cascades(cache_dir);
  const vgpu::DeviceSpec device;
  detect::PipelineOptions pipeline_options;
  pipeline_options.min_neighbors = 3;  // prune isolated windows (OpenCV-style)

  // Pick the requested preset.
  video::TrailerSpec spec;
  bool found = false;
  for (const auto& candidate : video::table2_trailers(frames, width, height)) {
    if (candidate.title == trailer_name) {
      spec = candidate;
      found = true;
      break;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown trailer '%s'; available presets:\n",
                 trailer_name.c_str());
    for (const auto& candidate : video::table2_trailers(1)) {
      std::fprintf(stderr, "  %s\n", candidate.title.c_str());
    }
    return 1;
  }

  const video::SyntheticTrailer trailer(spec);
  const video::MockH264Decoder decoder(trailer);
  std::printf("serving %d frames of \"%s\" at %dx%d with cascade '%s' "
              "(%d stages, %d classifiers), deadline %.0f ms\n\n",
              frames, spec.title.c_str(), width, height,
              pair.ours.name().c_str(), pair.ours.stage_count(),
              pair.ours.classifier_count(), deadline_ms);

  serve::ServiceOptions service_options;
  service_options.fps = fps;
  service_options.deadline_ms = deadline_ms;
  serve::StreamingService service(device, pair.ours, pipeline_options,
                                  service_options);
  const serve::FaultPlan plan = serve::FaultPlan::parse(faults, 20120926);
  if (!plan.empty()) {
    std::printf("fault plan: %s\n\n", plan.describe().c_str());
  }
  const serve::ServiceReport report =
      service.run(decoder, frames, plan.empty() ? nullptr : &plan);

  int matched_frames = 0;
  for (const serve::ServedFrame& frame : report.frames) {
    // Count ground-truth faces recovered (loose box-overlap check).
    const auto gt = decoder.decode(frame.index).ground_truth;
    int recovered = 0;
    for (const auto& face : gt) {
      for (const auto& det : frame.detections) {
        if (detect::s_square(det.box, face.box) > 0.3) {
          ++recovered;
          break;
        }
      }
    }
    matched_frames += (!gt.empty() && recovered > 0);
    std::printf("frame %3d: %-8s level %d | decode %.1f ms + detect %.2f ms "
                "-> latency %.2f ms | faces %zu, detections %zu, recovered %d%s\n",
                frame.index, serve::frame_status_name(frame.status),
                frame.degradation_level, frame.decode_ms, frame.detect_ms,
                frame.latency_ms, gt.size(), frame.detections.size(),
                recovered,
                frame.error ? ("  [" + frame.error->stage + ": " +
                               frame.error->message + "]")
                                  .c_str()
                            : "");

    if (frame.index == 0 &&
        frame.status != serve::FrameStatus::kDropped) {
      img::ImageU8 r;
      img::ImageU8 g;
      img::ImageU8 b;
      decoder.decode(0).frame.to_rgb(r, g, b);
      for (const auto& det : frame.detections) {
        img::draw_rect(r, det.box, 255, 3);
        img::draw_rect(g, det.box, 32, 3);
        img::draw_rect(b, det.box, 32, 3);
      }
      img::write_ppm("surveillance_frame0.ppm", r, g, b);
      std::printf("           wrote surveillance_frame0.ppm\n");
    }
  }

  std::printf("\nserved %d/%d frames (%d ok, %d degraded, %d dropped, "
              "%d failed), %d deadline misses, max latency %.2f ms\n",
              report.ok + report.degraded, frames, report.ok, report.degraded,
              report.dropped, report.failed, report.deadline_misses,
              report.max_latency_ms);
  std::printf("recovery: %d retries, %d faults injected, %d breaker trips, "
              "%d ladder shifts, final level %d\n",
              report.retries, report.faults_injected, report.breaker_trips,
              report.degradation_shifts, report.final_degradation_level);
  std::printf("deadline (%.0f ms): %s\n", deadline_ms,
              report.deadline_misses == 0 ? "met on every served frame"
                                          : "MISSED");
  if (!profile_out.empty()) {
    profiler.snapshot("surveillance").write_file(profile_out);
    std::printf("kernel profile written to %s (inspect with "
                "`fdet_report profile show %s`)\n",
                profile_out.c_str(), profile_out.c_str());
  }
  return 0;
}
