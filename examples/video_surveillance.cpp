// Video surveillance scenario: run the full paper pipeline — hardware
// H.264 decode (mocked), pyramid scaling, filtering, integral images,
// concurrent cascade evaluation, grouping, display — over a synthetic
// 1080p trailer, report per-frame latency/fps against the 24 fps display
// deadline, and write annotated keyframes.
//
// Uses the trained cascade pair (trains once into --cache-dir on first
// use; expect a few minutes on a cache miss).
#include <cstdio>

#include "core/cli.h"
#include "detect/pipeline.h"
#include "img/draw.h"
#include "img/io.h"
#include "train/pretrained.h"
#include "video/decoder.h"

int main(int argc, char** argv) {
  using namespace fdet;
  int frames = 6;
  int width = 1280;
  int height = 720;
  std::string cache_dir = "fdet_cache";
  std::string trailer_name = "50/50";
  core::Cli cli("video_surveillance");
  cli.flag("frames", frames, "frames to process");
  cli.flag("width", width, "stream width");
  cli.flag("height", height, "stream height");
  cli.flag("cache-dir", cache_dir, "trained-cascade cache directory");
  cli.flag("trailer", trailer_name, "trailer preset title");
  if (!cli.parse(argc, argv)) {
    return 1;
  }

  const train::CascadePair pair = train::get_or_train_cascades(cache_dir);
  const vgpu::DeviceSpec device;
  detect::PipelineOptions options;
  options.run_display = true;
  options.min_neighbors = 3;  // prune isolated windows (OpenCV-style)
  const detect::Pipeline pipeline(device, pair.ours, options);

  // Pick the requested preset.
  video::TrailerSpec spec;
  bool found = false;
  for (const auto& candidate : video::table2_trailers(frames, width, height)) {
    if (candidate.title == trailer_name) {
      spec = candidate;
      found = true;
      break;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown trailer '%s'; available presets:\n",
                 trailer_name.c_str());
    for (const auto& candidate : video::table2_trailers(1)) {
      std::fprintf(stderr, "  %s\n", candidate.title.c_str());
    }
    return 1;
  }

  const video::SyntheticTrailer trailer(spec);
  const video::MockH264Decoder decoder(trailer);
  std::printf("processing %d frames of \"%s\" at %dx%d with cascade '%s' "
              "(%d stages, %d classifiers)\n\n",
              frames, spec.title.c_str(), width, height,
              pair.ours.name().c_str(), pair.ours.stage_count(),
              pair.ours.classifier_count());

  double total_detect = 0.0;
  double total_decode = 0.0;
  int matched_frames = 0;
  for (int f = 0; f < frames; ++f) {
    const video::DecodedFrame frame = decoder.decode(f);
    const detect::FrameResult result = pipeline.process(frame.frame.luma());
    total_detect += result.detect_ms;
    total_decode += frame.decode_ms;

    // Count ground-truth faces recovered (loose box-overlap check).
    int recovered = 0;
    for (const auto& gt : frame.ground_truth) {
      for (const auto& det : result.detections) {
        if (detect::s_square(det.box, gt.box) > 0.3) {
          ++recovered;
          break;
        }
      }
    }
    matched_frames += (!frame.ground_truth.empty() && recovered > 0);
    std::printf("frame %3d: decode %.1f ms + detect %.2f ms | faces %zu, "
                "detections %zu, recovered %d\n",
                f, frame.decode_ms, result.detect_ms,
                frame.ground_truth.size(), result.detections.size(),
                recovered);

    if (f == 0) {
      img::ImageU8 r;
      img::ImageU8 g;
      img::ImageU8 b;
      frame.frame.to_rgb(r, g, b);
      for (const auto& det : result.detections) {
        img::draw_rect(r, det.box, 255, 3);
        img::draw_rect(g, det.box, 32, 3);
        img::draw_rect(b, det.box, 32, 3);
      }
      img::write_ppm("surveillance_frame0.ppm", r, g, b);
      std::printf("           wrote surveillance_frame0.ppm\n");
    }
  }

  const double avg_detect = total_detect / frames;
  const double avg_decode = total_decode / frames;
  std::printf("\naverages: decode %.1f ms, detect %.2f ms -> %.0f fps with "
              "decode offloaded to fixed-function logic\n",
              avg_decode, avg_detect,
              1000.0 / std::max(avg_decode, avg_detect));
  std::printf("24 fps display deadline (40 ms): %s\n",
              avg_detect + avg_decode < 40.0 ? "met" : "MISSED");
  return 0;
}
