// Kernel IR for the static access-pattern analyzer (fdet_lint).
//
// The capture engine (analyze/capture.h) runs a kernel once per data seed
// under a vgpu::LaunchTap and condenses the observed lane programs into
// this IR: per phase, one AccessPattern per *slot* (the k-th shared or
// global access a lane issues inside the phase — the same slot alignment
// the executor uses for bank-conflict and coalescing modelling), one
// BranchPattern per tracked branch slot, plus the block's SharedMem carve
// layout. Each pattern carries a symbolic index expression — an affine
// form over the thread/block coordinates
//
//   value(tid, bid) = c0 + tx·tid.x + ty·tid.y + tz·tid.z
//                        + bx·bid.x + by·bid.y + bz·bid.z
//
// fitted from the sampled lanes and verified against every observation.
// Slots the fit cannot explain are *flagged* non-affine (never
// miscompiled into a wrong form): the analyses fall back to the observed
// value range for them. Slots whose values differ between the two data
// seeds are flagged data-dependent — indirect addressing the static
// analyses must not extrapolate.
//
// Everything downstream (analyze/analyses.h) works on this IR alone,
// parameterized by launch geometry, without executing kernel data.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vgpu/kernel.h"

namespace fdet::analyze {

/// Affine form over thread/block coordinates. Coefficients are exact
/// integers; evaluation is exact 64-bit arithmetic.
struct AffineForm {
  std::int64_t c0 = 0;
  std::int64_t tx = 0, ty = 0, tz = 0;  ///< threadIdx coefficients
  std::int64_t bx = 0, by = 0, bz = 0;  ///< blockIdx coefficients

  std::int64_t eval(const vgpu::Dim3& thread, const vgpu::Dim3& block_id) const {
    return c0 + tx * thread.x + ty * thread.y + tz * thread.z +
           bx * block_id.x + by * block_id.y + bz * block_id.z;
  }

  /// Inclusive [min, max] of the form over all threads of `block` and all
  /// blocks of `grid` (each coordinate ranges over [0, dim)). Exact:
  /// the form is linear, so extremes sit at coordinate range endpoints.
  std::int64_t min_over(const vgpu::Dim3& block, const vgpu::Dim3& grid) const {
    std::int64_t v = c0;
    const auto lo = [&v](std::int64_t coeff, int extent) {
      v += coeff < 0 ? coeff * (extent - 1) : 0;
    };
    lo(tx, block.x), lo(ty, block.y), lo(tz, block.z);
    lo(bx, grid.x), lo(by, grid.y), lo(bz, grid.z);
    return v;
  }
  std::int64_t max_over(const vgpu::Dim3& block, const vgpu::Dim3& grid) const {
    std::int64_t v = c0;
    const auto hi = [&v](std::int64_t coeff, int extent) {
      v += coeff > 0 ? coeff * (extent - 1) : 0;
    };
    hi(tx, block.x), hi(ty, block.y), hi(tz, block.z);
    hi(bx, grid.x), hi(by, grid.y), hi(bz, grid.z);
    return v;
  }

  /// Human-readable "4*tid.x + 132*tid.y + 16" rendering for findings.
  std::string to_string() const;
};

/// How much of the launch a pattern covers.
enum class Participation {
  kFull,      ///< every sampled lane of every sampled block issued the slot
  kPartial,   ///< geometry-stable subset (same lanes across both data seeds)
  kDataDependent,  ///< the participating lane set changed with the data
};

const char* participation_name(Participation p);

/// One access slot of one phase, condensed over all sampled lanes.
struct AccessPattern {
  int phase = 0;
  int slot = 0;          ///< k-th shared (or global) access of a lane
  bool shared = false;   ///< shared-memory access vs global-memory access
  bool store = false;    ///< any lane stored in this slot
  bool load = false;     ///< any lane loaded in this slot
  std::uint32_t bytes = 0;  ///< widest access seen in the slot

  AffineForm form;       ///< over byte offset (shared) / address (global)
  bool affine = false;   ///< form verified exact on every observation
  bool data_dependent = false;  ///< values changed across data seeds

  std::uint64_t min_seen = 0;   ///< observed value range (always valid)
  std::uint64_t max_seen = 0;
  Participation participation = Participation::kFull;
  std::int64_t observations = 0;  ///< lane-samples that issued the slot
};

/// One tracked branch slot of one phase.
struct BranchPattern {
  int phase = 0;
  int slot = 0;
  bool divergent_observed = false;  ///< mixed outcomes within one warp
  bool data_dependent = false;      ///< outcomes changed across data seeds
  std::int64_t taken = 0;
  std::int64_t observations = 0;
};

/// A SharedMem::array carve of the block's static layout.
struct CarveRegion {
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint64_t alignment = 0;
};

struct PhaseIR {
  int index = 0;
  std::vector<AccessPattern> shared_slots;
  std::vector<AccessPattern> global_slots;
  std::vector<BranchPattern> branches;
  std::int64_t unattributed_shared = 0;  ///< legacy shared_access() counts
};

/// Captured symbolic program of one kernel launch.
struct KernelIR {
  vgpu::KernelConfig config;   ///< geometry the IR was captured at
  vgpu::DeviceSpec device;     ///< spec the capture ran against
  std::vector<PhaseIR> phases;
  std::vector<CarveRegion> carves;  ///< reference carve layout (lane 0)
  bool carve_divergence = false;    ///< lanes disagreed on the layout

  /// 4-byte shared words observed written / read anywhere in the launch
  /// (union over phases, lanes and sampled blocks) — the dead-write
  /// analysis input. Indexed by word; sized to cover the largest offset.
  std::vector<bool> shared_words_written;
  std::vector<bool> shared_words_read;

  int blocks_sampled = 0;           ///< distinct blocks observed
  std::int64_t blocks_total = 0;    ///< grid.count() at capture geometry
  bool branch_tracking_forced = false;  ///< capture enabled lane traces
  int data_seeds = 1;               ///< capture runs merged into this IR

  /// Phase barriers: a vgpu kernel has an implicit block-wide barrier
  /// between consecutive phases (and none after the last).
  int barrier_count() const {
    return phases.empty() ? 0 : static_cast<int>(phases.size()) - 1;
  }
};

}  // namespace fdet::analyze
