#include "analyze/capture.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "core/check.h"

namespace fdet::analyze {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Packs one lane identity into 64 bits: tx/ty (12 bits each), tz (8),
/// bx/by (12), bz (8). Capture geometries stay well inside these ranges.
std::uint64_t pack_lane(const vgpu::Dim3& t, const vgpu::Dim3& b) {
  auto u = [](int v) { return static_cast<std::uint64_t>(v); };
  return (u(t.x) << 52) | (u(t.y) << 40) | (u(t.z) << 32) | (u(b.x) << 20) |
         (u(b.y) << 8) | u(b.z);
}

/// Axis sample set: all block ids when the axis is short, otherwise the
/// first `per_axis - 1` plus the last (adjacent ids pin the affine
/// coefficient; the last id exercises ragged-edge guards).
std::vector<int> axis_samples(int extent, int per_axis) {
  std::vector<int> out;
  if (extent <= per_axis) {
    for (int i = 0; i < extent; ++i) out.push_back(i);
    return out;
  }
  for (int i = 0; i + 1 < per_axis; ++i) out.push_back(i);
  out.push_back(extent - 1);
  return out;
}

bool contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

void mark_words(std::vector<bool>& words, std::size_t offset,
                std::uint32_t bytes) {
  const std::size_t first = offset / 4;
  const std::size_t last = bytes == 0 ? first : (offset + bytes - 1) / 4;
  if (last >= words.size()) {
    words.resize(last + 1, false);
  }
  for (std::size_t w = first; w <= last; ++w) words[w] = true;
}

struct BranchAccum {
  RawBranch raw;
  std::int64_t last_warp_key = -1;
  bool first_outcome = false;
};

}  // namespace

// ---------------------------------------------------------------------------
// CaptureEngine
// ---------------------------------------------------------------------------

struct CaptureEngine::Impl {
  vgpu::DeviceSpec spec;
  RawKernelCapture raw;
  bool in_kernel = false;

  // Sampling decisions for the current launch.
  std::vector<int> sample_bx, sample_by, sample_bz;
  std::vector<int> sample_warps;
  std::int64_t warps_per_block = 1;

  // Current position.
  vgpu::Dim3 block_id;
  vgpu::Dim3 thread;
  bool block_active = false;
  bool lane_active = false;
  int phase = -1;
  int lane_shared_slot = 0;
  std::int64_t lane_warp_key = -1;

  // Carve tracking: per-phase reference sequence (first sampled lane of the
  // phase) compared against every later lane.
  std::vector<CarveRegion> lane_carves;
  std::vector<std::vector<CarveRegion>> phase_carve_ref;
  std::vector<bool> phase_carve_ref_set;

  // Per-phase branch accumulators (parallel to raw.phases[i].branches).
  std::vector<std::vector<BranchAccum>> branch_accums;

  RawPhase& cur_phase() {
    return raw.phases[static_cast<std::size_t>(phase)];
  }

  RawSlot& slot_at(std::vector<RawSlot>& slots, int index) {
    if (index >= static_cast<int>(slots.size())) {
      slots.resize(static_cast<std::size_t>(index) + 1);
    }
    return slots[static_cast<std::size_t>(index)];
  }

  void observe(RawSlot& slot, std::int64_t value, std::uint32_t bytes,
               bool store, const CaptureOptions& options) {
    slot.store = slot.store || store;
    slot.load = slot.load || !store;
    slot.bytes = std::max(slot.bytes, bytes);
    const auto uvalue = static_cast<std::uint64_t>(value);
    if (slot.count == 0) {
      slot.min_value = slot.max_value = uvalue;
    } else {
      slot.min_value = std::min(slot.min_value, uvalue);
      slot.max_value = std::max(slot.max_value, uvalue);
    }
    ++slot.count;
    const std::uint64_t lane = pack_lane(thread, block_id);
    slot.participant_fingerprint ^= splitmix64(lane);
    slot.value_fingerprint ^= splitmix64(lane ^ splitmix64(uvalue));
    if (slot.observations.size() < options.max_observations) {
      slot.observations.push_back(SlotObservation{
          static_cast<std::int16_t>(thread.x),
          static_cast<std::int16_t>(thread.y),
          static_cast<std::int16_t>(thread.z),
          static_cast<std::int16_t>(block_id.x),
          static_cast<std::int16_t>(block_id.y),
          static_cast<std::int16_t>(block_id.z), value});
    }
  }
};

CaptureEngine::CaptureEngine(CaptureOptions options)
    : options_(options), impl_(new Impl) {}

CaptureEngine::~CaptureEngine() { delete impl_; }

void CaptureEngine::begin_kernel(const vgpu::DeviceSpec& spec,
                                 const vgpu::KernelConfig& config) {
  Impl& s = *impl_;
  s = Impl{};
  s.spec = spec;
  s.in_kernel = true;
  s.raw.config = config;
  s.raw.device = spec;
  s.raw.blocks_total = config.grid.count();
  s.raw.branch_tracking_forced = !config.track_branches;
  s.sample_bx = axis_samples(config.grid.x, options_.blocks_per_axis);
  s.sample_by = axis_samples(config.grid.y, options_.blocks_per_axis);
  s.sample_bz = axis_samples(config.grid.z, options_.blocks_per_axis);
  s.warps_per_block =
      (config.block.count() + spec.warp_size - 1) / spec.warp_size;
  s.sample_warps = axis_samples(static_cast<int>(s.warps_per_block),
                                options_.warps_per_block - 1);
  const int mid = static_cast<int>(s.warps_per_block) / 2;
  if (!contains(s.sample_warps, mid)) {
    s.sample_warps.push_back(mid);
  }
}

void CaptureEngine::begin_block(const vgpu::Dim3& block_id) {
  Impl& s = *impl_;
  s.block_id = block_id;
  s.block_active = contains(s.sample_bx, block_id.x) &&
                   contains(s.sample_by, block_id.y) &&
                   contains(s.sample_bz, block_id.z);
  if (s.block_active) {
    ++s.raw.blocks_sampled;
  }
  s.phase = -1;
}

void CaptureEngine::begin_phase(int phase) {
  Impl& s = *impl_;
  s.phase = phase;
  if (phase >= static_cast<int>(s.raw.phases.size())) {
    s.raw.phases.resize(static_cast<std::size_t>(phase) + 1);
    s.branch_accums.resize(static_cast<std::size_t>(phase) + 1);
    s.phase_carve_ref.resize(static_cast<std::size_t>(phase) + 1);
    s.phase_carve_ref_set.resize(static_cast<std::size_t>(phase) + 1, false);
  }
}

void CaptureEngine::begin_lane(const vgpu::Dim3& thread) {
  Impl& s = *impl_;
  s.thread = thread;
  s.lane_shared_slot = 0;
  s.lane_carves.clear();
  if (!s.block_active) {
    s.lane_active = false;
    return;
  }
  const vgpu::Dim3& block = s.raw.config.block;
  const int flat = thread.x + block.x * (thread.y + block.y * thread.z);
  const int warp = flat / s.spec.warp_size;
  s.lane_active = contains(s.sample_warps, warp);
  if (s.lane_active) {
    ++s.cur_phase().lanes_sampled;
    const std::int64_t flat_block =
        s.block_id.x +
        static_cast<std::int64_t>(s.raw.config.grid.x) *
            (s.block_id.y + static_cast<std::int64_t>(s.raw.config.grid.y) *
                                s.block_id.z);
    s.lane_warp_key = flat_block * s.warps_per_block + warp;
  }
}

void CaptureEngine::on_carve(std::size_t offset, std::size_t bytes,
                             std::size_t alignment) {
  Impl& s = *impl_;
  if (!s.lane_active) return;
  s.lane_carves.push_back(
      CarveRegion{offset, bytes, alignment});
}

void CaptureEngine::on_shared(std::size_t offset, std::uint32_t bytes,
                              bool store) {
  Impl& s = *impl_;
  if (!s.lane_active) return;
  RawPhase& phase = s.cur_phase();
  RawSlot& slot = s.slot_at(phase.shared_slots, s.lane_shared_slot++);
  s.observe(slot, static_cast<std::int64_t>(offset), bytes, store, options_);
  if (store) {
    mark_words(s.raw.shared_words_written, offset, bytes);
  } else {
    mark_words(s.raw.shared_words_read, offset, bytes);
  }
}

void CaptureEngine::on_unattributed_shared(std::uint32_t n) {
  Impl& s = *impl_;
  if (!s.lane_active) return;
  s.cur_phase().unattributed_shared += n;
}

void CaptureEngine::end_lane(const vgpu::LaneCtx& lane) {
  Impl& s = *impl_;
  if (!s.lane_active) return;
  RawPhase& phase = s.cur_phase();

  // Global accesses, slot-aligned the way the executor coalesces them
  // (the k-th global op of each lane issues together across the warp).
  const auto& ops = lane.global_ops();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    RawSlot& slot = s.slot_at(phase.global_slots, static_cast<int>(i));
    s.observe(slot, static_cast<std::int64_t>(ops[i].addr), ops[i].bytes,
              ops[i].store, options_);
  }

  // Tracked branch outcomes, slot-aligned across the warp. Lanes stream
  // through end_lane in flat order, so warp transitions are detected by
  // the warp key changing between consecutive participating lanes.
  const auto& trace = lane.branch_trace();
  auto& accums = s.branch_accums[static_cast<std::size_t>(s.phase)];
  if (trace.size() > accums.size()) {
    accums.resize(trace.size());
  }
  const std::uint64_t lane_id = pack_lane(s.thread, s.block_id);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    BranchAccum& acc = accums[i];
    const bool taken = trace[i] != 0;
    ++acc.raw.count;
    if (taken) ++acc.raw.taken;
    acc.raw.participant_fingerprint ^= splitmix64(lane_id);
    acc.raw.outcome_fingerprint ^=
        splitmix64(lane_id ^ (taken ? 0xb5ULL : 0x17ULL));
    if (acc.last_warp_key != s.lane_warp_key) {
      acc.last_warp_key = s.lane_warp_key;
      acc.first_outcome = taken;
    } else if (taken != acc.first_outcome) {
      acc.raw.divergent = true;
    }
  }

  // Carve layout: first sampled lane of the phase defines the reference;
  // any later lane disagreeing (different order, offset, or count) is a
  // layout divergence the analyses must know about.
  auto& ref = s.phase_carve_ref[static_cast<std::size_t>(s.phase)];
  if (!s.phase_carve_ref_set[static_cast<std::size_t>(s.phase)]) {
    ref = s.lane_carves;
    s.phase_carve_ref_set[static_cast<std::size_t>(s.phase)] = true;
  } else if (ref.size() != s.lane_carves.size() ||
             !std::equal(ref.begin(), ref.end(), s.lane_carves.begin(),
                         [](const CarveRegion& a, const CarveRegion& b) {
                           return a.offset == b.offset && a.bytes == b.bytes;
                         })) {
    s.raw.carve_divergence = true;
  }
  s.lane_active = false;
}

void CaptureEngine::end_phase() {}

void CaptureEngine::end_kernel() {
  Impl& s = *impl_;
  // Union of carve regions across phases, keyed by offset (phases re-carve
  // the same static layout; distinct offsets are distinct arrays).
  for (const auto& phase_ref : s.phase_carve_ref) {
    for (const CarveRegion& c : phase_ref) {
      auto it = std::find_if(
          s.raw.carves.begin(), s.raw.carves.end(),
          [&c](const CarveRegion& r) { return r.offset == c.offset; });
      if (it == s.raw.carves.end()) {
        s.raw.carves.push_back(c);
      } else {
        it->bytes = std::max(it->bytes, c.bytes);
      }
    }
  }
  std::sort(s.raw.carves.begin(), s.raw.carves.end(),
            [](const CarveRegion& a, const CarveRegion& b) {
              return a.offset < b.offset;
            });
  // Copy branch accumulators into the raw phases.
  for (std::size_t p = 0; p < s.raw.phases.size(); ++p) {
    auto& branches = s.raw.phases[p].branches;
    for (const BranchAccum& acc : s.branch_accums[p]) {
      branches.push_back(acc.raw);
    }
  }
  s.in_kernel = false;
  captures_.push_back(std::move(s.raw));
  s.raw = RawKernelCapture{};
}

void CaptureEngine::on_shadowed_launch(const vgpu::KernelConfig& /*config*/) {
  ++shadowed_launches_;
}

std::size_t CaptureEngine::shared_capacity_override() const {
  // Mirror the checker: give carves the whole SM so footprint escapes are
  // observable instead of fatal. Before the first launch the default spec
  // capacity applies.
  return impl_->in_kernel
             ? static_cast<std::size_t>(impl_->spec.shared_mem_per_sm)
             : static_cast<std::size_t>(vgpu::DeviceSpec{}.shared_mem_per_sm);
}

std::vector<RawKernelCapture> CaptureEngine::take_captures() {
  return std::exchange(captures_, {});
}

CaptureScope::CaptureScope(CaptureOptions options)
    : engine_(options), installer_(&engine_) {}

// ---------------------------------------------------------------------------
// Affine fitting
// ---------------------------------------------------------------------------

namespace {

/// Fits value = c0 + Σ coeff_i · coord_i by least squares over the stored
/// observations, rounds to integers, and verifies the integer form exactly
/// against EVERY observation. Returns false (leaving `out` zeroed beyond
/// c0) when the observations are not affine in the lane coordinates — the
/// caller flags the slot instead of trusting a wrong form.
bool fit_affine(const std::vector<SlotObservation>& obs, AffineForm& out) {
  out = AffineForm{};
  if (obs.empty()) {
    return false;
  }
  const SlotObservation& base = obs.front();
  const auto coord = [](const SlotObservation& o, int i) -> std::int64_t {
    switch (i) {
      case 0: return o.tx;
      case 1: return o.ty;
      case 2: return o.tz;
      case 3: return o.bx;
      case 4: return o.by;
      default: return o.bz;
    }
  };

  // Which coordinates vary at all? Constant ones get coefficient 0.
  int vary[6];
  int k = 0;
  for (int i = 0; i < 6; ++i) {
    for (const SlotObservation& o : obs) {
      if (coord(o, i) != coord(base, i)) {
        vary[k++] = i;
        break;
      }
    }
  }
  double solved[6] = {0, 0, 0, 0, 0, 0};
  if (k > 0) {
    // Normal equations over differences from the base observation: keeps
    // magnitudes small enough for exact double accumulation.
    double ata[6][6] = {};
    double atb[6] = {};
    const std::size_t step = std::max<std::size_t>(1, obs.size() / 512);
    for (std::size_t n = 0; n < obs.size(); n += step) {
      const SlotObservation& o = obs[n];
      double row[6];
      for (int i = 0; i < k; ++i) {
        row[i] = static_cast<double>(coord(o, vary[i]) - coord(base, vary[i]));
      }
      const double d = static_cast<double>(o.value - base.value);
      for (int i = 0; i < k; ++i) {
        for (int j = 0; j < k; ++j) {
          ata[i][j] += row[i] * row[j];
        }
        atb[i] += row[i] * d;
      }
    }
    // Gaussian elimination with partial pivoting; a near-singular system
    // means the sample cannot pin the coefficients — treat as non-affine.
    int perm[6];
    for (int i = 0; i < k; ++i) perm[i] = i;
    for (int col = 0; col < k; ++col) {
      int best = col;
      for (int r = col + 1; r < k; ++r) {
        if (std::abs(ata[r][col]) > std::abs(ata[best][col])) best = r;
      }
      if (std::abs(ata[best][col]) < 1e-9) {
        return false;
      }
      std::swap(ata[col], ata[best]);
      std::swap(atb[col], atb[best]);
      std::swap(perm[col], perm[best]);
      for (int r = col + 1; r < k; ++r) {
        const double f = ata[r][col] / ata[col][col];
        for (int c = col; c < k; ++c) ata[r][c] -= f * ata[col][c];
        atb[r] -= f * atb[col];
      }
    }
    for (int r = k - 1; r >= 0; --r) {
      double v = atb[r];
      for (int c = r + 1; c < k; ++c) v -= ata[r][c] * solved[c];
      solved[r] = v / ata[r][r];
    }
    (void)perm;  // row permutation does not reorder unknowns
  }
  std::int64_t* coeffs[6] = {&out.tx, &out.ty, &out.tz,
                             &out.bx, &out.by, &out.bz};
  for (int i = 0; i < k; ++i) {
    *coeffs[vary[i]] = std::llround(solved[i]);
  }
  out.c0 = base.value;
  for (int i = 0; i < 6; ++i) {
    out.c0 -= *coeffs[i] * coord(base, i);
  }
  for (const SlotObservation& o : obs) {
    const vgpu::Dim3 t{o.tx, o.ty, o.tz};
    const vgpu::Dim3 b{o.bx, o.by, o.bz};
    if (out.eval(t, b) != o.value) {
      const std::int64_t c0 = out.c0;
      out = AffineForm{};
      out.c0 = c0;  // keep something printable; `affine` stays false
      return false;
    }
  }
  return true;
}

AccessPattern condense_slot(const RawSlot& slot, int phase, int slot_index,
                            bool shared, std::int64_t lanes_sampled) {
  AccessPattern p;
  p.phase = phase;
  p.slot = slot_index;
  p.shared = shared;
  p.store = slot.store;
  p.load = slot.load;
  p.bytes = slot.bytes;
  p.min_seen = slot.min_value;
  p.max_seen = slot.max_value;
  p.observations = slot.count;
  p.affine = fit_affine(slot.observations, p.form);
  p.participation = slot.count >= lanes_sampled ? Participation::kFull
                                                : Participation::kPartial;
  return p;
}

BranchPattern condense_branch(const RawBranch& b, int phase, int slot) {
  BranchPattern p;
  p.phase = phase;
  p.slot = slot;
  p.divergent_observed = b.divergent;
  p.taken = b.taken;
  p.observations = b.count;
  return p;
}

void copy_launch_shape(const RawKernelCapture& raw, KernelIR& ir) {
  ir.config = raw.config;
  ir.device = raw.device;
  ir.carves = raw.carves;
  ir.carve_divergence = raw.carve_divergence;
  ir.shared_words_written = raw.shared_words_written;
  ir.shared_words_read = raw.shared_words_read;
  ir.blocks_sampled = raw.blocks_sampled;
  ir.blocks_total = raw.blocks_total;
  ir.branch_tracking_forced = raw.branch_tracking_forced;
}

}  // namespace

KernelIR condense(const RawKernelCapture& raw) {
  KernelIR ir;
  copy_launch_shape(raw, ir);
  ir.data_seeds = 1;
  for (std::size_t pi = 0; pi < raw.phases.size(); ++pi) {
    const RawPhase& rp = raw.phases[pi];
    PhaseIR phase;
    phase.index = static_cast<int>(pi);
    phase.unattributed_shared = rp.unattributed_shared;
    for (std::size_t i = 0; i < rp.shared_slots.size(); ++i) {
      phase.shared_slots.push_back(
          condense_slot(rp.shared_slots[i], phase.index, static_cast<int>(i),
                        /*shared=*/true, rp.lanes_sampled));
    }
    for (std::size_t i = 0; i < rp.global_slots.size(); ++i) {
      phase.global_slots.push_back(
          condense_slot(rp.global_slots[i], phase.index, static_cast<int>(i),
                        /*shared=*/false, rp.lanes_sampled));
    }
    for (std::size_t i = 0; i < rp.branches.size(); ++i) {
      phase.branches.push_back(
          condense_branch(rp.branches[i], phase.index, static_cast<int>(i)));
    }
    ir.phases.push_back(std::move(phase));
  }
  return ir;
}

KernelIR merge_captures(const RawKernelCapture& seed_a,
                        const RawKernelCapture& seed_b) {
  FDET_CHECK(seed_a.config.name == seed_b.config.name)
      << "capture merge: launch sequence mismatch (" << seed_a.config.name
      << " vs " << seed_b.config.name << ")";
  FDET_CHECK(seed_a.config.grid == seed_b.config.grid &&
             seed_a.config.block == seed_b.config.block)
      << "capture merge: geometry changed with data seed for "
      << seed_a.config.name << " — drivers must be geometry-deterministic";
  FDET_CHECK(seed_a.phases.size() == seed_b.phases.size())
      << "capture merge: phase count changed with data seed for "
      << seed_a.config.name;

  KernelIR ir;
  copy_launch_shape(seed_a, ir);
  ir.data_seeds = 2;
  ir.carve_divergence = seed_a.carve_divergence || seed_b.carve_divergence;
  // Dead-write inputs: a word counts as read/written if EITHER seed saw it.
  const auto merge_words = [](std::vector<bool>& into,
                              const std::vector<bool>& from) {
    if (from.size() > into.size()) into.resize(from.size(), false);
    for (std::size_t i = 0; i < from.size(); ++i) {
      if (from[i]) into[i] = true;
    }
  };
  merge_words(ir.shared_words_written, seed_b.shared_words_written);
  merge_words(ir.shared_words_read, seed_b.shared_words_read);

  const auto merge_slots = [](const std::vector<RawSlot>& a,
                              const std::vector<RawSlot>& b, int phase,
                              bool shared, std::int64_t lanes_sampled,
                              std::vector<AccessPattern>& out) {
    const std::size_t n = std::max(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
      // A slot present under only one seed is itself data-dependent: the
      // other seed's lanes issued fewer accesses.
      if (i >= a.size() || i >= b.size()) {
        const RawSlot& only = i < a.size() ? a[i] : b[i];
        AccessPattern p = condense_slot(only, phase, static_cast<int>(i),
                                        shared, lanes_sampled);
        p.data_dependent = true;
        p.affine = false;
        p.participation = Participation::kDataDependent;
        out.push_back(p);
        continue;
      }
      const RawSlot& sa = a[i];
      const RawSlot& sb = b[i];
      AccessPattern p =
          condense_slot(sa, phase, static_cast<int>(i), shared, lanes_sampled);
      p.store = sa.store || sb.store;
      p.load = sa.load || sb.load;
      p.bytes = std::max(sa.bytes, sb.bytes);
      p.min_seen = std::min(sa.min_value, sb.min_value);
      p.max_seen = std::max(sa.max_value, sb.max_value);
      if (sa.participant_fingerprint != sb.participant_fingerprint) {
        p.data_dependent = true;
        p.participation = Participation::kDataDependent;
        p.affine = false;
      } else if (sa.value_fingerprint != sb.value_fingerprint) {
        // Same lanes, different addresses: indirect addressing. Never
        // extrapolate an affine form fitted from one seed's data.
        p.data_dependent = true;
        p.affine = false;
      }
      out.push_back(p);
    }
  };

  for (std::size_t pi = 0; pi < seed_a.phases.size(); ++pi) {
    const RawPhase& pa = seed_a.phases[pi];
    const RawPhase& pb = seed_b.phases[pi];
    PhaseIR phase;
    phase.index = static_cast<int>(pi);
    phase.unattributed_shared =
        std::max(pa.unattributed_shared, pb.unattributed_shared);
    merge_slots(pa.shared_slots, pb.shared_slots, phase.index, true,
                pa.lanes_sampled, phase.shared_slots);
    merge_slots(pa.global_slots, pb.global_slots, phase.index, false,
                pa.lanes_sampled, phase.global_slots);
    const std::size_t nb = std::max(pa.branches.size(), pb.branches.size());
    for (std::size_t i = 0; i < nb; ++i) {
      if (i >= pa.branches.size() || i >= pb.branches.size()) {
        const RawBranch& only =
            i < pa.branches.size() ? pa.branches[i] : pb.branches[i];
        BranchPattern p =
            condense_branch(only, phase.index, static_cast<int>(i));
        p.data_dependent = true;
        phase.branches.push_back(p);
        continue;
      }
      BranchPattern p =
          condense_branch(pa.branches[i], phase.index, static_cast<int>(i));
      p.divergent_observed =
          pa.branches[i].divergent || pb.branches[i].divergent;
      p.data_dependent = pa.branches[i].outcome_fingerprint !=
                             pb.branches[i].outcome_fingerprint ||
                         pa.branches[i].participant_fingerprint !=
                             pb.branches[i].participant_fingerprint;
      phase.branches.push_back(p);
    }
    ir.phases.push_back(std::move(phase));
  }
  return ir;
}

std::vector<KernelIR> capture_kernels(
    const std::function<void(std::uint64_t seed)>& driver, std::uint64_t seed_a,
    std::uint64_t seed_b, const CaptureOptions& options, int* shadowed) {
  int shadow_count = 0;
  std::vector<RawKernelCapture> run_a, run_b;
  {
    CaptureScope scope(options);
    driver(seed_a);
    shadow_count += scope.shadowed_launches();
    run_a = scope.take_captures();
  }
  {
    CaptureScope scope(options);
    driver(seed_b);
    shadow_count += scope.shadowed_launches();
    run_b = scope.take_captures();
  }
  if (shadowed != nullptr) {
    *shadowed = shadow_count;
  }
  FDET_CHECK(run_a.size() == run_b.size())
      << "capture: driver launched " << run_a.size() << " kernels under seed "
      << seed_a << " but " << run_b.size() << " under seed " << seed_b;
  std::vector<KernelIR> out;
  out.reserve(run_a.size());
  for (std::size_t i = 0; i < run_a.size(); ++i) {
    out.push_back(merge_captures(run_a[i], run_b[i]));
  }
  return out;
}

}  // namespace fdet::analyze
