#include "analyze/ir.h"

#include <sstream>

namespace fdet::analyze {

std::string AffineForm::to_string() const {
  std::ostringstream out;
  bool first = true;
  const auto term = [&out, &first](std::int64_t coeff, const char* name) {
    if (coeff == 0) return;
    if (!first) {
      out << (coeff > 0 ? " + " : " - ");
    } else if (coeff < 0) {
      out << "-";
    }
    const std::int64_t mag = coeff < 0 ? -coeff : coeff;
    if (mag != 1) out << mag << "*";
    out << name;
    first = false;
  };
  term(tx, "tid.x");
  term(ty, "tid.y");
  term(tz, "tid.z");
  term(bx, "bid.x");
  term(by, "bid.y");
  term(bz, "bid.z");
  if (c0 != 0 || first) {
    if (!first) {
      out << (c0 >= 0 ? " + " : " - ");
      out << (c0 < 0 ? -c0 : c0);
    } else {
      out << c0;
    }
  }
  return out.str();
}

const char* participation_name(Participation p) {
  switch (p) {
    case Participation::kFull: return "full";
    case Participation::kPartial: return "partial";
    case Participation::kDataDependent: return "data-dependent";
  }
  return "unknown";
}

}  // namespace fdet::analyze
