// Production lint targets: every registered virtual-GPU kernel, wrapped in
// a capture-ready driver. fdet_lint sweeps this registry; tests reuse it so
// the "all production kernels lint clean" gate and the CLI agree on what
// "all" means.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analyze/analyses.h"

namespace fdet::analyze {

struct LintTarget {
  /// Target group, e.g. "integral" (one driver can launch several kernels).
  std::string name;
  /// Global allocations the kernels address (virtual byte-offset ranges,
  /// same convention as fdet_check) — input to the global-OOB proof.
  std::vector<Allocation> allocations;
  /// Suppressions registered with the target ("kind@kernel"); merged with
  /// any the CLI passes. Empty for the shipped kernels — they lint clean.
  std::vector<std::string> suppressions;
  /// Launches the target's kernels. The seed must ONLY change input data,
  /// never geometry: capture runs the driver twice and diffs the runs to
  /// classify data dependence.
  std::function<void(std::uint64_t seed)> driver;
};

/// All production kernels at one frame geometry: integral scan/transpose,
/// pyramid scale + separable filters, cascade evaluation, display overlay.
std::vector<LintTarget> production_targets(int width, int height);

}  // namespace fdet::analyze
