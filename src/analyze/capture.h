// Symbolic capture mode for vgpu kernels (layer 1 of the static analyzer).
//
// A CaptureScope installs a CaptureEngine as the thread's vgpu::LaunchTap:
// every execute_kernel launch until the scope closes is recorded — lane by
// lane, slot by slot — into a RawKernelCapture. Production kernels need no
// rewrites: the engine taps the exact instrumentation the checker already
// uses (LaneCtx attribution, SharedMem carves, the PhaseFn barrier
// structure).
//
// Capture runs the kernel's real code, but the *analysis* contract is
// static: the engine samples a handful of blocks and warps (corners of
// each grid/block axis — enough to pin every affine coefficient), fits an
// AffineForm per access slot, and verifies the fit against every
// observation. merge_captures() then combines two captures of the same
// driver under different data seeds: any slot whose addresses, branch
// outcomes or participating lanes changed with the data is flagged
// data-dependent, which is what separates geometry-determined access
// patterns (extrapolatable to every lane of every block) from indirect,
// input-driven ones (never extrapolated).
//
// Precedence (vgpu/tap.h): if a CheckScope is active around a launch, the
// checker wins and the engine only counts the launch as shadowed — the
// resulting capture set is incomplete and fdet_lint reports it as such.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "analyze/ir.h"
#include "vgpu/kernel.h"
#include "vgpu/tap.h"

namespace fdet::analyze {

struct CaptureOptions {
  /// Blocks sampled per grid axis: the first `blocks_per_axis - 1` and the
  /// last block of each axis (all blocks when the axis is small). Two
  /// adjacent blocks pin the axis' affine coefficient; the last block
  /// exercises ragged guards.
  int blocks_per_axis = 3;
  /// Warps sampled per block: first two, middle, last (all when few).
  int warps_per_block = 4;
  /// Per-slot cap on stored observations (fit/verify set); beyond it the
  /// slot still tracks range/participation but new samples are not kept.
  std::size_t max_observations = 8192;
};

/// One observation of an access slot: which lane produced which value.
struct SlotObservation {
  std::int16_t tx = 0, ty = 0, tz = 0;
  std::int16_t bx = 0, by = 0, bz = 0;
  std::int64_t value = 0;
};

/// Raw per-slot accumulator (shared or global access slots).
struct RawSlot {
  bool store = false;
  bool load = false;
  std::uint32_t bytes = 0;
  std::int64_t count = 0;          ///< observations incl. beyond the cap
  std::uint64_t min_value = 0;
  std::uint64_t max_value = 0;
  std::uint64_t value_fingerprint = 0;        ///< order-independent (lane,value) hash
  std::uint64_t participant_fingerprint = 0;  ///< order-independent lane hash
  std::vector<SlotObservation> observations;
};

/// Raw per-branch-slot accumulator.
struct RawBranch {
  std::int64_t taken = 0;
  std::int64_t count = 0;
  bool divergent = false;           ///< mixed outcomes inside one warp
  std::uint64_t outcome_fingerprint = 0;
  std::uint64_t participant_fingerprint = 0;
};

struct RawPhase {
  std::vector<RawSlot> shared_slots;
  std::vector<RawSlot> global_slots;
  std::vector<RawBranch> branches;
  std::int64_t unattributed_shared = 0;
  std::int64_t lanes_sampled = 0;   ///< begin_lane calls kept for this phase
};

/// Everything recorded about one launch, before affine fitting.
struct RawKernelCapture {
  vgpu::KernelConfig config;
  vgpu::DeviceSpec device;
  std::vector<RawPhase> phases;
  std::vector<CarveRegion> carves;
  bool carve_divergence = false;
  std::vector<bool> shared_words_written;
  std::vector<bool> shared_words_read;
  int blocks_sampled = 0;
  std::int64_t blocks_total = 0;
  bool branch_tracking_forced = false;
};

/// The LaunchTap implementation. Normally driven through CaptureScope;
/// exposed so the precedence regression test can observe it directly.
class CaptureEngine : public vgpu::LaunchTap {
 public:
  explicit CaptureEngine(CaptureOptions options = {});
  ~CaptureEngine() override;

  // vgpu::LaunchTap
  void begin_kernel(const vgpu::DeviceSpec& spec,
                    const vgpu::KernelConfig& config) override;
  void begin_block(const vgpu::Dim3& block_id) override;
  void begin_phase(int phase) override;
  void begin_lane(const vgpu::Dim3& thread) override;
  void on_carve(std::size_t offset, std::size_t bytes,
                std::size_t alignment) override;
  void on_shared(std::size_t offset, std::uint32_t bytes, bool store) override;
  void on_unattributed_shared(std::uint32_t n) override;
  void end_lane(const vgpu::LaneCtx& lane) override;
  void end_phase() override;
  void end_kernel() override;
  void on_shadowed_launch(const vgpu::KernelConfig& config) override;
  std::size_t shared_capacity_override() const override;
  bool absorbs_resource_faults() const override { return true; }
  bool wants_branch_tracking() const override { return true; }

  const std::vector<RawKernelCapture>& captures() const { return captures_; }
  std::vector<RawKernelCapture> take_captures();
  /// Launches that ran while a checker shadowed this engine (tap
  /// precedence) — nonzero means the capture set is incomplete.
  int shadowed_launches() const { return shadowed_launches_; }

 private:
  struct Impl;
  CaptureOptions options_;
  std::vector<RawKernelCapture> captures_;
  int shadowed_launches_ = 0;
  Impl* impl_;  ///< in-flight launch state
};

/// RAII: installs a CaptureEngine as the calling thread's launch tap.
class CaptureScope {
 public:
  explicit CaptureScope(CaptureOptions options = {});

  CaptureEngine& engine() { return engine_; }
  std::vector<RawKernelCapture> take_captures() {
    return engine_.take_captures();
  }
  int shadowed_launches() const { return engine_.shadowed_launches(); }

 private:
  CaptureEngine engine_;
  vgpu::ScopedLaunchTap installer_;
};

/// Condenses one raw capture into a KernelIR: affine fit + verification
/// per slot, participation classification, branch summaries. Used when
/// only one data seed is available; data-dependence flags stay false.
KernelIR condense(const RawKernelCapture& raw);

/// Merges two captures of the SAME launch sequence under different data
/// seeds into the final IR (data-dependence = any cross-seed difference).
/// Throws core::CheckError when the sequences disagree structurally
/// (different kernel name, geometry or phase count) — drivers must be
/// geometry-deterministic.
KernelIR merge_captures(const RawKernelCapture& seed_a,
                        const RawKernelCapture& seed_b);

/// Convenience harness: runs `driver` once per data seed under a capture
/// scope and returns one merged IR per launch the driver performed, in
/// launch order. `shadowed` (optional) receives the total count of
/// launches lost to checker precedence.
std::vector<KernelIR> capture_kernels(
    const std::function<void(std::uint64_t seed)>& driver,
    std::uint64_t seed_a = 0x5eed0001, std::uint64_t seed_b = 0x5eed0002,
    const CaptureOptions& options = {}, int* shadowed = nullptr);

}  // namespace fdet::analyze
