#include "analyze/registry.h"

#include "core/rng.h"
#include "detect/kernels.h"
#include "haar/encoding.h"
#include "haar/profile.h"
#include "img/image.h"
#include "integral/gpu.h"
#include "integral/integral.h"
#include "vgpu/device.h"

namespace fdet::analyze {
namespace {

img::ImageU8 random_image(int w, int h, std::uint64_t seed) {
  core::Rng rng(seed);
  img::ImageU8 im(w, h);
  for (auto& p : im.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return im;
}

/// Synthetic cascade-depth map: mostly shallow rejections with a sprinkle
/// of full-depth hits, so the display kernel's data-dependent outline
/// stores actually fire under capture.
img::ImageI32 random_depth(int w, int h, int full_depth, std::uint64_t seed) {
  core::Rng rng(seed);
  img::ImageI32 depth(w, h, 0);
  for (auto& d : depth.pixels()) {
    const int r = rng.uniform_int(0, 99);
    d = r < 2 ? full_depth : rng.uniform_int(0, full_depth - 1);
  }
  return depth;
}

}  // namespace

std::vector<LintTarget> production_targets(int width, int height) {
  const std::uint64_t i32_bytes =
      static_cast<std::uint64_t>(width) * static_cast<std::uint64_t>(height) * 4;
  const int lw = width / 2;
  const int lh = height / 2;
  const std::uint64_t level_bytes =
      static_cast<std::uint64_t>(lw) * static_cast<std::uint64_t>(lh);

  std::vector<LintTarget> targets;

  // Integral pipeline: scan_rows, transpose, scan_rows, transpose. Virtual
  // addresses are per-array byte offsets, so one range sized like the
  // largest array covers every launch.
  targets.push_back(LintTarget{
      .name = "integral",
      .allocations = {{"integral arrays", 0, i32_bytes}},
      .suppressions = {},
      .driver =
          [width, height](std::uint64_t seed) {
            const vgpu::DeviceSpec spec;
            const img::ImageU8 frame = random_image(width, height, seed);
            integral::integral_gpu(spec, frame);
          },
  });

  // Pyramid downscale to one representative level.
  targets.push_back(LintTarget{
      .name = "pyramid-scale",
      .allocations = {{"scaled plane", 0, level_bytes}},
      .suppressions = {},
      .driver =
          [width, height, lw, lh](std::uint64_t seed) {
            const vgpu::DeviceSpec spec;
            const img::ImageU8 frame = random_image(width, height, seed);
            img::ImageU8 scaled(lw, lh);
            detect::scale_kernel(spec, frame, scaled, "scale");
          },
  });

  // Separable 1-2-1 smoothing at the same level.
  targets.push_back(LintTarget{
      .name = "pyramid-filter",
      .allocations = {{"level plane", 0, level_bytes}},
      .suppressions = {},
      .driver =
          [lw, lh](std::uint64_t seed) {
            const vgpu::DeviceSpec spec;
            const img::ImageU8 level = random_image(lw, lh, seed);
            img::ImageU8 filtered_h(lw, lh);
            img::ImageU8 filtered(lw, lh);
            detect::filter_kernel(spec, level, filtered_h, /*horizontal=*/true,
                                  "filter_h");
            detect::filter_kernel(spec, filtered_h, filtered,
                                  /*horizontal=*/false, "filter_v");
          },
  });

  // Cascade evaluation over a synthetic profile cascade. The cascade is
  // built from a FIXED seed — the program under analysis must not change
  // between capture runs; only the frame (and thus the integral data and
  // the cascade walk) varies with the seed.
  targets.push_back(LintTarget{
      .name = "cascade",
      .allocations = {{"integral/depth/score", 0, i32_bytes}},
      .suppressions = {},
      .driver =
          [width, height](std::uint64_t seed) {
            const vgpu::DeviceSpec spec;
            const img::ImageU8 frame = random_image(width, height, seed);
            const auto ii = integral::integral_cpu(frame);
            const haar::Cascade cascade = haar::build_profile_cascade(
                "fdet-lint", std::vector<int>{6, 8, 10}, /*seed=*/42);
            const haar::ConstantBank bank = haar::ConstantBank::build(cascade);
            detect::CascadeKernelOutput out;
            detect::cascade_kernel(spec, bank, ii, out,
                                   detect::CascadeKernelOptions{}, "cascade");
          },
  });

  // Display overlay over a synthetic depth map (the cascade output shape
  // without re-running the cascade inside this target's capture).
  targets.push_back(LintTarget{
      .name = "display",
      .allocations = {{"depth map", 0, i32_bytes},
                      {"overlay", 0, static_cast<std::uint64_t>(width) *
                                         static_cast<std::uint64_t>(height)}},
      .suppressions = {},
      .driver =
          [width, height](std::uint64_t seed) {
            const vgpu::DeviceSpec spec;
            constexpr int kFullDepth = 3;
            const img::ImageI32 depth =
                random_depth(width, height, kFullDepth, seed);
            img::ImageU8 overlay(width, height, 0);
            detect::display_kernel(spec, depth, kFullDepth, 2.0, overlay,
                                   "display");
          },
  });

  return targets;
}

}  // namespace fdet::analyze
