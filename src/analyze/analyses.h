// Static analyses over the captured kernel IR (layer 2 of fdet_lint).
//
// Every analysis here consumes a KernelIR and launch geometry only — no
// kernel code runs and no image data is touched. Affine slots with full
// participation are evaluated exactly for every lane of every block (the
// same slot-aligned dedup/bank/segment arithmetic the executor uses for
// its dynamic PerfCounters, so predictions cross-validate against
// measured bank_conflicts / global_transactions). Partial, data-dependent
// or non-affine slots are never extrapolated: bound-style analyses fall
// back to the observed value range and traffic predictions mark their
// totals incomplete (a lower bound on the dynamic counter).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analyze/ir.h"

namespace fdet::analyze {

enum class Severity { kInfo, kWarning, kError };
const char* severity_name(Severity s);

enum class FindingKind {
  kSharedOutOfBounds,   ///< proven shared access beyond the declared footprint
  kGlobalOutOfBounds,   ///< proven global access escaping its allocation
  kSharedFootprint,     ///< carve layout exceeds KernelConfig::shared_bytes
  kCarveDivergence,     ///< lanes disagreed on the shared carve layout
  kBarrierDivergence,   ///< data-dependent producer divergence before a barrier
  kBankConflict,        ///< predicted conflict degree at/above threshold
  kUncoalesced,         ///< predicted transactions far above the packed minimum
  kDeadSharedWrite,     ///< carve region written but never read
  kOccupancy,           ///< occupancy-limiter advisory
  kNonAffine,           ///< slots the affine fit could not explain (summary)
  kDataDependent,       ///< data-dependent slots (summary, informational)
};
const char* finding_kind_name(FindingKind k);  ///< kebab-case slug

struct Finding {
  FindingKind kind = FindingKind::kNonAffine;
  Severity severity = Severity::kInfo;
  std::string kernel;
  int phase = -1;  ///< -1 when the finding is kernel-scoped
  int slot = -1;
  std::string message;
  bool suppressed = false;
};

/// A registered global allocation the kernel may address (virtual base +
/// length, same convention fdet_check uses). Global OOB proofs require a
/// slot's whole evaluated range to stay inside the allocation containing
/// its minimum address.
struct Allocation {
  std::string name;
  std::uint64_t base = 0;
  std::uint64_t bytes = 0;
};

struct AnalysisOptions {
  /// Warn when a predicted per-issue conflict degree reaches this many
  /// serialized passes. Production scan legitimately runs degree-4 chunk
  /// scans; 8 is one power of two above anything the shipped kernels do.
  int bank_conflict_warn_degree = 8;
  /// Warn when predicted transactions exceed the packed minimum by this
  /// factor on some slot (32 on a fully strided column-major read).
  double uncoalesced_warn_ratio = 8.0;
  /// Warn (not just inform) when occupancy drops below this ratio.
  double occupancy_warn_ratio = 0.25;
  std::vector<Allocation> allocations;
};

/// Slot-exact replication of the executor's warp reduction, evaluated
/// from affine forms instead of executed lanes.
struct PredictedTraffic {
  std::uint64_t bank_conflicts = 0;       ///< extra serialized passes
  std::uint64_t global_transactions = 0;  ///< 128B segments touched
  /// Packed-minimum transactions for the predicted slots (coalescing
  /// denominator): ceil(active_lanes * bytes / 128) per warp issue.
  std::uint64_t min_global_transactions = 0;
  bool shared_complete = true;  ///< every shared slot was predictable
  bool global_complete = true;  ///< every global slot was predictable
  int skipped_slots = 0;        ///< partial/data-dependent/non-affine slots
};

/// Predicts dynamic traffic counters at the IR's captured geometry. When
/// the corresponding *_complete flag is true the prediction equals the
/// executor's counter; otherwise it is a lower bound (skipped slots only
/// ever add traffic).
PredictedTraffic predict_traffic(const KernelIR& ir);

/// Runs every analysis; findings come back ordered most severe first.
std::vector<Finding> analyze_kernel(const KernelIR& ir,
                                    const AnalysisOptions& options = {});

/// Suppression spec: "kind@kernel" or "kind@*" (kind as kebab-case slug,
/// kernel matched against KernelConfig::name). Unparseable specs throw
/// core::CheckError. Matching findings are flagged `suppressed` and no
/// longer count toward the lint exit code; they still render (dimmed) in
/// reports so a stale suppression stays visible.
void apply_suppressions(std::vector<Finding>& findings,
                        const std::vector<std::string>& specs);

/// Findings that still gate (unsuppressed, warning or worse).
int active_findings(const std::vector<Finding>& findings);

}  // namespace fdet::analyze
