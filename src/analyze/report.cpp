#include "analyze/report.h"

#include <ostream>
#include <sstream>

#include "core/table.h"

namespace fdet::analyze {
namespace {

std::string geometry_string(const vgpu::KernelConfig& config) {
  std::ostringstream out;
  out << config.grid.x << "x" << config.grid.y << "x" << config.grid.z << "/"
      << config.block.x << "x" << config.block.y << "x" << config.block.z;
  return out.str();
}

int count_findings(const KernelLintResult& r, Severity severity) {
  int n = 0;
  for (const Finding& f : r.findings) {
    if (f.severity == severity && !f.suppressed) {
      ++n;
    }
  }
  return n;
}

}  // namespace

KernelLintResult summarize(const std::string& target, const KernelIR& ir,
                           std::vector<Finding> findings) {
  KernelLintResult r;
  r.target = target;
  r.kernel = ir.config.name;
  r.geometry = geometry_string(ir.config);
  r.phases = static_cast<int>(ir.phases.size());
  r.barriers = ir.barrier_count();
  for (const PhaseIR& phase : ir.phases) {
    r.shared_slots += static_cast<int>(phase.shared_slots.size());
    r.global_slots += static_cast<int>(phase.global_slots.size());
  }
  r.traffic = predict_traffic(ir);
  r.findings = std::move(findings);
  return r;
}

void print_lint_table(std::ostream& out,
                      const std::vector<KernelLintResult>& results) {
  core::Table table({"kernel", "geometry", "phases", "slots s/g",
                     "pred conflicts", "pred transactions", "findings e/w/i",
                     "verdict"});
  for (const KernelLintResult& r : results) {
    const int errors = count_findings(r, Severity::kError);
    const int warnings = count_findings(r, Severity::kWarning);
    const int infos = count_findings(r, Severity::kInfo);
    std::ostringstream slots;
    slots << r.shared_slots << "/" << r.global_slots;
    std::ostringstream conflicts;
    conflicts << r.traffic.bank_conflicts
              << (r.traffic.shared_complete ? "" : "+");
    std::ostringstream transactions;
    transactions << r.traffic.global_transactions
                 << (r.traffic.global_complete ? "" : "+");
    std::ostringstream tally;
    tally << errors << "/" << warnings << "/" << infos;
    table.add_row({r.kernel, r.geometry, std::to_string(r.phases),
                   slots.str(), conflicts.str(), transactions.str(),
                   tally.str(),
                   errors + warnings > 0 ? "FINDINGS" : "CLEAN"});
  }
  table.print(out);
  out << "(a trailing + marks an incomplete prediction: partial, "
         "data-dependent or non-affine slots make it a lower bound)\n";
}

void print_findings(std::ostream& out,
                    const std::vector<KernelLintResult>& results) {
  for (const KernelLintResult& r : results) {
    for (const Finding& f : r.findings) {
      if (f.severity == Severity::kInfo && f.suppressed) {
        continue;
      }
      out << severity_name(f.severity) << " [" << finding_kind_name(f.kind)
          << "@" << f.kernel << "]";
      if (f.phase >= 0) {
        out << " phase " << f.phase;
      }
      if (f.slot >= 0) {
        out << " slot " << f.slot;
      }
      out << ": " << f.message;
      if (f.suppressed) {
        out << " [suppressed]";
      }
      out << "\n";
    }
  }
}

void publish_lint_results(obs::Registry& registry,
                          const std::vector<KernelLintResult>& results) {
  for (const KernelLintResult& r : results) {
    const obs::Labels labels = {{"target", r.target}, {"kernel", r.kernel}};
    const int gating = count_findings(r, Severity::kError) +
                       count_findings(r, Severity::kWarning);
    registry.gauge("analyze.lint.clean", labels).set(gating == 0 ? 1.0 : 0.0);
    registry.counter("analyze.lint.shared_slots", labels)
        .add(static_cast<double>(r.shared_slots));
    registry.counter("analyze.lint.global_slots", labels)
        .add(static_cast<double>(r.global_slots));
    registry.counter("analyze.lint.predicted_bank_conflicts", labels)
        .add(static_cast<double>(r.traffic.bank_conflicts));
    registry.counter("analyze.lint.predicted_global_transactions", labels)
        .add(static_cast<double>(r.traffic.global_transactions));
    for (const Finding& f : r.findings) {
      obs::Labels finding_labels = labels;
      finding_labels.emplace_back("kind", finding_kind_name(f.kind));
      finding_labels.emplace_back(
          "severity", f.suppressed ? "suppressed" : severity_name(f.severity));
      registry.counter("analyze.lint.findings", finding_labels).increment();
    }
  }
}

}  // namespace fdet::analyze
