#include "analyze/analyses.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>

#include "core/check.h"
#include "vgpu/device.h"

namespace fdet::analyze {
namespace {

constexpr int kWarpSize = 32;
constexpr int kSharedBanks = 32;
constexpr std::uint64_t kSegmentBytes = 128;

int severity_rank(Severity s) {
  switch (s) {
    case Severity::kError: return 2;
    case Severity::kWarning: return 1;
    case Severity::kInfo: return 0;
  }
  return 0;
}

std::string geometry_string(const vgpu::KernelConfig& config) {
  std::ostringstream out;
  out << "grid " << config.grid.x << "x" << config.grid.y << "x"
      << config.grid.z << " block " << config.block.x << "x" << config.block.y
      << "x" << config.block.z;
  return out.str();
}

/// A slot is statically evaluable for every lane only when every lane
/// issues it (full participation), the fitted form verified exactly, and
/// nothing about it changed with the input data.
bool predictable(const AccessPattern& p) {
  return p.affine && !p.data_dependent &&
         p.participation == Participation::kFull;
}

/// Per-slot exact replication of the executor's warp reduction: visits
/// every (block, warp) issue of the slot, calling `fn(values)` with the
/// evaluated per-lane values of the active lanes. Slots whose form does
/// not depend on the block index are evaluated for one block and the
/// callback told to weight the result by the block count.
template <typename Fn>
void for_each_warp_issue(const vgpu::KernelConfig& config,
                         const AffineForm& form, Fn&& fn) {
  const vgpu::Dim3 block = config.block;
  const vgpu::Dim3 grid = config.grid;
  const auto threads = block.count();
  const bool block_invariant = form.bx == 0 && form.by == 0 && form.bz == 0;
  const std::int64_t block_reps = block_invariant ? grid.count() : 1;
  std::array<std::int64_t, kWarpSize> values{};

  const auto visit_block = [&](const vgpu::Dim3& bid) {
    for (std::int64_t base = 0; base < threads; base += kWarpSize) {
      const int active =
          static_cast<int>(std::min<std::int64_t>(kWarpSize, threads - base));
      for (int l = 0; l < active; ++l) {
        const std::int64_t flat = base + l;
        const vgpu::Dim3 tid{
            static_cast<int>(flat % block.x),
            static_cast<int>((flat / block.x) % block.y),
            static_cast<int>(flat / (static_cast<std::int64_t>(block.x) *
                                     block.y))};
        values[static_cast<std::size_t>(l)] = form.eval(tid, bid);
      }
      fn(values, active, block_reps);
    }
  };

  if (block_invariant) {
    visit_block(vgpu::Dim3{0, 0, 0});
    return;
  }
  for (int bz = 0; bz < grid.z; ++bz) {
    for (int by = 0; by < grid.y; ++by) {
      for (int bx = 0; bx < grid.x; ++bx) {
        visit_block(vgpu::Dim3{bx, by, bz});
      }
    }
  }
}

struct SharedSlotPrediction {
  std::uint64_t extra_passes = 0;  ///< counters.bank_conflicts contribution
  int max_degree = 1;              ///< worst per-issue serialization
};

/// Mirrors the executor: dedup distinct 4-byte words per issue (same-word
/// broadcast is free), count distinct words per bank, degree - 1 extra.
SharedSlotPrediction predict_shared_slot(const vgpu::KernelConfig& config,
                                         const AccessPattern& p) {
  SharedSlotPrediction out;
  for_each_warp_issue(
      config, p.form,
      [&out](const std::array<std::int64_t, kWarpSize>& values, int active,
             std::int64_t reps) {
        std::array<std::uint32_t, kWarpSize> words;
        int n_words = 0;
        for (int l = 0; l < active; ++l) {
          const auto word =
              static_cast<std::uint32_t>(values[static_cast<std::size_t>(l)] / 4);
          bool seen = false;
          for (int s = 0; s < n_words; ++s) {
            if (words[static_cast<std::size_t>(s)] == word) {
              seen = true;
              break;
            }
          }
          if (!seen) {
            words[static_cast<std::size_t>(n_words++)] = word;
          }
        }
        std::array<int, kSharedBanks> per_bank{};
        int degree = 0;
        for (int s = 0; s < n_words; ++s) {
          const auto bank = words[static_cast<std::size_t>(s)] % kSharedBanks;
          degree = std::max(degree, ++per_bank[static_cast<std::size_t>(bank)]);
        }
        out.max_degree = std::max(out.max_degree, std::max(degree, 1));
        out.extra_passes += static_cast<std::uint64_t>(std::max(0, degree - 1)) *
                            static_cast<std::uint64_t>(reps);
      });
  return out;
}

struct GlobalSlotPrediction {
  std::uint64_t transactions = 0;
  std::uint64_t min_transactions = 0;  ///< packed minimum for the same bytes
};

GlobalSlotPrediction predict_global_slot(const vgpu::KernelConfig& config,
                                         const AccessPattern& p) {
  GlobalSlotPrediction out;
  for_each_warp_issue(
      config, p.form,
      [&out, &p](const std::array<std::int64_t, kWarpSize>& values, int active,
                 std::int64_t reps) {
        std::array<std::uint64_t, kWarpSize> segments;
        int distinct = 0;
        for (int l = 0; l < active; ++l) {
          const auto seg =
              static_cast<std::uint64_t>(values[static_cast<std::size_t>(l)]) /
              kSegmentBytes;
          bool seen = false;
          for (int s = 0; s < distinct; ++s) {
            if (segments[static_cast<std::size_t>(s)] == seg) {
              seen = true;
              break;
            }
          }
          if (!seen) {
            segments[static_cast<std::size_t>(distinct++)] = seg;
          }
        }
        out.transactions +=
            static_cast<std::uint64_t>(distinct) * static_cast<std::uint64_t>(reps);
        const std::uint64_t bytes =
            static_cast<std::uint64_t>(active) * std::max<std::uint32_t>(1, p.bytes);
        out.min_transactions +=
            std::max<std::uint64_t>(1, (bytes + kSegmentBytes - 1) / kSegmentBytes) *
            static_cast<std::uint64_t>(reps);
      });
  return out;
}

void add_finding(std::vector<Finding>& out, FindingKind kind, Severity severity,
                 const KernelIR& ir, int phase, int slot,
                 const std::string& message) {
  Finding f;
  f.kind = kind;
  f.severity = severity;
  f.kernel = ir.config.name;
  f.phase = phase;
  f.slot = slot;
  f.message = message;
  out.push_back(std::move(f));
}

// --- individual analyses --------------------------------------------------

void check_shared_footprint(const KernelIR& ir, std::vector<Finding>& out) {
  if (ir.carve_divergence) {
    add_finding(out, FindingKind::kCarveDivergence, Severity::kError, ir, -1,
                -1,
                "lanes carved different shared-memory layouts; all lanes must "
                "issue identical SharedMem::array sequences");
  }
  std::uint64_t footprint = 0;
  for (const CarveRegion& c : ir.carves) {
    footprint = std::max(footprint, c.offset + c.bytes);
  }
  const auto declared = static_cast<std::uint64_t>(ir.config.shared_bytes);
  if (footprint > declared) {
    std::ostringstream msg;
    msg << "carve layout needs " << footprint << " bytes but KernelConfig "
        << "declares " << declared
        << " (occupancy and hardware allocation use the declared figure)";
    add_finding(out, FindingKind::kSharedFootprint, Severity::kError, ir, -1,
                -1, msg.str());
  }
}

void check_shared_oob(const KernelIR& ir, std::vector<Finding>& out) {
  const auto declared = static_cast<std::int64_t>(ir.config.shared_bytes);
  for (const PhaseIR& phase : ir.phases) {
    for (const AccessPattern& p : phase.shared_slots) {
      std::int64_t lo = 0;
      std::int64_t hi = 0;  // exclusive end
      const char* how = nullptr;
      if (predictable(p)) {
        lo = p.form.min_over(ir.config.block, ir.config.grid);
        hi = p.form.max_over(ir.config.block, ir.config.grid) + p.bytes;
        how = "proven over every lane of every block";
      } else {
        lo = static_cast<std::int64_t>(p.min_seen);
        hi = static_cast<std::int64_t>(p.max_seen) + p.bytes;
        how = "observed on sampled lanes";
      }
      if (lo < 0 || hi > declared) {
        std::ostringstream msg;
        msg << (p.store ? "store" : "load") << " range [" << lo << ", " << hi
            << ") escapes the " << declared << "-byte shared footprint ("
            << how << "); index = " << p.form.to_string() << " at "
            << geometry_string(ir.config);
        add_finding(out, FindingKind::kSharedOutOfBounds, Severity::kError, ir,
                    phase.index, p.slot, msg.str());
      }
    }
  }
}

void check_global_oob(const KernelIR& ir, const AnalysisOptions& options,
                      std::vector<Finding>& out) {
  if (options.allocations.empty()) {
    return;
  }
  const auto containing = [&options](std::uint64_t addr) -> const Allocation* {
    for (const Allocation& a : options.allocations) {
      if (addr >= a.base && addr < a.base + a.bytes) {
        return &a;
      }
    }
    return nullptr;
  };
  for (const PhaseIR& phase : ir.phases) {
    for (const AccessPattern& p : phase.global_slots) {
      std::int64_t lo = 0;
      std::uint64_t hi = 0;  // exclusive end
      const char* how = nullptr;
      if (predictable(p)) {
        lo = p.form.min_over(ir.config.block, ir.config.grid);
        hi = static_cast<std::uint64_t>(
                 p.form.max_over(ir.config.block, ir.config.grid)) +
             p.bytes;
        how = "proven over every lane of every block";
      } else if (!p.data_dependent) {
        lo = static_cast<std::int64_t>(p.min_seen);
        hi = p.max_seen + p.bytes;
        how = "observed on sampled lanes";
      } else {
        // Data-dependent addressing: the observed range is still a real
        // executed range, so escapes are real; containment is not a proof.
        lo = static_cast<std::int64_t>(p.min_seen);
        hi = p.max_seen + p.bytes;
        how = "observed under both data seeds (data-dependent)";
      }
      const Allocation* alloc =
          lo < 0 ? nullptr : containing(static_cast<std::uint64_t>(lo));
      if (alloc != nullptr && hi <= alloc->base + alloc->bytes) {
        continue;
      }
      std::ostringstream msg;
      msg << (p.store ? "store" : "load") << " range [" << lo << ", " << hi
          << ") ";
      if (alloc == nullptr) {
        msg << "starts outside every registered allocation";
      } else {
        msg << "escapes allocation '" << alloc->name << "' [" << alloc->base
            << ", " << alloc->base + alloc->bytes << ")";
      }
      msg << " (" << how << "); address = " << p.form.to_string() << " at "
          << geometry_string(ir.config);
      add_finding(out, FindingKind::kGlobalOutOfBounds, Severity::kError, ir,
                  phase.index, p.slot, msg.str());
    }
  }
}

void check_barrier_divergence(const KernelIR& ir, std::vector<Finding>& out) {
  // A vgpu barrier sits between consecutive phases. If what a lane writes
  // to shared memory before the barrier depends on the input data — the
  // writing lane set changes, or a divergent data branch guards the phase
  // body — then consumers after the barrier can read values that only
  // some inputs produce: the classic barrier-in-divergent-branch hazard.
  // The final phase has no barrier after it and is exempt.
  for (const PhaseIR& phase : ir.phases) {
    if (phase.index + 1 >= static_cast<int>(ir.phases.size())) {
      break;
    }
    bool has_store = false;
    bool dd_store = false;
    int dd_slot = -1;
    for (const AccessPattern& p : phase.shared_slots) {
      if (!p.store) {
        continue;
      }
      has_store = true;
      if (p.participation == Participation::kDataDependent) {
        dd_store = true;
        dd_slot = p.slot;
        break;
      }
    }
    if (dd_store) {
      std::ostringstream msg;
      msg << "shared stores in phase " << phase.index
          << " come from a data-dependent lane set; phase " << phase.index + 1
          << " reads them after the barrier, so some inputs leave the data "
          << "unwritten";
      add_finding(out, FindingKind::kBarrierDivergence, Severity::kWarning, ir,
                  phase.index, dd_slot, msg.str());
      continue;
    }
    if (!has_store) {
      continue;
    }
    for (const BranchPattern& b : phase.branches) {
      if (b.data_dependent && b.divergent_observed) {
        std::ostringstream msg;
        msg << "data-dependent divergent branch (slot " << b.slot
            << ") guards phase " << phase.index
            << " which produces shared data consumed after the barrier";
        add_finding(out, FindingKind::kBarrierDivergence, Severity::kWarning,
                    ir, phase.index, b.slot, msg.str());
        break;
      }
    }
  }
}

void check_traffic(const KernelIR& ir, const AnalysisOptions& options,
                   std::vector<Finding>& out) {
  std::uint64_t total_conflicts = 0;
  for (const PhaseIR& phase : ir.phases) {
    for (const AccessPattern& p : phase.shared_slots) {
      if (!predictable(p)) {
        continue;
      }
      const SharedSlotPrediction pred = predict_shared_slot(ir.config, p);
      total_conflicts += pred.extra_passes;
      if (pred.max_degree >= options.bank_conflict_warn_degree) {
        std::ostringstream msg;
        msg << "predicted " << pred.max_degree
            << "-way bank conflict (threshold "
            << options.bank_conflict_warn_degree << "): every issue of index "
            << p.form.to_string() << " serializes into " << pred.max_degree
            << " passes at " << geometry_string(ir.config);
        add_finding(out, FindingKind::kBankConflict, Severity::kWarning, ir,
                    phase.index, p.slot, msg.str());
      }
    }
    for (const AccessPattern& p : phase.global_slots) {
      if (!predictable(p)) {
        continue;
      }
      const GlobalSlotPrediction pred = predict_global_slot(ir.config, p);
      const double ratio =
          pred.min_transactions == 0
              ? 1.0
              : static_cast<double>(pred.transactions) /
                    static_cast<double>(pred.min_transactions);
      if (ratio >= options.uncoalesced_warn_ratio) {
        std::ostringstream msg;
        msg << "uncoalesced " << (p.store ? "store" : "load") << ": predicted "
            << pred.transactions << " transactions where packed access needs "
            << pred.min_transactions << " (" << ratio
            << "x); address = " << p.form.to_string() << " at "
            << geometry_string(ir.config);
        add_finding(out, FindingKind::kUncoalesced, Severity::kWarning, ir,
                    phase.index, p.slot, msg.str());
      }
    }
  }
  if (total_conflicts > 0) {
    std::ostringstream msg;
    msg << "predicted " << total_conflicts
        << " serialized shared-memory passes across the launch (below the "
        << options.bank_conflict_warn_degree << "-way warning threshold)";
    add_finding(out, FindingKind::kBankConflict, Severity::kInfo, ir, -1, -1,
                msg.str());
  }
}

void check_dead_shared_writes(const KernelIR& ir, std::vector<Finding>& out) {
  const auto word_flag = [](const std::vector<bool>& words, std::size_t w) {
    return w < words.size() && words[w];
  };
  for (std::size_t ci = 0; ci < ir.carves.size(); ++ci) {
    const CarveRegion& c = ir.carves[ci];
    bool written = false;
    bool read = false;
    const std::size_t first = c.offset / 4;
    const std::size_t last = c.bytes == 0 ? first : (c.offset + c.bytes - 1) / 4;
    for (std::size_t w = first; w <= last; ++w) {
      written = written || word_flag(ir.shared_words_written, w);
      read = read || word_flag(ir.shared_words_read, w);
    }
    if (written && !read) {
      std::ostringstream msg;
      msg << "carve #" << ci << " [" << c.offset << ", " << c.offset + c.bytes
          << ") is written but never read in any phase of any sampled block "
          << "— the stores (and the shared footprint) are dead";
      add_finding(out, FindingKind::kDeadSharedWrite, Severity::kWarning, ir,
                  -1, static_cast<int>(ci), msg.str());
    }
  }
}

void check_occupancy(const KernelIR& ir, const AnalysisOptions& options,
                     std::vector<Finding>& out) {
  const vgpu::DeviceSpec& spec = ir.device;
  const auto threads = static_cast<int>(ir.config.block.count());
  const vgpu::Occupancy occ = vgpu::compute_occupancy(
      spec, threads, ir.config.shared_bytes, ir.config.regs_per_thread);
  // Re-derive each limiter the way the occupancy calculation combines
  // them, to name the binding one.
  const int warps_per_block = (threads + spec.warp_size - 1) / spec.warp_size;
  const int by_warps = spec.max_warps_per_sm / warps_per_block;
  const int by_blocks = spec.max_blocks_per_sm;
  const int by_shared = ir.config.shared_bytes > 0
                            ? spec.shared_mem_per_sm / ir.config.shared_bytes
                            : by_blocks;
  const int regs_per_block = ir.config.regs_per_thread * threads;
  const int by_regs =
      regs_per_block > 0 ? spec.registers_per_sm / regs_per_block : by_blocks;
  const char* limiter = "warp capacity";
  int binding = by_warps;
  if (by_blocks < binding) {
    limiter = "block slots";
    binding = by_blocks;
  }
  if (by_shared < binding) {
    limiter = "shared memory";
    binding = by_shared;
  }
  if (by_regs < binding) {
    limiter = "registers";
    binding = by_regs;
  }
  std::ostringstream msg;
  msg << "occupancy " << occ.ratio * 100 << "% (" << occ.resident_warps << "/"
      << spec.max_warps_per_sm << " warps, " << occ.blocks_per_sm
      << " blocks/SM), limited by " << limiter;
  if (occ.ratio < options.occupancy_warn_ratio) {
    msg << "; below the " << options.occupancy_warn_ratio * 100
        << "% warning floor — raise occupancy or suppress if latency-bound";
    add_finding(out, FindingKind::kOccupancy, Severity::kWarning, ir, -1, -1,
                msg.str());
  } else {
    add_finding(out, FindingKind::kOccupancy, Severity::kInfo, ir, -1, -1,
                msg.str());
  }
}

void summarize_unpredictable(const KernelIR& ir, std::vector<Finding>& out) {
  int non_affine = 0;
  int data_dependent = 0;
  const AccessPattern* example_na = nullptr;
  for (const PhaseIR& phase : ir.phases) {
    for (const auto* slots : {&phase.shared_slots, &phase.global_slots}) {
      for (const AccessPattern& p : *slots) {
        if (p.data_dependent) {
          ++data_dependent;
        } else if (!p.affine) {
          ++non_affine;
          if (example_na == nullptr) {
            example_na = &p;
          }
        }
      }
    }
  }
  if (non_affine > 0) {
    std::ostringstream msg;
    msg << non_affine << " slot(s) have geometry-determined but non-affine "
        << "indices (first: phase " << example_na->phase << " slot "
        << example_na->slot << ", observed [" << example_na->min_seen << ", "
        << example_na->max_seen << "]); analyses fall back to observed ranges";
    add_finding(out, FindingKind::kNonAffine, Severity::kInfo, ir,
                example_na->phase, example_na->slot, msg.str());
  }
  if (data_dependent > 0) {
    std::ostringstream msg;
    msg << data_dependent << " slot(s) address memory data-dependently; "
        << "traffic predictions treat them as unpredictable lower-bound gaps";
    add_finding(out, FindingKind::kDataDependent, Severity::kInfo, ir, -1, -1,
                msg.str());
  }
}

}  // namespace

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kInfo: return "info";
  }
  return "unknown";
}

const char* finding_kind_name(FindingKind k) {
  switch (k) {
    case FindingKind::kSharedOutOfBounds: return "shared-oob";
    case FindingKind::kGlobalOutOfBounds: return "global-oob";
    case FindingKind::kSharedFootprint: return "shared-footprint";
    case FindingKind::kCarveDivergence: return "carve-divergence";
    case FindingKind::kBarrierDivergence: return "barrier-divergence";
    case FindingKind::kBankConflict: return "bank-conflict";
    case FindingKind::kUncoalesced: return "uncoalesced";
    case FindingKind::kDeadSharedWrite: return "dead-shared-write";
    case FindingKind::kOccupancy: return "occupancy";
    case FindingKind::kNonAffine: return "non-affine";
    case FindingKind::kDataDependent: return "data-dependent";
  }
  return "unknown";
}

PredictedTraffic predict_traffic(const KernelIR& ir) {
  PredictedTraffic out;
  for (const PhaseIR& phase : ir.phases) {
    for (const AccessPattern& p : phase.shared_slots) {
      if (!predictable(p)) {
        out.shared_complete = false;
        ++out.skipped_slots;
        continue;
      }
      out.bank_conflicts += predict_shared_slot(ir.config, p).extra_passes;
    }
    for (const AccessPattern& p : phase.global_slots) {
      if (!predictable(p)) {
        out.global_complete = false;
        ++out.skipped_slots;
        continue;
      }
      const GlobalSlotPrediction pred = predict_global_slot(ir.config, p);
      out.global_transactions += pred.transactions;
      out.min_global_transactions += pred.min_transactions;
    }
    // Unaddressed shared_access() calls carry no index. The executor
    // cannot model conflicts for them either, so they do not affect
    // completeness relative to the dynamic counters — they are simply
    // invisible to the OOB/dead-write analyses.
  }
  return out;
}

std::vector<Finding> analyze_kernel(const KernelIR& ir,
                                    const AnalysisOptions& options) {
  std::vector<Finding> out;
  check_shared_footprint(ir, out);
  check_shared_oob(ir, out);
  check_global_oob(ir, options, out);
  check_barrier_divergence(ir, out);
  check_traffic(ir, options, out);
  check_dead_shared_writes(ir, out);
  check_occupancy(ir, options, out);
  summarize_unpredictable(ir, out);
  std::stable_sort(out.begin(), out.end(),
                   [](const Finding& a, const Finding& b) {
                     return severity_rank(a.severity) > severity_rank(b.severity);
                   });
  return out;
}

void apply_suppressions(std::vector<Finding>& findings,
                        const std::vector<std::string>& specs) {
  struct Parsed {
    FindingKind kind;
    std::string kernel;
  };
  std::vector<Parsed> parsed;
  for (const std::string& spec : specs) {
    const auto at = spec.find('@');
    FDET_CHECK(at != std::string::npos && at > 0 && at + 1 < spec.size())
        << "suppression '" << spec << "' must look like kind@kernel";
    const std::string kind_slug = spec.substr(0, at);
    bool found = false;
    Parsed p{FindingKind::kNonAffine, spec.substr(at + 1)};
    for (int k = 0; k <= static_cast<int>(FindingKind::kDataDependent); ++k) {
      if (kind_slug == finding_kind_name(static_cast<FindingKind>(k))) {
        p.kind = static_cast<FindingKind>(k);
        found = true;
        break;
      }
    }
    FDET_CHECK(found) << "suppression '" << spec << "' names unknown kind '"
                      << kind_slug << "'";
    parsed.push_back(std::move(p));
  }
  for (Finding& f : findings) {
    for (const Parsed& p : parsed) {
      if (p.kind == f.kind && (p.kernel == "*" || p.kernel == f.kernel)) {
        f.suppressed = true;
        break;
      }
    }
  }
}

int active_findings(const std::vector<Finding>& findings) {
  int n = 0;
  for (const Finding& f : findings) {
    if (!f.suppressed && f.severity != Severity::kInfo) {
      ++n;
    }
  }
  return n;
}

}  // namespace fdet::analyze
