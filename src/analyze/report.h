// Reporting for fdet_lint (layer 3): findings tables on stdout and
// analyze.lint.* metrics for fdet_report, mirroring the vgpu.check.*
// family the dynamic checker publishes.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analyze/analyses.h"
#include "analyze/ir.h"
#include "obs/metrics.h"

namespace fdet::analyze {

/// One analyzed kernel launch: its IR summary, traffic prediction and
/// (possibly suppressed) findings.
struct KernelLintResult {
  std::string target;  ///< registry target the launch came from
  std::string kernel;  ///< KernelConfig::name
  std::string geometry;
  int phases = 0;
  int barriers = 0;
  int shared_slots = 0;
  int global_slots = 0;
  PredictedTraffic traffic;
  std::vector<Finding> findings;
};

/// Builds the per-kernel summary row from an analyzed IR.
KernelLintResult summarize(const std::string& target, const KernelIR& ir,
                           std::vector<Finding> findings);

/// Per-kernel overview table: phases/barriers, captured slots, predicted
/// traffic (with completeness markers) and the finding tally.
void print_lint_table(std::ostream& out,
                      const std::vector<KernelLintResult>& results);

/// One line per finding, errors first; suppressed findings render dimmed
/// with a [suppressed] tag so stale suppressions stay visible.
void print_findings(std::ostream& out,
                    const std::vector<KernelLintResult>& results);

/// Exports analyze.lint.* metrics: per-kernel clean gauge, finding
/// counters by kind/severity, predicted traffic counters. `fdet_report
/// lint` renders these back as a table.
void publish_lint_results(obs::Registry& registry,
                          const std::vector<KernelLintResult>& results);

}  // namespace fdet::analyze
