#include "eval/hungarian.h"

#include <limits>

#include "core/check.h"

namespace fdet::eval {

std::vector<int> solve_assignment(
    const std::vector<std::vector<double>>& cost) {
  const int rows = static_cast<int>(cost.size());
  if (rows == 0) {
    return {};
  }
  const int cols = static_cast<int>(cost[0].size());
  for (const auto& row : cost) {
    FDET_CHECK(static_cast<int>(row.size()) == cols)
        << "ragged cost matrix";
  }
  if (cols == 0) {
    return std::vector<int>(static_cast<std::size_t>(rows), -1);
  }

  // Pad to a square matrix; the constant pad cost cannot bias the choice
  // among real entries because exactly |rows - cols| dummies are used.
  const int n = std::max(rows, cols);
  const auto at = [&](int r, int c) -> double {
    return (r < rows && c < cols) ? cost[static_cast<std::size_t>(r)]
                                        [static_cast<std::size_t>(c)]
                                  : 0.0;
  };

  // Kuhn–Munkres with potentials and shortest augmenting paths, 1-indexed.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(static_cast<std::size_t>(n) + 1, 0.0);
  std::vector<double> v(static_cast<std::size_t>(n) + 1, 0.0);
  std::vector<int> p(static_cast<std::size_t>(n) + 1, 0);
  std::vector<int> way(static_cast<std::size_t>(n) + 1, 0);

  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(static_cast<std::size_t>(n) + 1, kInf);
    std::vector<bool> used(static_cast<std::size_t>(n) + 1, false);
    do {
      used[static_cast<std::size_t>(j0)] = true;
      const int i0 = p[static_cast<std::size_t>(j0)];
      double delta = kInf;
      int j1 = -1;
      for (int j = 1; j <= n; ++j) {
        if (used[static_cast<std::size_t>(j)]) {
          continue;
        }
        const double cur = at(i0 - 1, j - 1) - u[static_cast<std::size_t>(i0)] -
                           v[static_cast<std::size_t>(j)];
        if (cur < minv[static_cast<std::size_t>(j)]) {
          minv[static_cast<std::size_t>(j)] = cur;
          way[static_cast<std::size_t>(j)] = j0;
        }
        if (minv[static_cast<std::size_t>(j)] < delta) {
          delta = minv[static_cast<std::size_t>(j)];
          j1 = j;
        }
      }
      FDET_CHECK(j1 >= 0) << "augmenting path search failed";
      for (int j = 0; j <= n; ++j) {
        if (used[static_cast<std::size_t>(j)]) {
          u[static_cast<std::size_t>(p[static_cast<std::size_t>(j)])] += delta;
          v[static_cast<std::size_t>(j)] -= delta;
        } else {
          minv[static_cast<std::size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (p[static_cast<std::size_t>(j0)] != 0);
    do {
      const int j1 = way[static_cast<std::size_t>(j0)];
      p[static_cast<std::size_t>(j0)] = p[static_cast<std::size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int> assignment(static_cast<std::size_t>(rows), -1);
  for (int j = 1; j <= n; ++j) {
    const int i = p[static_cast<std::size_t>(j)];
    if (i >= 1 && i <= rows && j <= cols) {
      assignment[static_cast<std::size_t>(i - 1)] = j - 1;
    }
  }
  return assignment;
}

double assignment_cost(const std::vector<std::vector<double>>& cost,
                       const std::vector<int>& assignment) {
  FDET_CHECK(assignment.size() == cost.size());
  double total = 0.0;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] >= 0) {
      total += cost[i][static_cast<std::size_t>(assignment[i])];
    }
  }
  return total;
}

}  // namespace fdet::eval
