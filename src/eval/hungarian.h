// Hungarian algorithm (Kuhn–Munkres) for minimum-cost assignment — the
// paper associates detection windows with ground-truth annotations using
// it, with S_eyes as the cost function (Sec. VI-B).
#pragma once

#include <vector>

namespace fdet::eval {

/// Solves min-cost assignment for an n x m cost matrix (rows = workers,
/// columns = jobs; rectangular matrices are padded internally). Returns
/// one entry per row: the assigned column, or -1 when n > m left the row
/// unassigned. Complexity O(max(n,m)^3).
std::vector<int> solve_assignment(
    const std::vector<std::vector<double>>& cost);

/// Total cost of an assignment as returned by solve_assignment.
double assignment_cost(const std::vector<std::vector<double>>& cost,
                       const std::vector<int>& assignment);

}  // namespace fdet::eval
