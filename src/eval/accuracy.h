// Accuracy evaluation (paper Sec. VI-B): detections are associated with
// ground-truth annotations by the Hungarian algorithm under the S_eyes
// cost; matches are true positives, the rest false positives, and TPR/FP
// curves are traced by sweeping a threshold over the detection score.
#pragma once

#include <vector>

#include "detect/detection.h"
#include "detect/pipeline.h"
#include "facegen/dataset.h"

namespace fdet::eval {

/// A detection's evaluation outcome after association.
struct ScoredDetection {
  float score = 0.0f;
  bool matched = false;  ///< associated to a ground-truth face
};

/// Ground truth expressed as annotated eye pairs.
struct GroundTruthFace {
  detect::EyePair eyes;
};

/// Associates detections to ground truth: Hungarian assignment on the
/// S_eyes cost, accepting pairs with S_eyes < `match_threshold`. Each
/// ground-truth face matches at most one detection.
std::vector<ScoredDetection> associate(
    const std::vector<detect::Detection>& detections,
    const std::vector<GroundTruthFace>& ground_truth,
    double match_threshold = 1.0);

/// One point of the TPR/FP curve.
struct RocPoint {
  double threshold = 0.0;
  int false_positives = 0;
  double true_positive_rate = 0.0;
};

/// Builds the curve by sweeping the score threshold over all observed
/// scores (descending), as in Fig. 9: x = absolute FP count, y = TPR.
std::vector<RocPoint> roc_curve(const std::vector<ScoredDetection>& scored,
                                int total_faces);

/// Area-like summary: mean TPR over the curve points (for quick
/// comparisons in tests and benches; higher is better).
double mean_tpr(const std::vector<RocPoint>& curve);

/// Runs a pipeline over the mugshot benchmark (faces + pure backgrounds)
/// and returns the scored detections plus the face total.
struct BenchmarkRun {
  std::vector<ScoredDetection> scored;
  int total_faces = 0;
};
BenchmarkRun run_mugshot_benchmark(const detect::Pipeline& pipeline,
                                   const facegen::MugshotBenchmark& bench,
                                   double match_threshold = 1.0);

}  // namespace fdet::eval
