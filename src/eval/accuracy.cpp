#include "eval/accuracy.h"

#include <algorithm>

#include "core/check.h"
#include "eval/hungarian.h"

namespace fdet::eval {

std::vector<ScoredDetection> associate(
    const std::vector<detect::Detection>& detections,
    const std::vector<GroundTruthFace>& ground_truth, double match_threshold) {
  std::vector<ScoredDetection> scored;
  scored.reserve(detections.size());
  for (const auto& d : detections) {
    scored.push_back({d.score, false});
  }
  if (detections.empty() || ground_truth.empty()) {
    return scored;
  }

  // Cost matrix: S_eyes between predicted and annotated eyes; pairs beyond
  // the match threshold are priced prohibitively so the assignment never
  // prefers them over leaving a row unassigned (dummy column cost 0 <
  // kNoMatch).
  constexpr double kNoMatch = 1e6;
  std::vector<std::vector<double>> cost(detections.size());
  for (std::size_t i = 0; i < detections.size(); ++i) {
    cost[i].resize(ground_truth.size());
    const detect::EyePair eyes = detections[i].predicted_eyes();
    for (std::size_t j = 0; j < ground_truth.size(); ++j) {
      const double s = detect::s_eyes(eyes, ground_truth[j].eyes);
      cost[i][j] = (s < match_threshold) ? s : kNoMatch;
    }
  }
  const std::vector<int> assignment = solve_assignment(cost);
  for (std::size_t i = 0; i < detections.size(); ++i) {
    const int j = assignment[i];
    if (j >= 0 && cost[i][static_cast<std::size_t>(j)] < kNoMatch) {
      scored[i].matched = true;
    }
  }
  return scored;
}

std::vector<RocPoint> roc_curve(const std::vector<ScoredDetection>& scored,
                                int total_faces) {
  FDET_CHECK(total_faces > 0);
  std::vector<ScoredDetection> sorted = scored;
  std::sort(sorted.begin(), sorted.end(),
            [](const ScoredDetection& a, const ScoredDetection& b) {
              return a.score > b.score;
            });
  std::vector<RocPoint> curve;
  int tp = 0;
  int fp = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i].matched) {
      ++tp;
    } else {
      ++fp;
    }
    // Emit one point per distinct threshold (after ties are absorbed).
    if (i + 1 < sorted.size() && sorted[i + 1].score == sorted[i].score) {
      continue;
    }
    curve.push_back({static_cast<double>(sorted[i].score), fp,
                     static_cast<double>(tp) / total_faces});
  }
  return curve;
}

double mean_tpr(const std::vector<RocPoint>& curve) {
  if (curve.empty()) {
    return 0.0;
  }
  double acc = 0.0;
  for (const RocPoint& p : curve) {
    acc += p.true_positive_rate;
  }
  return acc / static_cast<double>(curve.size());
}

BenchmarkRun run_mugshot_benchmark(const detect::Pipeline& pipeline,
                                   const facegen::MugshotBenchmark& bench,
                                   double match_threshold) {
  BenchmarkRun run;
  for (const facegen::Mugshot& shot : bench.mugshots) {
    const detect::FrameResult result = pipeline.process(shot.image);
    GroundTruthFace gt;
    gt.eyes = {shot.left_eye_x, shot.left_eye_y, shot.right_eye_x,
               shot.right_eye_y};
    const auto scored =
        associate(result.detections, {gt}, match_threshold);
    run.scored.insert(run.scored.end(), scored.begin(), scored.end());
    ++run.total_faces;
  }
  for (const img::ImageU8& bg : bench.backgrounds) {
    const detect::FrameResult result = pipeline.process(bg);
    for (const auto& d : result.detections) {
      run.scored.push_back({d.score, false});  // anything here is an FP
    }
  }
  return run;
}

}  // namespace fdet::eval
