// Weak-learner fitting: decision stumps on Haar-feature responses.
//
// Threshold search runs on a fixed-width histogram of the response range
// (the standard trick that keeps per-hypothesis cost O(N + bins) instead
// of O(N log N) re-sorting): a single pass bins the weighted statistics,
// prefix scans pick the best split.
//
// Two flavors, matching the paper's training study:
//  * GentleBoost regression stump (paper Sec. IV) — fits h(x) = a / b
//    minimizing the weighted squared error to the ±1 targets;
//  * discrete AdaBoost stump (the classic Viola–Jones weak learner used
//    for the OpenCV-style baseline) — ±1 votes, minimizes weighted error.
#pragma once

#include <cstdint>
#include <span>

namespace fdet::train {

struct StumpFit {
  float threshold = 0.0f;  ///< responses < threshold go left
  float left_vote = 0.0f;
  float right_vote = 0.0f;
  double loss = 0.0;       ///< weighted squared error (gentle) or
                           ///< weighted misclassification (discrete)
  bool valid = false;      ///< false when the responses are degenerate
};

/// Fits a GentleBoost regression stump. `targets` are ±1 labels, `weights`
/// a normalized distribution (need not sum to exactly 1).
StumpFit fit_gentle_stump(std::span<const std::int32_t> responses,
                          std::span<const float> targets,
                          std::span<const double> weights, int bins = 64);

/// Fits a discrete AdaBoost stump with ±1 votes (polarity folded into the
/// left/right votes). loss = weighted error ε of the best split.
StumpFit fit_discrete_stump(std::span<const std::int32_t> responses,
                            std::span<const float> targets,
                            std::span<const double> weights, int bins = 64);

}  // namespace fdet::train
