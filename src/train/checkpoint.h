// Crash-consistent checkpoints for the boosted-cascade trainer.
//
// The trainer (train_cascade) is the longest-running workload in the
// repo — at paper scale, 25 stages over thousands of hypotheses take
// hours — so after every completed boosting stage it persists a
// checkpoint from which training resumes bit-identically:
//
//   * the options digest (refuses to resume a run with different
//     training parameters — thread count excluded, since the trainer is
//     deterministic across thread counts by construction),
//   * the cascade built so far (stage thresholds + weak classifiers,
//     float-exact via the max_digits10 cascade text form),
//   * per-stage statistics,
//   * the sample weights at the end of the last stage (diagnostic: the
//     stage loop re-derives weights per stage, but the distribution is
//     the natural thing to inspect when a resumed run misbehaves),
//   * the raw RNG state, so bootstrapped negative mining continues the
//     exact stream.
//
// Checkpoints are framed by the core::artifact container (versioned
// header + CRC32) and written atomically, so a crash at any kill point
// leaves either the previous checkpoint set or a complete new one —
// never a torn file under a durable name. The store rotates the last K
// checkpoints and, on load, quarantines corrupt files as `*.corrupt`
// and falls back to the newest intact one.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "haar/cascade.h"
#include "train/boost.h"

namespace fdet::obs {
class Registry;
}

namespace fdet::train {

inline constexpr const char* kCheckpointArtifactKind = "train-checkpoint";
inline constexpr int kCheckpointPayloadVersion = 1;

struct TrainCheckpoint {
  std::string options_digest;  ///< train_options_digest() of the run
  std::string name;            ///< cascade name passed to train_cascade
  std::array<std::uint64_t, 4> rng_state{};
  int total_stages = 0;        ///< stage count the full run will produce
  haar::Cascade cascade;       ///< stages completed so far
  std::vector<StageStats> stats;  ///< one entry per completed stage
  std::vector<double> weights;    ///< sample weights after the last stage

  int stages_done() const { return cascade.stage_count(); }
};

/// Digest of everything that shapes the trained bits: trainer version,
/// seed, algorithm, stage profile, pool and bootstrap budgets, targets,
/// and the cascade name. Deliberately excludes `threads` — determinism
/// across thread counts is a trainer invariant (pinned by test), so a
/// checkpoint taken at 8 threads resumes correctly at 1.
std::string train_options_digest(const TrainOptions& options,
                                 const std::string& name);

/// Payload (de)serialization; the store wraps these in the artifact
/// container. parse_checkpoint throws core::ArtifactError (naming `path`)
/// on any structural problem. Floating-point fields round-trip bit-exactly
/// (weights and RNG state as hex bit patterns, cascade floats via the
/// max_digits10 text form).
std::string serialize_checkpoint(const TrainCheckpoint& checkpoint);
TrainCheckpoint parse_checkpoint(const std::string& path,
                                 const std::string& payload);

/// Directory of rotated stage checkpoints for one training run.
class CheckpointStore {
 public:
  /// `keep` >= 1 checkpoints are retained (newest stages). `metrics` may
  /// be null; when set, quarantine/stale events are counted under
  /// train.checkpoint.*.
  explicit CheckpointStore(std::string dir, int keep = 3,
                           obs::Registry* metrics = nullptr);

  const std::string& dir() const { return dir_; }

  /// `<dir>/checkpoint-<stages_done, zero-padded>.fdetckpt`.
  std::string path_for(int stages_done) const;

  /// Atomically persists `checkpoint` and prunes rotation overflow.
  /// Throws core::ArtifactError when the write fails (the previous
  /// checkpoints are untouched in that case).
  void save(const TrainCheckpoint& checkpoint);

  /// Newest intact checkpoint whose digest matches. Corrupt files are
  /// quarantined to `*.corrupt` and skipped (falling back to the next
  /// newest); mismatched-digest files are skipped with an
  /// expected-vs-found log line. Returns nullopt when nothing usable
  /// remains (including when the directory does not exist).
  std::optional<TrainCheckpoint> load_latest(const std::string& expect_digest);

  /// Stage numbers of the on-disk checkpoints, ascending. Ignores `.tmp`
  /// staging debris and `.corrupt` quarantine files.
  std::vector<int> stages_on_disk() const;

 private:
  std::string dir_;
  int keep_;
  obs::Registry* metrics_;
};

}  // namespace fdet::train
