// The training-set matrix of paper Sec. IV / Fig. 4.
//
// Every 24x24 training window is stored as one column holding its
// *precomputed integral image*, so any Haar rectangle sum is a fixed
// linear combination of rows, and evaluating one feature hypothesis over
// the entire training set vectorizes into contiguous row arithmetic:
//
//   eval = -1*(r0 + r1 - r2 - r3) + 2*(r4 + r5 - r6 - r7)   (paper Fig. 4)
//
// Differences from the paper, documented in DESIGN.md:
//  * rows are stored contiguously (row-major) so the SSE4 path streams
//    unit-stride; the paper's Eigen matrix is column-major with strided
//    row access;
//  * the integral is padded with a zero row/column (25x25 = 625 rows
//    rather than 576) so rectangles anchored at x=0/y=0 need no branch.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "haar/feature.h"
#include "img/image.h"

namespace fdet::train {

class DatasetMatrix {
 public:
  /// Rows of the padded integral representation (25 x 25).
  static constexpr int kGrid = haar::kWindowSize + 1;
  static constexpr int kRows = kGrid * kGrid;

  DatasetMatrix() = default;

  /// Reserves storage for `expected_columns` windows.
  explicit DatasetMatrix(int expected_columns);

  /// Appends one 24x24 window (computes its padded integral column).
  void add_window(const img::ImageU8& window);

  int cols() const { return cols_; }

  /// Row `r` across all columns (contiguous).
  std::span<const std::int32_t> row(int r) const;

  /// Row index of padded-integral entry (gx, gy), gx/gy in [0, 24].
  static constexpr int row_index(int gx, int gy) { return gy * kGrid + gx; }

  /// The (row, coefficient) terms of a feature: response(col) =
  /// Σ coeff_k * row_k[col]. At most 16 terms (4 rects x 4 corners).
  struct Term {
    int row;
    std::int32_t coeff;
  };
  static std::vector<Term> feature_terms(const haar::HaarFeature& feature);

  /// Evaluates one feature hypothesis over every column:
  /// out[j] = feature response on window j. out.size() must equal cols().
  /// Uses SSE4.1 when available (the paper's data-parallel inner loop).
  void evaluate_feature(const haar::HaarFeature& feature,
                        std::span<std::int32_t> out) const;

  /// Same, from precomputed terms (hot path for the trainer).
  void evaluate_terms(std::span<const Term> terms,
                      std::span<std::int32_t> out) const;

 private:
  int cols_ = 0;
  int capacity_ = 0;
  // Row-major: row r occupies [r * capacity_, r * capacity_ + cols_).
  std::vector<std::int32_t> data_;

  void grow(int new_capacity);
};

}  // namespace fdet::train
