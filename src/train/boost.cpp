#include "train/boost.h"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>

#include "core/artifact.h"
#include "core/check.h"
#include "core/rng.h"
#include "core/stopwatch.h"
#include "facegen/background.h"
#include "haar/enumerate.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "train/checkpoint.h"
#include "train/dataset_matrix.h"
#include "train/stump.h"

namespace fdet::train {
namespace {

/// The hypothesis pool, grouped by family as the paper's four parallel
/// loops require.
struct FeaturePool {
  std::vector<haar::HaarFeature> features;        // grouped by type
  std::array<std::pair<int, int>, 4> type_ranges; // [first, last) per family
  std::vector<std::vector<DatasetMatrix::Term>> terms;
};

FeaturePool build_pool(int target_total, std::uint64_t seed) {
  FDET_CHECK(target_total >= 16);
  FeaturePool pool;
  // Split the budget across families proportionally to the full-grid
  // hypothesis counts (edge-heavy, like Table I).
  const std::array<haar::HaarType, 4> types = {
      haar::HaarType::kEdge, haar::HaarType::kLine,
      haar::HaarType::kCenterSurround, haar::HaarType::kDiagonal};
  std::array<std::int64_t, 4> full_counts{};
  std::int64_t full_total = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    full_counts[i] = haar::count_features(types[i]);
    full_total += full_counts[i];
  }
  for (std::size_t i = 0; i < 4; ++i) {
    const int share = std::max(
        4, static_cast<int>(target_total * full_counts[i] / full_total));
    const int first = static_cast<int>(pool.features.size());
    auto sampled = haar::sample_features(types[i], share, seed);
    pool.features.insert(pool.features.end(), sampled.begin(), sampled.end());
    pool.type_ranges[i] = {first, static_cast<int>(pool.features.size())};
  }
  pool.terms.reserve(pool.features.size());
  for (const auto& f : pool.features) {
    pool.terms.push_back(DatasetMatrix::feature_terms(f));
  }
  return pool;
}

/// Response cache: responses[f][j] = feature f on example j.
std::vector<std::vector<std::int32_t>> cache_responses(
    const DatasetMatrix& matrix, const FeaturePool& pool, int threads) {
  std::vector<std::vector<std::int32_t>> responses(pool.features.size());
  const int n = static_cast<int>(pool.features.size());
  if (threads > 0) {
    omp_set_num_threads(threads);
  }
#pragma omp parallel for schedule(static)
  for (int f = 0; f < n; ++f) {
    responses[static_cast<std::size_t>(f)].resize(
        static_cast<std::size_t>(matrix.cols()));
    matrix.evaluate_terms(pool.terms[static_cast<std::size_t>(f)],
                          responses[static_cast<std::size_t>(f)]);
  }
  return responses;
}

struct RoundBest {
  StumpFit fit;
  int feature = -1;
};

/// One boosting round: tests every hypothesis (four per-family parallel
/// loops, as in paper Fig. 4) and returns the global best stump.
RoundBest best_stump_round(const FeaturePool& pool,
                           const std::vector<std::vector<std::int32_t>>& responses,
                           std::span<const float> targets,
                           std::span<const double> weights,
                           BoostAlgorithm algorithm, int bins, int threads) {
  RoundBest global;
  global.fit.loss = std::numeric_limits<double>::infinity();
  if (threads > 0) {
    omp_set_num_threads(threads);
  }

  for (const auto& [first, last] : pool.type_ranges) {
    RoundBest family;
    family.fit.loss = std::numeric_limits<double>::infinity();
#pragma omp parallel
    {
      RoundBest local;
      local.fit.loss = std::numeric_limits<double>::infinity();
#pragma omp for schedule(static) nowait
      for (int f = first; f < last; ++f) {
        const auto& r = responses[static_cast<std::size_t>(f)];
        const StumpFit fit =
            (algorithm == BoostAlgorithm::kGentleBoost)
                ? fit_gentle_stump(r, targets, weights, bins)
                : fit_discrete_stump(r, targets, weights, bins);
        if (fit.valid &&
            (fit.loss < local.fit.loss ||
             (fit.loss == local.fit.loss && f < local.feature))) {
          local.fit = fit;
          local.feature = f;
        }
      }
#pragma omp critical
      {
        if (local.feature >= 0 &&
            (local.fit.loss < family.fit.loss ||
             (local.fit.loss == family.fit.loss &&
              local.feature < family.feature))) {
          family = local;
        }
      }
    }
    if (family.feature >= 0 &&
        (family.fit.loss < global.fit.loss ||
         (family.fit.loss == global.fit.loss &&
          family.feature < global.feature))) {
      global = family;
    }
  }
  return global;
}

/// Mines negatives: background windows that the cascade-so-far still
/// accepts (the paper's bootstrapping routine). When the cascade has
/// become too selective for the sampling budget, the shortfall is filled
/// with the *hardest* rejected windows seen (deepest cascade penetration,
/// then highest final score) — deep stages keep training against
/// adversarial material instead of trivially-rejectable noise.
std::vector<img::ImageU8> mine_negatives(
    const facegen::TrainingSet& set, const haar::Cascade& cascade_so_far,
    int want, core::Rng& rng) {
  std::vector<img::ImageU8> mined;
  mined.reserve(static_cast<std::size_t>(want));

  struct Rejected {
    img::ImageU8 window;
    int depth;
    float score;
  };
  std::vector<Rejected> rejected;

  const int max_attempts = want * 200;
  for (int attempt = 0; attempt < max_attempts &&
                        static_cast<int>(mined.size()) < want;
       ++attempt) {
    const auto& bg = set.backgrounds[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(set.backgrounds.size()) - 1))];
    img::ImageU8 window = facegen::random_patch(bg, haar::kWindowSize, rng);
    if (cascade_so_far.empty()) {
      mined.push_back(std::move(window));
      continue;
    }
    const auto ii = integral::integral_cpu(window);
    const haar::CascadeResult result = cascade_so_far.evaluate(ii, 0, 0);
    if (result.accepted) {
      mined.push_back(std::move(window));
    } else {
      rejected.push_back({std::move(window), result.depth, result.score});
    }
  }

  if (static_cast<int>(mined.size()) < want) {
    const auto shortfall = static_cast<std::size_t>(
        want - static_cast<int>(mined.size()));
    std::partial_sort(rejected.begin(),
                      rejected.begin() +
                          std::min(shortfall, rejected.size()),
                      rejected.end(), [](const Rejected& a, const Rejected& b) {
                        return a.depth != b.depth ? a.depth > b.depth
                                                  : a.score > b.score;
                      });
    for (std::size_t i = 0; i < rejected.size() &&
                            static_cast<int>(mined.size()) < want;
         ++i) {
      mined.push_back(std::move(rejected[i].window));
    }
  }
  while (static_cast<int>(mined.size()) < want) {
    const auto& bg = set.backgrounds[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(set.backgrounds.size()) - 1))];
    mined.push_back(facegen::random_patch(bg, haar::kWindowSize, rng));
  }
  return mined;
}

}  // namespace

TrainResult train_cascade(const facegen::TrainingSet& set,
                          const TrainOptions& options,
                          const std::string& name) {
  FDET_CHECK(!options.stage_sizes.empty());
  FDET_CHECK(!set.faces.empty() && !set.backgrounds.empty());
  core::Stopwatch total_watch;

  const FeaturePool pool = build_pool(options.feature_pool, options.seed);
  core::Rng rng(core::hash_combine(options.seed, 0xb005));

  TrainResult result;
  result.cascade = haar::Cascade(name);

  const int total_stages = static_cast<int>(options.stage_sizes.size());
  const std::string digest = train_options_digest(options, name);
  std::optional<CheckpointStore> store;
  int start_stage = 0;
  if (!options.checkpoint_dir.empty()) {
    store.emplace(options.checkpoint_dir, options.checkpoint_keep,
                  options.metrics);
    if (options.resume) {
      const obs::ScopedSpan span("train.checkpoint.resume");
      if (std::optional<TrainCheckpoint> checkpoint =
              store->load_latest(digest)) {
        result.cascade = std::move(checkpoint->cascade);
        result.cascade.set_name(name);
        result.stages = std::move(checkpoint->stats);
        rng.set_state(checkpoint->rng_state);
        start_stage = result.cascade.stage_count();
        std::fprintf(stderr,
                     "[fdet] resuming '%s' from checkpoint: %d/%d stages "
                     "already trained\n",
                     name.c_str(), start_stage, total_stages);
        if (options.metrics != nullptr) {
          options.metrics->gauge("train.checkpoint.resumed_stage")
              .set(start_stage);
        }
      }
    }
  }

  const int pos = static_cast<int>(set.faces.size());

  for (int stage_index = start_stage; stage_index < total_stages;
       ++stage_index) {
    const int stage_size =
        options.stage_sizes[static_cast<std::size_t>(stage_index)];
    const obs::ScopedSpan stage_span("train.stage" +
                                     std::to_string(stage_index));
    core::Stopwatch stage_watch;
    StageStats stats;
    stats.classifiers = stage_size;

    // Assemble this stage's example set: all faces + bootstrapped negatives.
    const std::vector<img::ImageU8> negatives = [&] {
      const obs::ScopedSpan span("train.mine_negatives");
      return mine_negatives(set, result.cascade, options.negatives_per_stage,
                            rng);
    }();
    stats.negatives_mined = static_cast<int>(negatives.size());
    const int neg = static_cast<int>(negatives.size());
    const int n = pos + neg;

    DatasetMatrix matrix(n);
    for (const auto& face : set.faces) {
      matrix.add_window(face.image);
    }
    for (const auto& window : negatives) {
      matrix.add_window(window);
    }
    const auto responses = [&] {
      const obs::ScopedSpan span("train.cache_responses");
      return cache_responses(matrix, pool, options.threads);
    }();

    std::vector<float> targets(static_cast<std::size_t>(n));
    std::vector<double> weights(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      targets[static_cast<std::size_t>(i)] = (i < pos) ? 1.0f : -1.0f;
      weights[static_cast<std::size_t>(i)] =
          (i < pos) ? 0.5 / pos : 0.5 / neg;
    }

    haar::Stage stage;
    std::vector<double> scores(static_cast<std::size_t>(n), 0.0);

    for (int round = 0; round < stage_size; ++round) {
      const obs::ScopedSpan round_span("train.round");
      const RoundBest best =
          best_stump_round(pool, responses, targets, weights,
                           options.algorithm, options.histogram_bins,
                           options.threads);
      FDET_CHECK(best.feature >= 0)
          << "no splittable hypothesis in round " << round;

      haar::WeakClassifier wc;
      wc.feature = pool.features[static_cast<std::size_t>(best.feature)];
      wc.threshold = best.fit.threshold;
      if (options.algorithm == BoostAlgorithm::kGentleBoost) {
        wc.left_vote = best.fit.left_vote;
        wc.right_vote = best.fit.right_vote;
      } else {
        // Discrete AdaBoost: vote ±alpha with alpha from the weighted error.
        const double eps = std::clamp(best.fit.loss, 1e-10, 1.0 - 1e-10);
        const auto alpha =
            static_cast<float>(0.5 * std::log((1.0 - eps) / eps));
        wc.left_vote = best.fit.left_vote * alpha;
        wc.right_vote = best.fit.right_vote * alpha;
      }

      // Update weights and running stage scores.
      const auto& r = responses[static_cast<std::size_t>(best.feature)];
      double weight_sum = 0.0;
      for (int i = 0; i < n; ++i) {
        const float h = wc.vote(r[static_cast<std::size_t>(i)]);
        scores[static_cast<std::size_t>(i)] += h;
        weights[static_cast<std::size_t>(i)] *=
            std::exp(-static_cast<double>(targets[static_cast<std::size_t>(i)]) * h);
        weight_sum += weights[static_cast<std::size_t>(i)];
      }
      FDET_CHECK(weight_sum > 0.0);
      for (double& w : weights) {
        w /= weight_sum;
      }
      stage.classifiers.push_back(wc);
    }

    // Stage threshold: keep at least stage_hit_target of the faces, and do
    // not reject more than (1 - stage_fp_floor) of this stage's negatives
    // (the Viola–Jones stage-tuning heuristic) — whichever threshold is
    // lower wins, so the hit target always holds.
    std::vector<double> pos_scores(scores.begin(), scores.begin() + pos);
    std::sort(pos_scores.begin(), pos_scores.end());
    const auto hit_cut = static_cast<std::size_t>(std::floor(
        (1.0 - options.stage_hit_target) * static_cast<double>(pos)));
    double threshold =
        pos_scores[std::min(hit_cut, pos_scores.size() - 1)] - 1e-6;
    if (neg > 0 && options.stage_fp_floor > 0.0) {
      // Stump scores are heavily tied (a handful of distinct vote sums),
      // so a plain quantile can land inside a tie block and keep far more
      // negatives than intended. Scan the distinct score values and pick
      // the threshold whose realized pass fraction is closest to the
      // floor.
      std::vector<double> neg_scores(scores.begin() + pos, scores.end());
      std::sort(neg_scores.begin(), neg_scores.end());
      double fp_threshold = neg_scores.front();
      double best_gap = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < neg_scores.size();) {
        const double value = neg_scores[i];
        const double pass_fraction =
            static_cast<double>(neg_scores.size() - i) /
            static_cast<double>(neg_scores.size());
        const double gap = std::abs(pass_fraction - options.stage_fp_floor);
        if (gap < best_gap) {
          best_gap = gap;
          fp_threshold = value;
        }
        while (i < neg_scores.size() && neg_scores[i] == value) {
          ++i;
        }
      }
      threshold = std::min(threshold, fp_threshold);
    }
    stage.threshold = static_cast<float>(threshold);

    int hits = 0;
    int false_accepts = 0;
    for (int i = 0; i < n; ++i) {
      const bool pass = scores[static_cast<std::size_t>(i)] >= stage.threshold;
      if (i < pos) {
        hits += pass;
      } else {
        false_accepts += pass;
      }
    }
    stats.hit_rate = static_cast<double>(hits) / pos;
    stats.false_positive_rate =
        neg > 0 ? static_cast<double>(false_accepts) / neg : 0.0;
    stats.seconds = stage_watch.elapsed_seconds();

    result.cascade.add_stage(std::move(stage));
    result.stages.push_back(stats);

    if (store) {
      const obs::ScopedSpan save_span("train.checkpoint.save");
      TrainCheckpoint checkpoint;
      checkpoint.options_digest = digest;
      checkpoint.name = name;
      checkpoint.rng_state = rng.state();
      checkpoint.total_stages = total_stages;
      checkpoint.cascade = result.cascade;
      checkpoint.stats = result.stages;
      checkpoint.weights = weights;
      try {
        store->save(checkpoint);
        if (options.metrics != nullptr) {
          options.metrics->counter("train.checkpoint.saved").increment();
        }
      } catch (const core::ArtifactError& error) {
        // Non-fatal by design: the atomic write left every previous
        // checkpoint intact, so training keeps going and the run stays
        // resumable from the last durable stage.
        std::fprintf(stderr,
                     "[fdet] checkpoint save after stage %d failed "
                     "(training continues): %s\n",
                     stage_index, error.what());
        if (options.metrics != nullptr) {
          options.metrics->counter("train.checkpoint.save_failed")
              .increment();
        }
      }
    }
    if (options.after_stage) {
      options.after_stage(stage_index);
    }
  }

  result.total_seconds = total_watch.elapsed_seconds();
  return result;
}

double boosting_iteration_seconds(const facegen::TrainingSet& set,
                                  int feature_pool, int threads,
                                  std::uint64_t seed) {
  const FeaturePool pool = build_pool(feature_pool, seed);
  const int pos = static_cast<int>(set.faces.size());
  core::Rng rng(core::hash_combine(seed, 0x17e2));

  DatasetMatrix matrix(pos * 2);
  for (const auto& face : set.faces) {
    matrix.add_window(face.image);
  }
  for (int i = 0; i < pos; ++i) {
    const auto& bg = set.backgrounds[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(set.backgrounds.size()) - 1))];
    matrix.add_window(facegen::random_patch(bg, haar::kWindowSize, rng));
  }
  const int n = matrix.cols();
  std::vector<float> targets(static_cast<std::size_t>(n));
  std::vector<double> weights(static_cast<std::size_t>(n), 1.0 / n);
  for (int i = 0; i < n; ++i) {
    targets[static_cast<std::size_t>(i)] = (i < pos) ? 1.0f : -1.0f;
  }

  // The measured unit: evaluate every hypothesis on every example and fit
  // its stump (response evaluation + regression, as in paper Fig. 4).
  core::Stopwatch watch;
  if (threads > 0) {
    omp_set_num_threads(threads);
  }
  const int total = static_cast<int>(pool.features.size());
  std::vector<double> losses(static_cast<std::size_t>(total), 0.0);
#pragma omp parallel
  {
    std::vector<std::int32_t> eval(static_cast<std::size_t>(n));
#pragma omp for schedule(static)
    for (int f = 0; f < total; ++f) {
      matrix.evaluate_terms(pool.terms[static_cast<std::size_t>(f)], eval);
      const StumpFit fit = fit_gentle_stump(eval, targets, weights);
      losses[static_cast<std::size_t>(f)] = fit.valid ? fit.loss : 1e30;
    }
  }
  return watch.elapsed_seconds();
}

}  // namespace fdet::train
