// Disk-cached trained cascade pair.
//
// Several benches and examples need the two cascades of the paper's
// evaluation: "ours" (GentleBoost, 25 stages, 1446 weak classifiers) and
// the OpenCV-style baseline (discrete AdaBoost, 25 stages, 2913 weak
// classifiers). Training them takes minutes, so the first call trains and
// serializes both into a cache directory; later calls load the files.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "haar/cascade.h"

namespace fdet::train {

struct PretrainedOptions {
  int faces = 2000;            ///< positive training chips
  int backgrounds = 250;       ///< background images (96x96)
  int feature_pool = 1500;
  int negatives_per_stage = 1200;
  double stage_hit_target = 0.995;
  std::uint64_t seed = 2012;   ///< vintage of the paper
  /// Persist per-stage training checkpoints under the cache directory so
  /// an interrupted (minutes-long) training run resumes instead of
  /// restarting. Not part of the digest: checkpoints never change the
  /// trained bits (pinned by the resume-identity chaos harness).
  bool checkpoint = true;

  /// Digest used to key the cache files.
  std::string digest() const;
};

struct CascadePair {
  haar::Cascade ours;         ///< GentleBoost, compact_profile()
  haar::Cascade opencv_like;  ///< AdaBoost, opencv_frontal_profile()
};

/// Validates and loads a cached pair, or returns nullopt when the cache
/// cannot be trusted and a retrain is required:
///
///   * both `.cascade` files must parse under the validating parser —
///     corrupt files are quarantined to `*.corrupt` and logged;
///   * when the `pair-<digest>.manifest` artifact exists, its recorded
///     options digest must equal `options.digest()` (a mismatch logs the
///     expected-vs-found keys — a stale file whose name happens to match
///     is never silently reused) and each cascade file's CRC32 must match
///     the manifest (a mismatch quarantines the file);
///   * pairs cached before manifests existed load when both files parse.
std::optional<CascadePair> load_cached_pair(const std::string& cache_dir,
                                            const PretrainedOptions& options);

/// Loads the pair from `cache_dir`, training and saving on a cache miss —
/// including a miss forced by corrupt or stale cache entries, which are
/// quarantined/ignored rather than crashing the caller. Creates the
/// directory when needed. Prints one progress line per stage to stderr
/// when training (it is minutes-long by design).
CascadePair get_or_train_cascades(const std::string& cache_dir,
                                  const PretrainedOptions& options = {});

}  // namespace fdet::train
