#include "train/checkpoint.h"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "core/artifact.h"
#include "core/rng.h"
#include "obs/metrics.h"

namespace fdet::train {
namespace {

namespace fs = std::filesystem;

constexpr const char* kCheckpointPrefix = "checkpoint-";
constexpr const char* kCheckpointSuffix = ".fdetckpt";

std::string hex64(std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

std::uint64_t parse_hex64(const std::string& path, const std::string& field,
                          const std::string& token) {
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(
      token.data(), token.data() + token.size(), value, 16);
  if (ec != std::errc() || ptr != token.data() + token.size() ||
      token.empty()) {
    throw core::ArtifactError(path, "checkpoint field '" + field +
                                        "' is not a hex64 token: '" + token +
                                        "'");
  }
  return value;
}

/// Line-oriented payload reader with field-naming diagnostics.
class PayloadReader {
 public:
  PayloadReader(const std::string& path, const std::string& payload)
      : path_(path), in_(payload) {}

  std::string line(const std::string& field) {
    std::string text;
    if (!std::getline(in_, text)) {
      throw core::ArtifactError(path_, "checkpoint truncated: missing '" +
                                           field + "' line");
    }
    return text;
  }

  /// "key value..." line; returns the value part.
  std::string keyed(const std::string& key) {
    const std::string text = line(key);
    const std::size_t space = text.find(' ');
    if (space == std::string::npos || text.substr(0, space) != key) {
      throw core::ArtifactError(path_, "checkpoint field '" + key +
                                           "': malformed line '" + text + "'");
    }
    return text.substr(space + 1);
  }

  std::int64_t keyed_int(const std::string& key) {
    const std::string value = keyed(key);
    std::int64_t parsed = 0;
    const auto [ptr, ec] = std::from_chars(
        value.data(), value.data() + value.size(), parsed);
    if (ec != std::errc() || ptr != value.data() + value.size()) {
      throw core::ArtifactError(path_, "checkpoint field '" + key +
                                           "' is not an integer: '" + value +
                                           "'");
    }
    return parsed;
  }

  /// Reads exactly `bytes` raw payload bytes (the embedded cascade blob).
  std::string raw(const std::string& field, std::size_t bytes) {
    std::string blob(bytes, '\0');
    in_.read(blob.data(), static_cast<std::streamsize>(bytes));
    if (static_cast<std::size_t>(in_.gcount()) != bytes) {
      throw core::ArtifactError(path_, "checkpoint truncated inside '" +
                                           field + "' blob");
    }
    return blob;
  }

  /// Rejects any non-whitespace content left after the declared payload —
  /// a length mismatch the byte counts alone would silently swallow.
  void expect_exhausted() {
    std::string text;
    while (std::getline(in_, text)) {
      if (text.find_first_not_of(" \t\r") != std::string::npos) {
        throw core::ArtifactError(
            path_, "checkpoint has trailing garbage after the cascade blob: '" +
                       text + "'");
      }
    }
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::istringstream in_;
};

int stage_of_filename(const std::string& filename) {
  const std::string prefix = kCheckpointPrefix;
  const std::string suffix = kCheckpointSuffix;
  if (filename.size() <= prefix.size() + suffix.size() ||
      filename.compare(0, prefix.size(), prefix) != 0 ||
      filename.compare(filename.size() - suffix.size(), suffix.size(),
                       suffix) != 0) {
    return -1;
  }
  const std::string digits = filename.substr(
      prefix.size(), filename.size() - prefix.size() - suffix.size());
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return -1;
  }
  return std::stoi(digits);
}

}  // namespace

std::string train_options_digest(const TrainOptions& options,
                                 const std::string& name) {
  std::uint64_t h = core::hash_combine(
      options.seed, static_cast<std::uint64_t>(kTrainerVersion));
  h = core::hash_combine(
      h, static_cast<std::uint64_t>(options.algorithm ==
                                    BoostAlgorithm::kGentleBoost));
  h = core::hash_combine(h, static_cast<std::uint64_t>(options.feature_pool));
  h = core::hash_combine(
      h, static_cast<std::uint64_t>(options.negatives_per_stage));
  h = core::hash_combine(
      h, static_cast<std::uint64_t>(options.stage_hit_target * 1e6));
  h = core::hash_combine(
      h, static_cast<std::uint64_t>(options.stage_fp_floor * 1e6));
  h = core::hash_combine(h,
                         static_cast<std::uint64_t>(options.histogram_bins));
  h = core::hash_combine(h,
                         static_cast<std::uint64_t>(options.stage_sizes.size()));
  for (const int size : options.stage_sizes) {
    h = core::hash_combine(h, static_cast<std::uint64_t>(size));
  }
  for (const char c : name) {
    h = core::hash_combine(h, static_cast<std::uint64_t>(
                                  static_cast<unsigned char>(c)));
  }
  std::ostringstream out;
  out << std::hex << h;
  return std::move(out).str();
}

std::string serialize_checkpoint(const TrainCheckpoint& checkpoint) {
  FDET_CHECK(static_cast<int>(checkpoint.stats.size()) ==
             checkpoint.stages_done())
      << "checkpoint stats/stage count mismatch";
  std::ostringstream out;
  out << "digest " << checkpoint.options_digest << "\n";
  out << "name " << checkpoint.name << "\n";
  out << "rng " << hex64(checkpoint.rng_state[0]) << " "
      << hex64(checkpoint.rng_state[1]) << " "
      << hex64(checkpoint.rng_state[2]) << " "
      << hex64(checkpoint.rng_state[3]) << "\n";
  out << "total-stages " << checkpoint.total_stages << "\n";
  out << "stats " << checkpoint.stats.size() << "\n";
  for (const StageStats& s : checkpoint.stats) {
    // seconds is diagnostic wall time; bit patterns keep the round trip
    // exact so re-serialized checkpoints are byte-stable.
    out << s.classifiers << " "
        << hex64(std::bit_cast<std::uint64_t>(s.hit_rate)) << " "
        << hex64(std::bit_cast<std::uint64_t>(s.false_positive_rate)) << " "
        << s.negatives_mined << " "
        << hex64(std::bit_cast<std::uint64_t>(s.seconds)) << "\n";
  }
  out << "weights " << checkpoint.weights.size() << "\n";
  for (std::size_t i = 0; i < checkpoint.weights.size(); ++i) {
    out << hex64(std::bit_cast<std::uint64_t>(checkpoint.weights[i]))
        << ((i + 1) % 8 == 0 || i + 1 == checkpoint.weights.size() ? "\n"
                                                                   : " ");
  }
  const std::string cascade_text = haar::cascade_to_string(checkpoint.cascade);
  out << "cascade-bytes " << cascade_text.size() << "\n";
  out << cascade_text;
  return std::move(out).str();
}

TrainCheckpoint parse_checkpoint(const std::string& path,
                                 const std::string& payload) {
  PayloadReader reader(path, payload);
  TrainCheckpoint checkpoint;
  checkpoint.options_digest = reader.keyed("digest");
  checkpoint.name = reader.keyed("name");

  std::istringstream rng_tokens(reader.keyed("rng"));
  for (auto& word : checkpoint.rng_state) {
    std::string token;
    if (!(rng_tokens >> token)) {
      throw core::ArtifactError(path, "checkpoint field 'rng': expected 4 "
                                      "hex64 tokens");
    }
    word = parse_hex64(path, "rng", token);
  }

  checkpoint.total_stages =
      static_cast<int>(reader.keyed_int("total-stages"));
  if (checkpoint.total_stages < 0 || checkpoint.total_stages >= 10000) {
    throw core::ArtifactError(path, "checkpoint field 'total-stages': "
                                    "implausible value");
  }

  const std::int64_t stat_count = reader.keyed_int("stats");
  if (stat_count < 0 || stat_count > checkpoint.total_stages) {
    throw core::ArtifactError(path, "checkpoint field 'stats': count out of "
                                    "range");
  }
  for (std::int64_t i = 0; i < stat_count; ++i) {
    const std::string field = "stats[" + std::to_string(i) + "]";
    std::istringstream tokens(reader.line(field));
    StageStats stats;
    std::string hit;
    std::string fp;
    std::string seconds;
    if (!(tokens >> stats.classifiers >> hit >> fp >> stats.negatives_mined >>
          seconds)) {
      throw core::ArtifactError(path, "checkpoint field '" + field +
                                          "': malformed record");
    }
    stats.hit_rate =
        std::bit_cast<double>(parse_hex64(path, field + ".hit_rate", hit));
    stats.false_positive_rate =
        std::bit_cast<double>(parse_hex64(path, field + ".fp_rate", fp));
    stats.seconds =
        std::bit_cast<double>(parse_hex64(path, field + ".seconds", seconds));
    checkpoint.stats.push_back(stats);
  }

  const std::int64_t weight_count = reader.keyed_int("weights");
  if (weight_count < 0 || weight_count > 50'000'000) {
    throw core::ArtifactError(path, "checkpoint field 'weights': implausible "
                                    "count");
  }
  checkpoint.weights.reserve(static_cast<std::size_t>(weight_count));
  while (static_cast<std::int64_t>(checkpoint.weights.size()) <
         weight_count) {
    std::istringstream tokens(reader.line("weights"));
    std::string token;
    while (tokens >> token) {
      if (static_cast<std::int64_t>(checkpoint.weights.size()) >=
          weight_count) {
        throw core::ArtifactError(path, "checkpoint field 'weights': more "
                                        "tokens than declared");
      }
      checkpoint.weights.push_back(
          std::bit_cast<double>(parse_hex64(path, "weights", token)));
    }
  }

  const std::int64_t cascade_bytes = reader.keyed_int("cascade-bytes");
  if (cascade_bytes < 0) {
    throw core::ArtifactError(path, "checkpoint field 'cascade-bytes': "
                                    "negative");
  }
  const std::string cascade_text =
      reader.raw("cascade", static_cast<std::size_t>(cascade_bytes));
  reader.expect_exhausted();
  std::istringstream cascade_in(cascade_text);
  try {
    checkpoint.cascade = haar::read_cascade(cascade_in);
  } catch (const haar::CascadeParseError& error) {
    throw core::ArtifactError(path, std::string("embedded cascade invalid: ") +
                                        error.what());
  }
  if (checkpoint.stages_done() != static_cast<int>(stat_count)) {
    throw core::ArtifactError(path, "checkpoint stage/stat count mismatch");
  }
  if (checkpoint.stages_done() > checkpoint.total_stages) {
    throw core::ArtifactError(path, "checkpoint holds more stages than the "
                                    "run it describes");
  }
  return checkpoint;
}

CheckpointStore::CheckpointStore(std::string dir, int keep,
                                 obs::Registry* metrics)
    : dir_(std::move(dir)), keep_(std::max(1, keep)), metrics_(metrics) {
  FDET_CHECK(!dir_.empty()) << "checkpoint directory must be non-empty";
}

std::string CheckpointStore::path_for(int stages_done) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%04d%s", kCheckpointPrefix,
                stages_done, kCheckpointSuffix);
  return (fs::path(dir_) / name).string();
}

std::vector<int> CheckpointStore::stages_on_disk() const {
  std::vector<int> stages;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const int stage = stage_of_filename(entry.path().filename().string());
    if (stage >= 0) {
      stages.push_back(stage);
    }
  }
  std::sort(stages.begin(), stages.end());
  return stages;
}

void CheckpointStore::save(const TrainCheckpoint& checkpoint) {
  fs::create_directories(dir_);
  core::write_artifact(path_for(checkpoint.stages_done()),
                       kCheckpointArtifactKind, kCheckpointPayloadVersion,
                       serialize_checkpoint(checkpoint));
  // Rotation prunes only after the new checkpoint is durable, so a fault
  // during the write never costs an older recovery point.
  const std::vector<int> stages = stages_on_disk();
  if (static_cast<int>(stages.size()) > keep_) {
    for (std::size_t i = 0; i + static_cast<std::size_t>(keep_) <
                            stages.size();
         ++i) {
      std::error_code ec;
      fs::remove(path_for(stages[i]), ec);
    }
  }
}

std::optional<TrainCheckpoint> CheckpointStore::load_latest(
    const std::string& expect_digest) {
  std::vector<int> stages = stages_on_disk();
  std::sort(stages.begin(), stages.end(), std::greater<>());
  for (const int stage : stages) {
    const std::string path = path_for(stage);
    try {
      const core::Artifact artifact =
          core::read_artifact(path, kCheckpointArtifactKind);
      if (artifact.header.payload_version != kCheckpointPayloadVersion) {
        throw core::ArtifactError(
            path, "unsupported checkpoint payload version " +
                      std::to_string(artifact.header.payload_version));
      }
      TrainCheckpoint checkpoint = parse_checkpoint(path, artifact.payload);
      if (checkpoint.options_digest != expect_digest) {
        std::fprintf(stderr,
                     "[fdet] checkpoint %s is stale: expected options digest "
                     "%s, found %s — skipping\n",
                     path.c_str(), expect_digest.c_str(),
                     checkpoint.options_digest.c_str());
        if (metrics_ != nullptr) {
          metrics_->counter("train.checkpoint.stale_skipped").increment();
        }
        continue;
      }
      return checkpoint;
    } catch (const core::ArtifactError& error) {
      const std::string quarantined = core::quarantine_file(path);
      std::fprintf(stderr,
                   "[fdet] corrupt checkpoint quarantined to %s: %s\n",
                   quarantined.c_str(), error.what());
      if (metrics_ != nullptr) {
        metrics_->counter("train.checkpoint.corrupt_quarantined").increment();
      }
    }
  }
  return std::nullopt;
}

}  // namespace fdet::train
