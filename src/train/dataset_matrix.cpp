#include "train/dataset_matrix.h"

#include <algorithm>
#include <cstring>

#if defined(__SSE4_1__)
#include <smmintrin.h>
#endif

#include "core/check.h"
#include "integral/integral.h"

namespace fdet::train {

DatasetMatrix::DatasetMatrix(int expected_columns) {
  FDET_CHECK(expected_columns >= 0);
  grow(std::max(16, expected_columns));
}

void DatasetMatrix::grow(int new_capacity) {
  FDET_CHECK(new_capacity >= cols_);
  std::vector<std::int32_t> next(
      static_cast<std::size_t>(kRows) * static_cast<std::size_t>(new_capacity),
      0);
  // First grow() runs on an empty matrix: data_.data() is null there, and
  // memcpy's pointer arguments must be non-null even for zero sizes.
  if (cols_ > 0) {
    for (int r = 0; r < kRows; ++r) {
      std::memcpy(next.data() + static_cast<std::size_t>(r) * new_capacity,
                  data_.data() + static_cast<std::size_t>(r) * capacity_,
                  static_cast<std::size_t>(cols_) * sizeof(std::int32_t));
    }
  }
  data_ = std::move(next);
  capacity_ = new_capacity;
}

void DatasetMatrix::add_window(const img::ImageU8& window) {
  FDET_CHECK(window.width() == haar::kWindowSize &&
             window.height() == haar::kWindowSize)
      << "windows must be " << haar::kWindowSize << "x" << haar::kWindowSize;
  if (cols_ == capacity_) {
    grow(std::max(16, capacity_ * 2));
  }
  const integral::IntegralImage ii = integral::integral_cpu(window);
  // Padded layout: row 0 and column 0 of the 25x25 grid stay zero; entry
  // (gx, gy) with gx,gy >= 1 holds the inclusive integral at (gx-1, gy-1).
  for (int gy = 0; gy < kGrid; ++gy) {
    for (int gx = 0; gx < kGrid; ++gx) {
      const std::int32_t value =
          (gx == 0 || gy == 0)
              ? 0
              : ii.table()(gx - 1, gy - 1);
      data_[static_cast<std::size_t>(row_index(gx, gy)) * capacity_ + cols_] =
          value;
    }
  }
  ++cols_;
}

std::span<const std::int32_t> DatasetMatrix::row(int r) const {
  FDET_CHECK(r >= 0 && r < kRows);
  return {data_.data() + static_cast<std::size_t>(r) * capacity_,
          static_cast<std::size_t>(cols_)};
}

std::vector<DatasetMatrix::Term> DatasetMatrix::feature_terms(
    const haar::HaarFeature& feature) {
  FDET_CHECK(feature.valid());
  const auto d = feature.decompose();
  // Rect [x, x+w) x [y, y+h) over the padded integral:
  //   sum = I(x+w, y+h) - I(x, y+h) - I(x+w, y) + I(x, y)
  // Merge coincident corners (adjacent rects share edges).
  std::vector<Term> terms;
  const auto add = [&terms](int row, std::int32_t coeff) {
    for (Term& t : terms) {
      if (t.row == row) {
        t.coeff += coeff;
        return;
      }
    }
    terms.push_back({row, coeff});
  };
  for (int i = 0; i < d.count; ++i) {
    const haar::RectTerm& r = d.rects[static_cast<std::size_t>(i)];
    const auto w = static_cast<std::int32_t>(r.weight);
    add(row_index(r.x + r.w, r.y + r.h), +w);
    add(row_index(r.x, r.y + r.h), -w);
    add(row_index(r.x + r.w, r.y), -w);
    add(row_index(r.x, r.y), +w);
  }
  std::erase_if(terms, [](const Term& t) { return t.coeff == 0; });
  return terms;
}

void DatasetMatrix::evaluate_feature(const haar::HaarFeature& feature,
                                     std::span<std::int32_t> out) const {
  const std::vector<Term> terms = feature_terms(feature);
  evaluate_terms(terms, out);
}

void DatasetMatrix::evaluate_terms(std::span<const Term> terms,
                                   std::span<std::int32_t> out) const {
  FDET_CHECK(static_cast<int>(out.size()) == cols_)
      << "out size " << out.size() << " vs " << cols_ << " columns";
  std::fill(out.begin(), out.end(), 0);
  const int n = cols_;
  for (const Term& term : terms) {
    const std::int32_t* src =
        data_.data() + static_cast<std::size_t>(term.row) * capacity_;
    std::int32_t* dst = out.data();
    const std::int32_t c = term.coeff;
    int j = 0;
#if defined(__SSE4_1__)
    // The paper's SSE4 inner loop: 4-wide multiply-accumulate over the row.
    const __m128i vc = _mm_set1_epi32(c);
    for (; j + 4 <= n; j += 4) {
      const __m128i row_vals =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + j));
      const __m128i acc =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + j));
      const __m128i prod = _mm_mullo_epi32(row_vals, vc);  // SSE4.1
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + j),
                       _mm_add_epi32(acc, prod));
    }
#endif
    for (; j < n; ++j) {
      dst[j] += c * src[j];
    }
  }
}

}  // namespace fdet::train
