// Boosted-cascade training (paper Sec. IV).
//
// The trainer follows the paper's structure: one large outer loop builds
// the cascade stage by stage; inside a stage, every boosting round tests
// the whole feature pool — four OpenMP-parallel loops, one per Haar family
// exactly as in Fig. 4 — against the current example weights, fits a stump
// per hypothesis on the cached response matrix (the SSE4 data-parallel
// layer lives in DatasetMatrix::evaluate_terms), and keeps the best. A
// bootstrapping pass after each stage re-mines hard negatives: background
// windows that still pass the cascade built so far.
//
// Algorithms: GentleBoost (the paper's compact cascade) and discrete
// AdaBoost (the OpenCV-style baseline).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "facegen/dataset.h"
#include "haar/cascade.h"

namespace fdet::obs {
class Registry;
}

namespace fdet::train {

enum class BoostAlgorithm { kGentleBoost, kAdaBoost };

/// Trainer algorithm version: bump when training-time behaviour changes,
/// so disk-cached cascades (train/pretrained.h) are invalidated.
inline constexpr int kTrainerVersion = 3;

struct TrainOptions {
  std::vector<int> stage_sizes;       ///< weak classifiers per stage
  BoostAlgorithm algorithm = BoostAlgorithm::kGentleBoost;
  int feature_pool = 2000;            ///< sampled hypotheses (all families)
  int negatives_per_stage = 1500;     ///< bootstrapped negatives per stage
  double stage_hit_target = 0.995;    ///< min fraction of faces kept per stage
  /// Minimum fraction of this stage's (bootstrapped) negatives the stage
  /// must still pass — the classic Viola–Jones per-stage false-positive
  /// target that stops a stage from over-tightening to its training set
  /// and destroying generalization. The attentional filtering then comes
  /// from stage *composition*, exactly as in the paper's 25-stage design.
  double stage_fp_floor = 0.55;
  int histogram_bins = 64;
  int threads = 0;                    ///< OpenMP threads; 0 = library default
  std::uint64_t seed = 1;

  // --- durability (train/checkpoint.h) -----------------------------------
  /// When non-empty, a checkpoint is persisted into this directory after
  /// every completed stage (atomic, CRC-framed, last-`checkpoint_keep`
  /// rotation) and — with `resume` — training continues from the newest
  /// intact checkpoint whose options digest matches. The invariant: a
  /// resumed run produces a bit-identical final cascade to an
  /// uninterrupted one, regardless of which stage a crash landed on and
  /// of thread count.
  std::string checkpoint_dir;
  int checkpoint_keep = 3;
  bool resume = true;
  /// Optional metrics sink for train.checkpoint.* counters/gauges.
  obs::Registry* metrics = nullptr;
  /// Test seam: invoked after each stage is trained and checkpointed
  /// (argument = completed-stage index). The chaos harness throws from
  /// here to simulate a crash at a stage boundary. Not part of the digest.
  std::function<void(int)> after_stage;
};

struct StageStats {
  int classifiers = 0;
  double hit_rate = 0.0;        ///< achieved on the training positives
  double false_positive_rate = 0.0;  ///< on the stage's negatives
  int negatives_mined = 0;
  double seconds = 0.0;         ///< wall time of the stage
};

struct TrainResult {
  haar::Cascade cascade;
  std::vector<StageStats> stages;
  double total_seconds = 0.0;
};

/// Trains a cascade on a synthetic training set. Deterministic given
/// options.seed and a single-threaded run; with OpenMP the feature argmin
/// is reduced deterministically (by loss, then feature index).
TrainResult train_cascade(const facegen::TrainingSet& set,
                          const TrainOptions& options,
                          const std::string& name);

/// One boosting iteration over a full hypothesis pool — the unit of work
/// Fig. 8 measures. Returns the wall seconds of the iteration.
double boosting_iteration_seconds(const facegen::TrainingSet& set,
                                  int feature_pool, int threads,
                                  std::uint64_t seed);

}  // namespace fdet::train
