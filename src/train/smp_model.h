// SMP scaling model for the training-time study (paper Fig. 8).
//
// The reproduction host has a single core, so the paper's thread sweep
// cannot produce wall-clock speedups here; the OpenMP code path is real
// and exercised, but Fig. 8's *numbers* come from this calibrated model:
// Amdahl's law with a memory-bandwidth ceiling on the parallel section —
// the regression/ranking serial fraction plus the bandwidth-bound feature
// sweep reproduce the paper's ~3.5x saturation at 8 threads on both
// platforms and the ~2x single-thread advantage of the newer core.
#pragma once

#include <string>

namespace fdet::train {

struct SmpPlatform {
  std::string name;
  int physical_cores = 4;
  int smt_ways = 1;            ///< hardware threads per core
  double smt_yield = 0.25;     ///< extra throughput of the 2nd SMT thread
  double single_thread_seconds = 100.0;  ///< one boosting iteration, 1 thread
  double serial_fraction = 0.10;         ///< ranking/regression bookkeeping
  double bandwidth_speedup_cap = 4.85;   ///< parallel-section ceiling

  /// Modeled seconds for one boosting iteration at `threads` threads.
  double iteration_seconds(int threads) const;

  /// iteration_seconds(1) / iteration_seconds(threads).
  double speedup(int threads) const;
};

/// Paper Fig. 8 platforms: the dual Intel Xeon E5472 workstation and the
/// Intel Core i7-2600K, calibrated so 8 threads yield ~3.5x on both and
/// the i7 runs ~2x faster single-threaded.
SmpPlatform dual_xeon_e5472();
SmpPlatform core_i7_2600k();

}  // namespace fdet::train
