#include "train/smp_model.h"

#include <algorithm>

#include "core/check.h"

namespace fdet::train {

double SmpPlatform::iteration_seconds(int threads) const {
  FDET_CHECK(threads >= 1);
  const int hw_threads = physical_cores * smt_ways;
  const int used = std::min(threads, hw_threads);
  const int real = std::min(used, physical_cores);
  const int smt_extra = used - real;
  // Throughput in "core equivalents": full cores plus the marginal yield
  // of SMT siblings, clipped by the shared memory-bandwidth ceiling.
  const double throughput =
      std::min(static_cast<double>(real) + smt_yield * smt_extra,
               bandwidth_speedup_cap);
  return single_thread_seconds *
         (serial_fraction + (1.0 - serial_fraction) / throughput);
}

double SmpPlatform::speedup(int threads) const {
  return iteration_seconds(1) / iteration_seconds(threads);
}

SmpPlatform dual_xeon_e5472() {
  SmpPlatform p;
  p.name = "Dual Intel Xeon E5472";
  p.physical_cores = 8;  // two quad-core sockets
  p.smt_ways = 1;
  p.single_thread_seconds = 350.0;  // paper Fig. 8, 1 thread
  p.serial_fraction = 0.10;
  p.bandwidth_speedup_cap = 4.85;   // FSB-era shared bus saturates early
  return p;
}

SmpPlatform core_i7_2600k() {
  SmpPlatform p;
  p.name = "Intel Core i7-2600K";
  p.physical_cores = 4;
  p.smt_ways = 2;
  p.smt_yield = 0.25;
  p.single_thread_seconds = 175.0;  // ~2x faster than the Xeon per thread
  p.serial_fraction = 0.10;
  p.bandwidth_speedup_cap = 4.85;
  return p;
}

}  // namespace fdet::train
