#include "train/pretrained.h"

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "core/rng.h"
#include "core/stopwatch.h"
#include "haar/profile.h"
#include "train/boost.h"

namespace fdet::train {

std::string PretrainedOptions::digest() const {
  std::uint64_t h = core::hash_combine(
      seed, static_cast<std::uint64_t>(facegen::kFacegenVersion));
  h = core::hash_combine(h, static_cast<std::uint64_t>(kTrainerVersion));
  h = core::hash_combine(h, static_cast<std::uint64_t>(faces));
  h = core::hash_combine(h, static_cast<std::uint64_t>(backgrounds));
  h = core::hash_combine(h, static_cast<std::uint64_t>(feature_pool));
  h = core::hash_combine(h, static_cast<std::uint64_t>(negatives_per_stage));
  h = core::hash_combine(
      h, static_cast<std::uint64_t>(stage_hit_target * 1e6));
  std::ostringstream out;
  out << std::hex << h;
  return out.str();
}

CascadePair get_or_train_cascades(const std::string& cache_dir,
                                  const PretrainedOptions& options) {
  namespace fs = std::filesystem;
  fs::create_directories(cache_dir);
  const std::string tag = options.digest();
  const std::string ours_path =
      (fs::path(cache_dir) / ("ours-" + tag + ".cascade")).string();
  const std::string baseline_path =
      (fs::path(cache_dir) / ("opencv-like-" + tag + ".cascade")).string();

  if (fs::exists(ours_path) && fs::exists(baseline_path)) {
    return {haar::load_cascade(ours_path), haar::load_cascade(baseline_path)};
  }

  std::fprintf(stderr,
               "[fdet] training cascade pair (cache miss, key %s) — this "
               "runs once and is cached\n",
               tag.c_str());
  const facegen::TrainingSet set = facegen::build_training_set(
      options.faces, options.backgrounds, 96, options.seed);

  const auto train_one = [&](const char* name, BoostAlgorithm algorithm,
                             std::vector<int> stage_sizes) {
    TrainOptions topt;
    topt.stage_sizes = std::move(stage_sizes);
    topt.algorithm = algorithm;
    topt.feature_pool = options.feature_pool;
    topt.negatives_per_stage = options.negatives_per_stage;
    topt.stage_hit_target = options.stage_hit_target;
    topt.seed = options.seed;
    core::Stopwatch watch;
    TrainResult result = train_cascade(set, topt, name);
    std::fprintf(stderr, "[fdet] trained %s: %d stages, %d classifiers in %.1fs\n",
                 name, result.cascade.stage_count(),
                 result.cascade.classifier_count(), watch.elapsed_seconds());
    return std::move(result.cascade);
  };

  CascadePair pair;
  pair.ours = train_one("ours-gentleboost", BoostAlgorithm::kGentleBoost,
                        haar::compact_profile());
  pair.opencv_like = train_one("opencv-like-adaboost", BoostAlgorithm::kAdaBoost,
                               haar::opencv_frontal_profile());
  haar::save_cascade(ours_path, pair.ours);
  haar::save_cascade(baseline_path, pair.opencv_like);
  return pair;
}

}  // namespace fdet::train
