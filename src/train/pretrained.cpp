#include "train/pretrained.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/artifact.h"
#include "core/rng.h"
#include "core/stopwatch.h"
#include "haar/profile.h"
#include "train/boost.h"

namespace fdet::train {
namespace {

namespace fs = std::filesystem;

constexpr const char* kManifestKind = "pretrained-manifest";
constexpr int kManifestVersion = 1;

std::string ours_path(const std::string& cache_dir, const std::string& tag) {
  return (fs::path(cache_dir) / ("ours-" + tag + ".cascade")).string();
}

std::string baseline_path(const std::string& cache_dir,
                          const std::string& tag) {
  return (fs::path(cache_dir) / ("opencv-like-" + tag + ".cascade")).string();
}

std::string manifest_path(const std::string& cache_dir,
                          const std::string& tag) {
  return (fs::path(cache_dir) / ("pair-" + tag + ".manifest")).string();
}

std::optional<std::string> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

std::string hex32(std::uint32_t value) {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%08x", value);
  return buffer;
}

struct Manifest {
  std::string digest;
  std::string ours_crc;
  std::string baseline_crc;
};

void write_manifest(const std::string& cache_dir, const std::string& tag,
                    const std::string& ours_bytes,
                    const std::string& baseline_bytes) {
  std::ostringstream payload;
  payload << "digest " << tag << "\n"
          << "ours-crc32 " << hex32(core::crc32(ours_bytes)) << "\n"
          << "opencv-like-crc32 " << hex32(core::crc32(baseline_bytes))
          << "\n";
  core::write_artifact(manifest_path(cache_dir, tag), kManifestKind,
                       kManifestVersion, payload.str());
}

std::optional<Manifest> read_manifest(const std::string& path) {
  if (!fs::exists(path)) {
    return std::nullopt;
  }
  const core::Artifact artifact = core::read_artifact(path, kManifestKind);
  Manifest manifest;
  std::istringstream payload(artifact.payload);
  std::string line;
  while (std::getline(payload, line)) {
    const std::size_t space = line.find(' ');
    if (space == std::string::npos) {
      throw core::ArtifactError(path, "malformed manifest line '" + line +
                                          "'");
    }
    const std::string key = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    if (key == "digest") {
      manifest.digest = value;
    } else if (key == "ours-crc32") {
      manifest.ours_crc = value;
    } else if (key == "opencv-like-crc32") {
      manifest.baseline_crc = value;
    }
  }
  if (manifest.digest.empty() || manifest.ours_crc.empty() ||
      manifest.baseline_crc.empty()) {
    throw core::ArtifactError(path, "manifest missing required fields");
  }
  return manifest;
}

/// Loads one cascade file through the validating parser; quarantines on
/// parse failure so the broken file can never be picked up again.
std::optional<haar::Cascade> load_validated(const std::string& path) {
  try {
    return haar::load_cascade(path);
  } catch (const haar::CascadeParseError& error) {
    const std::string quarantined = core::quarantine_file(path);
    std::fprintf(stderr,
                 "[fdet] corrupt cached cascade quarantined to %s: %s\n",
                 quarantined.c_str(), error.what());
    return std::nullopt;
  }
}

}  // namespace

std::string PretrainedOptions::digest() const {
  std::uint64_t h = core::hash_combine(
      seed, static_cast<std::uint64_t>(facegen::kFacegenVersion));
  h = core::hash_combine(h, static_cast<std::uint64_t>(kTrainerVersion));
  h = core::hash_combine(h, static_cast<std::uint64_t>(faces));
  h = core::hash_combine(h, static_cast<std::uint64_t>(backgrounds));
  h = core::hash_combine(h, static_cast<std::uint64_t>(feature_pool));
  h = core::hash_combine(h, static_cast<std::uint64_t>(negatives_per_stage));
  h = core::hash_combine(
      h, static_cast<std::uint64_t>(stage_hit_target * 1e6));
  std::ostringstream out;
  out << std::hex << h;
  return out.str();
}

std::optional<CascadePair> load_cached_pair(const std::string& cache_dir,
                                            const PretrainedOptions& options) {
  const std::string tag = options.digest();
  const std::string ours_file = ours_path(cache_dir, tag);
  const std::string baseline_file = baseline_path(cache_dir, tag);
  if (!fs::exists(ours_file) || !fs::exists(baseline_file)) {
    return std::nullopt;
  }

  // Manifest gate: recorded digest and per-file CRCs must agree with what
  // is on disk before the (trusting-looking) filenames are believed.
  try {
    if (const std::optional<Manifest> manifest =
            read_manifest(manifest_path(cache_dir, tag))) {
      if (manifest->digest != tag) {
        std::fprintf(stderr,
                     "[fdet] cached cascade pair is stale: expected options "
                     "digest %s, manifest records %s — retraining\n",
                     tag.c_str(), manifest->digest.c_str());
        return std::nullopt;
      }
      const auto check_crc = [](const std::string& path,
                                const std::string& expected) {
        const std::optional<std::string> bytes = read_file_bytes(path);
        if (!bytes || hex32(core::crc32(*bytes)) != expected) {
          const std::string quarantined = core::quarantine_file(path);
          std::fprintf(
              stderr,
              "[fdet] cached cascade failed its manifest CRC (expected %s) "
              "— quarantined to %s, retraining\n",
              expected.c_str(), quarantined.c_str());
          return false;
        }
        return true;
      };
      if (!check_crc(ours_file, manifest->ours_crc) ||
          !check_crc(baseline_file, manifest->baseline_crc)) {
        return std::nullopt;
      }
    }
  } catch (const core::ArtifactError& error) {
    const std::string quarantined =
        core::quarantine_file(manifest_path(cache_dir, tag));
    std::fprintf(stderr,
                 "[fdet] corrupt cache manifest quarantined to %s: %s — "
                 "retraining\n",
                 quarantined.c_str(), error.what());
    return std::nullopt;
  }

  std::optional<haar::Cascade> ours = load_validated(ours_file);
  if (!ours) {
    return std::nullopt;
  }
  std::optional<haar::Cascade> baseline = load_validated(baseline_file);
  if (!baseline) {
    return std::nullopt;
  }
  return CascadePair{std::move(*ours), std::move(*baseline)};
}

CascadePair get_or_train_cascades(const std::string& cache_dir,
                                  const PretrainedOptions& options) {
  fs::create_directories(cache_dir);
  const std::string tag = options.digest();

  if (std::optional<CascadePair> cached =
          load_cached_pair(cache_dir, options)) {
    return std::move(*cached);
  }

  std::fprintf(stderr,
               "[fdet] training cascade pair (cache miss, key %s) — this "
               "runs once and is cached\n",
               tag.c_str());
  const facegen::TrainingSet set = facegen::build_training_set(
      options.faces, options.backgrounds, 96, options.seed);

  const auto train_one = [&](const char* name, BoostAlgorithm algorithm,
                             std::vector<int> stage_sizes) {
    TrainOptions topt;
    topt.stage_sizes = std::move(stage_sizes);
    topt.algorithm = algorithm;
    topt.feature_pool = options.feature_pool;
    topt.negatives_per_stage = options.negatives_per_stage;
    topt.stage_hit_target = options.stage_hit_target;
    topt.seed = options.seed;
    if (options.checkpoint) {
      // Stage checkpoints live next to the cache files, keyed like them,
      // so a killed training run resumes instead of restarting.
      topt.checkpoint_dir =
          (fs::path(cache_dir) / ("ckpt-" + std::string(name) + "-" + tag))
              .string();
    }
    core::Stopwatch watch;
    TrainResult result = train_cascade(set, topt, name);
    std::fprintf(stderr, "[fdet] trained %s: %d stages, %d classifiers in %.1fs\n",
                 name, result.cascade.stage_count(),
                 result.cascade.classifier_count(), watch.elapsed_seconds());
    return std::move(result.cascade);
  };

  CascadePair pair;
  pair.ours = train_one("ours-gentleboost", BoostAlgorithm::kGentleBoost,
                        haar::compact_profile());
  pair.opencv_like = train_one("opencv-like-adaboost", BoostAlgorithm::kAdaBoost,
                               haar::opencv_frontal_profile());

  const std::string ours_bytes = haar::cascade_to_string(pair.ours);
  const std::string baseline_bytes = haar::cascade_to_string(pair.opencv_like);
  core::atomic_write_file(ours_path(cache_dir, tag), ours_bytes);
  core::atomic_write_file(baseline_path(cache_dir, tag), baseline_bytes);
  write_manifest(cache_dir, tag, ours_bytes, baseline_bytes);

  // Training succeeded and the pair is durable: the stage checkpoints have
  // served their purpose.
  if (options.checkpoint) {
    std::error_code ec;
    fs::remove_all(fs::path(cache_dir) / ("ckpt-ours-gentleboost-" + tag), ec);
    fs::remove_all(
        fs::path(cache_dir) / ("ckpt-opencv-like-adaboost-" + tag), ec);
  }
  return pair;
}

}  // namespace fdet::train
