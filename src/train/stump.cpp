#include "train/stump.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/check.h"

namespace fdet::train {
namespace {

struct Histogram {
  std::int32_t min = 0;
  std::int32_t max = 0;
  double width = 1.0;
  int bins = 0;

  int bin_of(std::int32_t response) const {
    const int b = static_cast<int>((response - min) / width);
    return std::clamp(b, 0, bins - 1);
  }

  /// Threshold separating bins [0..b] from (b..]: the lower edge of b+1.
  float threshold_after(int b) const {
    return static_cast<float>(min + (b + 1) * width);
  }
};

bool make_histogram(std::span<const std::int32_t> responses, int bins,
                    Histogram& hist) {
  FDET_CHECK(!responses.empty() && bins >= 2);
  const auto [lo, hi] = std::minmax_element(responses.begin(), responses.end());
  if (*lo == *hi) {
    return false;  // constant response: no split possible
  }
  hist.min = *lo;
  hist.max = *hi;
  hist.bins = bins;
  hist.width = (static_cast<double>(*hi) - *lo + 1.0) / bins;
  return true;
}

}  // namespace

StumpFit fit_gentle_stump(std::span<const std::int32_t> responses,
                          std::span<const float> targets,
                          std::span<const double> weights, int bins) {
  FDET_CHECK(responses.size() == targets.size() &&
             responses.size() == weights.size());
  StumpFit fit;
  Histogram hist;
  if (!make_histogram(responses, bins, hist)) {
    return fit;
  }

  std::vector<double> sw(static_cast<std::size_t>(bins), 0.0);
  std::vector<double> swz(static_cast<std::size_t>(bins), 0.0);
  double total_w = 0.0;
  double total_wz = 0.0;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const int b = hist.bin_of(responses[i]);
    sw[static_cast<std::size_t>(b)] += weights[i];
    swz[static_cast<std::size_t>(b)] += weights[i] * targets[i];
    total_w += weights[i];
    total_wz += weights[i] * targets[i];
  }
  if (total_w <= 0.0) {
    return fit;
  }

  // Weighted squared error to ±1 targets: Σw z² - Σ_L(wz)²/Σ_L w - ... ;
  // z² = 1 so the constant term is total_w.
  double best = std::numeric_limits<double>::infinity();
  double left_w = 0.0;
  double left_wz = 0.0;
  for (int b = 0; b + 1 < bins; ++b) {
    left_w += sw[static_cast<std::size_t>(b)];
    left_wz += swz[static_cast<std::size_t>(b)];
    const double right_w = total_w - left_w;
    const double right_wz = total_wz - left_wz;
    if (left_w <= 0.0 || right_w <= 0.0) {
      continue;
    }
    const double loss =
        total_w - left_wz * left_wz / left_w - right_wz * right_wz / right_w;
    if (loss < best) {
      best = loss;
      fit.threshold = hist.threshold_after(b);
      fit.left_vote = static_cast<float>(left_wz / left_w);
      fit.right_vote = static_cast<float>(right_wz / right_w);
      fit.loss = loss;
      fit.valid = true;
    }
  }
  return fit;
}

StumpFit fit_discrete_stump(std::span<const std::int32_t> responses,
                            std::span<const float> targets,
                            std::span<const double> weights, int bins) {
  FDET_CHECK(responses.size() == targets.size() &&
             responses.size() == weights.size());
  StumpFit fit;
  Histogram hist;
  if (!make_histogram(responses, bins, hist)) {
    return fit;
  }

  std::vector<double> swp(static_cast<std::size_t>(bins), 0.0);  // z = +1
  std::vector<double> swn(static_cast<std::size_t>(bins), 0.0);  // z = -1
  double total_p = 0.0;
  double total_n = 0.0;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const int b = hist.bin_of(responses[i]);
    if (targets[i] > 0.0f) {
      swp[static_cast<std::size_t>(b)] += weights[i];
      total_p += weights[i];
    } else {
      swn[static_cast<std::size_t>(b)] += weights[i];
      total_n += weights[i];
    }
  }

  double best = std::numeric_limits<double>::infinity();
  double left_p = 0.0;
  double left_n = 0.0;
  for (int b = 0; b + 1 < bins; ++b) {
    left_p += swp[static_cast<std::size_t>(b)];
    left_n += swn[static_cast<std::size_t>(b)];
    // Polarity A: left = -1, right = +1 -> errors: positives on the left,
    // negatives on the right.
    const double err_a = left_p + (total_n - left_n);
    // Polarity B: the mirror.
    const double err_b = left_n + (total_p - left_p);
    const double err = std::min(err_a, err_b);
    if (err < best) {
      best = err;
      fit.threshold = hist.threshold_after(b);
      const bool pol_a = err_a <= err_b;
      fit.left_vote = pol_a ? -1.0f : 1.0f;
      fit.right_vote = pol_a ? 1.0f : -1.0f;
      fit.loss = err;
      fit.valid = true;
    }
  }
  return fit;
}

}  // namespace fdet::train
