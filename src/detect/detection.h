// Detection records and the eye-distance overlap metric of paper Sec. VI-B.
#pragma once

#include <vector>

#include "img/image.h"

namespace fdet::detect {

/// Canonical eye geometry of the 24x24 training window (the facegen model
/// means): used to predict eye locations from a detection's box, which the
/// S_eyes metric (eq. (6)) is built on.
inline constexpr double kCanonicalEyeY = 0.40;
inline constexpr double kCanonicalEyeDx = 0.17;

struct EyePair {
  double left_x = 0.0;
  double left_y = 0.0;
  double right_x = 0.0;
  double right_y = 0.0;

  double inter_eye_distance() const;
};

struct Detection {
  img::Rect box;
  float score = 0.0f;   ///< final-stage vote sum (thresholded for Fig. 9)
  int neighbors = 1;    ///< raw windows merged into this detection
  int scale_index = 0;  ///< pyramid level that produced it

  /// Eye locations predicted from the box and the canonical geometry.
  EyePair predicted_eyes() const;
};

/// Ratio of intersected to joined areas (paper eq. (5)).
double s_square(const img::Rect& a, const img::Rect& b);

/// Eye-distance score (paper eq. (6)): (d_le + d_re) / min(d1, d2).
/// Lower is better; 0 means identical eye locations.
double s_eyes(const EyePair& a, const EyePair& b);

}  // namespace fdet::detect
