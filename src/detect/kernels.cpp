#include "detect/kernels.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "img/texture.h"

namespace fdet::detect {
namespace {

/// Deterministic virtual addresses (byte offsets within the image): one
/// warp access slot only ever touches a single array, so offsets suffice
/// for coalescing analysis and keep simulated timings reproducible.
std::uint64_t addr_of_u8(const img::ImageU8& image, int x, int y) {
  return static_cast<std::uint64_t>(y) *
             static_cast<std::uint64_t>(image.width()) +
         static_cast<std::uint64_t>(x);
}

std::uint64_t addr_of_i32(int width, int x, int y) {
  return (static_cast<std::uint64_t>(y) * static_cast<std::uint64_t>(width) +
          static_cast<std::uint64_t>(x)) *
         sizeof(std::int32_t);
}

/// Host-side pre-decoded classifier (what the GPU's registers would hold
/// after the bitwise unpack); the per-lane cost accounting still charges
/// the constant fetch + decode work per the kernel options.
struct DecodedRecord {
  struct R {
    int x, y, w, h, weight;
  };
  std::array<R, 4> rects;
  int rect_count = 0;
  float threshold = 0.0f;
  float left_vote = 0.0f;
  float right_vote = 0.0f;
  std::uint64_t const_addr = 0;  // for the global-memory ablation
};

struct DecodedCascade {
  struct Stage {
    int first = 0;
    int count = 0;
    float threshold = 0.0f;
  };
  std::vector<Stage> stages;
  std::vector<DecodedRecord> records;
};

DecodedCascade decode_bank(const haar::ConstantBank& bank) {
  DecodedCascade out;
  out.records.reserve(bank.classifiers().size());
  for (const auto& ec : bank.classifiers()) {
    DecodedRecord rec;
    rec.rect_count = ec.rect_count;
    for (int i = 0; i < ec.rect_count; ++i) {
      const haar::RectTerm r =
          haar::decode_rect(ec.rects[static_cast<std::size_t>(i)]);
      rec.rects[static_cast<std::size_t>(i)] = {r.x, r.y, r.w, r.h, r.weight};
    }
    rec.threshold =
        static_cast<float>(ec.threshold_q) * haar::kThresholdScale;
    rec.left_vote = static_cast<float>(ec.left_q) / haar::kVoteScale;
    rec.right_vote = static_cast<float>(ec.right_q) / haar::kVoteScale;
    rec.const_addr =
        static_cast<std::uint64_t>(out.records.size()) * 64;  // record slot
    out.records.push_back(rec);
  }
  for (const auto& es : bank.stages()) {
    out.stages.push_back({static_cast<int>(es.first),
                          static_cast<int>(es.count),
                          static_cast<float>(es.threshold_q) /
                              haar::kVoteScale});
  }
  return out;
}

}  // namespace

vgpu::LaunchCost scale_kernel(const vgpu::DeviceSpec& spec,
                              const img::ImageU8& source, img::ImageU8& dest,
                              const std::string& name) {
  const img::BilinearSampler<std::uint8_t> sampler(source);
  const float sx = static_cast<float>(source.width()) / dest.width();
  const float sy = static_cast<float>(source.height()) / dest.height();
  const int w = dest.width();
  const int h = dest.height();

  vgpu::KernelConfig config{
      .name = name,
      .grid = {(w + 15) / 16, (h + 15) / 16, 1},
      .block = {16, 16, 1},
      .regs_per_thread = 16,
  };
  return execute_kernel(
      spec, config,
      [&, sx, sy, w, h](const vgpu::ThreadCoord& t, vgpu::LaneCtx& ctx,
                        vgpu::SharedMem&) {
        const int x = t.block_id.x * 16 + t.thread.x;
        const int y = t.block_id.y * 16 + t.thread.y;
        ctx.alu(4);
        if (x >= w || y >= h) {
          return;
        }
        const float v = sampler.sample((static_cast<float>(x) + 0.5f) * sx,
                                       (static_cast<float>(y) + 0.5f) * sy);
        ctx.texture_fetch();
        ctx.fma(2);
        dest(x, y) = static_cast<std::uint8_t>(std::clamp(v, 0.0f, 255.0f));
        ctx.global_store(addr_of_u8(dest, x, y), 1);
      });
}

vgpu::LaunchCost filter_kernel(const vgpu::DeviceSpec& spec,
                               const img::ImageU8& source, img::ImageU8& dest,
                               bool horizontal, const std::string& name) {
  FDET_CHECK(source.width() == dest.width() &&
             source.height() == dest.height());
  const int w = source.width();
  const int h = source.height();

  vgpu::KernelConfig config{
      .name = name,
      .grid = {(w + 15) / 16, (h + 15) / 16, 1},
      .block = {16, 16, 1},
      .regs_per_thread = 12,
  };
  return execute_kernel(
      spec, config,
      [&, horizontal, w, h](const vgpu::ThreadCoord& t, vgpu::LaneCtx& ctx,
                            vgpu::SharedMem&) {
        const int x = t.block_id.x * 16 + t.thread.x;
        const int y = t.block_id.y * 16 + t.thread.y;
        ctx.alu(4);
        if (x >= w || y >= h) {
          return;
        }
        int xm = x;
        int xp = x;
        int ym = y;
        int yp = y;
        if (horizontal) {
          xm = std::max(0, x - 1);
          xp = std::min(w - 1, x + 1);
        } else {
          ym = std::max(0, y - 1);
          yp = std::min(h - 1, y + 1);
        }
        const int acc = source(xm, ym) + 2 * source(x, y) + source(xp, yp);
        ctx.global_load(addr_of_u8(source, xm, ym), 1);
        ctx.global_load(addr_of_u8(source, x, y), 1);
        ctx.global_load(addr_of_u8(source, xp, yp), 1);
        ctx.alu(4);
        dest(x, y) = static_cast<std::uint8_t>((acc + 2) / 4);
        ctx.global_store(addr_of_u8(dest, x, y), 1);
      });
}

haar::CascadeResult evaluate_bank(const haar::ConstantBank& bank,
                                  const integral::IntegralImage& ii, int wx,
                                  int wy) {
  // Reference implementation of the kernel's math (quantized thresholds),
  // against the plain integral image.
  haar::CascadeResult result;
  const DecodedCascade dc = decode_bank(bank);
  for (std::size_t s = 0; s < dc.stages.size(); ++s) {
    const auto& stage = dc.stages[s];
    float score = 0.0f;
    for (int c = 0; c < stage.count; ++c) {
      const DecodedRecord& rec =
          dc.records[static_cast<std::size_t>(stage.first + c)];
      std::int64_t response = 0;
      for (int r = 0; r < rec.rect_count; ++r) {
        const auto& rect = rec.rects[static_cast<std::size_t>(r)];
        response += static_cast<std::int64_t>(rect.weight) *
                    ii.sum(wx + rect.x, wy + rect.y, wx + rect.x + rect.w,
                           wy + rect.y + rect.h);
      }
      score += (static_cast<float>(response) < rec.threshold)
                   ? rec.left_vote
                   : rec.right_vote;
    }
    result.score = score;
    if (score < stage.threshold) {
      return result;
    }
    result.depth = static_cast<int>(s) + 1;
  }
  result.accepted = (result.depth == static_cast<int>(dc.stages.size()));
  return result;
}

vgpu::LaunchCost cascade_kernel(const vgpu::DeviceSpec& spec,
                                const haar::ConstantBank& bank,
                                const integral::IntegralImage& ii,
                                CascadeKernelOutput& out,
                                const CascadeKernelOptions& options,
                                const std::string& name) {
  const int n = options.block_dim;
  FDET_CHECK(n >= haar::kWindowSize)
      << "block dim " << n << " must cover the detection window";
  FDET_CHECK(n * n <= spec.max_threads_per_block);
  const int w = ii.width();
  const int h = ii.height();
  FDET_CHECK(w >= haar::kWindowSize && h >= haar::kWindowSize);

  out.depth = img::ImageI32(w, h, 0);
  out.score = img::ImageF32(w, h, 0.0f);

  const DecodedCascade dc = decode_bank(bank);
  const int stage_count = static_cast<int>(dc.stages.size());
  const img::ImageI32& table = ii.table();

  const int tile_dim = 2 * n;
  const std::size_t tile_elems =
      static_cast<std::size_t>(tile_dim) * static_cast<std::size_t>(tile_dim);

  vgpu::KernelConfig config{
      .name = name,
      .grid = {(w + n - 1) / n, (h + n - 1) / n, 1},
      .block = {n, n, 1},
      .shared_bytes = static_cast<int>(tile_elems * sizeof(std::int32_t)),
      .regs_per_thread = 32,
      .track_branches = true,
      // The re-encoded cascade must fit the device's constant memory
      // (Sec. III-B); execute_kernel enforces this at launch.
      .constant_bytes = options.constant_memory
                            ? static_cast<int>(bank.bytes_compressed())
                            : 0,
  };

  // Phase 1 — eqs. (1)-(4): every thread stages 4 integral pixels; the
  // tile origin is (block*n - 1) so inclusive rectangle sums read the
  // implicit zero row/column without branching.
  const auto load_phase = [&, n, tile_dim, w, h](const vgpu::ThreadCoord& t,
                                                 vgpu::LaneCtx& ctx,
                                                 vgpu::SharedMem& shared) {
    auto tile = shared.array<std::int32_t>(tile_elems);
    const int gx0 = t.block_id.x * n - 1;
    const int gy0 = t.block_id.y * n - 1;
    for (int dy = 0; dy < 2; ++dy) {
      for (int dx = 0; dx < 2; ++dx) {
        const int lx = t.thread.x + dx * n;
        const int ly = t.thread.y + dy * n;
        const int gx = gx0 + lx;
        const int gy = gy0 + ly;
        ctx.alu(4);
        std::int32_t value = 0;
        if (gx >= 0 && gx < w && gy >= 0 && gy < h) {
          value = table(gx, gy);
          ctx.global_load(addr_of_i32(w, gx, gy), 4);
        }
        auto& cell = tile[static_cast<std::size_t>(ly) * tile_dim + lx];
        cell = value;
        ctx.shared_store_at(shared, cell);
      }
    }
  };

  // Phase 2 — cascade walk for this thread's window.
  const auto eval_phase = [&, n, tile_dim, w, h, stage_count](
                              const vgpu::ThreadCoord& t, vgpu::LaneCtx& ctx,
                              vgpu::SharedMem& shared) {
    auto tile = shared.array<std::int32_t>(tile_elems);
    const int x = t.thread.x;
    const int y = t.thread.y;
    const int gx = t.block_id.x * n + x;
    const int gy = t.block_id.y * n + y;
    if (gx >= w || gy >= h) {
      return;
    }
    const bool valid =
        gx + haar::kWindowSize <= w && gy + haar::kWindowSize <= h;
    ctx.branch(valid);
    if (!valid) {
      return;  // depth stays 0; border anchors cannot host a window
    }

    // Every tile read is an attributed shared access (one per corner, the
    // same count the previous shared_access(4) bundle charged), so checked
    // execution can verify the staging protocol of eqs. (1)-(4).
    const auto tile_at = [&tile, &ctx, &shared, tile_dim](int lx, int ly) {
      const auto& cell = tile[static_cast<std::size_t>(ly) * tile_dim + lx];
      ctx.shared_load_at(shared, cell);
      return cell;
    };

    int depth = 0;
    float last_score = 0.0f;
    for (int s = 0; s < stage_count; ++s) {
      const auto& stage = dc.stages[static_cast<std::size_t>(s)];
      float score = 0.0f;
      for (int c = 0; c < stage.count; ++c) {
        const DecodedRecord& rec =
            dc.records[static_cast<std::size_t>(stage.first + c)];
        // Fetch the re-encoded record (broadcast: all active lanes of the
        // warp walk the same classifier).
        const int words = options.compressed_records
                              ? rec.rect_count + 2
                              : rec.rect_count * 5 + 3;
        if (options.constant_memory) {
          ctx.constant_load(words);
        } else {
          for (int k = 0; k < words; ++k) {
            ctx.global_load(rec.const_addr + static_cast<std::uint64_t>(k) * 4,
                            4);
          }
        }
        if (options.compressed_records) {
          ctx.alu(3 * rec.rect_count);  // bitwise unpack (masks + shifts)
        }

        std::int64_t response = 0;
        for (int r = 0; r < rec.rect_count; ++r) {
          const auto& rect = rec.rects[static_cast<std::size_t>(r)];
          const int lx = x + rect.x;
          const int ly = y + rect.y;
          response += static_cast<std::int64_t>(rect.weight) *
                      (tile_at(lx + rect.w, ly + rect.h) -
                       tile_at(lx, ly + rect.h) - tile_at(lx + rect.w, ly) +
                       tile_at(lx, ly));
          ctx.alu(6);
        }
        score += (static_cast<float>(response) < rec.threshold)
                     ? rec.left_vote
                     : rec.right_vote;
        ctx.alu(2);
        // Classifier-loop back-edge: uniform across the active lanes of
        // the warp (they all walk the same stage's classifier list).
        ctx.branch_uniform();
      }
      last_score = score;
      const bool pass = score >= stage.threshold;
      ctx.branch(pass);
      if (!pass) {
        break;
      }
      depth = s + 1;
    }
    out.depth(gx, gy) = depth;
    out.score(gx, gy) = last_score;
    ctx.global_store(addr_of_i32(w, gx, gy), 4);
    ctx.global_store(addr_of_i32(w, gx, gy), 4);
  };

  return execute_kernel(spec, config, load_phase, eval_phase);
}

vgpu::LaunchCost display_kernel(const vgpu::DeviceSpec& spec,
                                const img::ImageI32& depth, int full_depth,
                                double scale_factor, img::ImageU8& overlay,
                                const std::string& name) {
  const int w = depth.width();
  const int h = depth.height();
  vgpu::KernelConfig config{
      .name = name,
      .grid = {(w + 15) / 16, (h + 15) / 16, 1},
      .block = {16, 16, 1},
      .regs_per_thread = 16,
  };
  return execute_kernel(
      spec, config,
      [&, w, h, full_depth, scale_factor](const vgpu::ThreadCoord& t,
                                          vgpu::LaneCtx& ctx,
                                          vgpu::SharedMem&) {
        const int x = t.block_id.x * 16 + t.thread.x;
        const int y = t.block_id.y * 16 + t.thread.y;
        if (x >= w || y >= h) {
          return;
        }
        const std::int32_t d = depth(x, y);
        ctx.global_load(addr_of_i32(w, x, y), 4);
        const bool face = (d == full_depth);
        ctx.branch(face);
        if (!face) {
          return;
        }
        // Outline the window, scaled back to frame coordinates.
        const int fx = static_cast<int>(std::lround(x * scale_factor));
        const int fy = static_cast<int>(std::lround(y * scale_factor));
        const int side = static_cast<int>(
            std::lround(haar::kWindowSize * scale_factor));
        ctx.alu(6);
        for (int i = 0; i < side; ++i) {
          const int right = std::min(overlay.width() - 1, fx + side - 1);
          const int bottom = std::min(overlay.height() - 1, fy + side - 1);
          const int cx = std::min(overlay.width() - 1, fx + i);
          const int cy = std::min(overlay.height() - 1, fy + i);
          overlay(cx, std::min(overlay.height() - 1, fy)) = 255;
          overlay(cx, bottom) = 255;
          overlay(std::min(overlay.width() - 1, fx), cy) = 255;
          overlay(right, cy) = 255;
          ctx.global_store(addr_of_u8(overlay, cx, fy), 1);
          ctx.global_store(addr_of_u8(overlay, cx, bottom), 1);
        }
      });
}

}  // namespace fdet::detect
