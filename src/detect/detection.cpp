#include "detect/detection.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace fdet::detect {

double EyePair::inter_eye_distance() const {
  return std::hypot(right_x - left_x, right_y - left_y);
}

EyePair Detection::predicted_eyes() const {
  EyePair eyes;
  eyes.left_x = box.x + (0.5 - kCanonicalEyeDx) * box.w;
  eyes.right_x = box.x + (0.5 + kCanonicalEyeDx) * box.w;
  eyes.left_y = eyes.right_y = box.y + kCanonicalEyeY * box.h;
  return eyes;
}

double s_square(const img::Rect& a, const img::Rect& b) {
  const std::int64_t joined = img::union_area(a, b);
  if (joined == 0) {
    return 0.0;
  }
  return static_cast<double>(img::intersection_area(a, b)) /
         static_cast<double>(joined);
}

double s_eyes(const EyePair& a, const EyePair& b) {
  const double dle = std::hypot(a.left_x - b.left_x, a.left_y - b.left_y);
  const double dre = std::hypot(a.right_x - b.right_x, a.right_y - b.right_y);
  const double denom = std::min(a.inter_eye_distance(), b.inter_eye_distance());
  FDET_CHECK(denom > 0.0) << "degenerate eye pair";
  return (dle + dre) / denom;
}

}  // namespace fdet::detect
