#include "detect/soft_cascade.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/check.h"

namespace fdet::detect {

SoftCascade::Result SoftCascade::evaluate(const integral::IntegralImage& ii,
                                          int wx, int wy) const {
  Result result;
  float sum = 0.0f;
  for (const Entry& entry : entries) {
    sum += entry.classifier.vote(entry.classifier.feature.response(ii, wx, wy));
    ++result.depth;
    if (sum < entry.rejection_threshold) {
      result.score = sum;
      return result;
    }
  }
  result.score = sum;
  result.accepted = true;
  return result;
}

SoftCascade build_soft_cascade(
    const haar::Cascade& cascade,
    const std::vector<const integral::IntegralImage*>& calibration_faces,
    const SoftCascadeOptions& options) {
  FDET_CHECK(!cascade.empty()) << "cannot soften an empty cascade";
  FDET_CHECK(!calibration_faces.empty()) << "need calibration faces";
  FDET_CHECK(options.hit_target > 0.0 && options.hit_target <= 1.0);

  SoftCascade soft;
  soft.name = cascade.name() + "-soft";
  for (const haar::Stage& stage : cascade.stages()) {
    for (const haar::WeakClassifier& wc : stage.classifiers) {
      soft.entries.push_back({wc, -std::numeric_limits<float>::infinity()});
    }
  }
  const std::size_t total = soft.entries.size();

  // Running-sum traces of every calibration face through the flattened
  // sequence: traces[i][t] = partial sum of face i after classifier t.
  const std::size_t faces = calibration_faces.size();
  std::vector<std::vector<float>> traces(faces);
  for (std::size_t i = 0; i < faces; ++i) {
    FDET_CHECK(calibration_faces[i] != nullptr);
    const integral::IntegralImage& ii = *calibration_faces[i];
    FDET_CHECK(ii.width() >= haar::kWindowSize &&
               ii.height() >= haar::kWindowSize);
    traces[i].resize(total);
    float sum = 0.0f;
    for (std::size_t t = 0; t < total; ++t) {
      const haar::WeakClassifier& wc = soft.entries[t].classifier;
      sum += wc.vote(wc.feature.response(ii, 0, 0));
      traces[i][t] = sum;
    }
  }

  // Keep the quantile of faces whose *whole trace* stays highest: rank
  // faces by their final score and protect the top hit_target fraction.
  // (Bourdev-Brandt calibrate against a target detection-rate vector; the
  // constant vector is its simplest instance.)
  std::vector<std::size_t> order(faces);
  for (std::size_t i = 0; i < faces; ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return traces[a].back() > traces[b].back();
  });
  const std::size_t keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::floor(options.hit_target * static_cast<double>(faces))));

  for (std::size_t t = 0; t < total; ++t) {
    float min_sum = std::numeric_limits<float>::infinity();
    for (std::size_t k = 0; k < keep; ++k) {
      min_sum = std::min(min_sum, traces[order[k]][t]);
    }
    soft.entries[t].rejection_threshold = min_sum - options.margin;
  }

  // Never accept windows the staged cascade's final gate would reject.
  const float final_gate = cascade.stages().back().threshold;
  auto& last = soft.entries.back().rejection_threshold;
  last = std::max(last, final_gate);
  return soft;
}

namespace {

template <typename Evaluator>
double average_depth_impl(const integral::IntegralImage& ii, int step,
                          Evaluator&& evaluate) {
  FDET_CHECK(step >= 1);
  std::int64_t depth_sum = 0;
  std::int64_t windows = 0;
  for (int y = 0; y + haar::kWindowSize <= ii.height(); y += step) {
    for (int x = 0; x + haar::kWindowSize <= ii.width(); x += step) {
      depth_sum += evaluate(x, y);
      ++windows;
    }
  }
  FDET_CHECK(windows > 0) << "image smaller than the detection window";
  return static_cast<double>(depth_sum) / static_cast<double>(windows);
}

}  // namespace

double average_depth(const SoftCascade& soft,
                     const integral::IntegralImage& ii, int step) {
  return average_depth_impl(ii, step, [&](int x, int y) {
    return soft.evaluate(ii, x, y).depth;
  });
}

double average_depth(const haar::Cascade& staged,
                     const integral::IntegralImage& ii, int step) {
  return average_depth_impl(ii, step, [&](int x, int y) {
    // Weak classifiers evaluated = all classifiers of every stage entered.
    const haar::CascadeResult r = staged.evaluate(ii, x, y);
    const int stages_entered = std::min(r.depth + 1, staged.stage_count());
    std::int64_t evaluated = 0;
    for (int s = 0; s < stages_entered; ++s) {
      evaluated += static_cast<std::int64_t>(
          staged.stages()[static_cast<std::size_t>(s)].classifiers.size());
    }
    return evaluated;
  });
}

}  // namespace fdet::detect
