// The vGPU kernels of the detection pipeline (paper Fig. 1):
// scaling (texture bilinear), anti-alias filtering (separable binomial),
// cascade evaluation (the paper's core kernel, Sec. III-C) and display.
// Integral-image kernels live in fdet::integral.
#pragma once

#include "haar/encoding.h"
#include "integral/integral.h"
#include "vgpu/kernel.h"

namespace fdet::detect {

/// Bilinear downscale from the full-resolution luma (texture fetches),
/// one thread per destination pixel. 16x16 blocks.
vgpu::LaunchCost scale_kernel(const vgpu::DeviceSpec& spec,
                              const img::ImageU8& source, img::ImageU8& dest,
                              const std::string& name);

/// 3-tap binomial [1 2 1]/4 along one axis (clamped edges). Two of these
/// back-to-back form the paper's filtering stage at level resolution.
vgpu::LaunchCost filter_kernel(const vgpu::DeviceSpec& spec,
                               const img::ImageU8& source, img::ImageU8& dest,
                               bool horizontal, const std::string& name);

struct CascadeKernelOptions {
  /// Block side n (= m): the paper's n x m chunk. Must be >= the window
  /// (24) so the 2n x 2m shared tile of eqs. (1)-(4) covers every window.
  int block_dim = 32;
  /// false = fetch feature records from global memory (ablation).
  bool constant_memory = true;
  /// false = model the uncompressed record layout (ablation: more fetches).
  bool compressed_records = true;
};

/// Output of the cascade kernel for one scale: per-anchor deepest stage
/// reached (the paper's display-stage input) and the final-stage vote sum
/// (used as the detection score for the Fig. 9 curves).
struct CascadeKernelOutput {
  img::ImageI32 depth;
  img::ImageF32 score;
};

/// The cascade evaluation kernel. Phase 1 stages the shared tile exactly
/// per eqs. (1)-(4) — each thread brings 4 integral pixels, 3 of them for
/// neighbouring blocks' windows — with the tile origin shifted by (-1,-1)
/// so inclusive rectangle sums need no boundary branch. Phase 2 walks the
/// boosted cascade for this thread's window, fetching re-encoded feature
/// records from constant memory, and stores the deepest stage reached.
vgpu::LaunchCost cascade_kernel(const vgpu::DeviceSpec& spec,
                                const haar::ConstantBank& bank,
                                const integral::IntegralImage& ii,
                                CascadeKernelOutput& out,
                                const CascadeKernelOptions& options,
                                const std::string& name);

/// Host-side reference of exactly what the kernel computes (quantized
/// cascade): deepest stage + final score for the window at (wx, wy).
haar::CascadeResult evaluate_bank(const haar::ConstantBank& bank,
                                  const integral::IntegralImage& ii, int wx,
                                  int wy);

/// Display kernel: scans a scale's depth map and outlines accepted windows
/// (scaled back to frame coordinates) into the overlay image.
vgpu::LaunchCost display_kernel(const vgpu::DeviceSpec& spec,
                                const img::ImageI32& depth, int full_depth,
                                double scale_factor, img::ImageU8& overlay,
                                const std::string& name);

}  // namespace fdet::detect
