// The full GPU face-detection pipeline of paper Fig. 1:
//
//   (decoded luma) -> scaling -> filtering -> integral image
//   (prefix sum + transpose, twice) -> cascade evaluation -> [display]
//
// Every pyramid level runs its kernels in its own CUDA stream; the
// scheduler then executes the issue sequence either serially (the paper's
// "Serial Kernel Execution" baseline) or with concurrent kernel execution,
// which overlaps the small-scale kernels that cannot fill the device on
// their own — the paper's headline optimization.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "detect/grouping.h"
#include "detect/kernels.h"
#include "haar/cascade.h"
#include "img/pyramid.h"
#include "ingest/frame_source.h"
#include "obs/metrics.h"
#include "vgpu/scheduler.h"

namespace fdet::detect {

struct PipelineOptions {
  double pyramid_step = 1.25;
  vgpu::ExecMode mode = vgpu::ExecMode::kConcurrent;
  CascadeKernelOptions kernel;
  double group_eyes_threshold = 0.5;
  /// Grouped detections with fewer merged raw windows than this are
  /// dropped (OpenCV's classic min-neighbors filter; 1 keeps everything).
  int min_neighbors = 1;
  bool run_display = false;  ///< draw accepted windows into FrameResult::display
  /// Load-shedding hook for the serving layer's degradation ladder
  /// (serve/policy.h): skip the N finest pyramid levels — the largest,
  /// most expensive scales, which detect the smallest faces. Clamped so
  /// at least one level always runs. 0 = full pyramid.
  int skip_finest_levels = 0;
};

/// Per-scale statistics for the Fig. 7 rejection study.
struct ScaleStats {
  int scale_index = 0;
  double factor = 1.0;
  /// depth_histogram[d] = windows whose deepest reached stage is d
  /// (d = stage_count means accepted). Border anchors are excluded.
  std::vector<std::int64_t> depth_histogram;
};

struct FrameResult {
  std::vector<Detection> raw_detections;  ///< frame coordinates
  std::vector<Detection> detections;      ///< grouped
  vgpu::Timeline timeline;
  double detect_ms = 0.0;  ///< virtual makespan of all kernels
  /// Causal trace id of the frame this result belongs to — stamped from
  /// the ambient obs::TraceContext at finalize time (0 when the caller
  /// installed none). Lets offline consumers join a FrameResult back to
  /// serving spans and flight-recorder dumps.
  std::uint64_t trace_id = 0;
  std::vector<ScaleStats> scales;
  vgpu::PerfCounters cascade_counters;  ///< cascade-evaluation kernels only
  img::ImageU8 display;                 ///< only when run_display

  /// Σ busy SM-seconds of launches whose name starts with `prefix`,
  /// divided by the total — e.g. share("scan") + share("transpose") is the
  /// paper's "integral images are ~20 % of the computation".
  double busy_share(const std::string& prefix) const;

  /// Publishes this frame into `registry` under `labels`: the timeline's
  /// profiler metrics (obs::publish_timeline), cascade-kernel branch/SIMD
  /// efficiency, detection counts, per-stage busy shares and the Fig. 7
  /// per-scale rejection-depth histograms (`detect.rejection_depth`,
  /// labeled scale=N). Counters accumulate across frames; gauges keep the
  /// last frame's value.
  void publish_metrics(obs::Registry& registry,
                       const obs::Labels& labels = {}) const;
};

class Pipeline {
 public:
  /// The cascade is re-encoded into the constant bank once; it must fit
  /// the device's constant memory (throws otherwise, as on real hardware).
  Pipeline(const vgpu::DeviceSpec& spec, haar::Cascade cascade,
           PipelineOptions options);

  /// Runs the whole pipeline on one decoded luma plane. The frame must be
  /// at least the 24x24 detection window in both dimensions (throws
  /// core::CheckError with the offending geometry otherwise — undersized
  /// or empty frames cannot host a single detection window).
  FrameResult process(const img::ImageU8& luma) const;

  /// Decodes frame `index` from the ingest source and runs the pipeline
  /// on its luma plane. Ingest errors (malformed bytes, bad index)
  /// propagate as ingest::IngestError — batch callers without a serving
  /// layer get the same typed taxonomy the service quarantines on.
  FrameResult process(const ingest::FrameSource& source, int index) const;

  /// Runs the functional pipeline once and schedules it under both
  /// execution modes: {concurrent, serial}. Detections and statistics are
  /// identical in both results; only the timelines differ. This is the
  /// cheap way to produce the paper's serial-vs-concurrent comparisons.
  std::pair<FrameResult, FrameResult> process_dual(
      const img::ImageU8& luma) const;

  const haar::Cascade& cascade() const { return cascade_; }
  const PipelineOptions& options() const { return options_; }
  const vgpu::DeviceSpec& device() const { return spec_; }

 private:
  /// Mode-independent output of the functional pass.
  struct Built {
    std::vector<vgpu::Launch> launches;
    FrameResult base;  ///< everything except timeline/detect_ms
  };
  Built build(const img::ImageU8& luma) const;
  FrameResult finalize(const Built& built, vgpu::ExecMode mode) const;

  vgpu::DeviceSpec spec_;
  haar::Cascade cascade_;
  haar::ConstantBank bank_;
  PipelineOptions options_;
};

}  // namespace fdet::detect
