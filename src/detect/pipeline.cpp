#include "detect/pipeline.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "integral/gpu.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace fdet::detect {

double FrameResult::busy_share(const std::string& prefix) const {
  double matched = 0.0;
  double total = 0.0;
  for (const auto& record : timeline.records) {
    total += record.busy_s;
    if (record.name.rfind(prefix, 0) == 0) {
      matched += record.busy_s;
    }
  }
  return total == 0.0 ? 0.0 : matched / total;
}

void FrameResult::publish_metrics(obs::Registry& registry,
                                  const obs::Labels& labels) const {
  obs::publish_timeline(registry, timeline, labels);

  registry.counter("detect.frames", labels).increment();
  registry.counter("detect.raw_detections", labels)
      .add(static_cast<double>(raw_detections.size()));
  registry.counter("detect.detections", labels)
      .add(static_cast<double>(detections.size()));
  registry
      .histogram("detect.frame_latency_ms",
                 {1, 2, 5, 10, 20, 30, 40, 50, 75, 100, 150, 200}, labels)
      .observe(detect_ms);

  // Cascade-evaluation profiler ratios: the numbers the paper quotes from
  // the CUDA compute profiler (98.9 % branch efficiency).
  registry.gauge("detect.cascade_branch_efficiency", labels)
      .set(cascade_counters.branch_efficiency());
  registry.gauge("detect.cascade_simd_efficiency", labels)
      .set(cascade_counters.simd_efficiency());

  // Where the SM-seconds go, by pipeline stage ("integral images are
  // ~20 % of the computation").
  for (const char* stage :
       {"scale", "filter", "scan", "transpose", "cascade"}) {
    obs::Labels stage_labels = labels;
    stage_labels.emplace_back("stage", stage);
    registry.gauge("detect.busy_share", stage_labels).set(busy_share(stage));
  }

  // Fig. 7: how deep windows travel into the cascade before rejection,
  // per pyramid scale (bucket d = deepest stage reached; d = stage count
  // means accepted).
  for (const ScaleStats& stats : scales) {
    if (stats.depth_histogram.empty()) {
      continue;
    }
    obs::Labels scale_labels = labels;
    scale_labels.emplace_back("scale", std::to_string(stats.scale_index));
    auto& histogram = registry.histogram(
        "detect.rejection_depth",
        obs::linear_buckets(0.0, 1.0,
                            static_cast<int>(stats.depth_histogram.size())),
        scale_labels);
    for (std::size_t depth = 0; depth < stats.depth_histogram.size();
         ++depth) {
      const auto count = stats.depth_histogram[depth];
      if (count > 0) {
        histogram.observe(static_cast<double>(depth),
                          static_cast<double>(count));
      }
    }
  }
}

Pipeline::Pipeline(const vgpu::DeviceSpec& spec, haar::Cascade cascade,
                   PipelineOptions options)
    : spec_(spec), cascade_(std::move(cascade)),
      bank_(haar::ConstantBank::build(cascade_)), options_(options) {
  FDET_CHECK(!cascade_.empty()) << "pipeline needs a non-empty cascade";
  if (options_.kernel.constant_memory) {
    FDET_CHECK(bank_.fits_constant_memory(
        static_cast<std::size_t>(spec_.constant_mem_bytes)))
        << "cascade does not fit the device constant memory ("
        << bank_.bytes_compressed() << " bytes)";
  }
}

Pipeline::Built Pipeline::build(const img::ImageU8& luma) const {
  const obs::ScopedSpan build_span("pipeline.build");
  FDET_CHECK(!luma.empty()) << "detect::Pipeline: empty input frame "
                            << "(expected a decoded luma plane)";
  FDET_CHECK(luma.width() >= haar::kWindowSize &&
             luma.height() >= haar::kWindowSize)
      << "detect::Pipeline: frame " << luma.width() << "x" << luma.height()
      << " is smaller than the " << haar::kWindowSize << "x"
      << haar::kWindowSize << " detection window";
  const img::PyramidPlan plan = img::plan_pyramid(
      luma.width(), luma.height(), options_.pyramid_step, haar::kWindowSize);
  // Degradation: shed the finest (most expensive) levels first, but never
  // all of them — the coarsest level always runs.
  const int skip = std::clamp(options_.skip_finest_levels, 0,
                              static_cast<int>(plan.levels.size()) - 1);
  const int stage_count = cascade_.stage_count();

  Built built;
  FrameResult& result = built.base;
  std::vector<vgpu::Launch>& launches = built.launches;
  std::vector<CascadeKernelOutput> outputs(plan.levels.size());

  if (options_.run_display) {
    result.display = luma;
  }

  for (const img::PyramidLevel& level : plan.levels) {
    if (level.index < skip) {
      continue;
    }
    const int stream = level.index;
    const std::string suffix = "_s" + std::to_string(level.index);

    // Scaling + filtering (level 0 is the native frame: neither applies).
    img::ImageU8 level_image;
    if (level.index == 0) {
      level_image = luma;
    } else {
      const obs::ScopedSpan span("pipeline.pyramid" + suffix);
      const obs::ProfileStageScope stage("scale");
      img::ImageU8 scaled(level.width, level.height);
      launches.push_back(
          {scale_kernel(spec_, luma, scaled, "scale" + suffix), stream});
      img::ImageU8 blurred_h(level.width, level.height);
      launches.push_back(
          {filter_kernel(spec_, scaled, blurred_h, /*horizontal=*/true,
                         "filter_h" + suffix),
           stream});
      level_image = img::ImageU8(level.width, level.height);
      launches.push_back(
          {filter_kernel(spec_, blurred_h, level_image, /*horizontal=*/false,
                         "filter_v" + suffix),
           stream});
    }

    // Integral image: scan, transpose, scan, transpose.
    integral::GpuIntegralResult ii = [&] {
      const obs::ScopedSpan span("pipeline.integral" + suffix);
      const obs::ProfileStageScope stage("integral");
      return integral::integral_gpu(spec_, level_image);
    }();
    const char* names[4] = {"scan", "transpose", "scan2", "transpose2"};
    for (std::size_t k = 0; k < ii.launches.size(); ++k) {
      ii.launches[k].config.name = std::string(names[k]) + suffix;
      launches.push_back({std::move(ii.launches[k]), stream});
    }

    // Cascade evaluation.
    CascadeKernelOutput& out = outputs[static_cast<std::size_t>(level.index)];
    {
      const obs::ScopedSpan span("pipeline.cascade" + suffix);
      const obs::ProfileStageScope stage("cascade");
      launches.push_back({cascade_kernel(spec_, bank_, ii.integral, out,
                                         options_.kernel, "cascade" + suffix),
                          stream});
    }
    result.cascade_counters += launches.back().cost.counters;

    if (options_.run_display) {
      const obs::ProfileStageScope stage("display");
      launches.push_back({display_kernel(spec_, out.depth, stage_count,
                                         level.factor, result.display,
                                         "display" + suffix),
                          stream});
    }

    // Collect statistics and raw detections from the depth map.
    ScaleStats stats;
    stats.scale_index = level.index;
    stats.factor = level.factor;
    stats.depth_histogram.assign(static_cast<std::size_t>(stage_count) + 1, 0);
    const auto& depth = out.depth;
    for (int y = 0; y + haar::kWindowSize <= level.height; ++y) {
      for (int x = 0; x + haar::kWindowSize <= level.width; ++x) {
        const std::int32_t d = depth(x, y);
        ++stats.depth_histogram[static_cast<std::size_t>(d)];
        if (d == stage_count) {
          Detection det;
          det.box = img::Rect{
              static_cast<int>(std::lround(x * level.factor)),
              static_cast<int>(std::lround(y * level.factor)),
              static_cast<int>(std::lround(haar::kWindowSize * level.factor)),
              static_cast<int>(std::lround(haar::kWindowSize * level.factor))};
          det.score = out.score(x, y);
          det.scale_index = level.index;
          result.raw_detections.push_back(det);
        }
      }
    }
    result.scales.push_back(std::move(stats));
  }

  const obs::ScopedSpan group_span("pipeline.grouping");
  const obs::ProfileStageScope group_stage("grouping");
  result.detections =
      group_detections(result.raw_detections, options_.group_eyes_threshold);
  if (options_.min_neighbors > 1) {
    std::erase_if(result.detections, [this](const Detection& d) {
      return d.neighbors < options_.min_neighbors;
    });
  }
  return built;
}

FrameResult Pipeline::finalize(const Built& built, vgpu::ExecMode mode) const {
  const obs::ScopedSpan span(mode == vgpu::ExecMode::kSerial
                                 ? "pipeline.schedule.serial"
                                 : "pipeline.schedule.concurrent");
  FrameResult result = built.base;
  result.timeline = vgpu::schedule(spec_, built.launches, mode);
  result.detect_ms = result.timeline.makespan_s * 1e3;
  if (const obs::TraceContext* context = obs::current_trace_context()) {
    result.trace_id = context->trace_id;
  }
  return result;
}

FrameResult Pipeline::process(const img::ImageU8& luma) const {
  return finalize(build(luma), options_.mode);
}

FrameResult Pipeline::process(const ingest::FrameSource& source,
                              int index) const {
  return process(source.decode(index).frame.luma());
}

std::pair<FrameResult, FrameResult> Pipeline::process_dual(
    const img::ImageU8& luma) const {
  const Built built = build(luma);
  return {finalize(built, vgpu::ExecMode::kConcurrent),
          finalize(built, vgpu::ExecMode::kSerial)};
}

}  // namespace fdet::detect
