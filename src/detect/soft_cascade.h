// Soft cascade (Bourdev & Brandt, CVPR 2005) — the paper's stated future
// work ("further improve the accuracy of our feature set with soft
// cascades", Sec. VII).
//
// A staged cascade only rejects at stage boundaries: a window must pay for
// a whole stage before it can exit. A soft cascade flattens the weak
// classifiers into one monotone sequence and attaches a rejection
// threshold to *every* classifier, calibrated so that (almost) no true
// face is lost at any prefix. Windows then exit at the earliest possible
// classifier, which cuts the average number of evaluated weak classifiers
// per window — the quantity that dominates the detection kernel.
#pragma once

#include <vector>

#include "haar/cascade.h"

namespace fdet::detect {

struct SoftCascade {
  struct Entry {
    haar::WeakClassifier classifier;
    float rejection_threshold = -1e30f;  ///< reject when running sum < this
  };
  std::string name;
  std::vector<Entry> entries;

  int classifier_count() const { return static_cast<int>(entries.size()); }

  /// Evaluates the window; `depth` = weak classifiers evaluated before
  /// exit (== entries.size() for accepted windows).
  struct Result {
    int depth = 0;
    float score = 0.0f;
    bool accepted = false;
  };
  Result evaluate(const integral::IntegralImage& ii, int wx, int wy) const;
};

struct SoftCascadeOptions {
  /// Fraction of calibration faces that must survive the *entire* soft
  /// cascade; per-classifier thresholds are the minimum running sum over
  /// the surviving quantile.
  double hit_target = 0.98;
  /// Slack subtracted from each calibrated threshold (guards against
  /// calibration-set overfitting).
  float margin = 1e-3f;
};

/// Flattens a trained staged cascade and calibrates per-classifier
/// rejection thresholds on a set of positive windows (their integral
/// images). The final-classifier threshold additionally enforces the
/// staged cascade's final stage threshold so acceptance never becomes
/// looser than the original cascade's last gate.
SoftCascade build_soft_cascade(
    const haar::Cascade& cascade,
    const std::vector<const integral::IntegralImage*>& calibration_faces,
    const SoftCascadeOptions& options = {});

/// Average weak-classifier evaluations per window over an image — the
/// workload metric the soft cascade improves. Counts every valid window
/// anchor on a `step` grid.
double average_depth(const SoftCascade& soft,
                     const integral::IntegralImage& ii, int step = 1);
double average_depth(const haar::Cascade& staged,
                     const integral::IntegralImage& ii, int step = 1);

}  // namespace fdet::detect
