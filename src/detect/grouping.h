// Detection grouping (paper Sec. VI-B): overlapping raw windows are merged
// by clustering on the S_eyes predicate (< 0.5 means "same face") and
// averaging each cluster.
#pragma once

#include <vector>

#include "detect/detection.h"

namespace fdet::detect {

/// Groups raw detections: union-find clustering under
/// s_eyes(predicted_eyes_i, predicted_eyes_j) < threshold, then per-cluster
/// averaging of the boxes. The result carries the cluster size in
/// `neighbors` and the maximum member score.
std::vector<Detection> group_detections(const std::vector<Detection>& raw,
                                        double eyes_threshold = 0.5);

}  // namespace fdet::detect
