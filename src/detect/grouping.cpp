#include "detect/grouping.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace fdet::detect {
namespace {

int find_root(std::vector<int>& parent, int i) {
  while (parent[static_cast<std::size_t>(i)] != i) {
    parent[static_cast<std::size_t>(i)] =
        parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(i)])];
    i = parent[static_cast<std::size_t>(i)];
  }
  return i;
}

}  // namespace

std::vector<Detection> group_detections(const std::vector<Detection>& raw,
                                        double eyes_threshold) {
  if (raw.empty()) {
    return {};
  }
  const int n = static_cast<int>(raw.size());
  std::vector<int> parent(static_cast<std::size_t>(n));
  std::iota(parent.begin(), parent.end(), 0);

  std::vector<EyePair> eyes;
  eyes.reserve(static_cast<std::size_t>(n));
  for (const Detection& d : raw) {
    eyes.push_back(d.predicted_eyes());
  }

  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      // Quick reject on disjoint boxes before the metric.
      if (img::intersection_area(raw[static_cast<std::size_t>(i)].box,
                                 raw[static_cast<std::size_t>(j)].box) == 0) {
        continue;
      }
      if (s_eyes(eyes[static_cast<std::size_t>(i)],
                 eyes[static_cast<std::size_t>(j)]) < eyes_threshold) {
        const int ri = find_root(parent, i);
        const int rj = find_root(parent, j);
        if (ri != rj) {
          parent[static_cast<std::size_t>(rj)] = ri;
        }
      }
    }
  }

  struct Accumulator {
    double x = 0.0, y = 0.0, w = 0.0, h = 0.0;
    float score = -1e30f;
    int count = 0;
    int scale_index = 0;
  };
  std::vector<Accumulator> clusters(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int root = find_root(parent, i);
    Accumulator& acc = clusters[static_cast<std::size_t>(root)];
    const Detection& d = raw[static_cast<std::size_t>(i)];
    acc.x += d.box.x;
    acc.y += d.box.y;
    acc.w += d.box.w;
    acc.h += d.box.h;
    acc.score = std::max(acc.score, d.score);
    acc.scale_index = std::max(acc.scale_index, d.scale_index);
    ++acc.count;
  }

  std::vector<Detection> grouped;
  for (const Accumulator& acc : clusters) {
    if (acc.count == 0) {
      continue;
    }
    Detection d;
    const double inv = 1.0 / acc.count;
    d.box = img::Rect{static_cast<int>(std::lround(acc.x * inv)),
                      static_cast<int>(std::lround(acc.y * inv)),
                      static_cast<int>(std::lround(acc.w * inv)),
                      static_cast<int>(std::lround(acc.h * inv))};
    d.score = acc.score;
    d.neighbors = acc.count;
    d.scale_index = acc.scale_index;
    grouped.push_back(d);
  }
  return grouped;
}

}  // namespace fdet::detect
