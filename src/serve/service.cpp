#include "serve/service.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "core/check.h"
#include "obs/trace.h"

namespace fdet::serve {

namespace {

/// Appends one token to the frame's causal chain: "a -> b -> c".
void append_cause(ServedFrame& sf, const std::string& token) {
  if (!sf.cause.empty()) {
    sf.cause += " -> ";
  }
  sf.cause += token;
}

std::string dump_filename(int frame, obs::Anomaly kind) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "flight_f%04d_", frame);
  return std::string(buffer) + obs::anomaly_name(kind) + ".json";
}

}  // namespace

const char* frame_status_name(FrameStatus status) {
  switch (status) {
    case FrameStatus::kOk: return "ok";
    case FrameStatus::kDegraded: return "degraded";
    case FrameStatus::kDropped: return "dropped";
    case FrameStatus::kFailed: return "failed";
    case FrameStatus::kAdmissionRejected: return "admission-rejected";
  }
  return "?";
}

StreamingService::StreamingService(const vgpu::DeviceSpec& spec,
                                   haar::Cascade cascade,
                                   detect::PipelineOptions base,
                                   ServiceOptions options,
                                   obs::Registry* registry)
    : spec_(spec), cascade_(std::move(cascade)), base_(base),
      options_(options), registry_(registry),
      ladder_(options_.degrade, options_.deadline_ms),
      decode_breaker_(options_.breaker), detect_breaker_(options_.breaker),
      jitter_rng_(options_.seed) {
  FDET_CHECK(options_.fps > 0.0) << "service fps must be positive";
  FDET_CHECK(options_.deadline_ms > 0.0) << "deadline budget must be positive";
  FDET_CHECK(options_.queue_capacity >= 1)
      << "queue capacity must be >= 1, got " << options_.queue_capacity;
  FDET_CHECK(options_.retry.max_attempts >= 1)
      << "retry.max_attempts must be >= 1";
  if (options_.obs.flight_recorder) {
    recorder_ = std::make_unique<obs::FlightRecorder>(
        options_.obs.recorder_capacity);
  }
}

void StreamingService::count(const char* name, const obs::Labels& labels,
                             double delta) {
  if (registry_ != nullptr) {
    registry_->counter(name, labels).add(delta);
  }
}

void StreamingService::gauge(const char* name, double value,
                             const obs::Labels& labels) {
  if (registry_ != nullptr) {
    registry_->gauge(name, labels).set(value);
  }
}

void StreamingService::observe_histogram(const char* name,
                                         std::vector<double> bounds,
                                         double value) {
  if (registry_ != nullptr) {
    registry_->histogram(name, std::move(bounds)).observe(value);
  }
}

void StreamingService::trace_instant(const std::string& text) {
  if (obs::TraceSession* session = obs::TraceSession::current()) {
    session->instant(text);
  }
}

void StreamingService::flight(obs::FlightEventKind kind, int frame,
                              double ts_us, double dur_us, const char* name,
                              const char* detail, double value) {
  if (!recorder_) {
    return;
  }
  obs::FlightEvent event;
  event.kind = kind;
  event.frame = frame;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.value = value;
  event.set_name(name);
  event.set_detail(detail);
  if (const obs::TraceContext* context = obs::current_trace_context()) {
    event.set_context(*context);
  }
  recorder_->record(event);
}

void StreamingService::note_anomaly(ServedFrame& sf, obs::Anomaly kind) {
  (void)sf;
  if (std::find(frame_anomalies_.begin(), frame_anomalies_.end(), kind) ==
      frame_anomalies_.end()) {
    frame_anomalies_.push_back(kind);
  }
}

void StreamingService::write_dumps(const ServedFrame& sf,
                                   ServiceReport& report) {
  for (const obs::Anomaly kind : frame_anomalies_) {
    if (kind == obs::Anomaly::kFaultInjected && !options_.obs.dump_on_fault) {
      continue;
    }
    count("serve.anomalies", {{"kind", obs::anomaly_name(kind)}});
    flight(obs::FlightEventKind::kAnomaly, sf.index, sf.completion_s * 1e6,
           0.0, "anomaly", obs::anomaly_name(kind));
    if (!recorder_ || options_.obs.dump_dir.empty() ||
        dumps_written_ >= options_.obs.max_dumps) {
      continue;
    }
    obs::AnomalyInfo info;
    info.kind = kind;
    info.frame = sf.index;
    info.cause = sf.cause;
    info.trace_id = sf.trace_id;
    // The dump directory may not exist yet (chaos/CI runs point at a
    // fresh path); a missing directory must not crash the serving loop.
    std::error_code ec;
    std::filesystem::create_directories(options_.obs.dump_dir, ec);
    const std::string path =
        options_.obs.dump_dir + "/" + dump_filename(sf.index, kind);
    try {
      obs::write_flight_dump(
          path, recorder_->snapshot_window(options_.obs.dump_window_s * 1e6),
          info);
    } catch (const std::exception& error) {
      // Observability must never take the serving loop down: a failed
      // dump (disk full, permissions) is counted and the stream goes on.
      count("serve.dump_failures");
      std::fprintf(stderr, "flight dump failed: %s\n", error.what());
      continue;
    }
    ++dumps_written_;
    report.dumps.push_back({sf.index, kind, sf.cause, path});
  }
}

const detect::Pipeline& StreamingService::pipeline_for_level(int level) {
  auto it = pipelines_.find(level);
  if (it == pipelines_.end()) {
    const DegradationStep& step = DegradationLadder::step_at(level);
    detect::PipelineOptions options = base_;
    options.skip_finest_levels = base_.skip_finest_levels +
                                 step.skip_finest_levels;
    options.min_neighbors = base_.min_neighbors + step.min_neighbors_boost;
    if (step.serial_exec) {
      options.mode = vgpu::ExecMode::kSerial;
    }
    it = pipelines_
             .emplace(level, std::make_unique<detect::Pipeline>(
                                 spec_, cascade_, options))
             .first;
  }
  return *it->second;
}

void StreamingService::reset() {
  ladder_ = DegradationLadder(options_.degrade, options_.deadline_ms);
  decode_breaker_ = CircuitBreaker(options_.breaker);
  detect_breaker_ = CircuitBreaker(options_.breaker);
  jitter_rng_ = core::Rng(options_.seed);
  // The SLO engine always judges the service's actual budget and mirrors
  // the ladder's recovery tuning, whatever the caller put in obs.slo.
  obs::SloOptions slo = options_.obs.slo;
  slo.deadline_ms = options_.deadline_ms;
  slo.recover_fraction = options_.degrade.recover_fraction;
  slo.recover_after = options_.degrade.recover_after;
  slo_ = std::make_unique<obs::SloEngine>(slo);
  dumps_written_ = 0;
  frame_anomalies_.clear();
}

ServedFrame StreamingService::serve_frame(
    const ingest::FrameSource& source, int index, const FaultPlan* plan,
    double start_s) {
  ServedFrame sf;
  sf.index = index;
  sf.degradation_level = ladder_.level();

  // Virtual "now" within this frame: start plus everything charged so far.
  const auto now_us = [&] {
    return start_s * 1e6 +
           (sf.decode_ms + sf.detect_ms + sf.backoff_ms) * 1e3;
  };

  const auto fail = [&](const char* stage, ErrorClass cls,
                        const std::string& message, int attempts,
                        CircuitBreaker& breaker) {
    sf.status = FrameStatus::kFailed;
    sf.error = FrameError{index, stage, cls, message, attempts};
    count("serve.frame_errors", {{"stage", stage},
                                 {"class", error_class_name(cls)}});
    if (cls == ErrorClass::kResource || cls == ErrorClass::kMalformed ||
        cls == ErrorClass::kFatal) {
      append_cause(sf, std::string("quarantine:") + stage + "/" +
                           error_class_name(cls));
      note_anomaly(sf, obs::Anomaly::kQuarantine);
      flight(obs::FlightEventKind::kQuarantine, index, now_us(), 0.0,
             "quarantine", (std::string(stage) + ": " + message).c_str());
    } else {
      append_cause(sf, std::string("failed:") + stage);
    }
    const int trips_before = breaker.trips();
    breaker.record_failure();
    if (breaker.trips() != trips_before) {
      count("serve.breaker.trips", {{"stage", stage}});
      trace_instant(std::string("serve.breaker ") + stage + " open");
      append_cause(sf, std::string("breaker-open:") + stage);
      note_anomaly(sf, obs::Anomaly::kBreakerOpen);
      flight(obs::FlightEventKind::kBreaker, index, now_us(), 0.0,
             "breaker-open", stage);
      // A tripped stage is unhealthy: the simplest failure domain while it
      // cools down is the serial-exec rung of the ladder.
      const int before = ladder_.level();
      ladder_.force_serial_fallback();
      if (slo_) {
        slo_->reset_recovery();
      }
      if (ladder_.level() != before) {
        count("serve.degradation.shifts");
        trace_instant("serve.degrade -> level " +
                      std::to_string(ladder_.level()) + " (" +
                      ladder_.step().name + ")");
        flight(obs::FlightEventKind::kLadder, index, now_us(), 0.0,
               "ladder", ladder_.step().name,
               static_cast<double>(ladder_.level()));
      }
    }
  };

  const auto backoff = [&](const char* stage, int retry) {
    const double wait = retry_backoff_ms(options_.retry, retry, jitter_rng_);
    flight(obs::FlightEventKind::kRetry, index, now_us(), 0.0, "retry",
           stage, wait);
    sf.backoff_ms += wait;
    ++sf.retries;
    count("serve.retries", {{"stage", stage}});
    observe_histogram("serve.backoff_ms", {0.5, 1, 2, 4, 8, 16, 32, 64},
                      wait);
    trace_instant(std::string("serve.retry ") + stage + " frame " +
                  std::to_string(index) + " retry " + std::to_string(retry));
    append_cause(sf, std::string("retry:") + stage);
  };

  const auto fault_injected = [&](const char* kind) {
    count("serve.faults.injected", {{"kind", kind}});
    sf.fault_injected = true;
    append_cause(sf, std::string("fault:") + kind);
    note_anomaly(sf, obs::Anomaly::kFaultInjected);
    flight(obs::FlightEventKind::kFault, index, now_us(), 0.0, "fault",
           kind);
  };

  // ---- Decode stage: bounded retry behind its circuit breaker. ----
  if (!decode_breaker_.allows()) {
    fail("decode", ErrorClass::kTransient, "decode circuit breaker open", 0,
         decode_breaker_);
    // Rejected without running: does not touch the breaker's cooldown
    // counters beyond the frame clock (run() advances it).
    sf.error->message = "decode circuit breaker open";
    return sf;
  }
  video::DecodedFrame decoded;
  {
    const obs::ScopedSpan span("serve.decode");
    const std::string& format = source.info().format;
    int attempt = 0;
    while (true) {
      try {
        if (plan != nullptr &&
            plan->fires(FaultKind::kDecodeFail, index, attempt)) {
          fault_injected("decode");
          throw DecodeError("injected decode failure (frame " +
                            std::to_string(index) + ", attempt " +
                            std::to_string(attempt) + ")");
        }
        if (plan != nullptr &&
            plan->fires(FaultKind::kBitstream, index, attempt)) {
          fault_injected("bitstream");
          throw ingest::IngestError(
              ingest::IngestErrorKind::kInjected, format, 0,
              "injected bitstream damage (frame " + std::to_string(index) +
                  ")");
        }
        decoded = source.decode(index);
        sf.decode_ms += decoded.decode_ms;
        count("ingest.frames", {{"format", format}});
        observe_histogram("ingest.decode_ms",
                          {0.5, 1, 2, 4, 8, 12, 16, 24, 32},
                          decoded.decode_ms);
        break;
      } catch (const ingest::IngestError& error) {
        if (error.kind() == ingest::IngestErrorKind::kMissingFrame) {
          // A delivery gap: the frame never arrived, nothing was
          // malformed. Typed drop — no quarantine, and the decode
          // breaker stays untouched (the decoder is healthy; the
          // transport lost a frame).
          sf.status = FrameStatus::kDropped;
          sf.missing = true;
          append_cause(sf, "missing-frame");
          count("serve.dropped", {{"reason", "missing-frame"}});
          count("ingest.missing", {{"format", format}});
          flight(obs::FlightEventKind::kDrop, index, now_us(), 0.0, "drop",
                 "missing-frame");
          return sf;
        }
        // Malformed bytes fail every attempt identically: quarantine the
        // frame instead of retrying, and let the decode breaker see the
        // failure so a malformed burst sheds via the ladder.
        count("ingest.rejects",
              {{"format", format},
               {"kind", ingest::ingest_error_kind_name(error.kind())}});
        fail("decode", ErrorClass::kMalformed, error.what(), attempt + 1,
             decode_breaker_);
        return sf;
      } catch (const DecodeError& error) {
        sf.decode_ms += source.decode_latency_ms(index);
        if (attempt + 1 >= options_.retry.max_attempts) {
          fail("decode", ErrorClass::kTransient,
               std::string(error.what()) + " (retries exhausted)",
               attempt + 1, decode_breaker_);
          return sf;
        }
        backoff("decode", ++attempt);
      }
    }
    decode_breaker_.record_success();
    if (sf.retries > 0) {
      count("serve.faults.recovered", {{"stage", "decode"}});
    }
  }
  // Delivery-order bookkeeping: a lossy transport can deliver frames
  // late or twice. Both decode fine and are served normally — the
  // service counts and cause-tags them so downstream consumers can see
  // the disorder without the stream dying.
  sf.arrival = source.arrival_kind(index);
  if (sf.arrival == ingest::FrameArrival::kOutOfOrder) {
    append_cause(sf, "out-of-order");
    count("ingest.out_of_order", {{"format", source.info().format}});
  } else if (sf.arrival == ingest::FrameArrival::kDuplicate) {
    append_cause(sf, "duplicate-frame");
    count("ingest.duplicates", {{"format", source.info().format}});
  }
  if (plan != nullptr && plan->fires(FaultKind::kCorruptLuma, index)) {
    // Undetectable input damage: flows through like real bitstream
    // corruption would — the service must survive it, not spot it.
    fault_injected("corrupt");
    corrupt_luma(decoded.frame.luma(),
                 core::hash_combine(plan->seed(),
                                    static_cast<std::uint64_t>(index)));
  }

  // ---- Detect stage: retry transient launch faults, quarantine hard ones. ----
  if (!detect_breaker_.allows()) {
    fail("detect", ErrorClass::kTransient, "detect circuit breaker open", 0,
         detect_breaker_);
    return sf;
  }
  const detect::Pipeline& pipeline = pipeline_for_level(sf.degradation_level);
  const obs::ScopedSpan span("serve.detect");
  const int detect_retries_before = sf.retries;
  int attempt = 0;
  while (true) {
    std::optional<vgpu::ScopedLaunchFaultHook> hook;
    if (plan != nullptr) {
      hook.emplace(make_launch_fault_hook(*plan, index, attempt));
    }
    // Stamp every kernel launch of this attempt into the flight recorder,
    // in virtual time relative to the detect stage's start.
    std::optional<vgpu::ScopedLaunchObserver> launch_observer;
    if (recorder_) {
      const double base_us = now_us();
      launch_observer.emplace([this, index,
                               base_us](const vgpu::LaunchRecord& record) {
        flight(obs::FlightEventKind::kLaunch, index,
               base_us + record.start_s * 1e6, record.duration_s() * 1e6,
               record.name.c_str(), "",
               static_cast<double>(record.blocks));
      });
    }
    try {
      detect::FrameResult result = pipeline.process(decoded.frame.luma());
      sf.detect_ms = result.detect_ms;
      sf.detections = std::move(result.detections);
      break;
    } catch (const vgpu::LaunchError& error) {
      if (error.transient()) {
        fault_injected("launch");
        if (attempt + 1 >= options_.retry.max_attempts) {
          fail("detect", ErrorClass::kTransient,
               std::string(error.what()) + " (retries exhausted)",
               attempt + 1, detect_breaker_);
          return sf;
        }
        hook.reset();
        backoff("detect", ++attempt);
        continue;
      }
      // Hard resource fault: retrying would fail identically. Quarantine.
      const bool constant =
          plan != nullptr &&
          plan->fires(FaultKind::kConstantOverflow, index, attempt);
      fault_injected(constant ? "const" : "shared");
      fail("detect", ErrorClass::kResource, error.what(), attempt + 1,
           detect_breaker_);
      return sf;
    } catch (const std::exception& error) {
      // Anything unexpected from a stage: quarantine the frame, keep the
      // service alive.
      fail("detect", ErrorClass::kFatal, error.what(), attempt + 1,
           detect_breaker_);
      return sf;
    }
  }
  detect_breaker_.record_success();
  if (sf.retries > detect_retries_before) {
    count("serve.faults.recovered", {{"stage", "detect"}});
  }

  sf.status = sf.degradation_level > 0 ? FrameStatus::kDegraded
                                       : FrameStatus::kOk;
  return sf;
}

ServiceReport StreamingService::run(const video::MockH264Decoder& decoder,
                                    int count_frames, const FaultPlan* plan) {
  return run(ingest::H264FrameSource(decoder), count_frames, plan);
}

ServiceReport StreamingService::run(const ingest::FrameSource& source,
                                    int count_frames, const FaultPlan* plan) {
  FDET_CHECK(count_frames >= 1) << "run() needs at least one frame";
  FDET_CHECK(count_frames <= source.frame_count())
      << "run(" << count_frames << ") exceeds the stream's "
      << source.frame_count() << " frames";
  reset();

  ServiceReport report;
  report.frames.reserve(static_cast<std::size_t>(count_frames));
  std::vector<double> pending;  ///< completion times of in-flight frames
  double last_completion_s = 0.0;
  int unserved_streak = 0;

  for (int i = 0; i < count_frames; ++i) {
    const double arrival_s = i / options_.fps;
    decode_breaker_.on_frame();
    detect_breaker_.on_frame();
    std::erase_if(pending, [&](double done) { return done <= arrival_s; });
    const int depth = static_cast<int>(pending.size());
    observe_histogram(
        "serve.queue_depth",
        obs::linear_buckets(0.0, 1.0, options_.queue_capacity + 1),
        static_cast<double>(depth));
    slo_->observe_queue_depth(static_cast<double>(depth));

    // Causal context for everything this frame does — spans, launches and
    // control decisions all chain back to this id.
    obs::TraceContext context;
    std::optional<obs::ScopedTraceContext> scoped_context;
    if (options_.obs.tracing) {
      context = obs::make_frame_context(options_.seed, i);
      scoped_context.emplace(context);
    }
    frame_anomalies_.clear();

    // Service start: a frame waits for the previous one to finish.
    const double start_s = std::max(arrival_s, last_completion_s);

    ServedFrame sf;
    const DegradationStep& step = ladder_.step();
    if (depth >= options_.queue_capacity) {
      sf.index = i;
      sf.status = FrameStatus::kDropped;
      sf.degradation_level = ladder_.level();
      count("serve.dropped", {{"reason", "backpressure"}});
      trace_instant("serve.drop frame " + std::to_string(i) +
                    " (queue full)");
      append_cause(sf, "shed:backpressure");
      flight(obs::FlightEventKind::kDrop, i, arrival_s * 1e6, 0.0, "drop",
             "backpressure", static_cast<double>(depth));
    } else if (step.shed_queued_frames && depth > 0) {
      sf.index = i;
      sf.status = FrameStatus::kDropped;
      sf.degradation_level = ladder_.level();
      count("serve.dropped", {{"reason", "shed"}});
      trace_instant("serve.drop frame " + std::to_string(i) +
                    " (load shedding)");
      append_cause(sf, std::string("shed:") + step.name);
      flight(obs::FlightEventKind::kDrop, i, arrival_s * 1e6, 0.0, "drop",
             step.name, static_cast<double>(depth));
    } else {
      sf = serve_frame(source, i, plan, start_s);
    }
    sf.arrival_s = arrival_s;
    sf.queue_depth = depth;
    sf.trace_id = context.trace_id;

    const bool served = sf.status == FrameStatus::kOk ||
                        sf.status == FrameStatus::kDegraded;
    if (sf.status == FrameStatus::kDropped) {
      sf.completion_s = arrival_s;  // dropped instantly, no service time
    } else {
      sf.completion_s =
          start_s + (sf.decode_ms + sf.detect_ms + sf.backoff_ms) * 1e-3;
      pending.push_back(sf.completion_s);
      last_completion_s = sf.completion_s;
    }
    sf.latency_ms = (sf.completion_s - arrival_s) * 1e3;

    // Frame + stage spans in the flight recorder (virtual time).
    flight(obs::FlightEventKind::kFrame, i, arrival_s * 1e6,
           sf.latency_ms * 1e3, "frame", frame_status_name(sf.status),
           sf.latency_ms);
    if (sf.status != FrameStatus::kDropped) {
      double stage_us = start_s * 1e6;
      if (sf.decode_ms > 0.0) {
        flight(obs::FlightEventKind::kStage, i, stage_us, sf.decode_ms * 1e3,
               "decode", "", sf.decode_ms);
        stage_us += sf.decode_ms * 1e3;
      }
      if (sf.backoff_ms > 0.0) {
        flight(obs::FlightEventKind::kStage, i, stage_us,
               sf.backoff_ms * 1e3, "backoff", "", sf.backoff_ms);
        stage_us += sf.backoff_ms * 1e3;
      }
      if (sf.detect_ms > 0.0) {
        flight(obs::FlightEventKind::kStage, i, stage_us, sf.detect_ms * 1e3,
               "detect", "", sf.detect_ms);
      }
    }

    if (served) {
      observe_histogram("serve.latency_ms",
                        {1, 2, 5, 10, 20, 30, 40, 50, 75, 100, 150, 200},
                        sf.latency_ms);
      slo_->observe_stage("decode", sf.decode_ms);
      slo_->observe_stage("detect", sf.detect_ms);
      if (sf.backoff_ms > 0.0) {
        slo_->observe_stage("backoff", sf.backoff_ms);
      }
      if (sf.latency_ms > options_.deadline_ms) {
        ++report.deadline_misses;
        count("serve.deadline_misses");
        append_cause(sf, "deadline-miss");
        note_anomaly(sf, obs::Anomaly::kDeadlineMiss);
        flight(obs::FlightEventKind::kDeadlineMiss, i, sf.completion_s * 1e6,
               0.0, "deadline-miss", "", sf.latency_ms);
      }
      const int level_before = ladder_.level();
      // The SLO engine sees every served frame either way; by default its
      // burn-rate decision drives the ladder (identical dynamics to the
      // legacy direct observe() at default SloOptions).
      const obs::SloDecision decision = slo_->observe_frame(sf.latency_ms);
      if (options_.obs.slo_ladder) {
        if (decision.degrade || decision.recover) {
          flight(obs::FlightEventKind::kSlo, i, sf.completion_s * 1e6, 0.0,
                 "slo", decision.degrade ? "degrade" : "recover",
                 decision.degrade ? decision.fast_burn : decision.slow_burn);
        }
        ladder_.apply(decision.degrade, decision.recover,
                      decision.degrade ? "slo-burn" : "slo-recover");
      } else {
        ladder_.observe(sf.latency_ms);
      }
      if (ladder_.level() != level_before) {
        count("serve.degradation.shifts");
        trace_instant("serve.degrade -> level " +
                      std::to_string(ladder_.level()) + " (" +
                      ladder_.step().name + ")");
        flight(obs::FlightEventKind::kLadder, i, sf.completion_s * 1e6, 0.0,
               "ladder", ladder_.step().name,
               static_cast<double>(ladder_.level()));
        if (ladder_.level() > level_before) {
          append_cause(sf, std::string("ladder-climb:") +
                               ladder_.step().name);
          note_anomaly(sf, obs::Anomaly::kLadderClimb);
        }
      }
    }

    count("serve.frames", {{"status", frame_status_name(sf.status)}});
    gauge("serve.degradation.level", static_cast<double>(ladder_.level()));
    gauge("serve.breaker.state",
          static_cast<double>(decode_breaker_.state()),
          {{"stage", "decode"}});
    gauge("serve.breaker.state",
          static_cast<double>(detect_breaker_.state()),
          {{"stage", "detect"}});

    switch (sf.status) {
      case FrameStatus::kOk: ++report.ok; break;
      case FrameStatus::kDegraded: ++report.degraded; break;
      case FrameStatus::kDropped: ++report.dropped; break;
      case FrameStatus::kFailed: ++report.failed; break;
      // A single-stream service has no admission control; the status
      // exists for the fleet layer (serve/fleet.h).
      case FrameStatus::kAdmissionRejected: ++report.dropped; break;
    }
    report.retries += sf.retries;
    report.faults_injected += sf.fault_injected ? 1 : 0;
    if (sf.error.has_value() && sf.error->cls == ErrorClass::kMalformed) {
      ++report.ingest_rejects;
    }
    report.missing_frames += sf.missing ? 1 : 0;
    report.out_of_order +=
        sf.arrival == ingest::FrameArrival::kOutOfOrder ? 1 : 0;
    report.duplicates +=
        sf.arrival == ingest::FrameArrival::kDuplicate ? 1 : 0;
    report.max_latency_ms = std::max(report.max_latency_ms, sf.latency_ms);
    unserved_streak = served ? 0 : unserved_streak + 1;
    report.max_consecutive_unserved =
        std::max(report.max_consecutive_unserved, unserved_streak);
    write_dumps(sf, report);
    report.frames.push_back(std::move(sf));
  }

  report.breaker_trips = decode_breaker_.trips() + detect_breaker_.trips();
  report.degradation_shifts = ladder_.shifts();
  report.final_degradation_level = ladder_.level();
  report.slo = slo_->snapshot();
  if (registry_ != nullptr) {
    slo_->publish(*registry_);
  }
  return report;
}

}  // namespace fdet::serve
