#include "serve/policy.h"

#include <algorithm>
#include <array>

#include "core/check.h"

namespace fdet::serve {

const char* error_class_name(ErrorClass cls) {
  switch (cls) {
    case ErrorClass::kTransient: return "transient";
    case ErrorClass::kResource: return "resource";
    case ErrorClass::kMalformed: return "malformed";
    case ErrorClass::kFatal: return "fatal";
    case ErrorClass::kRejected: return "rejected";
  }
  return "?";
}

double retry_backoff_ms(const RetryOptions& options, int retry,
                        core::Rng& rng) {
  FDET_CHECK(retry >= 1) << "retry numbers are 1-based, got " << retry;
  double backoff = options.base_backoff_ms;
  for (int i = 1; i < retry; ++i) {
    backoff *= options.multiplier;
  }
  backoff = std::min(backoff, options.max_backoff_ms);
  const double jitter = rng.uniform(-options.jitter, options.jitter);
  return std::max(0.0, backoff * (1.0 + jitter));
}

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

void CircuitBreaker::on_frame() {
  if (state_ == BreakerState::kOpen && --open_frames_left_ <= 0) {
    state_ = BreakerState::kHalfOpen;
  }
}

void CircuitBreaker::record_success() {
  consecutive_failures_ = 0;
  state_ = BreakerState::kClosed;
}

void CircuitBreaker::record_failure() {
  if (state_ == BreakerState::kHalfOpen) {
    // The probe failed: straight back to open for another cooldown.
    state_ = BreakerState::kOpen;
    open_frames_left_ = options_.cooldown_frames;
    ++trips_;
    return;
  }
  if (++consecutive_failures_ >= options_.failure_threshold &&
      state_ == BreakerState::kClosed) {
    state_ = BreakerState::kOpen;
    open_frames_left_ = options_.cooldown_frames;
    consecutive_failures_ = 0;
    ++trips_;
  }
}

namespace {

/// Cumulative rungs: each sheds strictly more than the one above.
constexpr std::array<DegradationStep, 5> kLadder = {{
    {"full", 0, 0, false, false},
    {"shed-finest", 1, 0, false, false},
    {"shed-scales", 2, 1, false, false},
    {"serial-safe", 2, 1, true, false},
    {"shed-frames", 2, 1, true, true},
}};

/// Index of the serial-exec rung force_serial_fallback jumps to.
constexpr int kSerialLevel = 3;

}  // namespace

int DegradationLadder::max_level() {
  return static_cast<int>(kLadder.size()) - 1;
}

const DegradationStep& DegradationLadder::step_at(int level) {
  FDET_CHECK(level >= 0 && level <= max_level())
      << "degradation level " << level;
  return kLadder[static_cast<std::size_t>(level)];
}

void DegradationLadder::observe(double latency_ms) {
  if (latency_ms > deadline_ms_) {
    good_streak_ = 0;
    move_to(level_ + 1, "deadline-miss");
    return;
  }
  if (latency_ms < options_.recover_fraction * deadline_ms_) {
    if (++good_streak_ >= options_.recover_after) {
      good_streak_ = 0;
      move_to(level_ - 1, "recovery-streak");
    }
  } else {
    good_streak_ = 0;  // in budget but too close to the edge to climb
  }
}

void DegradationLadder::apply(bool degrade, bool recover, const char* cause) {
  if (degrade) {
    good_streak_ = 0;
    move_to(level_ + 1, cause);
  } else if (recover) {
    good_streak_ = 0;
    move_to(level_ - 1, cause);
  }
}

void DegradationLadder::force_serial_fallback() {
  good_streak_ = 0;
  if (level_ < kSerialLevel) {
    move_to(kSerialLevel, "breaker-serial-fallback");
  }
}

void DegradationLadder::move_to(int level, const char* cause) {
  const int clamped = std::clamp(level, 0, max_level());
  if (clamped != level_) {
    level_ = clamped;
    ++shifts_;
    last_cause_ = cause;
  }
}

}  // namespace fdet::serve
