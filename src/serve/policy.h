// Recovery policies of the streaming serving layer: bounded retry with
// exponential backoff and deterministic jitter, a per-stage circuit
// breaker, and the deadline-driven degradation ladder.
//
// Error taxonomy (DESIGN.md "Serving & fault tolerance"):
//
//   transient  decode glitch, vgpu launch hiccup -> bounded retry with
//              exponential backoff + jitter; exhaustion escalates to the
//              breaker
//   resource   constant/shared-memory overflow -> no retry (it would fail
//              identically); the frame is quarantined with a FrameError
//   malformed  a validating container parser rejected the frame's bytes
//              (ingest::IngestError) -> no retry (the bytes won't heal);
//              quarantine and count toward the decode breaker so a
//              malformed burst sheds via the ladder
//   fatal      anything unexpected (core::CheckError from a stage) ->
//              quarantine, never crash the service
//
// The ladder sheds load stepwise once the virtual per-frame latency blows
// the deadline budget, and climbs back one level per recovery streak.
#pragma once

#include <cstdint>
#include <string>

#include "core/rng.h"
#include "vgpu/scheduler.h"

namespace fdet::serve {

enum class ErrorClass {
  kTransient,
  kResource,
  kMalformed,
  kFatal,
  kRejected,  ///< admission control turned the frame away (fleet layer)
};
const char* error_class_name(ErrorClass cls);

/// Structured record of a frame the service could not serve: emitted in
/// the ServedFrame instead of crashing or silently skipping.
struct FrameError {
  int frame = 0;
  std::string stage;  ///< "decode" | "detect" | "admission"
  ErrorClass cls = ErrorClass::kTransient;
  std::string message;
  int attempts = 1;  ///< attempts spent before giving up
};

struct RetryOptions {
  int max_attempts = 3;        ///< total attempts per stage (1 = no retry)
  double base_backoff_ms = 1.0;
  double multiplier = 2.0;     ///< exponential growth per retry
  double max_backoff_ms = 16.0;
  double jitter = 0.2;         ///< +- fraction of the computed backoff
};

/// Backoff before retry number `retry` (1-based): base * multiplier^(retry-1),
/// capped, with deterministic jitter drawn from `rng`.
double retry_backoff_ms(const RetryOptions& options, int retry,
                        core::Rng& rng);

enum class BreakerState { kClosed, kOpen, kHalfOpen };
const char* breaker_state_name(BreakerState state);

struct BreakerOptions {
  int failure_threshold = 3;  ///< consecutive frame failures to trip
  int cooldown_frames = 4;    ///< frames rejected while open
};

/// Classic three-state circuit breaker, clocked in frames (the service's
/// only notion of time). Closed counts consecutive failures; at the
/// threshold it opens and rejects the stage for `cooldown_frames`; then a
/// half-open probe lets one frame through — success closes, failure
/// re-opens.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerOptions options) : options_(options) {}

  /// Advances the frame clock; while open, counts down toward half-open.
  void on_frame();
  /// May the stage run this frame? (closed or half-open probe)
  bool allows() const { return state_ != BreakerState::kOpen; }
  void record_success();
  void record_failure();

  BreakerState state() const { return state_; }
  int trips() const { return trips_; }

 private:
  BreakerOptions options_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int open_frames_left_ = 0;
  int trips_ = 0;
};

struct DegradeOptions {
  int recover_after = 3;          ///< consecutive in-budget frames per step down
  double recover_fraction = 0.75; ///< "in budget" = latency < fraction * deadline
};

/// One rung of the degradation ladder: the pipeline-level knobs the
/// service applies at this level (cumulative — higher levels shed more).
struct DegradationStep {
  const char* name = "full";
  int skip_finest_levels = 0;   ///< detect::PipelineOptions::skip_finest_levels
  int min_neighbors_boost = 0;  ///< added to the configured min_neighbors
  bool serial_exec = false;     ///< force vgpu::ExecMode::kSerial
  bool shed_queued_frames = false;  ///< drop frames whenever a backlog exists
};

/// The ladder: level 0 full quality, then stepwise load shedding —
/// drop the finest pyramid scale(s) first, raise min_neighbors, fall back
/// to serial execution, finally shed queued frames. observe() moves at
/// most one level per frame in either direction.
class DegradationLadder {
 public:
  DegradationLadder(DegradeOptions options, double deadline_ms)
      : options_(options), deadline_ms_(deadline_ms) {}

  static int max_level();
  static const DegradationStep& step_at(int level);

  int level() const { return level_; }
  const DegradationStep& step() const { return step_at(level_); }
  int shifts() const { return shifts_; }

  /// Observes one served frame's end-to-end virtual latency: over budget
  /// degrades one level; a recover_after-long streak under
  /// recover_fraction * deadline climbs back one level. (Legacy signal
  /// path — the serving loop now feeds the ladder through apply() from
  /// the SLO engine's burn-rate decision, which reproduces these exact
  /// dynamics at its default options; observe() remains for callers
  /// without an SLO engine and for the policy tests.)
  void observe(double latency_ms);

  /// SLO-driven signal path: `degrade` sheds one level, else `recover`
  /// climbs one level. `cause` is recorded (last_cause()) whenever the
  /// level actually moves, so flight-recorder ladder events can name the
  /// signal that moved it.
  void apply(bool degrade, bool recover, const char* cause);

  /// Breaker-driven degradation: jumps straight to the serial-exec rung
  /// (or stays if already deeper) — the simplest failure domain while a
  /// stage is unhealthy.
  void force_serial_fallback();

  /// Cause label of the most recent level movement ("" before any).
  const char* last_cause() const { return last_cause_; }

 private:
  void move_to(int level, const char* cause);

  DegradeOptions options_;
  double deadline_ms_;
  int level_ = 0;
  int good_streak_ = 0;
  int shifts_ = 0;
  const char* last_cause_ = "";
};

}  // namespace fdet::serve
