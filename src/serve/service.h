// Fault-tolerant streaming detection service (the serving layer of
// ROADMAP's "heavy traffic" north star).
//
// StreamingService wraps decoder -> detect::Pipeline behind a bounded
// frame queue with backpressure and a per-frame deadline budget, all in
// *virtual* time: frames arrive at the stream fps, service occupancy is
// the modeled decode + detect (+ retry backoff) latency, and the queue
// depth is derived from arrivals vs completions — deterministic, like the
// rest of the simulator, so chaos runs are exactly reproducible.
//
// Recovery behavior (serve/policy.h):
//   * transient faults (decode glitches, vgpu launch hiccups) retry with
//     exponential backoff + jitter, bounded by RetryOptions;
//   * repeated per-stage frame failures trip a circuit breaker that
//     rejects the stage for a cooldown and forces the serial-exec rung of
//     the degradation ladder;
//   * hard resource faults (constant/shared overflow) and unexpected
//     errors quarantine the frame with a structured FrameError — the
//     service never crashes;
//   * blowing the deadline budget walks the degradation ladder down
//     (shed finest scales -> raise min_neighbors -> serial exec -> shed
//     queued frames); sustained in-budget frames climb back up.
//
// Everything is observable: serve.* metrics in an obs::Registry and trace
// spans/instants per recovery action on the ambient obs::TraceSession.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "detect/pipeline.h"
#include "obs/metrics.h"
#include "serve/faults.h"
#include "serve/policy.h"
#include "video/decoder.h"

namespace fdet::serve {

enum class FrameStatus { kOk, kDegraded, kDropped, kFailed };
const char* frame_status_name(FrameStatus status);

/// Outcome of one frame through the service.
struct ServedFrame {
  int index = 0;
  FrameStatus status = FrameStatus::kOk;
  int degradation_level = 0;  ///< ladder level the frame was served at
  int retries = 0;            ///< retry attempts spent across both stages
  bool fault_injected = false;
  double arrival_s = 0.0;     ///< virtual stream time the frame arrived
  double completion_s = 0.0;  ///< virtual time the service finished it
  double decode_ms = 0.0;
  double detect_ms = 0.0;
  double backoff_ms = 0.0;    ///< total retry backoff charged to the frame
  double latency_ms = 0.0;    ///< end-to-end: completion - arrival
  int queue_depth = 0;        ///< backlog when the frame arrived
  std::vector<detect::Detection> detections;  ///< empty unless served
  std::optional<FrameError> error;            ///< kFailed only
};

struct ServiceOptions {
  double fps = 24.0;          ///< stream arrival rate
  double deadline_ms = 40.0;  ///< per-frame latency budget (24 fps display)
  int queue_capacity = 4;     ///< arrivals beyond this backlog are dropped
  RetryOptions retry;
  BreakerOptions breaker;
  DegradeOptions degrade;
  std::uint64_t seed = 0x5e12e;  ///< backoff-jitter stream
};

/// Aggregate of one run(): the per-frame records plus the summary the
/// chaos harness asserts on.
struct ServiceReport {
  std::vector<ServedFrame> frames;
  int ok = 0;
  int degraded = 0;
  int dropped = 0;
  int failed = 0;
  int deadline_misses = 0;
  int retries = 0;
  int faults_injected = 0;
  int breaker_trips = 0;
  int degradation_shifts = 0;
  int final_degradation_level = 0;
  /// Longest streak of frames that produced no detections output
  /// (dropped or failed) — the chaos harness bounds this.
  int max_consecutive_unserved = 0;
  double max_latency_ms = 0.0;
};

class StreamingService {
 public:
  /// `base` is the level-0 pipeline configuration; the degradation ladder
  /// derives the shed configurations from it. `registry` may be null
  /// (no metrics).
  StreamingService(const vgpu::DeviceSpec& spec, haar::Cascade cascade,
                   detect::PipelineOptions base, ServiceOptions options,
                   obs::Registry* registry = nullptr);

  /// Serves frames [0, count) of the decoder's stream under an optional
  /// fault plan (null = fault-free). Resets service state (ladder,
  /// breakers, virtual clock) so consecutive runs are independent.
  ServiceReport run(const video::MockH264Decoder& decoder, int count,
                    const FaultPlan* plan = nullptr);

  const ServiceOptions& options() const { return options_; }
  int degradation_level() const { return ladder_.level(); }
  BreakerState decode_breaker() const { return decode_breaker_.state(); }
  BreakerState detect_breaker() const { return detect_breaker_.state(); }

 private:
  const detect::Pipeline& pipeline_for_level(int level);
  ServedFrame serve_frame(const video::MockH264Decoder& decoder, int index,
                          const FaultPlan* plan);
  void reset();

  // Metrics helpers; no-ops when registry_ is null.
  void count(const char* name, const obs::Labels& labels = {},
             double delta = 1.0);
  void gauge(const char* name, double value, const obs::Labels& labels = {});
  void observe_histogram(const char* name, std::vector<double> bounds,
                         double value);
  void trace_instant(const std::string& text);

  vgpu::DeviceSpec spec_;
  haar::Cascade cascade_;
  detect::PipelineOptions base_;
  ServiceOptions options_;
  obs::Registry* registry_;

  std::map<int, std::unique_ptr<detect::Pipeline>> pipelines_;  ///< per level
  DegradationLadder ladder_;
  CircuitBreaker decode_breaker_;
  CircuitBreaker detect_breaker_;
  core::Rng jitter_rng_;
};

}  // namespace fdet::serve
