// Fault-tolerant streaming detection service (the serving layer of
// ROADMAP's "heavy traffic" north star).
//
// StreamingService wraps ingest::FrameSource -> detect::Pipeline behind a
// bounded frame queue with backpressure and a per-frame deadline budget,
// all in *virtual* time: frames arrive at the stream fps, service
// occupancy is the modeled decode + detect (+ retry backoff) latency, and
// the queue depth is derived from arrivals vs completions —
// deterministic, like the rest of the simulator, so chaos runs are
// exactly reproducible. Any frame source serves identically: the mock
// hardware H.264 decoder (a convenience overload wraps it) or the
// validating byte-stream container parsers of src/ingest/.
//
// Recovery behavior (serve/policy.h):
//   * transient faults (decode glitches, vgpu launch hiccups) retry with
//     exponential backoff + jitter, bounded by RetryOptions;
//   * repeated per-stage frame failures trip a circuit breaker that
//     rejects the stage for a cooldown and forces the serial-exec rung of
//     the degradation ladder;
//   * hard resource faults (constant/shared overflow), malformed frame
//     bytes (ingest::IngestError — the bytes won't heal, so no retry) and
//     unexpected errors quarantine the frame with a structured
//     FrameError — the service never crashes;
//   * blowing the deadline budget walks the degradation ladder down
//     (shed finest scales -> raise min_neighbors -> serial exec -> shed
//     queued frames); sustained in-budget frames climb back up.
//
// Everything is observable: serve.* metrics in an obs::Registry and trace
// spans/instants per recovery action on the ambient obs::TraceSession.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "detect/pipeline.h"
#include "ingest/frame_source.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "serve/faults.h"
#include "serve/policy.h"
#include "video/decoder.h"

namespace fdet::serve {

enum class FrameStatus {
  kOk,
  kDegraded,
  kDropped,
  kFailed,
  /// Admission control turned the frame away before it entered any
  /// queue. Only the fleet layer (serve/fleet.h) produces this — a
  /// single-stream service admits everything up to queue capacity.
  kAdmissionRejected,
};
const char* frame_status_name(FrameStatus status);

/// Outcome of one frame through the service.
struct ServedFrame {
  int index = 0;
  FrameStatus status = FrameStatus::kOk;
  int degradation_level = 0;  ///< ladder level the frame was served at
  int retries = 0;            ///< retry attempts spent across both stages
  bool fault_injected = false;
  double arrival_s = 0.0;     ///< virtual stream time the frame arrived
  double completion_s = 0.0;  ///< virtual time the service finished it
  double decode_ms = 0.0;
  double detect_ms = 0.0;
  double backoff_ms = 0.0;    ///< total retry backoff charged to the frame
  double latency_ms = 0.0;    ///< end-to-end: completion - arrival
  int queue_depth = 0;        ///< backlog when the frame arrived
  /// Delivery-order classification from the source (lossy transports
  /// deliver late or twice; the service counts both, crashes on neither).
  ingest::FrameArrival arrival = ingest::FrameArrival::kInOrder;
  /// The source reported a delivery gap (IngestErrorKind::kMissingFrame):
  /// a typed drop, distinct from malformed bytes.
  bool missing = false;
  std::uint64_t trace_id = 0; ///< causal trace id of the frame (0 = off)
  /// Causal chain of everything that went wrong on this frame, oldest
  /// first: "fault:launch -> retry:detect -> deadline-miss". Empty for a
  /// clean frame. The same tokens appear in the flight-recorder dump.
  std::string cause;
  std::vector<detect::Detection> detections;  ///< empty unless served
  std::optional<FrameError> error;            ///< kFailed only
};

/// Knobs of the observability layer threaded through the serving loop.
struct ObservabilityOptions {
  /// Install a per-frame TraceContext (trace ids on every span/event).
  bool tracing = true;
  /// Record frames/stages/launches/decisions into the flight recorder.
  bool flight_recorder = true;
  std::size_t recorder_capacity = 8192;
  /// Directory for dump-on-anomaly files ("" = keep the ring in memory
  /// but write nothing). Files are `flight_f<frame>_<anomaly>.json`,
  /// written atomically (core::atomic_write_file).
  std::string dump_dir;
  /// Virtual seconds of history each dump snapshots.
  double dump_window_s = 2.0;
  /// Cap on dump files per run (first-come, at most one per frame and
  /// anomaly class).
  int max_dumps = 64;
  /// Also dump on injected faults that caused no other anomaly (chaos
  /// runs demand a causal record for *every* injected fault).
  bool dump_on_fault = true;
  /// Drive the DegradationLadder from the SLO engine's burn-rate decision
  /// (default). False restores the legacy direct ladder.observe() path;
  /// both produce identical dynamics at default SloOptions.
  bool slo_ladder = true;
  /// SLO engine configuration. deadline_ms, recover_fraction and
  /// recover_after are overridden from ServiceOptions at run start so the
  /// engine always judges the service's actual budget.
  obs::SloOptions slo;
};

struct ServiceOptions {
  double fps = 24.0;          ///< stream arrival rate
  double deadline_ms = 40.0;  ///< per-frame latency budget (24 fps display)
  int queue_capacity = 4;     ///< arrivals beyond this backlog are dropped
  RetryOptions retry;
  BreakerOptions breaker;
  DegradeOptions degrade;
  ObservabilityOptions obs;
  std::uint64_t seed = 0x5e12e;  ///< backoff-jitter stream
};

/// One flight-recorder dump written during a run.
struct AnomalyDump {
  int frame = -1;
  obs::Anomaly kind = obs::Anomaly::kDeadlineMiss;
  std::string cause;
  std::string path;
};

/// Aggregate of one run(): the per-frame records plus the summary the
/// chaos harness asserts on.
struct ServiceReport {
  std::vector<ServedFrame> frames;
  int ok = 0;
  int degraded = 0;
  int dropped = 0;
  int failed = 0;
  int deadline_misses = 0;
  int retries = 0;
  int faults_injected = 0;
  int breaker_trips = 0;
  int degradation_shifts = 0;
  int final_degradation_level = 0;
  /// Frames whose bytes the ingest layer rejected with a typed
  /// IngestError (ErrorClass::kMalformed; subset of `failed`).
  int ingest_rejects = 0;
  /// Delivery gaps (kMissingFrame drops; subset of `dropped`).
  int missing_frames = 0;
  /// Frames delivered after a successor (served, cause-tagged).
  int out_of_order = 0;
  /// Frames delivered more than once (served, cause-tagged).
  int duplicates = 0;
  /// Longest streak of frames that produced no detections output
  /// (dropped or failed) — the chaos harness bounds this.
  int max_consecutive_unserved = 0;
  double max_latency_ms = 0.0;
  /// Flight-recorder dumps written during the run (dump_dir set).
  std::vector<AnomalyDump> dumps;
  /// End-of-run SLO state (percentiles, miss ratio, burn rates).
  obs::SloSnapshot slo;
};

class StreamingService {
 public:
  /// `base` is the level-0 pipeline configuration; the degradation ladder
  /// derives the shed configurations from it. `registry` may be null
  /// (no metrics).
  StreamingService(const vgpu::DeviceSpec& spec, haar::Cascade cascade,
                   detect::PipelineOptions base, ServiceOptions options,
                   obs::Registry* registry = nullptr);

  /// Serves frames [0, count) of the source's stream under an optional
  /// fault plan (null = fault-free). Resets service state (ladder,
  /// breakers, virtual clock) so consecutive runs are independent.
  ServiceReport run(const ingest::FrameSource& source, int count,
                    const FaultPlan* plan = nullptr);

  /// Convenience: serves the mock hardware decoder through its
  /// H264FrameSource adapter (the pre-ingest API, kept for callers that
  /// never touch byte streams).
  ServiceReport run(const video::MockH264Decoder& decoder, int count,
                    const FaultPlan* plan = nullptr);

  const ServiceOptions& options() const { return options_; }
  int degradation_level() const { return ladder_.level(); }
  BreakerState decode_breaker() const { return decode_breaker_.state(); }
  BreakerState detect_breaker() const { return detect_breaker_.state(); }
  /// The always-on flight recorder (null when disabled via options).
  const obs::FlightRecorder* recorder() const { return recorder_.get(); }

 private:
  const detect::Pipeline& pipeline_for_level(int level);
  /// `start_s` is the virtual time service begins on the frame
  /// (max(arrival, previous completion)) — flight events and vgpu launch
  /// spans are timestamped relative to it.
  ServedFrame serve_frame(const ingest::FrameSource& source, int index,
                          const FaultPlan* plan, double start_s);
  void reset();

  // Metrics helpers; no-ops when registry_ is null.
  void count(const char* name, const obs::Labels& labels = {},
             double delta = 1.0);
  void gauge(const char* name, double value, const obs::Labels& labels = {});
  void observe_histogram(const char* name, std::vector<double> bounds,
                         double value);
  void trace_instant(const std::string& text);

  // Flight-recorder helpers; no-ops when the recorder is disabled.
  void flight(obs::FlightEventKind kind, int frame, double ts_us,
              double dur_us, const char* name, const char* detail,
              double value = 0.0);
  void note_anomaly(ServedFrame& sf, obs::Anomaly kind);
  void write_dumps(const ServedFrame& sf, ServiceReport& report);

  vgpu::DeviceSpec spec_;
  haar::Cascade cascade_;
  detect::PipelineOptions base_;
  ServiceOptions options_;
  obs::Registry* registry_;

  std::map<int, std::unique_ptr<detect::Pipeline>> pipelines_;  ///< per level
  DegradationLadder ladder_;
  CircuitBreaker decode_breaker_;
  CircuitBreaker detect_breaker_;
  core::Rng jitter_rng_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  std::unique_ptr<obs::SloEngine> slo_;
  /// Anomaly classes observed on the frame currently being processed.
  std::vector<obs::Anomaly> frame_anomalies_;
  int dumps_written_ = 0;
};

}  // namespace fdet::serve
