#include "serve/fleet.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <sstream>
#include <utility>

#include "core/check.h"
#include "core/rng.h"
#include "vgpu/kernel.h"

namespace fdet::serve {

namespace {

/// 64-bit FNV-1a over a luma plane — the detection-identity digest the
/// cross-stream result cache keys on (CRC32's collision odds are too
/// thin once hundreds of streams share frames).
std::uint64_t luma_digest(const img::ImageU8& luma) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::uint8_t px : luma.pixels()) {
    h ^= px;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Nearest-rank percentile over served-frame latencies; `values` is
/// consumed (sorted in place).
double percentile(std::vector<double>& values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const auto n = values.size();
  auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(n)));
  rank = std::min(n, std::max<std::size_t>(1, rank));
  return values[rank - 1];
}

// Discrete-event queue. Kind doubles as the same-instant priority:
// device state changes resolve before traffic, so a loss at t tears
// down a dispatch that would have completed at exactly t.
enum EventKind {
  kEvDown = 0,
  kEvUp = 1,
  kEvWatchdog = 2,
  kEvArrival = 3,
  kEvComplete = 4,
};

struct Event {
  double t = 0.0;
  int kind = kEvArrival;
  int a = 0;  ///< device or stream
  int b = 0;  ///< frame index / device-fault spec index
  std::uint64_t gen = 0;
};

struct EventAfter {
  bool operator()(const Event& x, const Event& y) const {
    if (x.t != y.t) return x.t > y.t;
    if (x.kind != y.kind) return x.kind > y.kind;
    if (x.a != y.a) return x.a > y.a;
    return x.b > y.b;
  }
};

struct ReadyFrame {
  int stream = 0;
  int frame = 0;
  double arrival_s = 0.0;
  QosClass cls = QosClass::kBestEffort;
  bool solo = false;  ///< mid-failover: never batched with other streams
};

/// Dispatch priority: gold before silver before best-effort, then FIFO,
/// then stream id — total and deterministic.
bool ready_before(const ReadyFrame& x, const ReadyFrame& y) {
  if (x.cls != y.cls) return x.cls < y.cls;
  if (x.arrival_s != y.arrival_s) return x.arrival_s < y.arrival_s;
  return x.stream < y.stream;
}

/// Shed priority (worst first): best-effort before silver before gold,
/// newest arrival first.
bool shed_before(const ReadyFrame& x, const ReadyFrame& y) {
  if (x.cls != y.cls) return x.cls > y.cls;
  if (x.arrival_s != y.arrival_s) return x.arrival_s > y.arrival_s;
  return x.stream > y.stream;
}

struct BatchItem {
  int stream = 0;
  int frame = 0;
};

struct DecodeEntry {
  double decode_ms = 0.0;
  img::ImageU8 luma;
  std::uint64_t digest = 0;
};

struct DetectEntry {
  double detect_ms = 0.0;
  std::vector<detect::Detection> detections;
};

void append_cause(FleetFrame& rec, const std::string& token) {
  if (!rec.cause.empty()) {
    rec.cause += " -> ";
  }
  rec.cause += token;
}

}  // namespace

const char* qos_class_name(QosClass cls) {
  switch (cls) {
    case QosClass::kGold: return "gold";
    case QosClass::kSilver: return "silver";
    case QosClass::kBestEffort: return "best-effort";
  }
  return "?";
}

QosClass parse_qos_class(const std::string& token) {
  if (token == "gold") return QosClass::kGold;
  if (token == "silver") return QosClass::kSilver;
  if (token == "best-effort") return QosClass::kBestEffort;
  FDET_CHECK(false) << "unknown QoS class '" << token
                    << "' (classes: gold, silver, best-effort)";
  return QosClass::kBestEffort;
}

const char* device_state_name(DeviceState state) {
  switch (state) {
    case DeviceState::kHealthy: return "healthy";
    case DeviceState::kLost: return "lost";
    case DeviceState::kProbation: return "probation";
  }
  return "?";
}

bool TokenBucket::try_admit(double now_s) {
  const double dt = std::max(0.0, now_s - last_s_);
  last_s_ = std::max(last_s_, now_s);
  tokens_ = std::min(options_.burst, tokens_ + dt * options_.rate_per_s);
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return true;
  }
  return false;
}

std::vector<TenantMixEntry> parse_tenant_mix(const std::string& text) {
  std::vector<TenantMixEntry> mix;
  std::istringstream stream(text);
  for (std::string token; std::getline(stream, token, ',');) {
    if (token.empty()) {
      continue;
    }
    const auto colon = token.find(':');
    FDET_CHECK(colon != std::string::npos)
        << "tenant mix entry '" << token << "' is not <class>:<streams>";
    TenantMixEntry entry;
    entry.spec.name = token.substr(0, colon);
    entry.spec.cls = parse_qos_class(entry.spec.name);
    try {
      entry.streams = std::stoi(token.substr(colon + 1));
    } catch (const std::exception&) {
      entry.streams = 0;  // rejected below with the token in the message
    }
    FDET_CHECK(entry.streams >= 1)
        << "tenant mix stream count in '" << token
        << "' must be a positive integer";
    mix.push_back(std::move(entry));
  }
  FDET_CHECK(!mix.empty()) << "tenant mix '" << text << "' names no tenants";
  return mix;
}

const FleetFrame* FleetReport::frame(int stream, int index) const {
  const auto it = std::lower_bound(
      frames.begin(), frames.end(), std::make_pair(stream, index),
      [](const FleetFrame& f, const std::pair<int, int>& key) {
        return std::make_pair(f.stream, f.index) < key;
      });
  if (it == frames.end() || it->stream != stream || it->index != index) {
    return nullptr;
  }
  return &*it;
}

struct FleetScheduler::StreamConfig {
  int tenant = 0;
  const ingest::FrameSource* source = nullptr;
  double fps = 1.0;
  int frames = 0;
  double phase_s = 0.0;
};

// ---------------------------------------------------------------------------
// The per-run simulation. All of run()'s mutable state lives here so a
// FleetScheduler can run clean and faulted twins back to back.

struct FleetScheduler::Sim {
  struct SimStream {
    int tenant = 0;
    QosClass cls = QosClass::kBestEffort;
    const ingest::FrameSource* source = nullptr;
    int device = -1;
    std::deque<int> queue;  ///< admitted frames waiting, FIFO
    bool in_flight = false;
    bool has_ready = false;
    /// The next dispatch must be solo: the stream is mid-failover and a
    /// batch may not cross the fault-domain boundary.
    bool solo_next = false;
    DegradationLadder ladder{DegradeOptions{}, 1.0};
    int max_level = 0;
  };

  struct SimDevice {
    DeviceHealth health;
    bool hanging = false;
    double hang_until = 0.0;
    std::uint64_t generation = 0;
    bool busy = false;
    double dispatch_s = 0.0;
    std::vector<ReadyFrame> ready;
    std::vector<BatchItem> batch;
    int frames = 0;
    int failovers_out = 0;
    double busy_ms = 0.0;
  };

  FleetScheduler* host = nullptr;
  const DeviceFaultPlan* device_plan = nullptr;
  std::vector<FaultPlan> stream_plans;  ///< per-stream seed split (empty = none)

  std::priority_queue<Event, std::vector<Event>, EventAfter> events;
  std::vector<SimStream> streams;
  std::vector<SimDevice> devices;
  std::vector<TokenBucket> buckets;  ///< one per tenant
  std::vector<int> offsets;          ///< stream -> first record index
  FleetReport report;
  std::unique_ptr<obs::SloEngine> slo;
  double last_shed_s = -1e18;

  std::map<std::pair<const void*, int>, DecodeEntry> decode_cache;
  std::map<std::pair<std::uint64_t, int>, DetectEntry> detect_cache;
  const img::ImageU8* probe_luma = nullptr;  ///< any decoded luma (seam probe)

  FleetFrame& rec(int stream, int frame) {
    return report.frames[static_cast<std::size_t>(offsets[
        static_cast<std::size_t>(stream)] + frame)];
  }

  const FleetOptions& opt() const { return host->options_; }

  // -- terminal bookkeeping --------------------------------------------------

  void settle(FleetFrame& r, FrameStatus status, double t) {
    r.status = status;
    r.completion_s = t;
    r.latency_ms = (t - r.arrival_s) * 1e3;
    r.settled = true;
  }

  // -- admission -------------------------------------------------------------

  void arrival(int s, int f, double t) {
    SimStream& ss = streams[static_cast<std::size_t>(s)];
    FleetFrame& r = rec(s, f);
    r.arrival_s = t;
    TokenBucket& bucket = buckets[static_cast<std::size_t>(ss.tenant)];
    if (!bucket.try_admit(t)) {
      append_cause(r, "admission-reject");
      r.error = FrameError{f, "admission", ErrorClass::kRejected,
                           "token bucket empty (tenant " +
                               host->tenants_[static_cast<std::size_t>(
                                                  ss.tenant)].name +
                               ")",
                           0};
      settle(r, FrameStatus::kAdmissionRejected, t);
      host->flight(obs::FlightEventKind::kDrop, s, f, t * 1e6, "admission",
                   qos_class_name(ss.cls));
    } else if (static_cast<int>(ss.queue.size()) >=
               opt().stream_queue_capacity) {
      append_cause(r, "shed:stream-backpressure");
      settle(r, FrameStatus::kDropped, t);
      host->flight(obs::FlightEventKind::kDrop, s, f, t * 1e6, "drop",
                   "stream-backpressure");
    } else {
      ss.queue.push_back(f);
      promote(s, t);
      if (ss.device >= 0) {
        maybe_dispatch(ss.device, t);
      }
    }
    const int depth = backlog();
    slo->observe_queue_depth(static_cast<double>(depth));
    if (depth > static_cast<int>(opt().overload_backlog_per_stream *
                                 static_cast<double>(streams.size()))) {
      shed_one("queue-overload", t);
    }
  }

  int backlog() const {
    int depth = 0;
    for (const SimStream& ss : streams) {
      depth += static_cast<int>(ss.queue.size()) + (ss.has_ready ? 1 : 0);
    }
    return depth;
  }

  // -- ready queues ----------------------------------------------------------

  void promote(int s, double t) {
    SimStream& ss = streams[static_cast<std::size_t>(s)];
    if (ss.in_flight || ss.has_ready || ss.queue.empty() || ss.device < 0) {
      return;
    }
    // The shed-frames rung serves only the newest backlog frame.
    if (ss.ladder.step().shed_queued_frames) {
      while (ss.queue.size() > 1) {
        const int f = ss.queue.front();
        ss.queue.pop_front();
        FleetFrame& r = rec(s, f);
        append_cause(r, "shed:shed-frames");
        settle(r, FrameStatus::kDropped, t);
        host->flight(obs::FlightEventKind::kDrop, s, f, t * 1e6, "drop",
                     "shed-frames");
      }
    }
    const int f = ss.queue.front();
    ss.queue.pop_front();
    ss.has_ready = true;
    devices[static_cast<std::size_t>(ss.device)].ready.push_back(
        {s, f, rec(s, f).arrival_s, ss.cls, ss.solo_next});
    shed_device_overflow(ss.device, t);
  }

  void shed_device_overflow(int d, double t) {
    SimDevice& dev = devices[static_cast<std::size_t>(d)];
    while (static_cast<int>(dev.ready.size()) > opt().device_queue_capacity) {
      const auto victim =
          std::min_element(dev.ready.begin(), dev.ready.end(), shed_before);
      const int vs = victim->stream;
      const int vf = victim->frame;
      dev.ready.erase(victim);
      streams[static_cast<std::size_t>(vs)].has_ready = false;
      FleetFrame& r = rec(vs, vf);
      append_cause(r, "shed:fleet-backpressure");
      settle(r, FrameStatus::kDropped, t);
      host->flight(obs::FlightEventKind::kDrop, vs, vf, t * 1e6, "drop",
                   "fleet-backpressure");
      promote(vs, t);  // next frame of the shed stream may take the slot
    }
  }

  // -- dispatch --------------------------------------------------------------

  bool dispatchable(const SimDevice& dev) const {
    return !dev.busy && !dev.hanging &&
           dev.health.state() != DeviceState::kLost && !dev.ready.empty();
  }

  void maybe_dispatch(int d, double t) {
    SimDevice& dev = devices[static_cast<std::size_t>(d)];
    while (dispatchable(dev)) {
      const auto primary =
          std::min_element(dev.ready.begin(), dev.ready.end(), ready_before);
      std::vector<ReadyFrame> picked{*primary};
      dev.ready.erase(primary);
      const int level =
          streams[static_cast<std::size_t>(picked[0].stream)].ladder.level();
      // Batching boundary rule: only a fully healthy device fuses
      // cross-stream work, and never with a stream mid-failover — a
      // recovered device (probation) and failed-over streams serve solo.
      const bool may_batch = opt().cross_stream_batching &&
                             !picked[0].solo &&
                             dev.health.state() == DeviceState::kHealthy;
      while (may_batch &&
             static_cast<int>(picked.size()) < opt().batch_max) {
        auto best = dev.ready.end();
        for (auto it = dev.ready.begin(); it != dev.ready.end(); ++it) {
          if (it->solo ||
              streams[static_cast<std::size_t>(it->stream)].ladder.level() !=
                  level) {
            continue;
          }
          if (best == dev.ready.end() || ready_before(*it, *best)) {
            best = it;
          }
        }
        if (best == dev.ready.end()) {
          break;
        }
        picked.push_back(*best);
        dev.ready.erase(best);
      }
      std::vector<BatchItem> batch;
      for (const ReadyFrame& rf : picked) {
        SimStream& ss = streams[static_cast<std::size_t>(rf.stream)];
        ss.has_ready = false;
        ss.in_flight = true;
        ss.solo_next = false;
        batch.push_back({rf.stream, rf.frame});
      }
      if (dispatch_batch(d, std::move(batch), t)) {
        return;  // device busy until the completion event
      }
      // Every frame of the batch settled at decode; try the next ready set.
    }
  }

  /// Runs decode + cached detection for the batch and schedules its
  /// completion. Returns false when everything settled immediately (the
  /// device stays free).
  bool dispatch_batch(int d, std::vector<BatchItem> batch, double t) {
    SimDevice& dev = devices[static_cast<std::size_t>(d)];
    std::vector<BatchItem> live;
    double total_ms = 0.0;
    for (const BatchItem& item : batch) {
      SimStream& ss = streams[static_cast<std::size_t>(item.stream)];
      FleetFrame& r = rec(item.stream, item.frame);
      r.device = d;
      r.degradation_level = ss.ladder.level();
      ss.max_level = std::max(ss.max_level, ss.ladder.level());
      if (!decode_frame(item, r, t)) {
        ss.in_flight = false;
        promote(item.stream, t);
        continue;
      }
      const double slow = device_plan == nullptr
                              ? 1.0
                              : device_plan->slow_factor(d, item.stream,
                                                         item.frame, t);
      if (slow > 1.0) {
        r.fault_injected = true;
        append_cause(r, "fault:device-slow");
        host->flight(obs::FlightEventKind::kFault, item.stream, item.frame,
                     t * 1e6, "fault", "device-slow", slow);
      }
      r.detect_ms *= slow;
      total_ms += r.decode_ms + r.detect_ms;
      live.push_back(item);
    }
    if (live.empty()) {
      return false;
    }
    if (live.size() > 1) {
      // The concurrent-kernel trick across streams: fused same-level
      // launches amortize per-launch overhead.
      total_ms = std::max(0.01, total_ms - opt().batch_overhead_ms *
                                               static_cast<double>(
                                                   live.size() - 1));
      ++report.batches;
      report.batched_frames += static_cast<int>(live.size());
    }
    for (const BatchItem& item : live) {
      rec(item.stream, item.frame).batch_size = static_cast<int>(live.size());
    }
    dev.batch = std::move(live);
    dev.busy = true;
    dev.dispatch_s = t;
    events.push({t + total_ms * 1e-3, kEvComplete, d, 0, dev.generation});
    return true;
  }

  /// Decode stage of one frame, through the per-run pristine-decode
  /// cache. Returns false when the frame settled (missing / malformed /
  /// retries exhausted).
  bool decode_frame(const BatchItem& item, FleetFrame& r, double t) {
    const SimStream& ss = streams[static_cast<std::size_t>(item.stream)];
    const FaultPlan* splan =
        stream_plans.empty()
            ? nullptr
            : &stream_plans[static_cast<std::size_t>(item.stream)];
    if (splan != nullptr &&
        splan->fires(FaultKind::kBitstream, item.frame, 0)) {
      r.fault_injected = true;
      append_cause(r, "fault:bitstream -> quarantine:decode/malformed");
      r.error = FrameError{item.frame, "decode", ErrorClass::kMalformed,
                           "injected bitstream damage", 1};
      settle(r, FrameStatus::kFailed, t);
      host->flight(obs::FlightEventKind::kQuarantine, item.stream, item.frame,
                   t * 1e6, "quarantine", "decode/malformed");
      return false;
    }
    const DecodeEntry* entry = nullptr;
    try {
      entry = &decode_entry(ss.source, item.frame);
    } catch (const ingest::IngestError& error) {
      if (error.kind() == ingest::IngestErrorKind::kMissingFrame) {
        r.missing = true;
        append_cause(r, "missing-frame");
        settle(r, FrameStatus::kDropped, t);
        host->flight(obs::FlightEventKind::kDrop, item.stream, item.frame,
                     t * 1e6, "drop", "missing-frame");
      } else {
        append_cause(r, std::string("quarantine:decode/") +
                            ingest::ingest_error_kind_name(error.kind()));
        r.error = FrameError{item.frame, "decode", ErrorClass::kMalformed,
                             error.what(), 1};
        settle(r, FrameStatus::kFailed, t);
        host->flight(obs::FlightEventKind::kQuarantine, item.stream,
                     item.frame, t * 1e6, "quarantine", "decode/malformed");
      }
      return false;
    }
    r.decode_ms = entry->decode_ms;
    r.arrival = ss.source->arrival_kind(item.frame);
    if (r.arrival == ingest::FrameArrival::kOutOfOrder) {
      append_cause(r, "out-of-order");
    } else if (r.arrival == ingest::FrameArrival::kDuplicate) {
      append_cause(r, "duplicate-frame");
    }
    // Injected decode glitches: the fleet models StreamingService's
    // bounded retry as extra charged decode attempts (no backoff jitter
    // at fleet granularity); exhausting the bound quarantines.
    if (splan != nullptr) {
      int failing = 0;
      while (failing < 3 &&
             splan->fires(FaultKind::kDecodeFail, item.frame, failing)) {
        ++failing;
      }
      if (failing > 0) {
        r.fault_injected = true;
        r.decode_ms *= static_cast<double>(failing + 1);
        if (failing >= 3) {
          append_cause(r, "fault:decode -> failed:decode");
          r.error = FrameError{item.frame, "decode", ErrorClass::kTransient,
                               "injected decode failure (retries exhausted)",
                               3};
          settle(r, FrameStatus::kFailed, t);
          return false;
        }
        append_cause(r, "fault:decode -> retry:decode");
      }
    }
    std::uint64_t digest = entry->digest;
    const img::ImageU8* luma = &entry->luma;
    img::ImageU8 corrupted;
    if (splan != nullptr &&
        splan->fires(FaultKind::kCorruptLuma, item.frame, 0)) {
      r.fault_injected = true;
      append_cause(r, "fault:corrupt");
      corrupted = entry->luma;
      corrupt_luma(corrupted,
                   core::hash_combine(
                       splan->seed(),
                       static_cast<std::uint64_t>(item.frame)));
      digest = luma_digest(corrupted);
      luma = &corrupted;
    }
    const DetectEntry& det = detect_entry(digest, r.degradation_level, *luma);
    r.detect_ms = det.detect_ms;
    r.detections = det.detections;
    return true;
  }

  DecodeEntry& decode_entry(const ingest::FrameSource* source, int frame) {
    const std::pair<const void*, int> key{source, frame};
    const auto it = decode_cache.find(key);
    if (it != decode_cache.end()) {
      return it->second;
    }
    video::DecodedFrame decoded = source->decode(frame);  // may throw
    DecodeEntry entry;
    entry.decode_ms = decoded.decode_ms;
    entry.luma = std::move(decoded.frame.luma());
    entry.digest = luma_digest(entry.luma);
    DecodeEntry& stored = decode_cache.emplace(key, std::move(entry))
                              .first->second;
    if (probe_luma == nullptr) {
      probe_luma = &stored.luma;
    }
    return stored;
  }

  const DetectEntry& detect_entry(std::uint64_t digest, int level,
                                  const img::ImageU8& luma) {
    const std::pair<std::uint64_t, int> key{digest, level};
    const auto it = detect_cache.find(key);
    if (it != detect_cache.end()) {
      return it->second;
    }
    detect::FrameResult result = host->pipeline_for_level(level).process(luma);
    DetectEntry entry;
    entry.detect_ms = result.detect_ms;
    entry.detections = std::move(result.detections);
    return detect_cache.emplace(key, std::move(entry)).first->second;
  }

  // -- completion ------------------------------------------------------------

  void complete(int d, std::uint64_t gen, double t) {
    SimDevice& dev = devices[static_cast<std::size_t>(d)];
    if (gen != dev.generation) {
      return;  // torn down by a device fault
    }
    if (dev.hanging) {
      // The device is stalled: the work finishes when the hang clears
      // (unless the watchdog declares the device lost first, which
      // bumps the generation and discards this).
      events.push({std::max(t, dev.hang_until), kEvComplete, d, 0, gen});
      return;
    }
    dev.busy = false;
    dev.busy_ms += (t - dev.dispatch_s) * 1e3;
    std::vector<int> touched;
    for (const BatchItem& item : dev.batch) {
      SimStream& ss = streams[static_cast<std::size_t>(item.stream)];
      FleetFrame& r = rec(item.stream, item.frame);
      settle(r,
             r.degradation_level > 0 ? FrameStatus::kDegraded
                                     : FrameStatus::kOk,
             t);
      ++dev.frames;
      dev.health.on_frame_ok();
      if (r.latency_ms > opt().deadline_ms) {
        r.deadline_miss = true;
        append_cause(r, "deadline-miss");
        host->flight(obs::FlightEventKind::kDeadlineMiss, item.stream,
                     item.frame, t * 1e6, "deadline-miss", "", r.latency_ms);
      }
      host->flight(obs::FlightEventKind::kFrame, item.stream, item.frame,
                   r.arrival_s * 1e6, "frame", frame_status_name(r.status),
                   r.latency_ms);
      const obs::SloDecision decision = slo->observe_frame(r.latency_ms);
      if (decision.degrade) {
        shed_one("slo-burn", t);
      } else if (decision.recover) {
        recover_one("slo-recover", t);
      }
      ss.in_flight = false;
      promote(item.stream, t);
      touched.push_back(ss.device);
    }
    dev.batch.clear();
    maybe_dispatch(d, t);
    for (const int other : touched) {
      if (other >= 0 && other != d) {
        maybe_dispatch(other, t);
      }
    }
  }

  // -- fleet-wide shedding ---------------------------------------------------

  void shed_one(const char* cause, double t) {
    if (t - last_shed_s < opt().shed_cooldown_s) {
      return;
    }
    // Best-effort gives capacity first; gold sheds only when everyone
    // below is already at the floor.
    for (const QosClass cls : {QosClass::kBestEffort, QosClass::kSilver,
                               QosClass::kGold}) {
      bool moved = false;
      for (std::size_t s = 0; s < streams.size(); ++s) {
        SimStream& ss = streams[s];
        if (ss.cls != cls ||
            ss.ladder.level() >= DegradationLadder::max_level()) {
          continue;
        }
        ss.ladder.apply(true, false, cause);
        ss.max_level = std::max(ss.max_level, ss.ladder.level());
        moved = true;
      }
      if (moved) {
        ++report.shed_steps;
        last_shed_s = t;
        host->flight(obs::FlightEventKind::kLadder, -1, -1, t * 1e6, "shed",
                     qos_class_name(cls), 1.0);
        return;
      }
    }
  }

  void recover_one(const char* cause, double t) {
    // Gold recovers first: the premium class climbs back to full
    // quality before lower classes get headroom back.
    for (const QosClass cls : {QosClass::kGold, QosClass::kSilver,
                               QosClass::kBestEffort}) {
      bool moved = false;
      for (std::size_t s = 0; s < streams.size(); ++s) {
        SimStream& ss = streams[s];
        if (ss.cls != cls || ss.ladder.level() == 0) {
          continue;
        }
        ss.ladder.apply(false, true, cause);
        moved = true;
      }
      if (moved) {
        ++report.recover_steps;
        host->flight(obs::FlightEventKind::kLadder, -1, -1, t * 1e6,
                     "recover", qos_class_name(cls), -1.0);
        return;
      }
    }
  }

  // -- device fault domain ---------------------------------------------------

  void device_down(int d, int spec_index, double t) {
    SimDevice& dev = devices[static_cast<std::size_t>(d)];
    const DeviceFaultSpec& spec =
        device_plan->specs()[static_cast<std::size_t>(spec_index)];
    const char* kind = device_fault_kind_name(spec.kind);
    ++report.device_faults;
    host->flight(obs::FlightEventKind::kFault, -1, d, t * 1e6, "fault", kind,
                 static_cast<double>(d));
    if (!dev.batch.empty()) {
      inject_via_launch_seam(d, kind);
      for (const BatchItem& item : dev.batch) {
        FleetFrame& r = rec(item.stream, item.frame);
        r.fault_injected = true;
        append_cause(r, std::string("fault:") + kind);
      }
    }
    if (spec.kind == DeviceFaultKind::kDeviceHang) {
      // Silent stall: nothing migrates until the watchdog notices.
      dev.hanging = true;
      dev.hang_until = t + spec.duration_s;
      events.push({t + opt().hang_watchdog_ms * 1e-3, kEvWatchdog, d, 0,
                   dev.generation});
    } else {
      dev.health.on_fault();
      fail_device(d, t);
    }
  }

  void watchdog(int d, std::uint64_t gen, double t) {
    SimDevice& dev = devices[static_cast<std::size_t>(d)];
    if (!dev.hanging || gen != dev.generation) {
      return;  // the hang resolved (or the device already failed over)
    }
    ++report.watchdog_fires;
    dev.hanging = false;
    dev.health.on_fault();
    host->flight(obs::FlightEventKind::kBreaker, -1, d, t * 1e6, "watchdog",
                 "device-hang->lost", static_cast<double>(d));
    fail_device(d, t);
  }

  void device_up(int d, double t) {
    SimDevice& dev = devices[static_cast<std::size_t>(d)];
    dev.hanging = false;
    if (dev.health.state() == DeviceState::kLost) {
      dev.health.on_recovered();
      host->flight(obs::FlightEventKind::kBreaker, -1, d, t * 1e6, "device",
                   "lost->probation", static_cast<double>(d));
      rebalance_to(d, t);
    }
    // A cleared hang (watchdog never fired) may leave ready work behind.
    maybe_dispatch(d, t);
  }

  /// Tears down a lost device: in-flight frames re-queue at the front of
  /// their streams (order preserved), every assigned stream migrates to
  /// the least-loaded healthy device, and the re-dispatch is marked solo
  /// so failover traffic never fuses into a cross-stream batch.
  void fail_device(int d, double t) {
    SimDevice& dev = devices[static_cast<std::size_t>(d)];
    ++dev.generation;  // discard any in-flight completion
    dev.busy = false;
    for (const BatchItem& item : dev.batch) {
      SimStream& ss = streams[static_cast<std::size_t>(item.stream)];
      FleetFrame& r = rec(item.stream, item.frame);
      r.failed_over = true;
      append_cause(r, "failover:dev" + std::to_string(d));
      ++report.failovers;
      ++dev.failovers_out;
      ss.queue.push_front(item.frame);
      ss.in_flight = false;
      ss.solo_next = true;
    }
    dev.batch.clear();
    // Un-promote ready frames (they follow their streams).
    for (const ReadyFrame& rf : dev.ready) {
      SimStream& ss = streams[static_cast<std::size_t>(rf.stream)];
      ss.queue.push_front(rf.frame);
      ss.has_ready = false;
      ss.solo_next = ss.solo_next || rf.solo;
    }
    dev.ready.clear();
    std::vector<int> targets;
    for (std::size_t s = 0; s < streams.size(); ++s) {
      SimStream& ss = streams[s];
      if (ss.device != d) {
        continue;
      }
      ss.device = pick_target(d);
      if (ss.device >= 0) {
        promote(static_cast<int>(s), t);
        targets.push_back(ss.device);
      }
    }
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
    for (const int target : targets) {
      maybe_dispatch(target, t);
    }
  }

  /// Routes the device loss through the vgpu launch seam: one pipeline
  /// launch under a hook that throws LaunchError, so the fault exercises
  /// the exact path a real mid-kernel device failure would take.
  void inject_via_launch_seam(int d, const char* kind) {
    if (probe_luma == nullptr) {
      return;  // nothing ever decoded; the loss hit an idle fleet
    }
    bool surfaced = false;
    {
      const std::string what = std::string("injected ") + kind +
                               " on virtual device " + std::to_string(d);
      vgpu::ScopedLaunchFaultHook hook(
          [&what](const vgpu::KernelConfig&) {
            throw vgpu::LaunchError(what, /*transient=*/true);
          });
      try {
        host->pipeline_for_level(0).process(*probe_luma);
      } catch (const vgpu::LaunchError&) {
        surfaced = true;
      }
    }
    FDET_CHECK(surfaced) << "device fault did not surface through the "
                            "vgpu launch seam";
    host->count("serve.fleet.faults.injected", {{"kind", kind}});
  }

  int stream_load(int d) const {
    int load = 0;
    for (const SimStream& ss : streams) {
      load += ss.device == d ? 1 : 0;
    }
    return load;
  }

  /// Least-loaded serving-capable device other than `exclude`; -1 when
  /// the whole fleet is down.
  int pick_target(int exclude) const {
    int best = -1;
    int best_load = std::numeric_limits<int>::max();
    for (std::size_t d = 0; d < devices.size(); ++d) {
      const SimDevice& dev = devices[d];
      if (static_cast<int>(d) == exclude || dev.hanging ||
          dev.health.state() == DeviceState::kLost) {
        continue;
      }
      const int load = stream_load(static_cast<int>(d));
      if (load < best_load) {
        best_load = load;
        best = static_cast<int>(d);
      }
    }
    return best;
  }

  /// A recovered device adopts orphaned streams, then pulls idle streams
  /// from the most-loaded device until the fleet is balanced again.
  void rebalance_to(int d, double t) {
    for (std::size_t s = 0; s < streams.size(); ++s) {
      if (streams[s].device < 0) {
        streams[s].device = d;
        promote(static_cast<int>(s), t);
      }
    }
    while (true) {
      int most = -1;
      int most_load = -1;
      for (std::size_t o = 0; o < devices.size(); ++o) {
        if (static_cast<int>(o) == d) {
          continue;
        }
        const int load = stream_load(static_cast<int>(o));
        if (load > most_load) {
          most_load = load;
          most = static_cast<int>(o);
        }
      }
      if (most < 0 || most_load - stream_load(d) < 2) {
        return;
      }
      // Move the highest-id idle stream; busy streams finish where they
      // are (their next frame follows the new assignment).
      int moved = -1;
      for (int s = static_cast<int>(streams.size()) - 1; s >= 0; --s) {
        SimStream& ss = streams[static_cast<std::size_t>(s)];
        if (ss.device == most && !ss.in_flight && !ss.has_ready) {
          ss.device = d;
          promote(s, t);
          moved = s;
          break;
        }
      }
      if (moved < 0) {
        return;
      }
    }
  }
};

// ---------------------------------------------------------------------------

FleetScheduler::FleetScheduler(const vgpu::DeviceSpec& spec,
                               haar::Cascade cascade,
                               detect::PipelineOptions base,
                               FleetOptions options, obs::Registry* registry)
    : spec_(spec),
      cascade_(std::move(cascade)),
      base_(base),
      options_(options),
      registry_(registry) {
  FDET_CHECK(options_.devices >= 1) << "fleet needs at least one device";
  FDET_CHECK(options_.deadline_ms > 0.0) << "fleet deadline must be > 0";
  FDET_CHECK(options_.batch_max >= 1) << "batch_max must be >= 1";
  FDET_CHECK(options_.stream_queue_capacity >= 1)
      << "stream_queue_capacity must be >= 1";
  FDET_CHECK(options_.device_queue_capacity >= 1)
      << "device_queue_capacity must be >= 1";
  if (options_.flight_recorder) {
    recorder_ = std::make_unique<obs::FlightRecorder>(
        options_.recorder_capacity);
  }
}

FleetScheduler::~FleetScheduler() = default;

int FleetScheduler::stream_count() const {
  return static_cast<int>(streams_.size());
}

int FleetScheduler::add_tenant(TenantSpec spec) {
  FDET_CHECK(!spec.name.empty()) << "tenant needs a name";
  tenants_.push_back(std::move(spec));
  return static_cast<int>(tenants_.size()) - 1;
}

int FleetScheduler::add_stream(int tenant, const ingest::FrameSource& source,
                               double fps, int frames, double phase_s) {
  FDET_CHECK(tenant >= 0 && tenant < static_cast<int>(tenants_.size()))
      << "unknown tenant id " << tenant;
  FDET_CHECK(fps > 0.0) << "stream fps must be > 0";
  FDET_CHECK(frames >= 1 && frames <= source.frame_count())
      << "stream frame count " << frames << " outside the source's "
      << source.frame_count();
  FDET_CHECK(phase_s >= 0.0) << "stream phase must be >= 0";
  streams_.push_back({tenant, &source, fps, frames, phase_s});
  return static_cast<int>(streams_.size()) - 1;
}

const detect::Pipeline& FleetScheduler::pipeline_for_level(int level) {
  auto it = pipelines_.find(level);
  if (it == pipelines_.end()) {
    const DegradationStep& step = DegradationLadder::step_at(level);
    detect::PipelineOptions options = base_;
    options.skip_finest_levels =
        base_.skip_finest_levels + step.skip_finest_levels;
    options.min_neighbors = base_.min_neighbors + step.min_neighbors_boost;
    if (step.serial_exec) {
      options.mode = vgpu::ExecMode::kSerial;
    }
    it = pipelines_
             .emplace(level, std::make_unique<detect::Pipeline>(
                                 spec_, cascade_, options))
             .first;
  }
  return *it->second;
}

void FleetScheduler::count(const char* name, const obs::Labels& labels,
                           double delta) {
  if (registry_ != nullptr) {
    registry_->counter(name, labels).add(delta);
  }
}

void FleetScheduler::gauge(const char* name, double value,
                           const obs::Labels& labels) {
  if (registry_ != nullptr) {
    registry_->gauge(name, labels).set(value);
  }
}

void FleetScheduler::flight(obs::FlightEventKind kind, int stream, int frame,
                            double ts_us, const char* name,
                            const char* detail, double value) {
  if (!recorder_) {
    return;
  }
  obs::FlightEvent event;
  event.kind = kind;
  event.ts_us = ts_us;
  event.frame = frame;
  event.value = value;
  event.set_name(name);
  std::string tagged = detail;
  if (stream >= 0) {
    tagged = "s" + std::to_string(stream) +
             (tagged.empty() ? "" : ":" + tagged);
  }
  event.set_detail(tagged.c_str());
  recorder_->record(event);
}

FleetReport FleetScheduler::run(const DeviceFaultPlan* device_plan,
                                const FaultPlan* frame_plan) {
  FDET_CHECK(!tenants_.empty()) << "fleet has no tenants";
  FDET_CHECK(!streams_.empty()) << "fleet has no streams";
  if (device_plan != nullptr) {
    for (const DeviceFaultSpec& spec : device_plan->specs()) {
      FDET_CHECK(spec.device < options_.devices)
          << "device fault targets device " << spec.device
          << " but the fleet has " << options_.devices;
    }
  }

  Sim sim;
  sim.host = this;
  sim.device_plan = device_plan;
  if (frame_plan != nullptr && !frame_plan->empty()) {
    // Per-stream seed split: frame-targeted specs hit the same frame of
    // every stream; probabilistic specs diversify across streams.
    sim.stream_plans.reserve(streams_.size());
    for (std::size_t s = 0; s < streams_.size(); ++s) {
      sim.stream_plans.emplace_back(
          core::hash_combine(frame_plan->seed(), 0xabc0 + s),
          frame_plan->specs());
    }
  }

  obs::SloOptions slo_options = options_.slo;
  slo_options.deadline_ms = options_.deadline_ms;
  slo_options.recover_fraction = options_.degrade.recover_fraction;
  slo_options.recover_after = options_.degrade.recover_after;
  sim.slo = std::make_unique<obs::SloEngine>(slo_options);

  sim.buckets.reserve(tenants_.size());
  for (const TenantSpec& tenant : tenants_) {
    sim.buckets.emplace_back(tenant.admission);
  }
  sim.devices.resize(static_cast<std::size_t>(options_.devices));
  sim.streams.reserve(streams_.size());
  sim.offsets.reserve(streams_.size());
  int total_frames = 0;
  for (std::size_t s = 0; s < streams_.size(); ++s) {
    const StreamConfig& config = streams_[s];
    Sim::SimStream ss;
    ss.tenant = config.tenant;
    ss.cls = tenants_[static_cast<std::size_t>(config.tenant)].cls;
    ss.source = config.source;
    ss.device = static_cast<int>(s) % options_.devices;
    ss.ladder = DegradationLadder(options_.degrade, options_.deadline_ms);
    sim.streams.push_back(std::move(ss));
    sim.offsets.push_back(total_frames);
    total_frames += config.frames;
  }
  sim.report.frames.resize(static_cast<std::size_t>(total_frames));
  for (std::size_t s = 0; s < streams_.size(); ++s) {
    const StreamConfig& config = streams_[s];
    for (int f = 0; f < config.frames; ++f) {
      FleetFrame& r = sim.rec(static_cast<int>(s), f);
      r.stream = static_cast<int>(s);
      r.index = f;
      r.tenant = config.tenant;
      const double t = config.phase_s + static_cast<double>(f) / config.fps;
      sim.events.push({t, kEvArrival, static_cast<int>(s), f, 0});
    }
  }
  if (device_plan != nullptr) {
    const auto& specs = device_plan->specs();
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const DeviceFaultSpec& spec = specs[i];
      if (spec.kind == DeviceFaultKind::kDeviceSlow || spec.device < 0) {
        continue;  // slow faults apply at dispatch, not as state changes
      }
      sim.events.push({spec.start_s, kEvDown, spec.device,
                       static_cast<int>(i), 0});
      sim.events.push({spec.start_s + spec.duration_s, kEvUp, spec.device, 0,
                       0});
    }
  }

  while (!sim.events.empty()) {
    const Event e = sim.events.top();
    sim.events.pop();
    switch (e.kind) {
      case kEvDown: sim.device_down(e.a, e.b, e.t); break;
      case kEvUp: sim.device_up(e.a, e.t); break;
      case kEvWatchdog: sim.watchdog(e.a, e.gen, e.t); break;
      case kEvArrival: sim.arrival(e.a, e.b, e.t); break;
      case kEvComplete: sim.complete(e.a, e.gen, e.t); break;
      default: FDET_CHECK(false) << "unknown fleet event kind " << e.kind;
    }
  }

  // ---- finalize -----------------------------------------------------------
  FleetReport& report = sim.report;
  double end_s = 0.0;
  for (FleetFrame& r : report.frames) {
    end_s = std::max(end_s, r.completion_s);
  }
  for (FleetFrame& r : report.frames) {
    if (!r.settled) {
      // A scheduler bug, never expected: surface it as a typed failure
      // the chaos harness gates on instead of losing the frame.
      append_cause(r, "stranded");
      r.error = FrameError{r.index, "fleet", ErrorClass::kFatal,
                           "frame stranded at end of run", 0};
      sim.settle(r, FrameStatus::kFailed, end_s);
      ++report.stranded;
    }
  }

  report.tenants.resize(tenants_.size());
  std::vector<std::vector<double>> latencies(tenants_.size());
  for (std::size_t tnt = 0; tnt < tenants_.size(); ++tnt) {
    report.tenants[tnt].name = tenants_[tnt].name;
    report.tenants[tnt].cls = tenants_[tnt].cls;
  }
  for (const Sim::SimStream& ss : sim.streams) {
    ++report.tenants[static_cast<std::size_t>(ss.tenant)].streams;
  }
  for (const FleetFrame& r : report.frames) {
    TenantReport& tenant = report.tenants[static_cast<std::size_t>(r.tenant)];
    ++tenant.frames;
    switch (r.status) {
      case FrameStatus::kOk: ++tenant.ok; break;
      case FrameStatus::kDegraded: ++tenant.degraded; break;
      case FrameStatus::kDropped: ++tenant.dropped; break;
      case FrameStatus::kFailed: ++tenant.failed; break;
      case FrameStatus::kAdmissionRejected:
        ++tenant.admission_rejected;
        break;
    }
    if (r.status != FrameStatus::kAdmissionRejected) {
      ++tenant.admitted;
    }
    if (r.status == FrameStatus::kOk || r.status == FrameStatus::kDegraded) {
      latencies[static_cast<std::size_t>(r.tenant)].push_back(r.latency_ms);
      tenant.max_latency_ms = std::max(tenant.max_latency_ms, r.latency_ms);
      ++report.served;
    }
    tenant.deadline_misses += r.deadline_miss ? 1 : 0;
    tenant.failovers += r.failed_over ? 1 : 0;
    report.admission_rejected +=
        r.status == FrameStatus::kAdmissionRejected ? 1 : 0;
    report.dropped += r.status == FrameStatus::kDropped ? 1 : 0;
    report.failed += r.status == FrameStatus::kFailed ? 1 : 0;
    report.deadline_misses += r.deadline_miss ? 1 : 0;
    report.missing_frames += r.missing ? 1 : 0;
    report.out_of_order +=
        r.arrival == ingest::FrameArrival::kOutOfOrder ? 1 : 0;
    report.duplicates +=
        r.arrival == ingest::FrameArrival::kDuplicate ? 1 : 0;
  }
  report.admitted = total_frames - report.admission_rejected;
  for (const Sim::SimStream& ss : sim.streams) {
    TenantReport& tenant =
        report.tenants[static_cast<std::size_t>(ss.tenant)];
    tenant.max_shed_level = std::max(tenant.max_shed_level, ss.max_level);
  }
  for (std::size_t tnt = 0; tnt < tenants_.size(); ++tnt) {
    report.tenants[tnt].p50_ms = percentile(latencies[tnt], 0.50);
    report.tenants[tnt].p99_ms = percentile(latencies[tnt], 0.99);
  }
  report.devices.resize(sim.devices.size());
  for (std::size_t d = 0; d < sim.devices.size(); ++d) {
    const Sim::SimDevice& dev = sim.devices[d];
    report.devices[d].frames = dev.frames;
    report.devices[d].faults = dev.health.faults();
    report.devices[d].failovers_out = dev.failovers_out;
    report.devices[d].busy_ms = dev.busy_ms;
    report.devices[d].final_state = dev.health.state();
  }
  report.slo = sim.slo->snapshot();

  if (registry_ != nullptr) {
    for (const TenantReport& tenant : report.tenants) {
      const obs::Labels labels{{"tenant", tenant.name},
                               {"class", qos_class_name(tenant.cls)}};
      count("serve.fleet.frames", labels,
            static_cast<double>(tenant.frames));
      count("serve.fleet.admission_rejects", labels,
            static_cast<double>(tenant.admission_rejected));
      count("serve.fleet.deadline_misses", labels,
            static_cast<double>(tenant.deadline_misses));
      count("serve.fleet.failovers", labels,
            static_cast<double>(tenant.failovers));
      gauge("serve.fleet.latency_p50_ms", tenant.p50_ms, labels);
      gauge("serve.fleet.latency_p99_ms", tenant.p99_ms, labels);
      gauge("serve.fleet.max_shed_level",
            static_cast<double>(tenant.max_shed_level), labels);
    }
    count("serve.fleet.device_faults", {},
          static_cast<double>(report.device_faults));
    count("serve.fleet.watchdog_fires", {},
          static_cast<double>(report.watchdog_fires));
    count("serve.fleet.batches", {}, static_cast<double>(report.batches));
    count("serve.fleet.batched_frames", {},
          static_cast<double>(report.batched_frames));
    count("serve.fleet.shed_steps", {},
          static_cast<double>(report.shed_steps));
    count("serve.fleet.recover_steps", {},
          static_cast<double>(report.recover_steps));
    for (std::size_t d = 0; d < report.devices.size(); ++d) {
      gauge("serve.fleet.device.state",
            static_cast<double>(report.devices[d].final_state),
            {{"device", std::to_string(d)}});
    }
    sim.slo->publish(*registry_);
  }
  return report;
}

}  // namespace fdet::serve
