// Fault-injection seam for the streaming serving layer.
//
// A FaultPlan is a seeded, deterministic description of when and how the
// pipeline misbehaves: decode failures and corrupt NV12 luma (the mock
// equivalent of bitstream damage and macroblock corruption), transient
// vgpu launch failures (driver hiccups), and constant/shared-memory
// overflow faults (hard resource errors). Faults target either an exact
// frame index or fire probabilistically per frame; probabilistic decisions
// hash (seed, kind, frame) so two runs of the same plan inject identical
// faults — the chaos harness relies on that to compare a faulted run
// against its fault-free twin frame by frame.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "img/image.h"
#include "vgpu/kernel.h"

namespace fdet::serve {

enum class FaultKind {
  kDecodeFail,        ///< decode attempt throws DecodeError (transient)
  kCorruptLuma,       ///< decode succeeds but a luma band is noise
  kLaunchTransient,   ///< first kernel launch of the attempt fails, retryable
  kConstantOverflow,  ///< cascade launch reports constant-memory overflow (hard)
  kSharedOverflow,    ///< shared-memory-using launch reports overflow (hard)
  kBitstream,         ///< decode throws ingest::IngestError (malformed, no retry)
};

/// Stable lower-case token, also the spec-string name: "decode", "corrupt",
/// "launch", "const", "shared", "bitstream".
const char* fault_kind_name(FaultKind kind);

/// Thrown by FaultInjector::decode on an injected decode failure — the
/// mock equivalent of NVCUVID reporting a damaged access unit. Always
/// transient: a later attempt (attempt >= burst) succeeds.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

struct FaultSpec {
  FaultKind kind = FaultKind::kDecodeFail;
  /// Exact frame index this fault targets; -1 = probabilistic per frame.
  int frame = -1;
  /// Per-frame firing probability when frame < 0 (ignored otherwise).
  double probability = 0.0;
  /// Retryable kinds fail the first `burst` attempts of the frame and
  /// succeed afterwards; hard kinds (const/shared overflow) fail every
  /// attempt regardless. Corruption ignores it (applies once).
  int burst = 1;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  FaultPlan(std::uint64_t seed, std::vector<FaultSpec> specs);

  /// Parses a compact plan spec, comma-separated:
  ///
  ///   decode@4        decode failure at frame 4 (1 failing attempt)
  ///   launch@9x2      launch faults at frame 9, first 2 attempts fail
  ///   corrupt@12      corrupt the luma plane of frame 12
  ///   const@17        constant-overflow fault at frame 17 (hard)
  ///   shared@21       shared-overflow fault at frame 21 (hard)
  ///   bitstream@25    malformed-bitstream fault at frame 25 (no retry)
  ///   launch@0.05     probabilistic: each frame fails with p = 0.05
  ///
  /// A target with a '.' parses as a probability, otherwise as a frame
  /// index. Throws core::CheckError naming the offending token.
  static FaultPlan parse(const std::string& text, std::uint64_t seed);

  const std::vector<FaultSpec>& specs() const { return specs_; }
  bool empty() const { return specs_.empty(); }
  std::uint64_t seed() const { return seed_; }

  /// True when `kind` fires for this (frame, attempt) — deterministic.
  bool fires(FaultKind kind, int frame, int attempt = 0) const;

  /// True when any spec fires at this frame for any attempt: the chaos
  /// harness excludes such frames from clean-frame comparisons.
  bool targets_frame(int frame) const;

  /// Frame indices of all deterministic (frame-targeted) specs, sorted
  /// ascending and deduplicated — the burst schedule the chaos harness
  /// checks recovery between.
  std::vector<int> targeted_frames() const;

  std::string describe() const;

 private:
  std::uint64_t seed_ = 0;
  std::vector<FaultSpec> specs_;
};

/// Overwrites a deterministic horizontal band (~1/4 of the frame) with
/// seeded noise — the corruption model for FaultKind::kCorruptLuma.
void corrupt_luma(img::ImageU8& luma, std::uint64_t seed);

/// Builds the vgpu launch-fault hook arming the plan's launch-stage faults
/// for one (frame, attempt). Returns an empty function when nothing fires.
/// The hook throws vgpu::LaunchError: transient for kLaunchTransient, hard
/// for the overflow kinds (thrown on the first launch that actually uses
/// constant or shared memory, respectively).
vgpu::LaunchFaultHook make_launch_fault_hook(const FaultPlan& plan, int frame,
                                             int attempt);

}  // namespace fdet::serve
