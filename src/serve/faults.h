// Fault-injection seam for the streaming serving layer.
//
// A FaultPlan is a seeded, deterministic description of when and how the
// pipeline misbehaves: decode failures and corrupt NV12 luma (the mock
// equivalent of bitstream damage and macroblock corruption), transient
// vgpu launch failures (driver hiccups), and constant/shared-memory
// overflow faults (hard resource errors). Faults target either an exact
// frame index or fire probabilistically per frame; probabilistic decisions
// hash (seed, kind, frame) so two runs of the same plan inject identical
// faults — the chaos harness relies on that to compare a faulted run
// against its fault-free twin frame by frame.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "img/image.h"
#include "vgpu/kernel.h"

namespace fdet::serve {

enum class FaultKind {
  kDecodeFail,        ///< decode attempt throws DecodeError (transient)
  kCorruptLuma,       ///< decode succeeds but a luma band is noise
  kLaunchTransient,   ///< first kernel launch of the attempt fails, retryable
  kConstantOverflow,  ///< cascade launch reports constant-memory overflow (hard)
  kSharedOverflow,    ///< shared-memory-using launch reports overflow (hard)
  kBitstream,         ///< decode throws ingest::IngestError (malformed, no retry)
};

/// Stable lower-case token, also the spec-string name: "decode", "corrupt",
/// "launch", "const", "shared", "bitstream".
const char* fault_kind_name(FaultKind kind);

/// Thrown by FaultInjector::decode on an injected decode failure — the
/// mock equivalent of NVCUVID reporting a damaged access unit. Always
/// transient: a later attempt (attempt >= burst) succeeds.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

struct FaultSpec {
  FaultKind kind = FaultKind::kDecodeFail;
  /// Exact frame index this fault targets; -1 = probabilistic per frame.
  int frame = -1;
  /// Per-frame firing probability when frame < 0 (ignored otherwise).
  double probability = 0.0;
  /// Retryable kinds fail the first `burst` attempts of the frame and
  /// succeed afterwards; hard kinds (const/shared overflow) fail every
  /// attempt regardless. Corruption ignores it (applies once).
  int burst = 1;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  FaultPlan(std::uint64_t seed, std::vector<FaultSpec> specs);

  /// Parses a compact plan spec, comma-separated:
  ///
  ///   decode@4        decode failure at frame 4 (1 failing attempt)
  ///   launch@9x2      launch faults at frame 9, first 2 attempts fail
  ///   corrupt@12      corrupt the luma plane of frame 12
  ///   const@17        constant-overflow fault at frame 17 (hard)
  ///   shared@21       shared-overflow fault at frame 21 (hard)
  ///   bitstream@25    malformed-bitstream fault at frame 25 (no retry)
  ///   launch@0.05     probabilistic: each frame fails with p = 0.05
  ///
  /// A target with a '.' parses as a probability, otherwise as a frame
  /// index. Throws core::CheckError naming the offending token.
  static FaultPlan parse(const std::string& text, std::uint64_t seed);

  const std::vector<FaultSpec>& specs() const { return specs_; }
  bool empty() const { return specs_.empty(); }
  std::uint64_t seed() const { return seed_; }

  /// True when `kind` fires for this (frame, attempt) — deterministic.
  bool fires(FaultKind kind, int frame, int attempt = 0) const;

  /// True when any spec fires at this frame for any attempt: the chaos
  /// harness excludes such frames from clean-frame comparisons.
  bool targets_frame(int frame) const;

  /// Frame indices of all deterministic (frame-targeted) specs, sorted
  /// ascending and deduplicated — the burst schedule the chaos harness
  /// checks recovery between.
  std::vector<int> targeted_frames() const;

  std::string describe() const;

 private:
  std::uint64_t seed_ = 0;
  std::vector<FaultSpec> specs_;
};

/// Overwrites a deterministic horizontal band (~1/4 of the frame) with
/// seeded noise — the corruption model for FaultKind::kCorruptLuma.
void corrupt_luma(img::ImageU8& luma, std::uint64_t seed);

/// Builds the vgpu launch-fault hook arming the plan's launch-stage faults
/// for one (frame, attempt). Returns an empty function when nothing fires.
/// The hook throws vgpu::LaunchError: transient for kLaunchTransient, hard
/// for the overflow kinds (thrown on the first launch that actually uses
/// constant or shared memory, respectively).
vgpu::LaunchFaultHook make_launch_fault_hook(const FaultPlan& plan, int frame,
                                             int attempt);

// ---------------------------------------------------------------------------
// Device-level fault vocabulary (fleet layer, DESIGN.md §12).
//
// FaultPlan describes per-frame misbehavior on one device; a fleet of N
// devices adds a coarser failure axis: whole devices dropping out,
// stalling, or slowing down. DeviceFaultPlan describes those as seeded,
// deterministic outage windows in virtual time — the fleet chaos harness
// replays the same schedule against a clean twin run.

enum class DeviceFaultKind {
  kDeviceLost,  ///< device drops instantly; in-flight work is torn down
  kDeviceHang,  ///< device stalls silently; only the watchdog notices
  kDeviceSlow,  ///< device serves, but slower by `factor`
};

/// Stable token, also the spec-string name: "device-lost", "device-hang",
/// "device-slow".
const char* device_fault_kind_name(DeviceFaultKind kind);

struct DeviceFaultSpec {
  DeviceFaultKind kind = DeviceFaultKind::kDeviceLost;
  /// Target device; -1 = probabilistic on every device (slow only).
  int device = -1;
  double start_s = 0.0;     ///< outage onset, virtual seconds
  double duration_s = 0.0;  ///< outage length (recovery at start + duration)
  /// Per-dispatch firing probability for the probabilistic slow form.
  double probability = 0.0;
  /// Service-time multiplier while a device-slow fault is active.
  double factor = 4.0;
};

class DeviceFaultPlan {
 public:
  DeviceFaultPlan() = default;
  DeviceFaultPlan(std::uint64_t seed, std::vector<DeviceFaultSpec> specs);

  /// Parses a compact plan spec, comma-separated:
  ///
  ///   device-lost@1:2.5+1.0     device 1 lost at t=2.5s, back at t=3.5s
  ///   device-hang@2:4+0.5       device 2 hangs during [4.0, 4.5)
  ///   device-slow@0:3+2*4       device 0 serves 4x slower during [3, 5)
  ///   device-slow@0.05*4        any dispatch is 4x slow with p = 0.05
  ///
  /// The windowed form is `<kind>@<device>:<start_s>+<duration_s>`, with
  /// an optional `*<factor>` for device-slow; a target containing no ':'
  /// parses as a probability (device-slow only). Throws core::CheckError
  /// naming the offending token. Outage windows (lost/hang) on the same
  /// device must not overlap.
  static DeviceFaultPlan parse(const std::string& text, std::uint64_t seed);

  const std::vector<DeviceFaultSpec>& specs() const { return specs_; }
  bool empty() const { return specs_.empty(); }
  std::uint64_t seed() const { return seed_; }

  /// Outage (lost/hang) windows targeting `device`, sorted by onset.
  std::vector<const DeviceFaultSpec*> outages(int device) const;

  /// Combined service-time multiplier for one dispatch on `device` at
  /// virtual time `at_s`: windowed slow specs active at `at_s` times the
  /// probabilistic slow specs firing for (device, stream, frame) — the
  /// probabilistic decision hashes (seed, device, stream, frame) so two
  /// runs of the same plan slow identical dispatches. Returns 1.0 when
  /// nothing fires.
  double slow_factor(int device, int stream, int frame, double at_s) const;

  std::string describe() const;

 private:
  std::uint64_t seed_ = 0;
  std::vector<DeviceFaultSpec> specs_;
};

/// A combined spec can mix frame-level and device-level tokens
/// ("decode@4,device-lost@1:2+1"); the split routes `device-*` tokens to
/// the DeviceFaultPlan and everything else to the FaultPlan, sharing one
/// seed — the surveillance example's --faults flag accepts both kinds.
struct MixedFaultPlan {
  FaultPlan frame;
  DeviceFaultPlan device;
};

MixedFaultPlan parse_mixed_fault_plan(const std::string& text,
                                      std::uint64_t seed);

}  // namespace fdet::serve
