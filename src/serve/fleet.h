// Fleet-scale serving: M concurrent streams over N virtual devices.
//
// StreamingService hardens one stream over one device; FleetScheduler is
// the next level up (DESIGN.md §12) — a deterministic discrete-event
// simulation in virtual time that multiplexes hundreds of streams across
// a device fleet with:
//
//   * admission control: per-tenant QoS classes (gold / silver /
//     best-effort) behind token buckets; a rejected frame terminates
//     immediately with FrameStatus::kAdmissionRejected and
//     ErrorClass::kRejected — typed, counted, never silently skipped;
//   * device fault domains: the serve/faults.h device vocabulary
//     (device-lost / device-hang / device-slow) with per-device 3-state
//     health (healthy -> lost -> probation, mirroring CircuitBreaker)
//     and stream failover — streams on a lost device migrate to healthy
//     devices, preserving per-stream frame order and detection
//     identity; the loss itself is injected through the vgpu
//     launch-hook seam so the fault travels the same path a real
//     launch failure would;
//   * fleet-wide load shedding composing with the per-stream
//     DegradationLadder: one shared overload signal (aggregate queue
//     depth + the SLO engine's deadline burn rate) walks whole QoS
//     classes down the ladder, best-effort first — gold sheds nothing
//     while lower classes still have capacity to give;
//   * cross-stream batching: same-ladder-level frames from different
//     streams fuse into one dispatch (the paper's concurrent-kernel
//     trick lifted from pyramid scales to streams), gated so a batch
//     never crosses a fault-domain boundary — a stream mid-failover is
//     served solo on its new device first.
//
// Everything is virtual-time and seeded: the chaos harness replays the
// same arrival pattern and device-loss schedule against a clean twin
// and asserts byte-identical detections after failover.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "detect/pipeline.h"
#include "ingest/frame_source.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/slo.h"
#include "serve/faults.h"
#include "serve/policy.h"
#include "serve/service.h"

namespace fdet::serve {

enum class QosClass { kGold = 0, kSilver = 1, kBestEffort = 2 };
inline constexpr int kQosClassCount = 3;

/// Stable token: "gold" | "silver" | "best-effort".
const char* qos_class_name(QosClass cls);
/// Inverse of qos_class_name; throws core::CheckError on anything else.
QosClass parse_qos_class(const std::string& token);

/// Token-bucket admission configuration. Defaults admit everything.
struct AdmissionOptions {
  double rate_per_s = 1e18;  ///< sustained admitted frames per virtual second
  double burst = 1e18;       ///< bucket capacity (instantaneous headroom)
};

/// Deterministic token bucket clocked in virtual seconds.
class TokenBucket {
 public:
  TokenBucket() = default;
  explicit TokenBucket(AdmissionOptions options)
      : options_(options), tokens_(options.burst) {}

  /// Refills to `now_s` and takes one token if available.
  bool try_admit(double now_s);
  double tokens() const { return tokens_; }

 private:
  AdmissionOptions options_;
  double tokens_ = 1e18;
  double last_s_ = 0.0;
};

struct TenantSpec {
  std::string name;
  QosClass cls = QosClass::kBestEffort;
  AdmissionOptions admission;
};

/// One entry of a parsed tenant mix ("gold:2,best-effort:5").
struct TenantMixEntry {
  TenantSpec spec;
  int streams = 1;
};

/// Parses "class:count[,class:count...]" into tenant specs named after
/// their class. Throws core::CheckError on a malformed entry.
std::vector<TenantMixEntry> parse_tenant_mix(const std::string& text);

/// Per-device health, mirroring CircuitBreaker's three states at device
/// granularity: healthy serves; lost serves nothing (streams fail over);
/// a recovered device sits in probation until it completes one clean
/// frame (served solo — the batching boundary rule).
enum class DeviceState { kHealthy, kLost, kProbation };
const char* device_state_name(DeviceState state);

class DeviceHealth {
 public:
  DeviceState state() const { return state_; }
  int faults() const { return faults_; }
  void on_fault() {
    state_ = DeviceState::kLost;
    ++faults_;
  }
  void on_recovered() {
    if (state_ == DeviceState::kLost) {
      state_ = DeviceState::kProbation;
    }
  }
  void on_frame_ok() {
    if (state_ == DeviceState::kProbation) {
      state_ = DeviceState::kHealthy;
    }
  }

 private:
  DeviceState state_ = DeviceState::kHealthy;
  int faults_ = 0;
};

struct FleetOptions {
  int devices = 4;
  double deadline_ms = 100.0;  ///< per-frame budget, arrival to completion
  /// Admitted backlog per stream; arrivals beyond it are shed.
  int stream_queue_capacity = 4;
  /// Ready frames per device before class-aware shedding kicks in.
  int device_queue_capacity = 64;
  /// A silently hanging device is declared lost this long after the hang
  /// onset (nothing else can tell a hang from a long frame).
  double hang_watchdog_ms = 50.0;
  bool cross_stream_batching = true;
  int batch_max = 4;                ///< frames fused per dispatch
  double batch_overhead_ms = 0.5;   ///< launch overhead saved per extra frame
  /// Overload when total backlog exceeds this many frames per active
  /// stream (the queue-depth half of the shared shed signal).
  double overload_backlog_per_stream = 2.0;
  /// Minimum virtual seconds between fleet-wide shed steps, so one burst
  /// walks the ladder one rung at a time instead of slamming to the floor.
  double shed_cooldown_s = 0.25;
  DegradeOptions degrade;
  obs::SloOptions slo;  ///< deadline_ms is overridden from FleetOptions
  bool flight_recorder = true;
  std::size_t recorder_capacity = 16384;
  std::uint64_t seed = 0xf1ee7;
};

/// Outcome of one frame of one stream through the fleet.
struct FleetFrame {
  int stream = 0;
  int index = 0;
  int tenant = 0;
  int device = -1;  ///< device that completed (or last held) the frame
  FrameStatus status = FrameStatus::kOk;
  int degradation_level = 0;
  double arrival_s = 0.0;
  double completion_s = 0.0;
  double decode_ms = 0.0;
  double detect_ms = 0.0;
  double latency_ms = 0.0;
  int batch_size = 1;  ///< dispatch fan-in (1 = served solo)
  bool fault_injected = false;
  bool failed_over = false;  ///< re-dispatched after losing its device
  ingest::FrameArrival arrival = ingest::FrameArrival::kInOrder;
  bool missing = false;
  bool deadline_miss = false;
  /// Scheduler-internal: the frame has reached a terminal status. The
  /// chaos harness asserts this holds for every admitted frame.
  bool settled = false;
  std::string cause;
  std::vector<detect::Detection> detections;
  std::optional<FrameError> error;
};

struct TenantReport {
  std::string name;
  QosClass cls = QosClass::kBestEffort;
  int streams = 0;
  int frames = 0;
  int admitted = 0;
  int admission_rejected = 0;
  int ok = 0;
  int degraded = 0;
  int dropped = 0;
  int failed = 0;
  int deadline_misses = 0;
  int failovers = 0;
  int max_shed_level = 0;  ///< deepest ladder rung any stream reached
  double p50_ms = 0.0;     ///< served-frame latency percentiles
  double p99_ms = 0.0;
  double max_latency_ms = 0.0;
};

struct DeviceReport {
  int frames = 0;  ///< frames completed on this device
  int faults = 0;
  int failovers_out = 0;  ///< frames that migrated away mid-service
  double busy_ms = 0.0;
  DeviceState final_state = DeviceState::kHealthy;
};

struct FleetReport {
  /// Every frame of every stream, ordered by (stream, index).
  std::vector<FleetFrame> frames;
  std::vector<TenantReport> tenants;
  std::vector<DeviceReport> devices;
  int admitted = 0;
  int admission_rejected = 0;
  int served = 0;  ///< ok + degraded
  int dropped = 0;
  int failed = 0;
  int deadline_misses = 0;
  int failovers = 0;      ///< frame re-dispatches after device loss
  int device_faults = 0;  ///< lost/hang events (watchdog counts as hang's)
  int watchdog_fires = 0;
  int batches = 0;         ///< multi-frame dispatches
  int batched_frames = 0;  ///< frames inside those dispatches
  int missing_frames = 0;
  int out_of_order = 0;
  int duplicates = 0;
  int shed_steps = 0;     ///< fleet-wide class shed actions
  int recover_steps = 0;  ///< fleet-wide class recover actions
  /// Frames still unsettled when the event queue drained — always 0
  /// unless the scheduler itself is broken; the chaos harness gates on it.
  int stranded = 0;
  obs::SloSnapshot slo;

  const FleetFrame* frame(int stream, int index) const;
};

class FleetScheduler {
 public:
  /// `base` is the level-0 pipeline configuration; ladder rungs derive
  /// shed configurations from it exactly as StreamingService does.
  /// `registry` may be null (no metrics).
  FleetScheduler(const vgpu::DeviceSpec& spec, haar::Cascade cascade,
                 detect::PipelineOptions base, FleetOptions options,
                 obs::Registry* registry = nullptr);
  ~FleetScheduler();

  /// Registers a tenant; returns its id (index into the report).
  int add_tenant(TenantSpec spec);

  /// Registers a stream owned by `tenant`: frames [0, frames) of
  /// `source` arrive at `fps`, offset by `phase_s`. The source must
  /// outlive run(). Returns the stream id.
  int add_stream(int tenant, const ingest::FrameSource& source, double fps,
                 int frames, double phase_s = 0.0);

  /// Runs the whole fleet to completion under optional device-level and
  /// frame-level fault plans. Resets all per-run state (ladders, health,
  /// buckets, caches) so consecutive runs are independent and a faulted
  /// run can be compared against its clean twin.
  FleetReport run(const DeviceFaultPlan* device_plan = nullptr,
                  const FaultPlan* frame_plan = nullptr);

  const FleetOptions& options() const { return options_; }
  int tenant_count() const { return static_cast<int>(tenants_.size()); }
  int stream_count() const;  // fleet.cpp (StreamConfig is incomplete here)
  const obs::FlightRecorder* recorder() const { return recorder_.get(); }

 private:
  struct StreamConfig;
  struct Sim;  ///< whole per-run simulation state (fleet.cpp)

  const detect::Pipeline& pipeline_for_level(int level);
  void count(const char* name, const obs::Labels& labels = {},
             double delta = 1.0);
  void gauge(const char* name, double value, const obs::Labels& labels = {});
  void flight(obs::FlightEventKind kind, int stream, int frame, double ts_us,
              const char* name, const char* detail, double value = 0.0);

  vgpu::DeviceSpec spec_;
  haar::Cascade cascade_;
  detect::PipelineOptions base_;
  FleetOptions options_;
  obs::Registry* registry_;
  std::vector<TenantSpec> tenants_;
  std::vector<StreamConfig> streams_;
  std::map<int, std::unique_ptr<detect::Pipeline>> pipelines_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
};

}  // namespace fdet::serve
