#include "serve/faults.h"

#include <algorithm>
#include <memory>
#include <sstream>

#include "core/check.h"
#include "core/rng.h"

namespace fdet::serve {
namespace {

/// Distinguishes the per-kind hash streams of one plan seed.
std::uint64_t kind_salt(FaultKind kind) {
  return 0x9e37u + static_cast<std::uint64_t>(kind);
}

std::optional<FaultKind> kind_from_token(std::string_view token) {
  if (token == "decode") return FaultKind::kDecodeFail;
  if (token == "corrupt") return FaultKind::kCorruptLuma;
  if (token == "launch") return FaultKind::kLaunchTransient;
  if (token == "const") return FaultKind::kConstantOverflow;
  if (token == "shared") return FaultKind::kSharedOverflow;
  if (token == "bitstream") return FaultKind::kBitstream;
  return std::nullopt;
}

bool is_hard(FaultKind kind) {
  // Bitstream damage behaves like a hard fault: every decode attempt of
  // the frame sees the same malformed bytes, so it fires regardless of
  // the attempt counter (the service quarantines instead of retrying).
  return kind == FaultKind::kConstantOverflow ||
         kind == FaultKind::kSharedOverflow || kind == FaultKind::kBitstream;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDecodeFail: return "decode";
    case FaultKind::kCorruptLuma: return "corrupt";
    case FaultKind::kLaunchTransient: return "launch";
    case FaultKind::kConstantOverflow: return "const";
    case FaultKind::kSharedOverflow: return "shared";
    case FaultKind::kBitstream: return "bitstream";
  }
  return "?";
}

FaultPlan::FaultPlan(std::uint64_t seed, std::vector<FaultSpec> specs)
    : seed_(seed), specs_(std::move(specs)) {
  for (const FaultSpec& spec : specs_) {
    FDET_CHECK(spec.frame >= 0 || (spec.probability > 0.0 &&
                                   spec.probability <= 1.0))
        << "fault spec '" << fault_kind_name(spec.kind)
        << "' needs a frame index or a probability in (0, 1]";
    FDET_CHECK(spec.burst >= 1) << "fault burst must be >= 1";
  }
}

FaultPlan FaultPlan::parse(const std::string& text, std::uint64_t seed) {
  std::vector<FaultSpec> specs;
  std::istringstream stream(text);
  for (std::string token; std::getline(stream, token, ',');) {
    if (token.empty()) {
      continue;
    }
    const auto at = token.find('@');
    FDET_CHECK(at != std::string::npos)
        << "fault token '" << token << "' is not <kind>@<frame|prob>[xN]";
    const auto kind = kind_from_token(token.substr(0, at));
    FDET_CHECK(kind.has_value())
        << "unknown fault kind '" << token.substr(0, at)
        << "' in '" << token
        << "' (kinds: decode, corrupt, launch, const, shared, bitstream)";
    FaultSpec spec;
    spec.kind = *kind;
    std::string target = token.substr(at + 1);
    if (const auto x = target.find('x'); x != std::string::npos) {
      const std::string burst = target.substr(x + 1);
      try {
        spec.burst = std::stoi(burst);
      } catch (const std::exception&) {
        spec.burst = 0;  // rejected below with the token in the message
      }
      FDET_CHECK(spec.burst >= 1)
          << "fault burst '" << burst << "' in '" << token
          << "' must be a positive integer";
      target.resize(x);
    }
    try {
      if (target.find('.') != std::string::npos) {
        spec.probability = std::stod(target);
        spec.frame = -1;
      } else {
        spec.frame = std::stoi(target);
      }
    } catch (const std::exception&) {
      FDET_CHECK(false) << "fault target '" << target << "' in '" << token
                        << "' is neither a frame index nor a probability";
    }
    specs.push_back(spec);
  }
  return FaultPlan(seed, std::move(specs));
}

bool FaultPlan::fires(FaultKind kind, int frame, int attempt) const {
  for (const FaultSpec& spec : specs_) {
    if (spec.kind != kind) {
      continue;
    }
    bool targeted;
    if (spec.frame >= 0) {
      targeted = spec.frame == frame;
    } else {
      core::Rng rng(core::hash_combine(
          core::hash_combine(seed_, kind_salt(kind)),
          static_cast<std::uint64_t>(frame)));
      targeted = rng.bernoulli(spec.probability);
    }
    if (!targeted) {
      continue;
    }
    if (is_hard(kind) || kind == FaultKind::kCorruptLuma ||
        attempt < spec.burst) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::targets_frame(int frame) const {
  for (const FaultSpec& spec : specs_) {
    if (fires(spec.kind, frame, 0)) {
      return true;
    }
  }
  return false;
}

std::vector<int> FaultPlan::targeted_frames() const {
  std::vector<int> frames;
  for (const FaultSpec& spec : specs_) {
    if (spec.frame >= 0) {
      frames.push_back(spec.frame);
    }
  }
  std::sort(frames.begin(), frames.end());
  frames.erase(std::unique(frames.begin(), frames.end()), frames.end());
  return frames;
}

std::string FaultPlan::describe() const {
  if (specs_.empty()) {
    return "(no faults)";
  }
  std::ostringstream out;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const FaultSpec& spec = specs_[i];
    if (i > 0) {
      out << ",";
    }
    out << fault_kind_name(spec.kind) << "@";
    if (spec.frame >= 0) {
      out << spec.frame;
    } else {
      out << spec.probability;
    }
    if (spec.burst > 1) {
      out << "x" << spec.burst;
    }
  }
  return out.str();
}

void corrupt_luma(img::ImageU8& luma, std::uint64_t seed) {
  FDET_CHECK(!luma.empty()) << "cannot corrupt an empty luma plane";
  core::Rng rng(seed);
  const int band = std::max(1, luma.height() / 4);
  const int y0 = rng.uniform_int(0, luma.height() - band);
  for (int y = y0; y < y0 + band; ++y) {
    for (std::uint8_t& px : luma.row(y)) {
      px = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
  }
}

vgpu::LaunchFaultHook make_launch_fault_hook(const FaultPlan& plan, int frame,
                                             int attempt) {
  const bool transient =
      plan.fires(FaultKind::kLaunchTransient, frame, attempt);
  const bool constant = plan.fires(FaultKind::kConstantOverflow, frame, attempt);
  const bool shared = plan.fires(FaultKind::kSharedOverflow, frame, attempt);
  if (!transient && !constant && !shared) {
    return {};
  }
  // One injected failure per armed attempt: the first matching launch
  // throws, the retry re-arms with attempt+1.
  auto fired = std::make_shared<bool>(false);
  return [=](const vgpu::KernelConfig& config) {
    if (*fired) {
      return;
    }
    if (transient) {
      *fired = true;
      throw vgpu::LaunchError("injected transient launch failure on '" +
                                  config.name + "' (frame " +
                                  std::to_string(frame) + ", attempt " +
                                  std::to_string(attempt) + ")",
                              /*transient=*/true);
    }
    if (constant && config.constant_bytes > 0) {
      *fired = true;
      throw vgpu::LaunchError("injected constant-memory overflow on '" +
                                  config.name + "' (frame " +
                                  std::to_string(frame) + ")",
                              /*transient=*/false);
    }
    if (shared && config.shared_bytes > 0) {
      *fired = true;
      throw vgpu::LaunchError("injected shared-memory overflow on '" +
                                  config.name + "' (frame " +
                                  std::to_string(frame) + ")",
                              /*transient=*/false);
    }
  };
}

const char* device_fault_kind_name(DeviceFaultKind kind) {
  switch (kind) {
    case DeviceFaultKind::kDeviceLost: return "device-lost";
    case DeviceFaultKind::kDeviceHang: return "device-hang";
    case DeviceFaultKind::kDeviceSlow: return "device-slow";
  }
  return "?";
}

namespace {

std::optional<DeviceFaultKind> device_kind_from_token(std::string_view token) {
  if (token == "device-lost") return DeviceFaultKind::kDeviceLost;
  if (token == "device-hang") return DeviceFaultKind::kDeviceHang;
  if (token == "device-slow") return DeviceFaultKind::kDeviceSlow;
  return std::nullopt;
}

bool is_outage(DeviceFaultKind kind) {
  return kind == DeviceFaultKind::kDeviceLost ||
         kind == DeviceFaultKind::kDeviceHang;
}

}  // namespace

DeviceFaultPlan::DeviceFaultPlan(std::uint64_t seed,
                                 std::vector<DeviceFaultSpec> specs)
    : seed_(seed), specs_(std::move(specs)) {
  for (const DeviceFaultSpec& spec : specs_) {
    const char* name = device_fault_kind_name(spec.kind);
    if (spec.device < 0) {
      FDET_CHECK(spec.kind == DeviceFaultKind::kDeviceSlow)
          << "device fault '" << name
          << "' needs an explicit device (only device-slow is probabilistic)";
      FDET_CHECK(spec.probability > 0.0 && spec.probability <= 1.0)
          << "probabilistic device-slow needs probability in (0, 1]";
    } else {
      FDET_CHECK(spec.start_s >= 0.0)
          << "device fault '" << name << "' onset must be >= 0";
      FDET_CHECK(spec.duration_s > 0.0)
          << "device fault '" << name << "' duration must be > 0";
    }
    if (spec.kind == DeviceFaultKind::kDeviceSlow) {
      FDET_CHECK(spec.factor > 1.0)
          << "device-slow factor must be > 1 (got " << spec.factor << ")";
    }
  }
  // Outage windows on one device must not overlap — the fleet's health
  // machine assumes one down-window is fully processed before the next.
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (!is_outage(specs_[i].kind) || specs_[i].device < 0) {
      continue;
    }
    for (std::size_t j = i + 1; j < specs_.size(); ++j) {
      if (!is_outage(specs_[j].kind) ||
          specs_[j].device != specs_[i].device) {
        continue;
      }
      const double a0 = specs_[i].start_s;
      const double a1 = a0 + specs_[i].duration_s;
      const double b0 = specs_[j].start_s;
      const double b1 = b0 + specs_[j].duration_s;
      FDET_CHECK(a1 <= b0 || b1 <= a0)
          << "overlapping outage windows on device " << specs_[i].device
          << " ([" << a0 << ", " << a1 << ") and [" << b0 << ", " << b1
          << "))";
    }
  }
}

DeviceFaultPlan DeviceFaultPlan::parse(const std::string& text,
                                       std::uint64_t seed) {
  std::vector<DeviceFaultSpec> specs;
  std::istringstream stream(text);
  for (std::string token; std::getline(stream, token, ',');) {
    if (token.empty()) {
      continue;
    }
    const auto at = token.find('@');
    FDET_CHECK(at != std::string::npos)
        << "device fault token '" << token
        << "' is not <kind>@<device>:<start>+<dur>[*f] or device-slow@<p>[*f]";
    const auto kind = device_kind_from_token(token.substr(0, at));
    FDET_CHECK(kind.has_value())
        << "unknown device fault kind '" << token.substr(0, at) << "' in '"
        << token << "' (kinds: device-lost, device-hang, device-slow)";
    DeviceFaultSpec spec;
    spec.kind = *kind;
    std::string target = token.substr(at + 1);
    if (const auto star = target.find('*'); star != std::string::npos) {
      const std::string factor = target.substr(star + 1);
      try {
        spec.factor = std::stod(factor);
      } catch (const std::exception&) {
        spec.factor = 0.0;  // rejected by the ctor with the token context
      }
      FDET_CHECK(spec.factor > 1.0)
          << "device-slow factor '" << factor << "' in '" << token
          << "' must be a number > 1";
      target.resize(star);
    }
    try {
      if (const auto colon = target.find(':'); colon != std::string::npos) {
        spec.device = std::stoi(target.substr(0, colon));
        std::string window = target.substr(colon + 1);
        const auto plus = window.find('+');
        FDET_CHECK(plus != std::string::npos)
            << "device fault window '" << window << "' in '" << token
            << "' is not <start_s>+<duration_s>";
        spec.start_s = std::stod(window.substr(0, plus));
        spec.duration_s = std::stod(window.substr(plus + 1));
      } else {
        spec.device = -1;
        spec.probability = std::stod(target);
      }
    } catch (const core::CheckError&) {
      throw;
    } catch (const std::exception&) {
      FDET_CHECK(false) << "device fault target '" << target << "' in '"
                        << token << "' did not parse";
    }
    specs.push_back(spec);
  }
  return DeviceFaultPlan(seed, std::move(specs));
}

std::vector<const DeviceFaultSpec*> DeviceFaultPlan::outages(
    int device) const {
  std::vector<const DeviceFaultSpec*> windows;
  for (const DeviceFaultSpec& spec : specs_) {
    if (is_outage(spec.kind) && spec.device == device) {
      windows.push_back(&spec);
    }
  }
  std::sort(windows.begin(), windows.end(),
            [](const DeviceFaultSpec* a, const DeviceFaultSpec* b) {
              return a->start_s < b->start_s;
            });
  return windows;
}

double DeviceFaultPlan::slow_factor(int device, int stream, int frame,
                                    double at_s) const {
  double factor = 1.0;
  for (const DeviceFaultSpec& spec : specs_) {
    if (spec.kind != DeviceFaultKind::kDeviceSlow) {
      continue;
    }
    if (spec.device >= 0) {
      if (spec.device == device && at_s >= spec.start_s &&
          at_s < spec.start_s + spec.duration_s) {
        factor *= spec.factor;
      }
    } else {
      core::Rng rng(core::hash_combine(
          core::hash_combine(seed_, 0x51040 + static_cast<std::uint64_t>(
                                                  device)),
          core::hash_combine(static_cast<std::uint64_t>(stream),
                             static_cast<std::uint64_t>(frame))));
      if (rng.bernoulli(spec.probability)) {
        factor *= spec.factor;
      }
    }
  }
  return factor;
}

std::string DeviceFaultPlan::describe() const {
  if (specs_.empty()) {
    return "(no device faults)";
  }
  std::ostringstream out;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const DeviceFaultSpec& spec = specs_[i];
    if (i > 0) {
      out << ",";
    }
    out << device_fault_kind_name(spec.kind) << "@";
    if (spec.device >= 0) {
      out << spec.device << ":" << spec.start_s << "+" << spec.duration_s;
    } else {
      out << spec.probability;
    }
    if (spec.kind == DeviceFaultKind::kDeviceSlow) {
      out << "*" << spec.factor;
    }
  }
  return out.str();
}

MixedFaultPlan parse_mixed_fault_plan(const std::string& text,
                                      std::uint64_t seed) {
  std::string frame_tokens;
  std::string device_tokens;
  std::istringstream stream(text);
  for (std::string token; std::getline(stream, token, ',');) {
    if (token.empty()) {
      continue;
    }
    std::string& sink = token.rfind("device-", 0) == 0 ? device_tokens
                                                       : frame_tokens;
    if (!sink.empty()) {
      sink += ',';
    }
    sink += token;
  }
  MixedFaultPlan mixed;
  mixed.frame = FaultPlan::parse(frame_tokens, seed);
  mixed.device = DeviceFaultPlan::parse(device_tokens, seed);
  return mixed;
}

}  // namespace fdet::serve
