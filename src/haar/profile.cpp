#include "haar/profile.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/rng.h"

namespace fdet::haar {

std::vector<int> opencv_frontal_profile() {
  return {9,   16,  27,  32,  52,  53,  62,  72,  83,  91,  99,  115, 127,
          135, 136, 137, 159, 155, 169, 196, 197, 181, 199, 211, 200};
}

std::vector<int> scale_profile(std::span<const int> reference,
                               int target_total) {
  FDET_CHECK(!reference.empty() && target_total >= static_cast<int>(reference.size()));
  int reference_total = 0;
  for (const int n : reference) {
    reference_total += n;
  }
  std::vector<int> scaled(reference.size());
  int running = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double ratio =
        static_cast<double>(target_total) / static_cast<double>(reference_total);
    scaled[i] = std::max(1, static_cast<int>(std::lround(reference[i] * ratio)));
    running += scaled[i];
  }
  // Fix rounding drift on the deepest stages (they are the largest).
  for (std::size_t i = scaled.size(); running != target_total && i-- > 0;) {
    const int delta = (running < target_total) ? 1 : -1;
    if (scaled[i] + delta >= 1) {
      scaled[i] += delta;
      running += delta;
    }
  }
  FDET_CHECK(running == target_total) << "profile scaling failed";
  return scaled;
}

std::vector<int> compact_profile() {
  const std::vector<int> reference = opencv_frontal_profile();
  return scale_profile(reference, 1446);
}

Cascade build_profile_cascade(const std::string& name,
                              std::span<const int> stage_sizes,
                              std::uint64_t seed) {
  core::Rng rng(seed);
  Cascade cascade(name);
  for (const int size : stage_sizes) {
    FDET_CHECK(size >= 1);
    Stage stage;
    stage.classifiers.reserve(static_cast<std::size_t>(size));
    while (static_cast<int>(stage.classifiers.size()) < size) {
      HaarFeature f;
      f.type = static_cast<HaarType>(rng.uniform_int(0, 3));
      f.vertical = rng.bernoulli(0.5);
      f.cw = static_cast<std::uint8_t>(rng.uniform_int(1, 8));
      f.ch = static_cast<std::uint8_t>(rng.uniform_int(1, 8));
      if (f.extent_w() > kWindowSize || f.extent_h() > kWindowSize) {
        continue;
      }
      f.x = static_cast<std::uint8_t>(
          rng.uniform_int(0, kWindowSize - f.extent_w()));
      f.y = static_cast<std::uint8_t>(
          rng.uniform_int(0, kWindowSize - f.extent_h()));
      WeakClassifier wc;
      wc.feature = f;
      wc.threshold = 0.0f;
      // Random polarity, unit votes: stage scores become a random walk
      // whose quantiles the calibration step pins down.
      const bool flip = rng.bernoulli(0.5);
      wc.left_vote = flip ? -1.0f : 1.0f;
      wc.right_vote = flip ? 1.0f : -1.0f;
      stage.classifiers.push_back(wc);
    }
    stage.threshold = -1e30f;  // pass-through until calibrated
    cascade.add_stage(std::move(stage));
  }
  return cascade;
}

std::vector<double> paper_pass_profile(int stages) {
  FDET_CHECK(stages >= 1);
  std::vector<double> pass(static_cast<std::size_t>(stages));
  // Survivor fractions: 5.48 % after stage 1, 1.48 % after stage 2
  // (paper Fig. 7), then a geometric tail down to ~3e-6 at stage 25.
  pass[0] = 0.0548;
  if (stages > 1) {
    pass[1] = 0.0148 / 0.0548;
  }
  const double tail_ratio =
      std::pow(3e-6 / 0.0148, 1.0 / std::max(1, stages - 2));
  for (int s = 2; s < stages; ++s) {
    pass[static_cast<std::size_t>(s)] = tail_ratio;
  }
  return pass;
}

void calibrate_stage_thresholds(
    Cascade& cascade,
    const std::vector<const integral::IntegralImage*>& images,
    std::span<const double> pass_rates, int window_step) {
  FDET_CHECK(static_cast<int>(pass_rates.size()) >= cascade.stage_count())
      << "need one pass rate per stage";
  FDET_CHECK(window_step >= 1);

  // Gather all candidate windows.
  struct Window {
    const integral::IntegralImage* ii;
    int x;
    int y;
  };
  std::vector<Window> survivors;
  for (const integral::IntegralImage* ii : images) {
    FDET_CHECK(ii != nullptr);
    for (int y = 0; y + kWindowSize <= ii->height(); y += window_step) {
      for (int x = 0; x + kWindowSize <= ii->width(); x += window_step) {
        survivors.push_back({ii, x, y});
      }
    }
  }
  FDET_CHECK(!survivors.empty()) << "no calibration windows";

  std::vector<float> scores;
  for (int s = 0; s < cascade.stage_count(); ++s) {
    Stage& stage = cascade.stages()[static_cast<std::size_t>(s)];
    scores.clear();
    scores.reserve(survivors.size());
    for (const Window& w : survivors) {
      float score = 0.0f;
      for (const WeakClassifier& wc : stage.classifiers) {
        score += wc.vote(wc.feature.response(*w.ii, w.x, w.y));
      }
      scores.push_back(score);
    }
    // Threshold at the (1 - pass) quantile; windows scoring >= it survive.
    // Scores are discrete (ties are common with small stages), so compare
    // "include the tied value" vs "exclude it" and keep whichever realized
    // rate lands closer to the target.
    std::vector<float> sorted = scores;
    std::sort(sorted.begin(), sorted.end());
    const double pass = std::clamp(pass_rates[static_cast<std::size_t>(s)], 0.0, 1.0);
    const std::size_t cut = std::min(
        sorted.size() - 1,
        static_cast<std::size_t>(std::floor((1.0 - pass) * static_cast<double>(sorted.size()))));
    const float include_value = sorted[cut];
    const auto first_tied =
        std::lower_bound(sorted.begin(), sorted.end(), include_value);
    const auto first_above =
        std::upper_bound(sorted.begin(), sorted.end(), include_value);
    const double n = static_cast<double>(sorted.size());
    const double pass_include =
        static_cast<double>(sorted.end() - first_tied) / n;
    const double pass_exclude =
        static_cast<double>(sorted.end() - first_above) / n;
    if (std::abs(pass_include - pass) <= std::abs(pass_exclude - pass) ||
        first_above == sorted.end()) {
      stage.threshold = include_value;
    } else {
      stage.threshold = (include_value + *first_above) / 2.0f;
    }

    // Retain the survivors for the next stage's quantile.
    std::vector<Window> next;
    next.reserve(static_cast<std::size_t>(
        static_cast<double>(survivors.size()) * pass) + 16);
    for (std::size_t i = 0; i < survivors.size(); ++i) {
      if (scores[i] >= stage.threshold) {
        next.push_back(survivors[i]);
      }
    }
    if (next.empty()) {
      // Degenerate calibration set: keep the best-scoring window alive so
      // deeper stages still see data.
      const std::size_t best = static_cast<std::size_t>(
          std::max_element(scores.begin(), scores.end()) - scores.begin());
      next.push_back(survivors[best]);
    }
    survivors = std::move(next);
  }
}

}  // namespace fdet::haar
