// Haar-like features over a fixed 24x24 detection window.
//
// The four families of paper Table I are supported:
//   Edge           — two side-by-side cells, +1 / -1
//   Line           — three cells, +1 / -2 / +1
//   CenterSurround — 3x3-cell box, whole +1 and center -9
//   Diagonal       — 2x2 checkerboard, +1 / -1 / -1 / +1
//
// A feature is parameterized by its anchor (x, y) inside the window, its
// cell size (cw, ch) and an orientation (edges and lines come in a
// horizontal and a vertical arrangement). Evaluation decomposes into at
// most four weighted rectangles, each costing four integral-image lookups
// (Viola–Jones), which is exactly the access pattern the paper's cascade
// kernel optimizes.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "integral/integral.h"

namespace fdet::haar {

/// Side of the square training window (paper Sec. IV: 24x24 faces).
inline constexpr int kWindowSize = 24;

enum class HaarType : std::uint8_t {
  kEdge = 0,
  kLine = 1,
  kCenterSurround = 2,
  kDiagonal = 3,
};

/// Human-readable family name ("edge", "line", ...).
std::string to_string(HaarType type);

/// One weighted rectangle of a decomposed feature (window coordinates).
struct RectTerm {
  std::int8_t x = 0;
  std::int8_t y = 0;
  std::int8_t w = 0;
  std::int8_t h = 0;
  std::int8_t weight = 0;
};

struct HaarFeature {
  HaarType type = HaarType::kEdge;
  bool vertical = false;  ///< orientation for edge/line; unused otherwise
  std::uint8_t x = 0;     ///< anchor column within the window
  std::uint8_t y = 0;     ///< anchor row within the window
  std::uint8_t cw = 1;    ///< cell width
  std::uint8_t ch = 1;    ///< cell height

  /// Total extent of the feature in window pixels.
  int extent_w() const;
  int extent_h() const;

  /// True when the feature lies entirely inside the window.
  bool valid() const;

  /// Decomposes into weighted rectangles; `count` entries are meaningful.
  struct Decomposition {
    std::array<RectTerm, 4> rects;
    int count = 0;
  };
  Decomposition decompose() const;

  /// Feature response for the window anchored at (wx, wy) in the image:
  /// Σ weight_i * rect_sum_i. Matches the training-side evaluation.
  std::int64_t response(const integral::IntegralImage& ii, int wx,
                        int wy) const;

  bool operator==(const HaarFeature&) const = default;
};

}  // namespace fdet::haar
