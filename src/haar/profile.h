// Structural cascade profiles and the synthetic profile-cascade builder.
//
// The performance experiments need cascades with exactly the paper's
// workload shape: the OpenCV frontal feature set (25 stages, 2913 weak
// classifiers — the per-stage sizes below are those of Lienhart's
// haarcascade_frontalface_default) and the paper's compact GentleBoost
// cascade (25 stages, 1446 weak classifiers). build_profile_cascade()
// constructs a cascade with a given stage-size profile and pseudo-random
// features; calibrate_stage_thresholds() then pins each stage's threshold
// to a quantile of real window scores so the rejection profile matches a
// target (e.g. paper Fig. 7: 94.52 % of windows die in stage 1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "haar/cascade.h"

namespace fdet::haar {

/// Per-stage weak-classifier counts of OpenCV's frontal face cascade
/// (25 stages, Σ = 2913 — the baseline workload in paper Table II).
std::vector<int> opencv_frontal_profile();

/// The paper's compact cascade: 25 stages, Σ = 1446 weak classifiers,
/// derived by scaling the OpenCV profile to the paper's total.
std::vector<int> compact_profile();

/// Scales `reference` so its entries sum to `target_total` (keeps the
/// growth shape; every stage keeps at least one classifier).
std::vector<int> scale_profile(std::span<const int> reference,
                               int target_total);

/// Builds a cascade with `stage_sizes[i]` pseudo-random valid features per
/// stage, ±1 votes and zero thresholds. Deterministic in `seed`.
Cascade build_profile_cascade(const std::string& name,
                              std::span<const int> stage_sizes,
                              std::uint64_t seed);

/// Conditional per-stage pass rates reproducing the paper's Fig. 7
/// rejection profile (94.52 % rejected at stage 1, 4 % at stage 2, a
/// geometric tail thereafter). Size = `stages`.
std::vector<double> paper_pass_profile(int stages);

/// Pins each stage threshold to the score quantile that passes
/// `pass_rates[s]` of the windows surviving stages 0..s-1. Windows are
/// sampled on a `window_step` grid over every provided integral image.
void calibrate_stage_thresholds(
    Cascade& cascade,
    const std::vector<const integral::IntegralImage*>& images,
    std::span<const double> pass_rates, int window_step = 4);

}  // namespace fdet::haar
