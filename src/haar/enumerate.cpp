#include "haar/enumerate.h"

#include <algorithm>

#include "core/check.h"
#include "core/rng.h"

namespace fdet::haar {
namespace {

/// Orientations to visit for a family (edge/line have two).
int orientation_count(HaarType type) {
  return (type == HaarType::kEdge || type == HaarType::kLine) ? 2 : 1;
}

}  // namespace

std::int64_t for_each_feature(
    HaarType type, const EnumerationGrid& grid,
    const std::function<void(const HaarFeature&)>& sink) {
  FDET_CHECK(grid.position_step >= 1 && grid.cell_step >= 1 &&
             grid.min_cell >= 1);
  std::int64_t count = 0;
  for (int orientation = 0; orientation < orientation_count(type);
       ++orientation) {
    for (int cw = grid.min_cell; cw <= kWindowSize; cw += grid.cell_step) {
      for (int ch = grid.min_cell; ch <= kWindowSize; ch += grid.cell_step) {
        HaarFeature probe{type, orientation == 1, 0, 0,
                          static_cast<std::uint8_t>(cw),
                          static_cast<std::uint8_t>(ch)};
        const int max_x = kWindowSize - probe.extent_w();
        const int max_y = kWindowSize - probe.extent_h();
        if (max_x < 0 || max_y < 0) {
          continue;
        }
        for (int y = 0; y <= max_y; y += grid.position_step) {
          for (int x = 0; x <= max_x; x += grid.position_step) {
            probe.x = static_cast<std::uint8_t>(x);
            probe.y = static_cast<std::uint8_t>(y);
            sink(probe);
            ++count;
          }
        }
      }
    }
  }
  return count;
}

std::vector<HaarFeature> enumerate_features(HaarType type,
                                            const EnumerationGrid& grid) {
  std::vector<HaarFeature> features;
  for_each_feature(type, grid,
                   [&features](const HaarFeature& f) { features.push_back(f); });
  return features;
}

std::int64_t count_features(HaarType type, const EnumerationGrid& grid) {
  return for_each_feature(type, grid, [](const HaarFeature&) {});
}

std::vector<HaarFeature> sample_features(HaarType type, int target,
                                         std::uint64_t seed) {
  FDET_CHECK(target > 0);
  const std::int64_t total = count_features(type, EnumerationGrid{});
  const double keep = std::min(1.0, static_cast<double>(target) /
                                        static_cast<double>(total));
  core::Rng rng(core::hash_combine(seed, static_cast<std::uint64_t>(type)));
  std::vector<HaarFeature> sampled;
  sampled.reserve(static_cast<std::size_t>(target) + 64);
  for_each_feature(type, EnumerationGrid{}, [&](const HaarFeature& f) {
    // Always keep coarse features (cells >= 4 px): they carry the global
    // face structure that early cascade stages rely on.
    const bool coarse = f.cw >= 4 && f.ch >= 4;
    if (rng.bernoulli(coarse ? std::min(1.0, keep * 4.0) : keep)) {
      sampled.push_back(f);
    }
  });
  return sampled;
}

}  // namespace fdet::haar
