#include "haar/cascade.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <string_view>

#include "core/artifact.h"
#include "core/check.h"

namespace fdet::haar {

int Cascade::classifier_count() const {
  int count = 0;
  for (const Stage& stage : stages_) {
    count += static_cast<int>(stage.classifiers.size());
  }
  return count;
}

CascadeResult Cascade::evaluate(const integral::IntegralImage& ii, int wx,
                                int wy, int max_stages) const {
  const int limit = (max_stages < 0)
                        ? stage_count()
                        : std::min(max_stages, stage_count());
  CascadeResult result;
  for (int s = 0; s < limit; ++s) {
    const Stage& stage = stages_[static_cast<std::size_t>(s)];
    float score = 0.0f;
    for (const WeakClassifier& wc : stage.classifiers) {
      score += wc.vote(wc.feature.response(ii, wx, wy));
    }
    result.score = score;
    if (score < stage.threshold) {
      return result;  // rejected at stage s; depth stays at s
    }
    result.depth = s + 1;
  }
  result.accepted = (result.depth == limit);
  return result;
}

Cascade Cascade::prefix(int stages) const {
  FDET_CHECK(stages >= 0 && stages <= stage_count());
  Cascade out(name_ + "@" + std::to_string(stages));
  out.stages_.assign(stages_.begin(), stages_.begin() + stages);
  return out;
}

void write_cascade(std::ostream& out, const Cascade& cascade) {
  // max_digits10 makes every float round-trip bit-exactly through the
  // text form — the checkpoint/resume identity invariant depends on it.
  out << std::setprecision(std::numeric_limits<float>::max_digits10);
  out << "fdet-cascade 1\n";
  out << "name " << (cascade.name().empty() ? "unnamed" : cascade.name())
      << "\n";
  out << "stages " << cascade.stage_count() << "\n";
  for (const Stage& stage : cascade.stages()) {
    out << "stage " << stage.classifiers.size() << " " << stage.threshold
        << "\n";
    for (const WeakClassifier& wc : stage.classifiers) {
      const HaarFeature& f = wc.feature;
      out << static_cast<int>(f.type) << " " << (f.vertical ? 1 : 0) << " "
          << static_cast<int>(f.x) << " " << static_cast<int>(f.y) << " "
          << static_cast<int>(f.cw) << " " << static_cast<int>(f.ch) << " "
          << wc.threshold << " " << wc.left_vote << " " << wc.right_vote
          << "\n";
    }
  }
}

std::string cascade_to_string(const Cascade& cascade) {
  std::ostringstream out;
  write_cascade(out, cascade);
  return std::move(out).str();
}

namespace {

/// Line-oriented tokenizer for the validating parser: tracks the 1-based
/// line number every diagnostic carries.
class LineReader {
 public:
  explicit LineReader(std::istream& in) : in_(in) {}

  /// Next line split into whitespace tokens; false at EOF.
  bool next(std::vector<std::string>& tokens) {
    std::string line;
    if (!std::getline(in_, line)) {
      return false;
    }
    ++line_number_;
    tokens.clear();
    std::istringstream split(line);
    std::string token;
    while (split >> token) {
      tokens.push_back(token);
    }
    return true;
  }

  int line_number() const { return line_number_; }

 private:
  std::istream& in_;
  int line_number_ = 0;
};

[[noreturn]] void parse_fail(const LineReader& reader,
                             const std::string& field,
                             const std::string& detail) {
  throw CascadeParseError(reader.line_number(), field, detail);
}

/// Strict integer token: the whole token must parse.
int parse_int(const LineReader& reader, const std::string& field,
              const std::string& token) {
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(token.c_str(), &end, 10);
  if (errno != 0 || end != token.c_str() + token.size() || token.empty() ||
      value < std::numeric_limits<int>::min() ||
      value > std::numeric_limits<int>::max()) {
    parse_fail(reader, field, "not an integer: '" + token + "'");
  }
  return static_cast<int>(value);
}

/// Strict finite-float token: whole-token parse, NaN/Inf rejected.
float parse_finite_float(const LineReader& reader, const std::string& field,
                         const std::string& token) {
  char* end = nullptr;
  errno = 0;
  const float value = std::strtof(token.c_str(), &end);
  if (end != token.c_str() + token.size() || token.empty()) {
    parse_fail(reader, field, "not a number: '" + token + "'");
  }
  if (!std::isfinite(value)) {
    parse_fail(reader, field, "non-finite value: '" + token + "'");
  }
  return value;
}

void expect_tokens(const LineReader& reader, const std::string& field,
                   const std::vector<std::string>& tokens,
                   std::size_t count) {
  if (tokens.size() != count) {
    std::ostringstream msg;
    msg << "expected " << count << " fields, got " << tokens.size();
    parse_fail(reader, field, msg.str());
  }
}

}  // namespace

Cascade read_cascade(std::istream& in) {
  LineReader reader(in);
  std::vector<std::string> tokens;

  if (!reader.next(tokens)) {
    throw CascadeParseError(1, "header", "empty input");
  }
  expect_tokens(reader, "header", tokens, 2);
  if (tokens[0] != "fdet-cascade") {
    parse_fail(reader, "header", "bad magic '" + tokens[0] + "'");
  }
  if (parse_int(reader, "header.version", tokens[1]) != 1) {
    parse_fail(reader, "header.version",
               "unsupported format version '" + tokens[1] + "'");
  }

  if (!reader.next(tokens)) {
    parse_fail(reader, "name", "truncated: missing 'name' line");
  }
  if (tokens.size() != 2 || tokens[0] != "name") {
    parse_fail(reader, "name", "expected 'name <token>'");
  }
  const std::string name = tokens[1];

  if (!reader.next(tokens)) {
    parse_fail(reader, "stages", "truncated: missing 'stages' line");
  }
  if (tokens.size() != 2 || tokens[0] != "stages") {
    parse_fail(reader, "stages", "expected 'stages <count>'");
  }
  const int stage_count = parse_int(reader, "stages", tokens[1]);
  if (stage_count < 0 || stage_count >= 10000) {
    parse_fail(reader, "stages",
               "implausible stage count " + std::to_string(stage_count));
  }

  Cascade cascade(name);
  for (int s = 0; s < stage_count; ++s) {
    const std::string stage_field = "stage[" + std::to_string(s) + "]";
    if (!reader.next(tokens)) {
      parse_fail(reader, stage_field,
                 "truncated: expected " + std::to_string(stage_count) +
                     " stages, file ends after " + std::to_string(s));
    }
    if (tokens.size() != 3 || tokens[0] != "stage") {
      parse_fail(reader, stage_field,
                 "expected 'stage <classifiers> <threshold>'");
    }
    const int classifier_count =
        parse_int(reader, stage_field + ".classifiers", tokens[1]);
    if (classifier_count < 0 || classifier_count >= 1000000) {
      parse_fail(reader, stage_field + ".classifiers",
                 "implausible classifier count " + tokens[1]);
    }
    Stage stage;
    stage.threshold =
        parse_finite_float(reader, stage_field + ".threshold", tokens[2]);
    stage.classifiers.reserve(static_cast<std::size_t>(classifier_count));

    for (int c = 0; c < classifier_count; ++c) {
      const std::string field =
          stage_field + ".classifier[" + std::to_string(c) + "]";
      if (!reader.next(tokens)) {
        parse_fail(reader, field,
                   "truncated: stage " + std::to_string(s) + " promises " +
                       std::to_string(classifier_count) +
                       " classifiers, file ends after " + std::to_string(c));
      }
      expect_tokens(reader, field, tokens, 9);
      const int type = parse_int(reader, field + ".type", tokens[0]);
      if (type < 0 || type > 3) {
        parse_fail(reader, field + ".type",
                   "feature type must be 0..3, got " + tokens[0]);
      }
      const int vertical = parse_int(reader, field + ".vertical", tokens[1]);
      if (vertical != 0 && vertical != 1) {
        parse_fail(reader, field + ".vertical",
                   "orientation must be 0 or 1, got " + tokens[1]);
      }
      const int x = parse_int(reader, field + ".x", tokens[2]);
      const int y = parse_int(reader, field + ".y", tokens[3]);
      const int cw = parse_int(reader, field + ".cw", tokens[4]);
      const int ch = parse_int(reader, field + ".ch", tokens[5]);
      if (x < 0 || x >= kWindowSize || y < 0 || y >= kWindowSize) {
        parse_fail(reader, field + ".anchor",
                   "anchor (" + std::to_string(x) + ", " + std::to_string(y) +
                       ") outside the " + std::to_string(kWindowSize) + "x" +
                       std::to_string(kWindowSize) + " detection window");
      }
      if (cw < 1 || cw > kWindowSize || ch < 1 || ch > kWindowSize) {
        parse_fail(reader, field + ".cell",
                   "cell size (" + std::to_string(cw) + ", " +
                       std::to_string(ch) + ") outside 1.." +
                       std::to_string(kWindowSize));
      }
      WeakClassifier wc;
      wc.feature = HaarFeature{static_cast<HaarType>(type), vertical != 0,
                               static_cast<std::uint8_t>(x),
                               static_cast<std::uint8_t>(y),
                               static_cast<std::uint8_t>(cw),
                               static_cast<std::uint8_t>(ch)};
      if (!wc.feature.valid()) {
        parse_fail(reader, field + ".rect",
                   "rectangle (" + std::to_string(wc.feature.extent_w()) +
                       "x" + std::to_string(wc.feature.extent_h()) +
                       " at " + std::to_string(x) + "," + std::to_string(y) +
                       ") extends outside the " + std::to_string(kWindowSize) +
                       "x" + std::to_string(kWindowSize) +
                       " detection window");
      }
      wc.threshold =
          parse_finite_float(reader, field + ".threshold", tokens[6]);
      wc.left_vote =
          parse_finite_float(reader, field + ".left_vote", tokens[7]);
      wc.right_vote =
          parse_finite_float(reader, field + ".right_vote", tokens[8]);
      stage.classifiers.push_back(wc);
    }
    cascade.add_stage(std::move(stage));
  }

  // Anything but trailing whitespace after the last declared record is
  // corruption (concatenated files, appended garbage).
  while (reader.next(tokens)) {
    if (!tokens.empty()) {
      parse_fail(reader, "trailer",
                 "trailing garbage after the last declared stage: '" +
                     tokens[0] + "...'");
    }
  }
  return cascade;
}

void save_cascade(const std::string& path, const Cascade& cascade) {
  core::atomic_write_file(path, cascade_to_string(cascade));
}

Cascade load_cascade(const std::string& path) {
  std::ifstream in(path);
  FDET_CHECK(in.good()) << "cannot open " << path;
  try {
    return read_cascade(in);
  } catch (const CascadeParseError& error) {
    throw CascadeParseError(error.line(), error.field(), error.detail(),
                            path);
  }
}

}  // namespace fdet::haar
