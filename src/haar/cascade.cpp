#include "haar/cascade.h"

#include <fstream>
#include <sstream>

#include "core/check.h"

namespace fdet::haar {

int Cascade::classifier_count() const {
  int count = 0;
  for (const Stage& stage : stages_) {
    count += static_cast<int>(stage.classifiers.size());
  }
  return count;
}

CascadeResult Cascade::evaluate(const integral::IntegralImage& ii, int wx,
                                int wy, int max_stages) const {
  const int limit = (max_stages < 0)
                        ? stage_count()
                        : std::min(max_stages, stage_count());
  CascadeResult result;
  for (int s = 0; s < limit; ++s) {
    const Stage& stage = stages_[static_cast<std::size_t>(s)];
    float score = 0.0f;
    for (const WeakClassifier& wc : stage.classifiers) {
      score += wc.vote(wc.feature.response(ii, wx, wy));
    }
    result.score = score;
    if (score < stage.threshold) {
      return result;  // rejected at stage s; depth stays at s
    }
    result.depth = s + 1;
  }
  result.accepted = (result.depth == limit);
  return result;
}

Cascade Cascade::prefix(int stages) const {
  FDET_CHECK(stages >= 0 && stages <= stage_count());
  Cascade out(name_ + "@" + std::to_string(stages));
  out.stages_.assign(stages_.begin(), stages_.begin() + stages);
  return out;
}

void write_cascade(std::ostream& out, const Cascade& cascade) {
  out << "fdet-cascade 1\n";
  out << "name " << (cascade.name().empty() ? "unnamed" : cascade.name())
      << "\n";
  out << "stages " << cascade.stage_count() << "\n";
  for (const Stage& stage : cascade.stages()) {
    out << "stage " << stage.classifiers.size() << " " << stage.threshold
        << "\n";
    for (const WeakClassifier& wc : stage.classifiers) {
      const HaarFeature& f = wc.feature;
      out << static_cast<int>(f.type) << " " << (f.vertical ? 1 : 0) << " "
          << static_cast<int>(f.x) << " " << static_cast<int>(f.y) << " "
          << static_cast<int>(f.cw) << " " << static_cast<int>(f.ch) << " "
          << wc.threshold << " " << wc.left_vote << " " << wc.right_vote
          << "\n";
    }
  }
}

Cascade read_cascade(std::istream& in) {
  std::string magic;
  int version = 0;
  in >> magic >> version;
  FDET_CHECK(magic == "fdet-cascade" && version == 1)
      << "bad cascade header: '" << magic << " " << version << "'";

  std::string key;
  std::string name;
  in >> key >> name;
  FDET_CHECK(key == "name") << "expected 'name', got '" << key << "'";

  int stage_count = 0;
  in >> key >> stage_count;
  FDET_CHECK(key == "stages" && stage_count >= 0 && stage_count < 10000)
      << "bad stage count";

  Cascade cascade(name);
  for (int s = 0; s < stage_count; ++s) {
    std::size_t classifier_count = 0;
    Stage stage;
    in >> key >> classifier_count >> stage.threshold;
    FDET_CHECK(key == "stage" && in.good())
        << "bad stage record at index " << s;
    FDET_CHECK(classifier_count < 1000000) << "implausible classifier count";
    stage.classifiers.reserve(classifier_count);
    for (std::size_t c = 0; c < classifier_count; ++c) {
      int type = 0;
      int vertical = 0;
      int x = 0;
      int y = 0;
      int cw = 0;
      int ch = 0;
      WeakClassifier wc;
      in >> type >> vertical >> x >> y >> cw >> ch >> wc.threshold >>
          wc.left_vote >> wc.right_vote;
      FDET_CHECK(in.good()) << "truncated classifier record";
      FDET_CHECK(type >= 0 && type <= 3) << "bad feature type " << type;
      wc.feature = HaarFeature{static_cast<HaarType>(type), vertical != 0,
                               static_cast<std::uint8_t>(x),
                               static_cast<std::uint8_t>(y),
                               static_cast<std::uint8_t>(cw),
                               static_cast<std::uint8_t>(ch)};
      FDET_CHECK(wc.feature.valid()) << "feature outside window";
      stage.classifiers.push_back(wc);
    }
    cascade.add_stage(std::move(stage));
  }
  return cascade;
}

void save_cascade(const std::string& path, const Cascade& cascade) {
  std::ofstream out(path);
  FDET_CHECK(out.good()) << "cannot open " << path;
  write_cascade(out, cascade);
  FDET_CHECK(out.good()) << "write failed for " << path;
}

Cascade load_cascade(const std::string& path) {
  std::ifstream in(path);
  FDET_CHECK(in.good()) << "cannot open " << path;
  return read_cascade(in);
}

}  // namespace fdet::haar
