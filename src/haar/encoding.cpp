#include "haar/encoding.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace fdet::haar {
namespace {

int weight_index(std::int8_t weight) {
  for (std::size_t i = 0; i < kWeightTable.size(); ++i) {
    if (kWeightTable[i] == weight) {
      return static_cast<int>(i);
    }
  }
  FDET_CHECK(false) << "weight " << static_cast<int>(weight)
                    << " not in the weight table";
  return -1;
}

std::int16_t quantize(float value, float scale, const char* what) {
  const float scaled = std::round(value * scale);
  FDET_CHECK(scaled >= -32768.0f && scaled <= 32767.0f)
      << what << " " << value << " does not fit 16-bit fixed point";
  return static_cast<std::int16_t>(scaled);
}

/// Stage thresholds may legitimately sit outside the representable range
/// (e.g. the -inf pass-through of an uncalibrated stage); saturate them.
std::int16_t quantize_saturating(float value, float scale) {
  const float scaled = std::round(value * scale);
  return static_cast<std::int16_t>(std::clamp(scaled, -32768.0f, 32767.0f));
}

}  // namespace

EncodedRect encode_rect(const RectTerm& rect) {
  FDET_CHECK(rect.x >= 0 && rect.x < 32 && rect.y >= 0 && rect.y < 32 &&
             rect.w > 0 && rect.w < 32 && rect.h > 0 && rect.h < 32)
      << "rect fields out of 5-bit range";
  const std::uint32_t packed =
      (static_cast<std::uint32_t>(rect.x)) |
      (static_cast<std::uint32_t>(rect.y) << 5) |
      (static_cast<std::uint32_t>(rect.w) << 10) |
      (static_cast<std::uint32_t>(rect.h) << 15) |
      (static_cast<std::uint32_t>(weight_index(rect.weight)) << 20);
  return {static_cast<std::uint16_t>(packed & 0xffffu),
          static_cast<std::uint16_t>(packed >> 16)};
}

RectTerm decode_rect(const EncodedRect& encoded) {
  const std::uint32_t packed =
      static_cast<std::uint32_t>(encoded.lo) |
      (static_cast<std::uint32_t>(encoded.hi) << 16);
  RectTerm rect;
  rect.x = static_cast<std::int8_t>(packed & 31u);
  rect.y = static_cast<std::int8_t>((packed >> 5) & 31u);
  rect.w = static_cast<std::int8_t>((packed >> 10) & 31u);
  rect.h = static_cast<std::int8_t>((packed >> 15) & 31u);
  rect.weight = kWeightTable[(packed >> 20) & 7u];
  return rect;
}

EncodedClassifier encode_classifier(const WeakClassifier& wc) {
  EncodedClassifier out;
  const HaarFeature::Decomposition d = wc.feature.decompose();
  out.rect_count = static_cast<std::uint8_t>(d.count);
  for (int i = 0; i < d.count; ++i) {
    out.rects[static_cast<std::size_t>(i)] = encode_rect(d.rects[static_cast<std::size_t>(i)]);
  }
  out.threshold_q = quantize(wc.threshold, 1.0f / kThresholdScale, "threshold");
  out.left_q = quantize(wc.left_vote, kVoteScale, "left vote");
  out.right_q = quantize(wc.right_vote, kVoteScale, "right vote");
  return out;
}

WeakClassifier decode_classifier(const EncodedClassifier& encoded) {
  // The feature itself is reconstructed as an explicit rectangle list; for
  // evaluation we re-express it through a WeakClassifier whose feature is
  // only used via decompose(), so rebuild a feature whose decomposition
  // matches. Since decode is used for verification, reconstruct by brute
  // force over the rect terms: the kernel never needs this path.
  WeakClassifier wc;
  wc.threshold = static_cast<float>(encoded.threshold_q) * kThresholdScale;
  wc.left_vote = static_cast<float>(encoded.left_q) / kVoteScale;
  wc.right_vote = static_cast<float>(encoded.right_q) / kVoteScale;
  return wc;
}

ConstantBank ConstantBank::build(const Cascade& cascade) {
  ConstantBank bank;
  bank.name_ = cascade.name();
  for (const Stage& stage : cascade.stages()) {
    EncodedStage entry;
    entry.first = static_cast<std::uint32_t>(bank.classifiers_.size());
    entry.count = static_cast<std::uint32_t>(stage.classifiers.size());
    entry.threshold_q = quantize_saturating(stage.threshold, kVoteScale);
    bank.stages_.push_back(entry);
    for (const WeakClassifier& wc : stage.classifiers) {
      bank.classifiers_.push_back(encode_classifier(wc));
    }
  }
  return bank;
}

Cascade ConstantBank::decode() const {
  Cascade cascade(name_ + "-decoded");
  for (const EncodedStage& entry : stages_) {
    Stage stage;
    stage.threshold = static_cast<float>(entry.threshold_q) / kVoteScale;
    for (std::uint32_t i = 0; i < entry.count; ++i) {
      stage.classifiers.push_back(
          decode_classifier(classifiers_[entry.first + i]));
    }
    cascade.add_stage(std::move(stage));
  }
  return cascade;
}

std::size_t ConstantBank::bytes_compressed() const {
  std::size_t bytes = stages_.size() * (4 + 4 + 2);
  for (const EncodedClassifier& c : classifiers_) {
    // rect words + count byte + three 16-bit scalars
    bytes += static_cast<std::size_t>(c.rect_count) * 4 + 1 + 6;
  }
  return bytes;
}

std::size_t ConstantBank::bytes_raw() const {
  std::size_t bytes = stages_.size() * (4 + 4 + 4);
  for (const EncodedClassifier& c : classifiers_) {
    // five 32-bit fields per rectangle (x, y, w, h, weight) + three floats
    bytes += static_cast<std::size_t>(c.rect_count) * 5 * 4 + 3 * 4;
  }
  return bytes;
}

}  // namespace fdet::haar
