#include "haar/feature.h"

#include "core/check.h"

namespace fdet::haar {

std::string to_string(HaarType type) {
  switch (type) {
    case HaarType::kEdge:
      return "edge";
    case HaarType::kLine:
      return "line";
    case HaarType::kCenterSurround:
      return "center-surround";
    case HaarType::kDiagonal:
      return "diagonal";
  }
  return "unknown";
}

int HaarFeature::extent_w() const {
  switch (type) {
    case HaarType::kEdge:
      return vertical ? cw : 2 * cw;
    case HaarType::kLine:
      return vertical ? cw : 3 * cw;
    case HaarType::kCenterSurround:
      return 3 * cw;
    case HaarType::kDiagonal:
      return 2 * cw;
  }
  return 0;
}

int HaarFeature::extent_h() const {
  switch (type) {
    case HaarType::kEdge:
      return vertical ? 2 * ch : ch;
    case HaarType::kLine:
      return vertical ? 3 * ch : ch;
    case HaarType::kCenterSurround:
      return 3 * ch;
    case HaarType::kDiagonal:
      return 2 * ch;
  }
  return 0;
}

bool HaarFeature::valid() const {
  return cw >= 1 && ch >= 1 && x + extent_w() <= kWindowSize &&
         y + extent_h() <= kWindowSize;
}

HaarFeature::Decomposition HaarFeature::decompose() const {
  Decomposition d;
  const auto rect = [](int rx, int ry, int rw, int rh, int weight) {
    return RectTerm{static_cast<std::int8_t>(rx), static_cast<std::int8_t>(ry),
                    static_cast<std::int8_t>(rw), static_cast<std::int8_t>(rh),
                    static_cast<std::int8_t>(weight)};
  };
  switch (type) {
    case HaarType::kEdge:
      if (vertical) {
        d.rects[0] = rect(x, y, cw, ch, +1);
        d.rects[1] = rect(x, y + ch, cw, ch, -1);
      } else {
        d.rects[0] = rect(x, y, cw, ch, +1);
        d.rects[1] = rect(x + cw, y, cw, ch, -1);
      }
      d.count = 2;
      break;
    case HaarType::kLine:
      if (vertical) {
        d.rects[0] = rect(x, y, cw, ch, +1);
        d.rects[1] = rect(x, y + ch, cw, ch, -2);
        d.rects[2] = rect(x, y + 2 * ch, cw, ch, +1);
      } else {
        d.rects[0] = rect(x, y, cw, ch, +1);
        d.rects[1] = rect(x + cw, y, cw, ch, -2);
        d.rects[2] = rect(x + 2 * cw, y, cw, ch, +1);
      }
      d.count = 3;
      break;
    case HaarType::kCenterSurround:
      d.rects[0] = rect(x, y, 3 * cw, 3 * ch, +1);
      d.rects[1] = rect(x + cw, y + ch, cw, ch, -9);
      d.count = 2;
      break;
    case HaarType::kDiagonal:
      d.rects[0] = rect(x, y, cw, ch, +1);
      d.rects[1] = rect(x + cw, y, cw, ch, -1);
      d.rects[2] = rect(x, y + ch, cw, ch, -1);
      d.rects[3] = rect(x + cw, y + ch, cw, ch, +1);
      d.count = 4;
      break;
  }
  return d;
}

std::int64_t HaarFeature::response(const integral::IntegralImage& ii, int wx,
                                   int wy) const {
  const Decomposition d = decompose();
  std::int64_t acc = 0;
  for (int i = 0; i < d.count; ++i) {
    const RectTerm& r = d.rects[i];
    acc += static_cast<std::int64_t>(r.weight) *
           ii.sum(wx + r.x, wy + r.y, wx + r.x + r.w, wy + r.y + r.h);
  }
  return acc;
}

}  // namespace fdet::haar
