// Boosted cascade of classifiers (Viola–Jones attentional cascade).
//
// A weak classifier is a regression stump on one Haar-feature response:
//   h(window) = left_vote  if response < threshold
//             = right_vote otherwise
// GentleBoost produces real-valued votes; discrete AdaBoost is the special
// case left/right = ±alpha. A stage passes when the sum of its votes
// reaches the stage threshold; the cascade evaluates stages in order and
// rejects at the first failing stage (the early exit that makes detection
// fast — and GPU warps divergent).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/check.h"
#include "haar/feature.h"

namespace fdet::haar {

/// Error thrown by the validating cascade parser. Carries the 1-based line
/// number and the field being parsed so diagnostics can name the exact
/// offending token ("line 12, field 'threshold': non-finite value").
/// Derives core::CheckError, so callers catching the library error type
/// (and pre-existing tests) keep working.
class CascadeParseError : public core::CheckError {
 public:
  CascadeParseError(int line, std::string field, std::string detail,
                    const std::string& path = "")
      : core::CheckError("cascade parse error" +
                         (path.empty() ? std::string() : " [" + path + "]") +
                         " at line " + std::to_string(line) + ", field '" +
                         field + "': " + detail),
        line_(line),
        field_(std::move(field)),
        detail_(std::move(detail)) {}

  int line() const { return line_; }
  const std::string& field() const { return field_; }
  const std::string& detail() const { return detail_; }

 private:
  int line_;
  std::string field_;
  std::string detail_;
};

struct WeakClassifier {
  HaarFeature feature;
  float threshold = 0.0f;
  float left_vote = 0.0f;   ///< emitted when response <  threshold
  float right_vote = 0.0f;  ///< emitted when response >= threshold

  float vote(std::int64_t response) const {
    return static_cast<float>(response) < threshold ? left_vote : right_vote;
  }
};

struct Stage {
  std::vector<WeakClassifier> classifiers;
  float threshold = 0.0f;  ///< stage passes when Σ votes >= threshold
};

/// Result of evaluating a cascade on one window.
struct CascadeResult {
  int depth = 0;     ///< stages passed (== stage count for accepted windows)
  float score = 0.0f;///< vote sum of the last evaluated stage
  bool accepted = false;
};

class Cascade {
 public:
  Cascade() = default;
  explicit Cascade(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::vector<Stage>& stages() const { return stages_; }
  std::vector<Stage>& stages() { return stages_; }
  void add_stage(Stage stage) { stages_.push_back(std::move(stage)); }

  int stage_count() const { return static_cast<int>(stages_.size()); }

  /// Total weak classifiers across all stages (the paper's headline
  /// 1446-vs-2913 workload number).
  int classifier_count() const;

  /// Evaluates the window anchored at (wx, wy); stops at the first failing
  /// stage. `max_stages` (<= stage_count) truncates the cascade — used by
  /// the 15/20/25-stage accuracy sweep of Fig. 9.
  CascadeResult evaluate(const integral::IntegralImage& ii, int wx, int wy,
                         int max_stages = -1) const;

  /// Truncated copy containing only the first `stages` stages.
  Cascade prefix(int stages) const;

  bool empty() const { return stages_.empty(); }

 private:
  std::string name_;
  std::vector<Stage> stages_;
};

/// Text (de)serialization — a simple line format, stable across versions.
/// Floats are written with max_digits10 precision so a write/read round
/// trip is bit-exact (the training checkpoint layer relies on this).
void write_cascade(std::ostream& out, const Cascade& cascade);

/// Renders write_cascade() into a string — the canonical byte
/// representation used for on-disk files and artifact digests.
std::string cascade_to_string(const Cascade& cascade);

/// Validating parser: rejects truncation, malformed records, non-finite
/// thresholds/votes, and rectangles outside the 24x24 detection window
/// with a CascadeParseError naming the line and field. Never crashes on
/// hostile input.
Cascade read_cascade(std::istream& in);

/// Atomic save (tmp + flush + rename via core::atomic_write_file): a crash
/// mid-save never leaves a torn .cascade visible under `path`. Throws
/// core::ArtifactError on I/O failure.
void save_cascade(const std::string& path, const Cascade& cascade);

/// Loads and validates; CascadeParseError diagnostics are prefixed with
/// `path`. Throws core::CheckError when the file cannot be opened.
Cascade load_cascade(const std::string& path);

}  // namespace fdet::haar
