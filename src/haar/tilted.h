// 45°-tilted Haar features (Lienhart & Maydt's extension) on the rotated
// integral image — the capability paper Sec. III-C points to with
// "performing rotations of the integral image". Provided as standalone
// infrastructure: tilted edge/line features with the same cell
// parameterization as the upright set, evaluated in four RSAT lookups per
// rectangle.
#pragma once

#include <cstdint>
#include <functional>

#include "integral/rotated.h"

namespace fdet::haar {

enum class TiltedType : std::uint8_t {
  kEdge = 0,  ///< two tilted cells along the down-right diagonal, +1 / -1
  kLine = 1,  ///< three tilted cells, +1 / -2 / +1
};

struct TiltedFeature {
  TiltedType type = TiltedType::kEdge;
  std::uint8_t x = 0;   ///< apex column of the first cell
  std::uint8_t y = 0;   ///< apex row of the first cell
  std::uint8_t cw = 1;  ///< cell extent along the down-right diagonal
  std::uint8_t ch = 1;  ///< cell extent along the down-left diagonal

  /// Number of cells along the diagonal.
  int cells() const { return type == TiltedType::kEdge ? 2 : 3; }

  /// True when every cell lies inside a window of the given side anchored
  /// at (0, 0): cell k has apex (x + k*cw, y + k*cw) and spans
  /// columns [x+k*cw-ch+1, x+(k+1)*cw-1], rows [y+k*cw+1, y+k*cw+cw+ch].
  bool valid(int window = kTiltedWindow) const;

  /// Feature response: Σ weight_k * tilted_sum(cell_k). The window anchor
  /// (wx, wy) shifts every apex.
  std::int64_t response(const integral::RotatedIntegralImage& rot, int wx,
                        int wy) const;

  static constexpr int kTiltedWindow = 24;
};

/// Enumerates all valid tilted features of `type` in the 24x24 window;
/// returns the count.
std::int64_t for_each_tilted(TiltedType type,
                             const std::function<void(const TiltedFeature&)>& sink);

}  // namespace fdet::haar
