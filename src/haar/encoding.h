// Compressed feature encoding for constant memory (paper Sec. III-C).
//
// "Since all bits of the thresholds, coordinates, dimensions and weight
// values are not significant, we propose reencoding and combining them
// into two 16-bit words using simple bitwise operations and masks."
//
// Each rectangle record packs x,y,w,h (5 bits each, window is 24x24) and a
// 3-bit weight-table index into one 32-bit value = two 16-bit words.
// Stump thresholds are quantized to 16-bit fixed point (responses span
// about ±2^19, so a /16 scale keeps them exact to one part in ~2^15), and
// votes to 1/256 steps. The constant bank is the flat image the cascade
// evaluation kernel fetches from constant memory; bytes_raw() vs
// bytes_compressed() quantifies the footprint reduction the paper is
// after (64 KiB of constant memory must hold the whole cascade).
#pragma once

#include <cstdint>
#include <vector>

#include "haar/cascade.h"

namespace fdet::haar {

/// Weight values used by the four feature families.
inline constexpr std::array<std::int8_t, 8> kWeightTable = {1,  -1, 2, -2,
                                                            9,  -9, 3, -3};

/// Threshold fixed-point scale: stored = round(threshold / 16).
inline constexpr float kThresholdScale = 16.0f;
/// Vote fixed-point scale: stored = round(vote * 256).
inline constexpr float kVoteScale = 256.0f;

struct EncodedRect {
  std::uint16_t lo = 0;
  std::uint16_t hi = 0;

  bool operator==(const EncodedRect&) const = default;
};

/// Packs a rectangle term; throws core::CheckError if any field does not
/// fit (coordinates > 31 or weight not in kWeightTable).
EncodedRect encode_rect(const RectTerm& rect);
RectTerm decode_rect(const EncodedRect& encoded);

/// One weak classifier in constant-memory form.
struct EncodedClassifier {
  std::array<EncodedRect, 4> rects;
  std::uint8_t rect_count = 0;
  std::int16_t threshold_q = 0;
  std::int16_t left_q = 0;
  std::int16_t right_q = 0;
};

EncodedClassifier encode_classifier(const WeakClassifier& wc);
WeakClassifier decode_classifier(const EncodedClassifier& encoded);

/// Stage directory entry in the constant bank.
struct EncodedStage {
  std::uint32_t first = 0;   ///< index of the stage's first classifier
  std::uint32_t count = 0;
  std::int16_t threshold_q = 0;
};

/// The flat constant-memory image of a full cascade.
class ConstantBank {
 public:
  static ConstantBank build(const Cascade& cascade);

  const std::vector<EncodedStage>& stages() const { return stages_; }
  const std::vector<EncodedClassifier>& classifiers() const {
    return classifiers_;
  }

  /// Decodes back to a Cascade (quantized values — lossy by design).
  Cascade decode() const;

  /// Bytes in the compressed constant-memory layout.
  std::size_t bytes_compressed() const;

  /// Bytes if every rectangle kept 5 x 32-bit fields and every stump three
  /// 32-bit values (the uncompressed layout the paper improves on).
  std::size_t bytes_raw() const;

  /// True when the bank fits the device's 64 KiB constant memory.
  bool fits_constant_memory(std::size_t constant_bytes) const {
    return bytes_compressed() <= constant_bytes;
  }

 private:
  std::vector<EncodedStage> stages_;
  std::vector<EncodedClassifier> classifiers_;
  std::string name_;
};

}  // namespace fdet::haar
