#include "haar/tilted.h"

#include "core/check.h"

namespace fdet::haar {
namespace {

/// Per-cell weights of the two families.
constexpr int kEdgeWeights[2] = {1, -1};
constexpr int kLineWeights[3] = {1, -2, 1};

}  // namespace

bool TiltedFeature::valid(int window) const {
  if (cw < 1 || ch < 1) {
    return false;
  }
  const int n = cells();
  // Consecutive cells step one cell extent down the (+1,+1) diagonal.
  for (int k = 0; k < n; ++k) {
    const int ax = x + k * cw;
    const int ay = y + k * cw;
    // Solid tilted rect below apex (ax, ay) with legs (cw, ch) spans
    // columns [ax - ch + 1, ax + cw - 1] and rows [ay + 1, ay + cw + ch].
    if (ax - ch + 1 < 0 || ax + cw - 1 >= window || ay + cw + ch >= window) {
      return false;
    }
  }
  return true;
}

std::int64_t TiltedFeature::response(
    const integral::RotatedIntegralImage& rot, int wx, int wy) const {
  const int n = cells();
  const int* weights = (type == TiltedType::kEdge) ? kEdgeWeights : kLineWeights;
  std::int64_t acc = 0;
  for (int k = 0; k < n; ++k) {
    acc += static_cast<std::int64_t>(weights[k]) *
           rot.tilted_sum(wx + x + k * cw, wy + y + k * cw, cw, ch);
  }
  return acc;
}

std::int64_t for_each_tilted(
    TiltedType type, const std::function<void(const TiltedFeature&)>& sink) {
  std::int64_t count = 0;
  TiltedFeature probe;
  probe.type = type;
  for (int cw = 1; cw <= TiltedFeature::kTiltedWindow; ++cw) {
    for (int ch = 1; ch <= TiltedFeature::kTiltedWindow; ++ch) {
      probe.cw = static_cast<std::uint8_t>(cw);
      probe.ch = static_cast<std::uint8_t>(ch);
      for (int y = 0; y < TiltedFeature::kTiltedWindow; ++y) {
        for (int x = 0; x < TiltedFeature::kTiltedWindow; ++x) {
          probe.x = static_cast<std::uint8_t>(x);
          probe.y = static_cast<std::uint8_t>(y);
          if (probe.valid()) {
            sink(probe);
            ++count;
          }
        }
      }
    }
  }
  return count;
}

}  // namespace fdet::haar
