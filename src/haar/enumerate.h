// Exhaustive enumeration of the Haar-feature hypothesis space inside the
// 24x24 training window — the outer loop of the boosting trainer and the
// subject of paper Table I.
//
// The paper reports 55660 / 31878 / 3969 / 12100 combinations for the four
// families but does not state its enumeration constraints (grid strides,
// minimum cell sizes); those exact counts are not derivable from the
// standard full-grid enumeration, which this module implements (every
// anchor, every cell size that fits). The Table I bench prints both our
// counts and the paper's constants side by side; the training benches use
// the paper's totals for workload sizing (see kPaperCombinations).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "haar/feature.h"

namespace fdet::haar {

/// Enumeration constraints. Defaults = the classic full grid.
struct EnumerationGrid {
  int position_step = 1;  ///< stride of the (x, y) anchor grid
  int cell_step = 1;      ///< stride of the (cw, ch) cell-size grid
  int min_cell = 1;       ///< minimum cell side
};

/// Invokes `sink` for every valid feature of `type` under `grid`.
/// Returns the number of features visited.
std::int64_t for_each_feature(HaarType type, const EnumerationGrid& grid,
                              const std::function<void(const HaarFeature&)>& sink);

/// Materializes the enumeration (use sparingly; the full grid has ~171k
/// entries across all four families).
std::vector<HaarFeature> enumerate_features(HaarType type,
                                            const EnumerationGrid& grid = {});

/// Counts without materializing.
std::int64_t count_features(HaarType type, const EnumerationGrid& grid = {});

/// Deterministically subsamples the full grid to ~`target` features of the
/// given type (used to keep training tractable); always includes coarse
/// large-cell features.
std::vector<HaarFeature> sample_features(HaarType type, int target,
                                         std::uint64_t seed);

/// Paper Table I combination counts (used for workload sizing).
struct PaperCombinations {
  std::int64_t edge = 55660;
  std::int64_t line = 31878;
  std::int64_t center_surround = 3969;
  std::int64_t diagonal = 12100;

  std::int64_t total() const {
    return edge + line + center_surround + diagonal;
  }
};
inline constexpr PaperCombinations kPaperCombinations{};

}  // namespace fdet::haar
