#include "core/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "core/check.h"

namespace fdet::core {

Table::Table(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void Table::add_row(std::vector<std::string> cells) {
  FDET_CHECK(cells.size() == rows_.front().size())
      << "row arity " << cells.size() << " vs header " << rows_.front().size();
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(rows_.front().size(), 0);
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      out << (c == 0 ? "" : "  ") << std::left
          << std::setw(static_cast<int>(widths[c])) << rows_[r][c];
    }
    out << "\n";
    if (r == 0) {
      std::size_t total = 0;
      for (const auto w : widths) {
        total += w;
      }
      total += 2 * (widths.size() - 1);
      out << std::string(total, '-') << "\n";
    }
  }
}

void Table::print_markdown(std::ostream& out) const {
  const auto cell = [](const std::string& text) {
    std::string escaped;
    for (const char c : text) {
      if (c == '|') {
        escaped += '\\';
      }
      escaped += c;
    }
    return escaped;
  };
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out << "|";
    for (const auto& c : rows_[r]) {
      out << " " << cell(c) << " |";
    }
    out << "\n";
    if (r == 0) {
      out << "|";
      for (std::size_t c = 0; c < rows_.front().size(); ++c) {
        out << "---|";
      }
      out << "\n";
    }
  }
}

std::string Table::num(double value, int digits) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(digits) << value;
  return out.str();
}

}  // namespace fdet::core
