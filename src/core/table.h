// Plain-text table printer used by the benchmark binaries to emit rows in
// the same layout as the paper's tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fdet::core {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a header rule.
  void print(std::ostream& out) const;

  /// Renders as a GitHub-flavored markdown table (`| a | b |` rows with a
  /// `|---|` rule), pipe characters in cells escaped. fdet_report uses
  /// this to emit EXPERIMENTS.md-style tables.
  void print_markdown(std::ostream& out) const;

  /// Formats a double with `digits` decimal places.
  static std::string num(double value, int digits = 2);

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fdet::core
