#include "core/artifact.h"

#include <unistd.h>

#include <array>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

namespace fdet::core {
namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1U) ? (0xEDB88320U ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

WriteFaultHook& fault_hook() {
  static WriteFaultHook hook;
  return hook;
}

WriteFault consult_hook(const std::string& path, WriteOp op) {
  if (const WriteFaultHook& hook = fault_hook()) {
    return hook(path, op);
  }
  return WriteFault::kNone;
}

/// RAII for the staging FILE*: closes and removes the tmp file unless
/// explicitly released (after a successful rename) or abandoned (a torn
/// write simulates a crash, which leaves the tmp file behind on purpose —
/// that is exactly the debris a real crash produces).
class TmpFile {
 public:
  TmpFile(std::string path, std::FILE* file)
      : path_(std::move(path)), file_(file) {}
  ~TmpFile() {
    if (file_ != nullptr) {
      std::fclose(file_);
    }
    if (remove_on_exit_) {
      std::remove(path_.c_str());
    }
  }
  TmpFile(const TmpFile&) = delete;
  TmpFile& operator=(const TmpFile&) = delete;

  std::FILE* get() { return file_; }
  void close() {
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
  }
  /// Rename succeeded: the tmp path no longer exists.
  void release() { remove_on_exit_ = false; }
  /// Simulated crash: keep the torn tmp file on disk, as a crash would.
  void abandon() {
    close();
    remove_on_exit_ = false;
  }

 private:
  std::string path_;
  std::FILE* file_;
  bool remove_on_exit_ = true;
};

std::string hex32(std::uint32_t value) {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%08x", value);
  return buffer;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFU;
  for (std::size_t i = 0; i < size; ++i) {
    crc = kCrcTable[(crc ^ bytes[i]) & 0xFFU] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

std::uint32_t crc32(std::string_view data) {
  return crc32(data.data(), data.size());
}

ScopedWriteFaultHook::ScopedWriteFaultHook(WriteFaultHook hook)
    : previous_(std::move(fault_hook())) {
  fault_hook() = std::move(hook);
}

ScopedWriteFaultHook::~ScopedWriteFaultHook() {
  fault_hook() = std::move(previous_);
}

std::string tmp_path_for(const std::string& path) { return path + ".tmp"; }

void atomic_write_file(const std::string& path, std::string_view contents) {
  const std::string tmp = tmp_path_for(path);
  // A leftover tmp from an earlier crash/fault is dead weight; replace it.
  std::remove(tmp.c_str());

  std::FILE* raw = std::fopen(tmp.c_str(), "wb");
  if (raw == nullptr) {
    throw ArtifactError(path, std::string("cannot open staging file: ") +
                                  std::strerror(errno));
  }
  TmpFile file(tmp, raw);

  switch (consult_hook(path, WriteOp::kWrite)) {
    case WriteFault::kNone:
      if (std::fwrite(contents.data(), 1, contents.size(), file.get()) !=
          contents.size()) {
        throw ArtifactError(path, "short write to staging file");
      }
      break;
    case WriteFault::kShortWrite:
      std::fwrite(contents.data(), 1, contents.size() / 2, file.get());
      throw ArtifactError(path, "injected fault: short write (ENOSPC tail)");
    case WriteFault::kTornWrite:
      std::fwrite(contents.data(), 1, contents.size() / 2, file.get());
      file.abandon();  // the "crash": torn bytes stay under the tmp name
      throw ArtifactError(path, "injected fault: torn write (crash mid-write)");
    case WriteFault::kNoSpace:
      throw ArtifactError(path, "injected fault: no space left on device");
  }

  switch (consult_hook(path, WriteOp::kFlush)) {
    case WriteFault::kNone:
      break;
    case WriteFault::kTornWrite:
      file.abandon();
      throw ArtifactError(path, "injected fault: crash before flush");
    default:
      throw ArtifactError(path, "injected fault: flush failed");
  }
  if (std::fflush(file.get()) != 0 || fsync(fileno(file.get())) != 0) {
    throw ArtifactError(path, std::string("flush failed: ") +
                                  std::strerror(errno));
  }
  file.close();

  switch (consult_hook(path, WriteOp::kRename)) {
    case WriteFault::kNone:
      break;
    case WriteFault::kTornWrite:
      file.abandon();
      throw ArtifactError(path, "injected fault: crash before rename");
    default:
      throw ArtifactError(path, "injected fault: rename failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw ArtifactError(path, std::string("rename failed: ") +
                                  std::strerror(errno));
  }
  file.release();
}

std::string frame_artifact(const std::string& kind, int payload_version,
                           std::string_view payload) {
  FDET_CHECK(!kind.empty() &&
             kind.find_first_of(" \t\n") == std::string::npos)
      << "artifact kind must be a single token, got '" << kind << "'";
  FDET_CHECK(payload_version >= 0);
  std::ostringstream out;
  out << "fdet-artifact " << kArtifactContainerVersion << "\n"
      << "kind " << kind << "\n"
      << "payload-version " << payload_version << "\n"
      << "payload-bytes " << payload.size() << "\n"
      << "payload-crc32 " << hex32(crc32(payload)) << "\n"
      << "---\n";
  out.write(payload.data(),
            static_cast<std::streamsize>(payload.size()));
  return std::move(out).str();
}

void write_artifact(const std::string& path, const std::string& kind,
                    int payload_version, std::string_view payload) {
  atomic_write_file(path, frame_artifact(kind, payload_version, payload));
}

namespace {

/// Reads one "key value" header line; throws naming the field on mismatch.
std::string header_field(const std::string& path, std::istream& in,
                         const std::string& key) {
  std::string line;
  if (!std::getline(in, line)) {
    throw ArtifactError(path, "truncated container: missing '" + key +
                                  "' header line");
  }
  const std::size_t space = line.find(' ');
  if (space == std::string::npos || line.substr(0, space) != key) {
    throw ArtifactError(path, "malformed container: expected '" + key +
                                  " <value>', got '" + line + "'");
  }
  return line.substr(space + 1);
}

std::uint64_t parse_u64_field(const std::string& path, const std::string& key,
                              const std::string& text) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw ArtifactError(path, "malformed container: field '" + key +
                                  "' is not an integer: '" + text + "'");
  }
  return value;
}

}  // namespace

Artifact parse_artifact(const std::string& path, std::string_view contents) {
  std::istringstream in{std::string(contents)};

  const std::string magic = header_field(path, in, "fdet-artifact");
  if (parse_u64_field(path, "fdet-artifact", magic) !=
      static_cast<std::uint64_t>(kArtifactContainerVersion)) {
    throw ArtifactError(path, "unsupported container version '" + magic + "'");
  }

  Artifact artifact;
  artifact.header.kind = header_field(path, in, "kind");
  artifact.header.payload_version = static_cast<int>(
      parse_u64_field(path, "payload-version",
                      header_field(path, in, "payload-version")));
  artifact.header.payload_bytes =
      parse_u64_field(path, "payload-bytes",
                      header_field(path, in, "payload-bytes"));
  const std::string crc_text = header_field(path, in, "payload-crc32");
  if (crc_text.size() != 8 ||
      crc_text.find_first_not_of("0123456789abcdef") != std::string::npos) {
    throw ArtifactError(path, "malformed container: field 'payload-crc32' is "
                              "not 8 hex digits: '" + crc_text + "'");
  }
  artifact.header.payload_crc32 =
      static_cast<std::uint32_t>(std::stoul(crc_text, nullptr, 16));

  std::string separator;
  if (!std::getline(in, separator) || separator != "---") {
    throw ArtifactError(path, "malformed container: missing '---' separator");
  }

  // tellg() is -1 once eofbit is set (separator line without a trailing
  // newline) — in that case the payload region is empty.
  const std::size_t payload_start =
      in.eof() ? contents.size() : static_cast<std::size_t>(in.tellg());
  const std::size_t available = contents.size() - payload_start;
  if (available < artifact.header.payload_bytes) {
    std::ostringstream msg;
    msg << "truncated payload: header promises "
        << artifact.header.payload_bytes << " bytes, file holds "
        << available;
    throw ArtifactError(path, msg.str());
  }
  if (available > artifact.header.payload_bytes) {
    std::ostringstream msg;
    msg << "trailing garbage: header promises "
        << artifact.header.payload_bytes << " payload bytes, file holds "
        << available;
    throw ArtifactError(path, msg.str());
  }
  artifact.payload.assign(contents.substr(payload_start));

  const std::uint32_t actual = crc32(artifact.payload);
  if (actual != artifact.header.payload_crc32) {
    throw ArtifactError(path, "payload CRC mismatch: header " +
                                  hex32(artifact.header.payload_crc32) +
                                  ", computed " + hex32(actual));
  }
  return artifact;
}

Artifact read_artifact(const std::string& path,
                       const std::string& expect_kind) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw ArtifactError(path, "cannot open file");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Artifact artifact = parse_artifact(path, buffer.str());
  if (!expect_kind.empty() && artifact.header.kind != expect_kind) {
    throw ArtifactError(path, "wrong artifact kind: expected '" + expect_kind +
                                  "', found '" + artifact.header.kind + "'");
  }
  return artifact;
}

std::string quarantine_file(const std::string& path) noexcept {
  const std::string target = path + ".corrupt";
  std::remove(target.c_str());
  std::rename(path.c_str(), target.c_str());
  return target;
}

}  // namespace fdet::core
