#include "core/check.h"

namespace fdet::core::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::ostringstream out;
  out << "FDET_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) {
    out << " — " << message;
  }
  throw CheckError(out.str());
}

}  // namespace fdet::core::detail
