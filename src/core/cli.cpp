#include "core/cli.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <sstream>

namespace fdet::core {
namespace {

bool parse_int(std::string_view text, int& out) {
  const auto* end = text.data() + text.size();
  const auto result = std::from_chars(text.data(), end, out);
  return result.ec == std::errc() && result.ptr == end;
}

bool parse_double(std::string_view text, double& out) {
  // from_chars for double is supported by libstdc++ 11+, but go through
  // strtod for portability with the exact end-pointer check.
  std::string owned(text);
  char* end = nullptr;
  const double value = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size() || owned.empty()) {
    return false;
  }
  out = value;
  return true;
}

bool parse_bool(std::string_view text, bool& out) {
  if (text == "1" || text == "true" || text == "yes" || text.empty()) {
    out = true;
    return true;
  }
  if (text == "0" || text == "false" || text == "no") {
    out = false;
    return true;
  }
  return false;
}

/// Levenshtein distance, for "did you mean" flag suggestions. Flag names
/// are short, so the quadratic table is negligible.
std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) {
    row[j] = j;
  }
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitution =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
    }
  }
  return row[b.size()];
}

}  // namespace

void Cli::add(std::string name, std::string help, std::string default_repr,
              std::string type_name, std::function<bool(std::string_view)> set) {
  flags_.push_back({std::move(name), std::move(help), std::move(default_repr),
                    std::move(type_name), std::move(set)});
}

void Cli::flag(std::string name, int& value, std::string help) {
  add(std::move(name), std::move(help), std::to_string(value), "int",
      [&value](std::string_view text) { return parse_int(text, value); });
}

void Cli::flag(std::string name, double& value, std::string help) {
  add(std::move(name), std::move(help), std::to_string(value), "double",
      [&value](std::string_view text) { return parse_double(text, value); });
}

void Cli::flag(std::string name, bool& value, std::string help) {
  add(std::move(name), std::move(help), value ? "true" : "false", "bool",
      [&value](std::string_view text) { return parse_bool(text, value); });
}

void Cli::flag(std::string name, std::string& value, std::string help) {
  add(std::move(name), std::move(help), value, "string",
      [&value](std::string_view text) {
        value = std::string(text);
        return true;
      });
}

bool Cli::fail(const std::string& message) {
  last_error_ = message;
  std::fputs(message.c_str(), stderr);
  return false;
}

bool Cli::parse(int argc, char** argv) {
  return parse_impl(argc, argv, nullptr);
}

bool Cli::parse_known(int argc, char** argv,
                      std::vector<std::string>& remaining) {
  remaining.clear();
  remaining.push_back(argc > 0 ? argv[0] : program_.c_str());
  return parse_impl(argc, argv, &remaining);
}

bool Cli::parse_impl(int argc, char** argv,
                     std::vector<std::string>* remaining) {
  last_error_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--benchmark_", 0) == 0) {
      if (remaining != nullptr) {
        remaining->push_back(argv[i]);
      }
      continue;  // owned by google-benchmark
    }
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stderr);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      if (remaining != nullptr) {
        remaining->push_back(argv[i]);
        continue;
      }
      return fail(program_ + ": unexpected positional argument '" + argv[i] +
                  "' (flags are --name=value or --name value)\n" + usage());
    }
    arg.remove_prefix(2);
    std::string_view name = arg;
    std::string_view value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    Flag* match = nullptr;
    for (auto& flag : flags_) {
      if (flag.name == name) {
        match = &flag;
        break;
      }
    }
    if (match == nullptr) {
      if (remaining != nullptr) {
        // Unknown flags pass through verbatim; a detached value would be
        // ambiguous, so foreign flags should use --flag=value form.
        remaining->push_back(argv[i]);
        continue;
      }
      std::string message = program_ + ": unknown flag '--" +
                            std::string(name) + "'";
      const Flag* closest = nullptr;
      std::size_t best = 3;  // suggest only close misspellings
      for (const auto& flag : flags_) {
        const std::size_t distance = edit_distance(name, flag.name);
        if (distance < best) {
          best = distance;
          closest = &flag;
        }
      }
      if (closest != nullptr) {
        message += " (did you mean '--" + closest->name + "'?)";
      }
      return fail(message + "\n" + usage());
    }
    if (!has_value && i + 1 < argc && argv[i + 1][0] != '-') {
      value = argv[++i];
      has_value = true;
    }
    if (!has_value && match->type_name != "bool") {
      // Without this check the empty value would fall through to the
      // parser and report a confusing "bad value: ''".
      return fail(program_ + ": flag '--" + match->name + "' needs a " +
                  match->type_name + " value: use --" + match->name +
                  "=<" + match->type_name + "> or --" + match->name +
                  " <" + match->type_name + ">\n");
    }
    if (!match->set(value)) {
      return fail(program_ + ": bad value for '--" + match->name + "': '" +
                  std::string(value) + "' (expected " + match->type_name +
                  ", default " + match->default_repr + ")\n");
    }
  }
  return true;
}

std::string Cli::usage() const {
  std::ostringstream out;
  out << "usage: " << program_ << " [flags]\n";
  for (const auto& flag : flags_) {
    out << "  --" << flag.name << " (default " << flag.default_repr << ")  "
        << flag.help << "\n";
  }
  return out.str();
}

}  // namespace fdet::core
