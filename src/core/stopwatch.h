// Wall-clock stopwatch for host-side measurements. Virtual-GPU time is a
// separate concept (vgpu::Timeline); keep the two clearly apart.
//
// Built on std::chrono::steady_clock deliberately: recorded bench samples
// (obs::RunRecord) feed the regression gate, and a wall-clock jump (NTP
// step, suspend/resume under system_clock) would corrupt them. Readings
// additionally FDET_CHECK monotonicity so a broken clock fails loudly
// instead of poisoning a baseline.
#pragma once

#include <chrono>

#include "core/check.h"

namespace fdet::core {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    const Clock::time_point now = Clock::now();
    FDET_CHECK(now >= start_) << "steady clock went backwards";
    return std::chrono::duration<double>(now - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady, "bench timing requires a monotonic clock");
  Clock::time_point start_;
};

}  // namespace fdet::core
