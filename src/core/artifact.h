// Durable-file primitives shared by everything the system persists:
// trained cascades, training checkpoints, cache manifests.
//
// Three guarantees, layered:
//
//   1. Atomicity — atomic_write_file() writes to `<path>.tmp`, flushes
//      through the OS (fflush + fsync), and renames into place. A crash
//      or write fault at any point leaves the destination either absent
//      or holding its previous complete contents; a torn file can only
//      ever exist under the `.tmp` name, which every reader ignores.
//   2. Integrity — the artifact container frames a payload with a
//      versioned section header carrying the payload byte count and its
//      CRC32, so truncation and bit rot are detected at read time with a
//      typed error instead of being parsed into garbage.
//   3. Testability — every write/flush/rename goes through a process-wide
//      WriteFaultHook seam. The chaos harness (tools/fdet_train_chaos)
//      injects torn writes, short writes, and ENOSPC there to prove the
//      crash-consistency argument instead of assuming it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "core/check.h"

namespace fdet::core {

/// Error thrown by durable-file primitives: failed writes, CRC mismatches,
/// malformed or truncated containers. Derives CheckError so existing
/// call sites that catch the library error type keep working.
class ArtifactError : public CheckError {
 public:
  ArtifactError(std::string path, const std::string& detail)
      : CheckError("artifact error [" + path + "]: " + detail),
        path_(std::move(path)) {}

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `data`.
/// crc32("123456789") == 0xCBF43926.
std::uint32_t crc32(std::string_view data);
std::uint32_t crc32(const void* data, std::size_t size);

// ---------------------------------------------------------------------------
// Write-fault injection seam.

/// The filesystem operations atomic_write_file performs, in order.
enum class WriteOp {
  kWrite,   ///< payload bytes going into the tmp file
  kFlush,   ///< fflush + fsync of the tmp file
  kRename,  ///< rename(tmp, final)
};

/// What an installed hook may inject for one operation.
enum class WriteFault {
  kNone,        ///< proceed normally
  kShortWrite,  ///< only a prefix of the payload reaches the tmp file,
                ///< then the write reports failure (classic ENOSPC tail)
  kTornWrite,   ///< a prefix reaches the tmp file and the process "dies"
                ///< there: no error return, no flush, no rename
  kNoSpace,     ///< the operation fails outright with no bytes written
};

/// Consulted before each WriteOp on each path. Return kNone to proceed.
using WriteFaultHook = std::function<WriteFault(const std::string& path,
                                                WriteOp op)>;

/// Installs `hook` process-wide and restores the previous hook on
/// destruction. Not thread-safe: the seam exists for single-threaded
/// chaos harnesses and tests.
class ScopedWriteFaultHook {
 public:
  explicit ScopedWriteFaultHook(WriteFaultHook hook);
  ~ScopedWriteFaultHook();
  ScopedWriteFaultHook(const ScopedWriteFaultHook&) = delete;
  ScopedWriteFaultHook& operator=(const ScopedWriteFaultHook&) = delete;

 private:
  WriteFaultHook previous_;
};

// ---------------------------------------------------------------------------
// Atomic file replacement.

/// Name of the staging file atomic_write_file uses for `path`; readers
/// (and directory scans looking for durable artifacts) must skip it.
std::string tmp_path_for(const std::string& path);

/// Writes `contents` to `path` atomically: stage into tmp_path_for(path),
/// flush + fsync, rename over `path`. On any failure (including injected
/// write faults) throws ArtifactError; the destination is untouched and
/// the stale tmp file, when one survives a simulated torn write, is
/// removed on the next atomic_write_file to the same path.
void atomic_write_file(const std::string& path, std::string_view contents);

// ---------------------------------------------------------------------------
// Versioned, checksummed artifact container.

/// Section header shared by all durable container files. On disk:
///
///   fdet-artifact 1
///   kind <token>
///   payload-version <int>
///   payload-bytes <N>
///   payload-crc32 <8 hex digits>
///   ---
///   <exactly N payload bytes>
struct ArtifactHeader {
  std::string kind;          ///< e.g. "train-checkpoint", "pretrained-manifest"
  int payload_version = 1;   ///< schema version of the payload, per kind
  std::uint64_t payload_bytes = 0;
  std::uint32_t payload_crc32 = 0;
};

inline constexpr int kArtifactContainerVersion = 1;

/// Serializes header + payload into the container framing (no I/O).
std::string frame_artifact(const std::string& kind, int payload_version,
                           std::string_view payload);

/// Atomically writes a framed artifact to `path`.
void write_artifact(const std::string& path, const std::string& kind,
                    int payload_version, std::string_view payload);

struct Artifact {
  ArtifactHeader header;
  std::string payload;
};

/// Parses a framed artifact from `contents` (as read from `path`, named in
/// diagnostics). Validates the container version, header fields, payload
/// byte count, and CRC32; throws ArtifactError on any mismatch.
Artifact parse_artifact(const std::string& path, std::string_view contents);

/// Reads and validates the artifact at `path`. When `expect_kind` is
/// non-empty the kind must match; throws ArtifactError otherwise (a
/// missing file is also an ArtifactError).
Artifact read_artifact(const std::string& path,
                       const std::string& expect_kind = "");

/// Renames a corrupt/stale durable file to `<path>.corrupt` (replacing any
/// previous quarantine of the same path) so it can be inspected without
/// ever being picked up by a reader again. Returns the quarantine path;
/// never throws — quarantining is best-effort cleanup on an error path.
std::string quarantine_file(const std::string& path) noexcept;

}  // namespace fdet::core
