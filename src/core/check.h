// Lightweight runtime checking used across the library.
//
// FDET_CHECK is always on (it guards logic errors in library internals and
// public-API contract violations); it throws fdet::core::CheckError so tests
// can assert on failures instead of aborting the process.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fdet::core {

/// Error thrown when a FDET_CHECK condition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);

/// Accumulates an optional streamed message for FDET_CHECK.
class CheckMessage {
 public:
  CheckMessage(const char* expr, const char* file, int line)
      : expr_(expr), file_(file), line_(line) {}

  template <typename T>
  CheckMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessage() noexcept(false) {
    check_failed(expr_, file_, line_, stream_.str());
  }

 private:
  const char* expr_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace fdet::core

/// Checks `cond`; on failure throws fdet::core::CheckError with the source
/// location and any streamed message: FDET_CHECK(n > 0) << "n=" << n;
#define FDET_CHECK(cond)                                              \
  if (cond) {                                                         \
  } else                                                              \
    ::fdet::core::detail::CheckMessage(#cond, __FILE__, __LINE__)
