// Deterministic, seedable random number generation.
//
// The whole library (synthetic faces, trailers, training, benchmarks) is
// reproducible from explicit 64-bit seeds; nothing reads entropy from the
// environment. Rng is xoshiro256**, seeded through SplitMix64 as its authors
// recommend, which keeps independent streams cheap to derive.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace fdet::core {

/// SplitMix64 step; used for seeding and for cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mixes two 64-bit values into one; handy for deriving per-item seeds
/// (e.g. per-frame, per-feature) from a master seed.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x3243f6a8885a308dULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = splitmix64(sm);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  constexpr int uniform_int(int lo, int hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<int>((*this)() % span);
  }

  /// Approximately normal via sum of uniforms (Irwin–Hall, 12 terms) —
  /// branch-free and plenty for synthetic-texture purposes.
  constexpr double normal(double mean = 0.0, double stddev = 1.0) {
    double acc = 0.0;
    for (int i = 0; i < 12; ++i) {
      acc += uniform();
    }
    return mean + stddev * (acc - 6.0);
  }

  /// True with probability p.
  constexpr bool bernoulli(double p) { return uniform() < p; }

  /// Derives an independent child generator (stream splitting).
  constexpr Rng split() { return Rng(hash_combine((*this)(), (*this)())); }

  /// Raw xoshiro256** state, for durable checkpoints: restoring it with
  /// set_state() resumes the exact stream, which the training resume path
  /// needs for bit-identical replays.
  constexpr std::array<std::uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }

  constexpr void set_state(const std::array<std::uint64_t, 4>& state) {
    for (int i = 0; i < 4; ++i) {
      state_[i] = state[static_cast<std::size_t>(i)];
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace fdet::core
