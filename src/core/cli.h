// Tiny declarative flag parser for example/bench binaries.
//
//   fdet::core::Cli cli("bench_table2");
//   int frames = 8;
//   cli.flag("frames", frames, "frames per trailer");
//   cli.parse(argc, argv);   // accepts --frames=16 or --frames 16
//
// Unknown flags are reported and parse() returns false (callers typically
// print usage and exit). Flags consumed by google-benchmark (--benchmark_*)
// are passed through untouched.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace fdet::core {

class Cli {
 public:
  explicit Cli(std::string program) : program_(std::move(program)) {}

  void flag(std::string name, int& value, std::string help);
  void flag(std::string name, double& value, std::string help);
  void flag(std::string name, bool& value, std::string help);
  void flag(std::string name, std::string& value, std::string help);

  /// Parses argv; prints a diagnostic and returns false on unknown flags or
  /// malformed values. `--help` prints usage and also returns false.
  /// Diagnostics name the offending token, the expected value type, and —
  /// for unknown flags — the closest registered flag name.
  bool parse(int argc, char** argv);

  /// Like parse(), but unknown flags and positionals are collected into
  /// `remaining` (argv order, argv[0] first) instead of being an error.
  /// For binaries that hand leftover arguments to another parser, e.g.
  /// google-benchmark. `--help` still prints usage and returns false.
  bool parse_known(int argc, char** argv, std::vector<std::string>& remaining);

  std::string usage() const;

  /// The diagnostic of the most recent parse()/parse_known() failure
  /// (empty after a success or `--help`). The same text goes to stderr;
  /// this accessor exists so callers and tests can assert on it.
  const std::string& last_error() const { return last_error_; }

 private:
  struct Flag {
    std::string name;
    std::string help;
    std::string default_repr;
    std::string type_name;  ///< "int" | "double" | "bool" | "string"
    std::function<bool(std::string_view)> set;
  };

  void add(std::string name, std::string help, std::string default_repr,
           std::string type_name, std::function<bool(std::string_view)> set);

  /// Records the diagnostic in last_error_ and prints it to stderr.
  bool fail(const std::string& message);

  /// Shared loop: `remaining == nullptr` makes unknown arguments an error
  /// (parse), otherwise they are collected (parse_known).
  bool parse_impl(int argc, char** argv, std::vector<std::string>* remaining);

  std::string program_;
  std::vector<Flag> flags_;
  std::string last_error_;
};

}  // namespace fdet::core
