// Minimal fixed-size thread pool with a blocking parallel_for.
//
// Used by the host-side stages (synthetic rendering, training loops when
// OpenMP is not wanted) — the virtual GPU has its own scheduler. The pool
// follows CP.4 ("think in terms of tasks"): callers submit a range and a
// chunk body, never raw threads.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fdet::core {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task; returns immediately.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Runs body(begin, end) over [0, n) split into roughly 4×threads chunks;
  /// blocks until complete. Exceptions in chunks propagate (first one wins).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Process-wide default pool (lazily constructed, hardware concurrency).
ThreadPool& default_pool();

}  // namespace fdet::core
