#include "core/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "core/check.h"

namespace fdet::core {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    FDET_CHECK(!stopping_) << "submit() on a stopping pool";
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) {
    return;
  }
  const std::size_t chunks =
      std::min(n, std::max<std::size_t>(1, thread_count() * 4));
  const std::size_t chunk = (n + chunks - 1) / chunks;

  std::atomic<std::size_t> remaining{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done;

  std::size_t launched = 0;
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(n, begin + chunk);
    ++launched;
    remaining.fetch_add(1, std::memory_order_relaxed);
    submit([&, begin, end] {
      try {
        body(begin, end);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lock(done_mutex);
        done.notify_all();
      }
    });
  }
  (void)launched;

  std::unique_lock lock(done_mutex);
  done.wait(lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) {
        idle_.notify_all();
      }
    }
  }
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace fdet::core
