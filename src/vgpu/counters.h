// Profiler-style performance counters aggregated over a kernel launch.
// These mirror the statistics the paper reads from the CUDA compute
// profiler: branch efficiency (ratio of non-divergent to total warp
// branches), DRAM read throughput, and SIMD lane utilization.
#pragma once

#include <algorithm>
#include <cstdint>

namespace fdet::vgpu {

struct PerfCounters {
  std::uint64_t threads = 0;
  std::uint64_t warps = 0;

  std::uint64_t warp_branches = 0;      ///< branch instructions, warp level
  std::uint64_t divergent_branches = 0; ///< warp branches with mixed outcome

  std::uint64_t global_read_bytes = 0;
  std::uint64_t global_write_bytes = 0;
  std::uint64_t global_transactions = 0; ///< 128-byte coalesced segments

  std::uint64_t alu_ops = 0;
  std::uint64_t fma_ops = 0;
  std::uint64_t sfu_ops = 0;
  std::uint64_t shared_accesses = 0;
  std::uint64_t constant_accesses = 0;
  std::uint64_t texture_fetches = 0;

  double lane_issue_cycles = 0.0;  ///< sum of per-lane useful issue cycles
  double warp_issue_cycles = 0.0;  ///< sum of per-warp (max-lane) cycles

  /// Fraction of warp branches with a uniform outcome (paper: 98.9 %).
  /// A launch with no branches counts as fully efficient; inconsistent
  /// inputs (more divergent than total branches) clamp into [0, 1].
  double branch_efficiency() const {
    if (warp_branches == 0) {
      return 1.0;
    }
    const double eff =
        1.0 - static_cast<double>(divergent_branches) / warp_branches;
    return std::clamp(eff, 0.0, 1.0);
  }

  /// Average fraction of lanes doing useful work while their warp executes.
  /// Degenerate launches (no issued warp cycles) count as fully efficient.
  double simd_efficiency() const {
    if (warp_issue_cycles <= 0.0) {
      return 1.0;
    }
    return std::clamp(lane_issue_cycles / (warp_issue_cycles * 32.0), 0.0, 1.0);
  }

  /// DRAM read throughput in bytes/second for a given kernel duration.
  /// Zero-duration (or negative) intervals yield 0 rather than infinity.
  double dram_read_throughput(double seconds) const {
    return seconds <= 0.0 ? 0.0 : global_read_bytes / seconds;
  }

  PerfCounters& operator+=(const PerfCounters& other) {
    threads += other.threads;
    warps += other.warps;
    warp_branches += other.warp_branches;
    divergent_branches += other.divergent_branches;
    global_read_bytes += other.global_read_bytes;
    global_write_bytes += other.global_write_bytes;
    global_transactions += other.global_transactions;
    alu_ops += other.alu_ops;
    fma_ops += other.fma_ops;
    sfu_ops += other.sfu_ops;
    shared_accesses += other.shared_accesses;
    constant_accesses += other.constant_accesses;
    texture_fetches += other.texture_fetches;
    lane_issue_cycles += other.lane_issue_cycles;
    warp_issue_cycles += other.warp_issue_cycles;
    return *this;
  }
};

}  // namespace fdet::vgpu
