// Profiler-style performance counters aggregated over a kernel launch.
// These mirror the statistics the paper reads from the CUDA compute
// profiler: branch efficiency (ratio of non-divergent to total warp
// branches), DRAM read throughput, and SIMD lane utilization.
//
// Beyond the raw event counts, the executor decomposes every block's
// service time into additive *service-cycle* components (all divided by
// CostModel::ipc / latency hiding exactly like the scheduler's timing, so
// they sum to LaunchCost::total_service_cycles):
//
//   issue_service_cycles      front-end/ALU issue work, incl. divergence
//                             and bank-conflict serialization
//   divergence_cycles         issue cycles lost to idle SIMD lanes (the
//                             warp pays for its slowest lane)
//   bank_conflict_cycles      extra issue cycles from serialized
//                             shared-memory bank conflicts
//   stall_service_cycles      visible memory stalls after latency hiding
//   stall_base_cycles         the part of the stall a fully occupied SM
//                             would still see (stall_service_cycles -
//                             stall_base_cycles is the occupancy-limited
//                             loss)
//
// The profiler (obs/profile.h) reads these to attribute cycles per kernel
// with a stall taxonomy; the counters stay plain summable fields so
// merging launches is associative.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

namespace fdet::vgpu {

struct PerfCounters {
  std::uint64_t threads = 0;
  std::uint64_t warps = 0;

  std::uint64_t warp_branches = 0;      ///< branch instructions, warp level
  std::uint64_t divergent_branches = 0; ///< warp branches with mixed outcome

  std::uint64_t global_read_bytes = 0;
  std::uint64_t global_write_bytes = 0;
  std::uint64_t global_transactions = 0; ///< 128-byte coalesced segments

  std::uint64_t alu_ops = 0;
  std::uint64_t fma_ops = 0;
  std::uint64_t sfu_ops = 0;
  std::uint64_t shared_accesses = 0;
  std::uint64_t constant_accesses = 0;
  std::uint64_t texture_fetches = 0;
  /// Extra serialized shared-memory passes from bank conflicts: for each
  /// warp-synchronous access slot, conflict degree minus one (a
  /// conflict-free or fully broadcast slot contributes 0). Only addressed
  /// accesses (LaneCtx::shared_load/shared_store) are modelled; the
  /// unaddressed shared_access() escape hatch counts as conflict-free.
  std::uint64_t bank_conflicts = 0;

  double lane_issue_cycles = 0.0;  ///< sum of per-lane useful issue cycles
  double warp_issue_cycles = 0.0;  ///< sum of per-warp (max-lane) cycles

  // Service-cycle decomposition (see file comment). All five are in the
  // same post-ipc/post-hiding domain as LaunchCost::total_service_cycles:
  //   issue_service_cycles + stall_service_cycles == total service cycles
  //   divergence_cycles + bank_conflict_cycles    <= issue_service_cycles
  //   stall_base_cycles                           <= stall_service_cycles
  double issue_service_cycles = 0.0;
  double stall_service_cycles = 0.0;
  double stall_base_cycles = 0.0;
  double divergence_cycles = 0.0;
  double bank_conflict_cycles = 0.0;

  /// Fraction of warp branches with a uniform outcome (paper: 98.9 %).
  /// A launch with no branches counts as fully efficient; inconsistent
  /// inputs (more divergent than total branches) clamp into [0, 1].
  double branch_efficiency() const {
    if (warp_branches == 0) {
      return 1.0;
    }
    const double eff =
        1.0 - static_cast<double>(divergent_branches) /
                  static_cast<double>(warp_branches);
    return std::clamp(eff, 0.0, 1.0);
  }

  /// Average fraction of lanes doing useful work while their warp executes.
  /// Degenerate launches (no issued warp cycles) count as fully efficient.
  double simd_efficiency() const {
    if (warp_issue_cycles <= 0.0) {
      return 1.0;
    }
    return std::clamp(lane_issue_cycles / (warp_issue_cycles * 32.0), 0.0, 1.0);
  }

  /// DRAM read throughput in bytes/second for a given kernel duration.
  /// Zero-duration (or negative) intervals yield 0 rather than infinity.
  double dram_read_throughput(double seconds) const {
    return seconds <= 0.0 ? 0.0
                          : static_cast<double>(global_read_bytes) / seconds;
  }

  /// Arithmetic ops charged to the launch (roofline numerator).
  std::uint64_t arithmetic_ops() const { return alu_ops + fma_ops + sfu_ops; }

  /// Global-memory traffic in bytes (roofline denominator).
  std::uint64_t global_bytes() const {
    return global_read_bytes + global_write_bytes;
  }

  /// Roofline arithmetic intensity in ops/byte of global traffic. A
  /// launch that touches no global memory is unboundedly compute-heavy:
  /// returns +inf (callers rendering JSON should store ops and bytes and
  /// derive the ratio instead of serializing the infinity).
  double arithmetic_intensity() const {
    const std::uint64_t bytes = global_bytes();
    if (bytes == 0) {
      return arithmetic_ops() == 0
                 ? 0.0
                 : std::numeric_limits<double>::infinity();
    }
    return static_cast<double>(arithmetic_ops()) / static_cast<double>(bytes);
  }

  PerfCounters& operator+=(const PerfCounters& other) {
    threads += other.threads;
    warps += other.warps;
    warp_branches += other.warp_branches;
    divergent_branches += other.divergent_branches;
    global_read_bytes += other.global_read_bytes;
    global_write_bytes += other.global_write_bytes;
    global_transactions += other.global_transactions;
    alu_ops += other.alu_ops;
    fma_ops += other.fma_ops;
    sfu_ops += other.sfu_ops;
    shared_accesses += other.shared_accesses;
    constant_accesses += other.constant_accesses;
    texture_fetches += other.texture_fetches;
    bank_conflicts += other.bank_conflicts;
    lane_issue_cycles += other.lane_issue_cycles;
    warp_issue_cycles += other.warp_issue_cycles;
    issue_service_cycles += other.issue_service_cycles;
    stall_service_cycles += other.stall_service_cycles;
    stall_base_cycles += other.stall_base_cycles;
    divergence_cycles += other.divergence_cycles;
    bank_conflict_cycles += other.bank_conflict_cycles;
    return *this;
  }
};

}  // namespace fdet::vgpu
