#include "vgpu/tap.h"

#include <utility>

namespace fdet::vgpu {
namespace {

thread_local LaunchTap* g_active_tap = nullptr;

}  // namespace

ScopedLaunchTap::ScopedLaunchTap(LaunchTap* tap)
    : previous_(std::exchange(g_active_tap, tap)) {}

ScopedLaunchTap::~ScopedLaunchTap() { g_active_tap = previous_; }

LaunchTap* active_tap() { return g_active_tap; }

}  // namespace fdet::vgpu
