// Virtual GPU device description and occupancy calculation.
//
// The default spec is modelled on the NVIDIA GTX470 (Fermi GF100, sm_20)
// used in the paper: 14 streaming multiprocessors, 32-lane warps, 48 KiB
// shared memory and 32 K registers per SM, 1.215 GHz shader clock.
#pragma once

#include <cstdint>

#include "vgpu/cost_model.h"

namespace fdet::vgpu {

struct DeviceSpec {
  const char* name = "vGTX470";
  int sm_count = 14;
  int warp_size = 32;
  int max_threads_per_block = 1024;
  int max_blocks_per_sm = 8;
  int max_warps_per_sm = 48;        // 1536 threads per SM on Fermi
  int shared_mem_per_sm = 48 * 1024;
  int registers_per_sm = 32 * 1024;
  int constant_mem_bytes = 64 * 1024;
  double clock_ghz = 1.215;

  /// Per-launch overhead: driver/runtime launch latency plus the
  /// inter-kernel drain bubble before a dependent kernel's first block can
  /// start. Exposed in serial execution (one long dependent chain of
  /// launches); hidden by concurrent kernel execution, where other
  /// streams' blocks keep the SMs busy across the gap — the mechanism
  /// behind the paper's ~2x serial-vs-concurrent difference.
  double launch_overhead_s = 35e-6;
  /// Host-side issue serialization between consecutive launches.
  double host_issue_gap_s = 3e-6;

  CostModel cost;

  /// Virtual seconds for a cycle count.
  double cycles_to_seconds(double cycles) const {
    return cycles / (clock_ghz * 1e9);
  }
};

/// Result of the CUDA-style occupancy calculation for one kernel launch.
struct Occupancy {
  int blocks_per_sm = 0;   ///< resident blocks, min over all limiters
  int warps_per_block = 0;
  int resident_warps = 0;  ///< blocks_per_sm * warps_per_block
  double ratio = 0.0;      ///< resident_warps / max_warps_per_sm
};

/// Computes how many blocks of a kernel fit on one SM given its thread
/// count, static shared-memory footprint and per-thread register usage.
Occupancy compute_occupancy(const DeviceSpec& spec, int threads_per_block,
                            int shared_bytes_per_block, int regs_per_thread);

}  // namespace fdet::vgpu
