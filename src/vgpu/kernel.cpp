#include "vgpu/kernel.h"

#include <algorithm>
#include <array>

#include "core/check.h"

namespace fdet::vgpu {
namespace {

constexpr int kWarpSize = 32;
constexpr std::uint64_t kSegmentBytes = 128;  // Fermi coalescing granularity

/// Scratch for one warp's aggregation, reused across warps to avoid
/// allocation in the hot loop (Per.14/Per.15).
struct WarpScratch {
  std::array<LaneCtx, kWarpSize> lanes;
  std::array<std::uint64_t, kWarpSize> segments;  // dedup buffer per slot
};

struct WarpCost {
  double issue = 0.0;
  double stall = 0.0;
  double divergence_issue = 0.0;     ///< issue cycles lost to idle lanes
  double bank_conflict_issue = 0.0;  ///< serialized shared-memory passes
};

constexpr int kSharedBanks = 32;  // Fermi: 32 banks, 4-byte wide

/// Reduces the lanes of one warp (lanes[0..active)) into cost + counters.
WarpCost aggregate_warp(const CostModel& cost, const KernelConfig& config,
                        WarpScratch& scratch, int active,
                        PerfCounters& counters) {
  WarpCost warp;
  double max_lane_issue = 0.0;
  double sum_lane_issue = 0.0;
  std::size_t max_global_ops = 0;
  std::size_t max_shared_ops = 0;
  std::size_t max_branch_trace = 0;
  std::uint32_t max_untracked = 0;

  const double const_cost =
      config.constant_broadcast ? cost.constant_access : cost.constant_serialized;

  for (int l = 0; l < active; ++l) {
    const LaneCtx& lane = scratch.lanes[l];
    double issue = lane.alu_count() * cost.alu + lane.fma_count() * cost.fma +
                   lane.sfu_count() * cost.sfu +
                   lane.shared_count() * cost.shared_access +
                   lane.constant_count() * const_cost +
                   lane.texture_count() * cost.texture_fetch;
    const std::size_t branches =
        lane.branch_trace().size() + lane.untracked_branches();
    issue += static_cast<double>(branches) * cost.branch;

    counters.alu_ops += lane.alu_count();
    counters.fma_ops += lane.fma_count();
    counters.sfu_ops += lane.sfu_count();
    counters.shared_accesses += lane.shared_count();
    counters.constant_accesses += lane.constant_count();
    counters.texture_fetches += lane.texture_count();
    counters.lane_issue_cycles += issue;

    sum_lane_issue += issue;
    max_lane_issue = std::max(max_lane_issue, issue);
    max_global_ops = std::max(max_global_ops, lane.global_ops().size());
    max_shared_ops = std::max(max_shared_ops, lane.shared_words().size());
    max_branch_trace = std::max(max_branch_trace, lane.branch_trace().size());
    max_untracked = std::max(max_untracked, lane.untracked_branches());

    for (const auto& op : lane.global_ops()) {
      if (op.store) {
        counters.global_write_bytes += op.bytes;
      } else {
        counters.global_read_bytes += op.bytes;
      }
    }
  }
  warp.issue = max_lane_issue;
  // SIMD lockstep: the warp pays max-lane issue, so the gap between the
  // slowest lane and the lane average is issue capacity burned on idle
  // lanes (inactive tail lanes of a partial warp included).
  warp.divergence_issue =
      std::max(0.0, max_lane_issue - sum_lane_issue / kWarpSize);

  // Bank conflicts: align addressed shared accesses by slot index across
  // lanes (lanes of a warp issue their k-th shared access together).
  // Distinct 4-byte words falling into the same of the 32 banks serialize;
  // an n-way conflict costs n - 1 extra passes. Lanes reading the same
  // word broadcast for free.
  for (std::size_t slot = 0; slot < max_shared_ops; ++slot) {
    std::array<std::uint32_t, kWarpSize> words;
    int n_words = 0;
    for (int l = 0; l < active; ++l) {
      const auto& lane_words = scratch.lanes[static_cast<std::size_t>(l)]
                                   .shared_words();
      if (slot >= lane_words.size()) {
        continue;
      }
      const std::uint32_t word = lane_words[slot];
      bool seen = false;
      for (int s = 0; s < n_words; ++s) {
        if (words[static_cast<std::size_t>(s)] == word) {
          seen = true;
          break;
        }
      }
      if (!seen) {
        words[static_cast<std::size_t>(n_words++)] = word;
      }
    }
    std::array<int, kSharedBanks> per_bank{};
    int degree = 0;
    for (int s = 0; s < n_words; ++s) {
      const auto bank = words[static_cast<std::size_t>(s)] % kSharedBanks;
      degree = std::max(degree, ++per_bank[static_cast<std::size_t>(bank)]);
    }
    const int extra = std::max(0, degree - 1);
    if (extra > 0) {
      counters.bank_conflicts += static_cast<std::uint64_t>(extra);
      const double serialized = extra * cost.shared_conflict;
      warp.issue += serialized;
      warp.bank_conflict_issue += serialized;
    }
  }

  // Coalescing: align global accesses by slot index across lanes; lanes of
  // a warp issue their k-th access together, and distinct 128-byte segments
  // become separate transactions.
  for (std::size_t slot = 0; slot < max_global_ops; ++slot) {
    int distinct = 0;
    for (int l = 0; l < active; ++l) {
      const auto& ops = scratch.lanes[l].global_ops();
      if (slot >= ops.size()) {
        continue;
      }
      const std::uint64_t seg = ops[slot].addr / kSegmentBytes;
      bool seen = false;
      for (int s = 0; s < distinct; ++s) {
        if (scratch.segments[static_cast<std::size_t>(s)] == seg) {
          seen = true;
          break;
        }
      }
      if (!seen) {
        scratch.segments[static_cast<std::size_t>(distinct++)] = seg;
      }
    }
    counters.global_transactions += static_cast<std::uint64_t>(distinct);
    warp.issue += distinct * cost.global_transaction_issue;
    warp.stall += cost.global_latency;  // one dependent wait per slot
  }

  // Divergence: a warp branch is divergent when participating lanes
  // disagree on the outcome at the same trace position.
  for (std::size_t k = 0; k < max_branch_trace; ++k) {
    bool saw_taken = false;
    bool saw_not_taken = false;
    for (int l = 0; l < active; ++l) {
      const auto& trace = scratch.lanes[l].branch_trace();
      if (k >= trace.size()) {
        continue;
      }
      (trace[k] != 0 ? saw_taken : saw_not_taken) = true;
    }
    ++counters.warp_branches;
    if (saw_taken && saw_not_taken) {
      ++counters.divergent_branches;
    }
  }
  // Untracked branches are uniform by construction (kernels with regular
  // control flow); count them at warp level without divergence.
  counters.warp_branches += max_untracked;

  counters.warp_issue_cycles += warp.issue;
  return warp;
}

/// Process-wide fault hook (see ScopedLaunchFaultHook). Plain pointer-free
/// static: installed and consumed on the launching thread only.
LaunchFaultHook g_launch_fault_hook;

/// Innermost profile hook of this thread (see ScopedKernelProfileHook).
thread_local ScopedKernelProfileHook* g_profile_hook = nullptr;

}  // namespace

ScopedLaunchFaultHook::ScopedLaunchFaultHook(LaunchFaultHook hook)
    : previous_(std::move(g_launch_fault_hook)) {
  g_launch_fault_hook = std::move(hook);
}

ScopedLaunchFaultHook::~ScopedLaunchFaultHook() {
  g_launch_fault_hook = std::move(previous_);
}

ScopedKernelProfileHook::ScopedKernelProfileHook(KernelProfileHook hook)
    : hook_(std::move(hook)), prev_(g_profile_hook) {
  g_profile_hook = this;
}

ScopedKernelProfileHook::~ScopedKernelProfileHook() {
  g_profile_hook = prev_;
}

const KernelProfileHook* ScopedKernelProfileHook::current() {
  return g_profile_hook == nullptr ? nullptr : &g_profile_hook->hook_;
}

LaunchCost execute_kernel(const DeviceSpec& spec, const KernelConfig& config,
                          std::span<const PhaseFn> phases) {
  if (g_launch_fault_hook) {
    g_launch_fault_hook(config);  // may throw to inject a launch failure
  }
  FDET_CHECK(!phases.empty()) << "kernel '" << config.name << "' has no phases";
  FDET_CHECK(config.grid.count() > 0 && config.block.count() > 0)
      << "kernel '" << config.name << "' has an empty launch";
  const int threads_per_block = static_cast<int>(config.block.count());
  FDET_CHECK(threads_per_block <= spec.max_threads_per_block)
      << "kernel '" << config.name << "': " << threads_per_block
      << " threads per block";

  // Opt-in instrumentation (vgpu/tap.h): an active CheckScope turns this
  // launch into a checked execution; an active capture tap records it as
  // a kernel IR for the static analyzer. Precedence when both are
  // installed: the CHECKER wins — the capture tap is notified once and
  // sees none of the launch's events (checker/analyzer overlap seam).
  Checker* const checker = active_checker();
  LaunchTap* tap = active_tap();
  if (checker != nullptr) {
    if (tap != nullptr) {
      tap->on_shadowed_launch(config);
    }
    tap = checker;
  }
  if (tap == nullptr || !tap->absorbs_resource_faults()) {
    FDET_CHECK(config.constant_bytes <= spec.constant_mem_bytes)
        << "kernel '" << config.name << "' needs " << config.constant_bytes
        << " bytes of constant memory but device '" << spec.name
        << "' provides " << spec.constant_mem_bytes;
  }
  if (tap != nullptr) {
    tap->begin_kernel(spec, config);
  }
  const bool track_branches =
      config.track_branches ||
      (tap != nullptr && tap->wants_branch_tracking());

  LaunchCost result;
  result.config = config;
  result.occupancy = compute_occupancy(spec, threads_per_block,
                                       config.shared_bytes,
                                       config.regs_per_thread);
  FDET_CHECK(result.occupancy.blocks_per_sm > 0)
      << "kernel '" << config.name << "' cannot be resident on an SM";

  const std::int64_t num_blocks = config.grid.count();
  result.block_service_cycles.resize(static_cast<std::size_t>(num_blocks));

  const int warps_per_block =
      (threads_per_block + kWarpSize - 1) / kWarpSize;
  // Latency hiding pool: every resident warp beyond the first helps cover
  // memory stalls.
  const double hiding =
      1.0 + spec.cost.latency_hiding_per_warp *
                std::max(0, result.occupancy.resident_warps - 1);
  // Hypothetical hiding pool of a fully occupied SM: the stall a launch
  // would still see at max occupancy. The gap between stall/hiding and
  // stall/hiding_full is the occupancy-limited loss the profiler reports.
  const double hiding_full =
      1.0 + spec.cost.latency_hiding_per_warp *
                std::max(0, spec.max_warps_per_sm - 1);

  WarpScratch scratch;
  SharedMem shared;

  ThreadCoord coord;
  coord.grid = config.grid;
  coord.block = config.block;

  for (std::int64_t b = 0; b < num_blocks; ++b) {
    coord.block_id.x = static_cast<int>(b % config.grid.x);
    coord.block_id.y = static_cast<int>((b / config.grid.x) % config.grid.y);
    coord.block_id.z = static_cast<int>(b / (static_cast<std::int64_t>(config.grid.x) * config.grid.y));

    if (tap == nullptr) {
      shared.reset(static_cast<std::size_t>(config.shared_bytes));
    } else {
      tap->begin_block(coord.block_id);
      shared.reset_checked(static_cast<std::size_t>(config.shared_bytes),
                           tap);
    }
    double block_issue = 0.0;
    double block_stall = 0.0;
    double block_divergence = 0.0;
    double block_conflict = 0.0;

    for (std::size_t phase = 0; phase < phases.size(); ++phase) {
      if (tap != nullptr) {
        tap->begin_phase(static_cast<int>(phase));
      }
      for (int w = 0; w < warps_per_block; ++w) {
        const int first_thread = w * kWarpSize;
        const int active =
            std::min(kWarpSize, threads_per_block - first_thread);
        for (int l = 0; l < active; ++l) {
          const int t = first_thread + l;
          coord.thread.x = t % config.block.x;
          coord.thread.y = (t / config.block.x) % config.block.y;
          coord.thread.z = t / (config.block.x * config.block.y);
          LaneCtx& lane = scratch.lanes[static_cast<std::size_t>(l)];
          lane.reset();
          lane.set_track_branches(track_branches);
          if (tap != nullptr) {
            tap->begin_lane(coord.thread);
            lane.set_tap(tap);
          }
          shared.rewind();
          phases[phase](coord, lane, shared);
          if (tap != nullptr) {
            tap->end_lane(lane);
          }
        }
        const WarpCost warp = aggregate_warp(spec.cost, config, scratch,
                                             active, result.counters);
        block_issue += warp.issue;
        block_stall += warp.stall;
        block_divergence += warp.divergence_issue;
        block_conflict += warp.bank_conflict_issue;
      }
      if (tap != nullptr) {
        tap->end_phase();  // the block-wide barrier commits writes
      }
      if (phase + 1 < phases.size()) {
        block_issue += warps_per_block * spec.cost.sync;  // __syncthreads
      }
    }

    const double service = block_issue / spec.cost.ipc + block_stall / hiding;
    result.block_service_cycles[static_cast<std::size_t>(b)] = service;
    result.total_service_cycles += service;

    // Service-cycle decomposition (counters.h): same ipc / hiding divisors
    // as the timing above, so issue + stall sums to total_service_cycles.
    result.counters.issue_service_cycles += block_issue / spec.cost.ipc;
    result.counters.stall_service_cycles += block_stall / hiding;
    result.counters.stall_base_cycles += block_stall / hiding_full;
    result.counters.divergence_cycles += block_divergence / spec.cost.ipc;
    result.counters.bank_conflict_cycles += block_conflict / spec.cost.ipc;
  }

  result.counters.threads =
      static_cast<std::uint64_t>(num_blocks) * threads_per_block;
  result.counters.warps = static_cast<std::uint64_t>(num_blocks) *
                          warps_per_block * phases.size();
  if (tap != nullptr) {
    tap->end_kernel();
  }
  const KernelProfileHook* hook = ScopedKernelProfileHook::current();
  if (hook != nullptr && *hook) {
    (*hook)(spec, result);
  }
  return result;
}

LaunchCost execute_kernel(const DeviceSpec& spec, const KernelConfig& config,
                          PhaseFn phase) {
  const std::array<PhaseFn, 1> phases{std::move(phase)};
  return execute_kernel(spec, config, std::span<const PhaseFn>(phases));
}

LaunchCost execute_kernel(const DeviceSpec& spec, const KernelConfig& config,
                          PhaseFn phase1, PhaseFn phase2) {
  const std::array<PhaseFn, 2> phases{std::move(phase1), std::move(phase2)};
  return execute_kernel(spec, config, std::span<const PhaseFn>(phases));
}

CheckedExecution execute_kernel_checked(const DeviceSpec& spec,
                                        const KernelConfig& config,
                                        std::span<const PhaseFn> phases,
                                        CheckOptions options) {
  CheckScope scope(std::move(options));
  CheckedExecution result;
  result.cost = execute_kernel(spec, config, phases);
  result.report = std::move(scope.checker().take_reports().back());
  return result;
}

CheckedExecution execute_kernel_checked(const DeviceSpec& spec,
                                        const KernelConfig& config,
                                        PhaseFn phase, CheckOptions options) {
  const std::array<PhaseFn, 1> phases{std::move(phase)};
  return execute_kernel_checked(spec, config,
                                std::span<const PhaseFn>(phases),
                                std::move(options));
}

CheckedExecution execute_kernel_checked(const DeviceSpec& spec,
                                        const KernelConfig& config,
                                        PhaseFn phase1, PhaseFn phase2,
                                        CheckOptions options) {
  const std::array<PhaseFn, 2> phases{std::move(phase1), std::move(phase2)};
  return execute_kernel_checked(spec, config,
                                std::span<const PhaseFn>(phases),
                                std::move(options));
}

}  // namespace fdet::vgpu
