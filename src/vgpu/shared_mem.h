// Block-local scratch standing in for CUDA __shared__ memory.
//
// A kernel declares its static shared footprint in KernelConfig (which also
// feeds the occupancy calculation) and carves typed arrays out of the block's
// buffer inside each phase. The buffer lives for the whole block — values
// written in phase k are visible in phase k+1, with the inter-phase barrier
// supplied by the executor (the functional equivalent of __syncthreads).
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <vector>

#include "core/check.h"

namespace fdet::vgpu {

class SharedMem {
 public:
  /// Reinitializes for a new block with `bytes` of zeroed storage.
  void reset(std::size_t bytes) {
    buffer_.assign(bytes, std::byte{0});
    cursor_ = 0;
  }

  /// Carves the next `count` elements of T out of the buffer. Layout is
  /// allocation-order, so every thread (and every phase) performing the
  /// same sequence of array() calls sees the same arrays — call it with
  /// identical arguments from all lanes, as CUDA's static __shared__
  /// declarations do. The cursor rewinds automatically when the carve
  /// sequence restarts (detected by offset 0 request pattern via rewind()).
  template <typename T>
  std::span<T> array(std::size_t count) {
    const std::size_t bytes = count * sizeof(T);
    const std::size_t aligned = align(cursor_, alignof(T));
    FDET_CHECK(aligned + bytes <= buffer_.size())
        << "shared memory overflow: need " << aligned + bytes << " have "
        << buffer_.size();
    cursor_ = aligned + bytes;
    return {reinterpret_cast<T*>(buffer_.data() + aligned), count};
  }

  /// Restarts the carve sequence; the executor calls this before every lane
  /// so each lane's array() calls resolve to the same storage.
  void rewind() { cursor_ = 0; }

  std::size_t capacity() const { return buffer_.size(); }

 private:
  static std::size_t align(std::size_t offset, std::size_t alignment) {
    return (offset + alignment - 1) & ~(alignment - 1);
  }

  std::vector<std::byte> buffer_;
  std::size_t cursor_ = 0;
};

}  // namespace fdet::vgpu
