// Block-local scratch standing in for CUDA __shared__ memory.
//
// A kernel declares its static shared footprint in KernelConfig (which also
// feeds the occupancy calculation) and carves typed arrays out of the block's
// buffer inside each phase. The buffer lives for the whole block — values
// written in phase k are visible in phase k+1, with the inter-phase barrier
// supplied by the executor (the functional equivalent of __syncthreads).
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <vector>

#include "core/check.h"
#include "vgpu/tap.h"

namespace fdet::vgpu {

class SharedMem {
 public:
  /// Reinitializes for a new block with `bytes` of zeroed storage.
  void reset(std::size_t bytes) {
    buffer_.assign(bytes, std::byte{0});
    tap_ = nullptr;
    cursor_ = 0;
  }

  /// Instrumented reinitialization (checker or capture tap, vgpu/tap.h):
  /// the buffer may span the whole SM capacity so carves escaping the
  /// declared footprint still land in real storage and are *reported*
  /// instead of crashing the run.
  void reset_checked(std::size_t declared_bytes, LaunchTap* tap) {
    buffer_.assign(std::max(declared_bytes, tap->shared_capacity_override()),
                   std::byte{0});
    tap_ = tap;
    cursor_ = 0;
  }

  /// Carves the next `count` elements of T out of the buffer. Layout is
  /// allocation-order, so every thread (and every phase) performing the
  /// same sequence of array() calls sees the same arrays — call it with
  /// identical arguments from all lanes, as CUDA's static __shared__
  /// declarations do. There is no automatic rewind: the executor calls
  /// rewind() before every lane so each lane's carve sequence restarts at
  /// offset 0, and in checked mode (vgpu/checker.h) the checker asserts
  /// that all lanes request identical carve sequences.
  template <typename T>
  std::span<T> array(std::size_t count) {
    const std::size_t bytes = count * sizeof(T);
    const std::size_t aligned = align(cursor_, alignof(T));
    FDET_CHECK(aligned + bytes <= buffer_.size())
        << "shared memory overflow: need " << aligned + bytes << " have "
        << buffer_.size();
    if (tap_ != nullptr) {
      tap_->on_carve(aligned, bytes, alignof(T));
    }
    cursor_ = aligned + bytes;
    return {reinterpret_cast<T*>(buffer_.data() + aligned), count};
  }

  /// Restarts the carve sequence; the executor calls this before every lane
  /// so each lane's array() calls resolve to the same storage.
  void rewind() { cursor_ = 0; }

  /// Byte offset of `p` within the block's buffer — the address the
  /// checker's shared-access records use. `p` must point into a span
  /// previously returned by array().
  std::size_t offset_of(const void* p) const {
    return static_cast<std::size_t>(static_cast<const std::byte*>(p) -
                                    buffer_.data());
  }

  std::size_t capacity() const { return buffer_.size(); }

 private:
  static std::size_t align(std::size_t offset, std::size_t alignment) {
    return (offset + alignment - 1) & ~(alignment - 1);
  }

  std::vector<std::byte> buffer_;
  std::size_t cursor_ = 0;
  LaunchTap* tap_ = nullptr;
};

}  // namespace fdet::vgpu
