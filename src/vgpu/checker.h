// Racecheck/memcheck-style verification layer for virtual-GPU kernels.
//
// The functional executor (kernel.cpp) produces host-order deterministic
// results, so an entire class of CUDA porting bugs is invisible to it: a
// kernel missing a phase split (the moral __syncthreads) still computes
// the right answer on the host while racing on real hardware. The paper's
// cascade kernel is the canonical example — Sec. III-C's staging protocol
// has every thread write 4 shared-tile pixels, 3 of which are consumed by
// *other* threads' windows after the barrier.
//
// Checked execution shadows every attributed shared-memory access, every
// SharedMem carve and every recorded global operation with
// (lane, phase, byte-range, read/write) records and reports:
//
//   intra-phase race          two lanes touch overlapping shared bytes in
//                             one phase, at least one writing — a missing
//                             barrier (cuda-memcheck --tool racecheck)
//   uninitialized shared read a lane reads shared bytes no earlier phase
//                             (and no same-lane program-order write) ever
//                             wrote — __shared__ starts undefined even
//                             though the simulator zero-fills it
//   carve divergence          lanes disagree on the SharedMem::array carve
//                             sequence (offset/size/alignment); CUDA's
//                             static __shared__ layout is identical for
//                             every thread by construction
//   carve overflow            a carve escapes the declared shared_bytes
//                             (span escape past the static footprint)
//   declared-bytes mismatch   the kernel declares more shared memory than
//                             it ever carves (occupancy paid for nothing)
//   constant overflow         KernelConfig::constant_bytes exceeds
//                             DeviceSpec::constant_mem_bytes (the 64 KiB
//                             Fermi limit the re-encoding of Sec. III-B
//                             exists to satisfy)
//   global out-of-bounds      a recorded global access falls outside every
//                             registered allocation (cuda-memcheck proper)
//
// Opt-in: instantiate a CheckScope, run any kernel(s) through the normal
// execute_kernel path (directly or via the production wrappers in
// fdet::integral / fdet::detect), then inspect the per-launch reports.
// Without an active scope the executor's hot path pays one pointer test.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "vgpu/device.h"
#include "vgpu/dim.h"
#include "vgpu/tap.h"

namespace fdet::vgpu {

class LaneCtx;
struct KernelConfig;

enum class HazardKind {
  kIntraPhaseRace,
  kUninitializedSharedRead,
  kCarveDivergence,
  kCarveOverflow,
  kSharedDeclMismatch,
  kSharedOutOfBounds,
  kConstantOverflow,
  kGlobalOutOfBounds,
};

/// Stable lowercase identifier (used in messages, metrics labels, tables).
const char* hazard_name(HazardKind kind);

/// One detected hazard. `message` is the full human-readable diagnostic
/// (kernel, phase, lane coordinates, byte offsets, suggested fix); the
/// structured fields exist so tests and tools can assert without parsing.
struct Hazard {
  HazardKind kind;
  std::string kernel;
  int phase = -1;            ///< -1 when not tied to a phase
  Dim3 block_id{0, 0, 0};
  Dim3 lane_a{0, 0, 0};      ///< thread coords of the reporting lane
  Dim3 lane_b{0, 0, 0};      ///< second lane for races (valid iff has_lane_b)
  bool has_lane_b = false;
  std::uint64_t offset = 0;  ///< shared byte offset / global address
  std::uint32_t bytes = 0;
  std::string message;
};

/// Verification verdict for one kernel launch.
struct CheckReport {
  std::string kernel;
  int phases = 0;
  std::int64_t blocks = 0;
  std::vector<Hazard> hazards;
  std::uint64_t suppressed_hazards = 0;    ///< beyond max_reports_per_kernel
  std::uint64_t shared_accesses_checked = 0;
  std::uint64_t unattributed_shared_accesses = 0;
  std::uint64_t carves_checked = 0;
  std::uint64_t global_ops_checked = 0;

  bool clean() const { return hazards.empty() && suppressed_hazards == 0; }
  /// `kernel 'x': CLEAN (...)` / `kernel 'x': N hazard(s) ...` one-liner.
  std::string summary() const;
};

/// A named [base, base+size) virtual-address range for the memcheck side.
/// Kernels use per-array byte offsets as virtual addresses (see addr_of in
/// integral/gpu.cpp), so callers typically register one range per distinct
/// array a launch touches; the check flags accesses outside all of them.
struct GlobalAllocation {
  std::string name;
  std::uint64_t base = 0;
  std::uint64_t size = 0;
};

struct CheckOptions {
  /// Hazards recorded per launch before further ones are only counted.
  int max_reports_per_kernel = 8;
  /// Registered allocations for global bounds checking; empty disables it.
  std::vector<GlobalAllocation> global_allocations;
  /// Report kernels that declare more shared bytes than they carve.
  bool check_shared_declaration = true;
};

/// The verification engine — one of the two LaunchTap implementations
/// (vgpu/tap.h; the other is the static analyzer's capture engine). The
/// executor drives it through the begin/on/end hooks when a CheckScope is
/// active; most callers never touch it directly and read
/// CheckScope::reports() instead.
class Checker : public LaunchTap {
 public:
  explicit Checker(CheckOptions options = {});

  // --- executor hooks (one kernel launch at a time) ---------------------
  void begin_kernel(const DeviceSpec& spec,
                    const KernelConfig& config) override;
  void begin_block(const Dim3& block_id) override;
  void begin_phase(int phase) override;
  void begin_lane(const Dim3& thread) override;
  /// SharedMem::array landed a carve at [offset, offset+bytes).
  void on_carve(std::size_t offset, std::size_t bytes,
                std::size_t alignment) override;
  /// Attributed shared access from LaneCtx::shared_load/shared_store.
  void on_shared(std::size_t offset, std::uint32_t bytes,
                 bool store) override;
  /// Legacy LaneCtx::shared_access(n) — costed but not race-checkable.
  void on_unattributed_shared(std::uint32_t n) override;
  /// Lane finished: memcheck its recorded global ops.
  void end_lane(const LaneCtx& lane) override;
  void end_phase() override;
  void end_kernel() override;

  /// Shared buffer size for checked blocks: the full per-SM capacity, so a
  /// carve escaping the declared footprint still lands in real storage and
  /// is reported instead of crashing.
  std::size_t checked_shared_capacity() const;
  std::size_t shared_capacity_override() const override {
    return checked_shared_capacity();
  }
  /// Resource-limit violations (constant overflow) become hazards, not
  /// throws.
  bool absorbs_resource_faults() const override { return true; }

  /// Replaces the registered allocations (between launches; fdet_check
  /// re-registers per kernel because the offset address spaces overlap).
  void set_global_allocations(std::vector<GlobalAllocation> allocations);

  const std::vector<CheckReport>& reports() const { return reports_; }
  std::vector<CheckReport> take_reports();
  bool clean() const;
  std::size_t hazard_count() const;

 private:
  struct CarveEvent {
    std::size_t offset = 0;
    std::size_t bytes = 0;
    std::size_t alignment = 0;
    bool operator==(const CarveEvent&) const = default;
  };

  /// Byte-granular shadow cell. Epoch tags make per-phase and per-block
  /// resets O(1): a tag only means something when it equals the current
  /// phase/block epoch.
  struct ByteState {
    std::uint64_t write_epoch = 0;  ///< phase epoch of the last write
    std::uint64_t read_epoch = 0;   ///< phase epoch of the last read
    std::uint64_t valid_epoch = 0;  ///< block epoch when committed written
    std::int32_t write_lane = -1;
    std::int32_t read_lane = -1;
  };

  void add_hazard(HazardKind kind, std::uint64_t offset, std::uint32_t bytes,
                  std::string message);
  void add_race(std::size_t byte, std::uint32_t bytes, bool current_is_store,
                bool other_is_store, std::int32_t other_lane);
  Dim3 lane_coords(std::int32_t flat) const;
  std::string lane_str(const Dim3& lane) const;

  CheckOptions options_;

  // Per-kernel state.
  bool in_kernel_ = false;
  std::string kernel_name_;
  const char* device_name_ = "";
  Dim3 block_dim_{1, 1, 1};
  std::size_t declared_shared_ = 0;
  std::size_t shared_capacity_ = 0;
  std::size_t max_carve_extent_ = 0;
  int phase_ = -1;
  Dim3 block_id_{0, 0, 0};
  Dim3 lane_{0, 0, 0};
  std::int32_t lane_flat_ = 0;
  std::size_t carve_index_ = 0;
  std::vector<CarveEvent> reference_carves_;

  std::vector<ByteState> shadow_;
  std::uint64_t phase_epoch_ = 0;
  std::uint64_t block_epoch_ = 0;
  /// Byte ranges written during the current phase, committed into
  /// valid_epoch at the barrier (end_phase).
  std::vector<std::pair<std::size_t, std::size_t>> phase_writes_;

  CheckReport current_;
  std::vector<CheckReport> reports_;
};

/// RAII opt-in: installs `this` as the calling thread's active checker, so
/// every execute_kernel on this thread until destruction runs instrumented.
/// Scopes nest (the previous checker is restored); checked state is
/// per-thread, so concurrent tests do not interfere.
class CheckScope {
 public:
  explicit CheckScope(CheckOptions options = {});
  ~CheckScope();
  CheckScope(const CheckScope&) = delete;
  CheckScope& operator=(const CheckScope&) = delete;

  Checker& checker() { return checker_; }
  void set_global_allocations(std::vector<GlobalAllocation> allocations) {
    checker_.set_global_allocations(std::move(allocations));
  }
  const std::vector<CheckReport>& reports() const { return checker_.reports(); }
  bool clean() const { return checker_.clean(); }
  std::size_t hazard_count() const { return checker_.hazard_count(); }

 private:
  Checker checker_;
  Checker* previous_;
};

/// The calling thread's active checker, or nullptr when unchecked. The
/// executor consults this once per launch.
Checker* active_checker();

}  // namespace fdet::vgpu
