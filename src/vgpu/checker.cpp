#include "vgpu/checker.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "core/check.h"
#include "vgpu/kernel.h"
#include "vgpu/lane.h"

namespace fdet::vgpu {
namespace {

thread_local Checker* g_active_checker = nullptr;

}  // namespace

const char* hazard_name(HazardKind kind) {
  switch (kind) {
    case HazardKind::kIntraPhaseRace: return "intra-phase-race";
    case HazardKind::kUninitializedSharedRead: return "uninitialized-shared-read";
    case HazardKind::kCarveDivergence: return "carve-divergence";
    case HazardKind::kCarveOverflow: return "carve-overflow";
    case HazardKind::kSharedDeclMismatch: return "shared-decl-mismatch";
    case HazardKind::kSharedOutOfBounds: return "shared-out-of-bounds";
    case HazardKind::kConstantOverflow: return "constant-overflow";
    case HazardKind::kGlobalOutOfBounds: return "global-out-of-bounds";
  }
  return "unknown";
}

std::string CheckReport::summary() const {
  std::ostringstream out;
  out << "kernel '" << kernel << "': ";
  if (clean()) {
    out << "CLEAN";
  } else {
    out << hazards.size() + suppressed_hazards << " hazard(s)";
  }
  out << " (" << blocks << " blocks, " << phases << " phases, "
      << shared_accesses_checked << " shared accesses, " << carves_checked
      << " carves, " << global_ops_checked << " global ops checked)";
  return out.str();
}

Checker::Checker(CheckOptions options) : options_(std::move(options)) {}

void Checker::begin_kernel(const DeviceSpec& spec, const KernelConfig& config) {
  FDET_CHECK(!in_kernel_) << "checker: nested begin_kernel for '"
                          << config.name << "'";
  in_kernel_ = true;
  kernel_name_ = config.name;
  device_name_ = spec.name;
  block_dim_ = config.block;
  declared_shared_ = static_cast<std::size_t>(config.shared_bytes);
  shared_capacity_ = std::max(declared_shared_,
                              static_cast<std::size_t>(spec.shared_mem_per_sm));
  max_carve_extent_ = 0;
  phase_ = -1;
  carve_index_ = 0;
  reference_carves_.clear();
  shadow_.assign(shared_capacity_, ByteState{});
  phase_epoch_ = 0;
  block_epoch_ = 0;
  phase_writes_.clear();
  current_ = CheckReport{};
  current_.kernel = kernel_name_;

  // Resource-limit check (d): the encoded cascade must fit the device's
  // constant memory. In unchecked runs execute_kernel throws instead.
  if (config.constant_bytes > spec.constant_mem_bytes) {
    std::ostringstream msg;
    msg << "constant memory overflow: kernel '" << kernel_name_
        << "' declares " << config.constant_bytes
        << " bytes of constant data but device '" << device_name_
        << "' provides only " << spec.constant_mem_bytes
        << " — shrink the cascade or re-encode its records (Sec. III-B)";
    add_hazard(HazardKind::kConstantOverflow,
               static_cast<std::uint64_t>(config.constant_bytes), 0,
               msg.str());
  }
}

void Checker::begin_block(const Dim3& block_id) {
  block_id_ = block_id;
  ++block_epoch_;
  ++current_.blocks;
}

void Checker::begin_phase(int phase) {
  phase_ = phase;
  ++phase_epoch_;
  current_.phases = std::max(current_.phases, phase + 1);
  phase_writes_.clear();
}

void Checker::begin_lane(const Dim3& thread) {
  lane_ = thread;
  lane_flat_ =
      thread.x + block_dim_.x * (thread.y + block_dim_.y * thread.z);
  carve_index_ = 0;
}

void Checker::on_carve(std::size_t offset, std::size_t bytes,
                       std::size_t alignment) {
  ++current_.carves_checked;
  const CarveEvent carve{offset, bytes, alignment};

  // Carve-sequence identity (c): CUDA static __shared__ gives every thread
  // the same layout; each lane's carve sequence must therefore be a prefix
  // of the block-wide reference sequence (early-exiting lanes may carve
  // less, never differently). The first lane to reach index k defines it.
  if (carve_index_ < reference_carves_.size()) {
    const CarveEvent& expected = reference_carves_[carve_index_];
    if (!(carve == expected)) {
      std::ostringstream msg;
      msg << "shared carve divergence: kernel '" << kernel_name_ << "' phase "
          << phase_ << ", block (" << block_id_.x << "," << block_id_.y << ","
          << block_id_.z << "), lane " << lane_str(lane_) << " carve #"
          << carve_index_ << " requested offset=" << offset << " bytes="
          << bytes << " align=" << alignment
          << " but the established layout has offset=" << expected.offset
          << " bytes=" << expected.bytes << " align=" << expected.alignment
          << " — all lanes must request identical static __shared__ layouts";
      add_hazard(HazardKind::kCarveDivergence, offset,
                 static_cast<std::uint32_t>(bytes), msg.str());
    }
  } else {
    reference_carves_.push_back(carve);
  }
  ++carve_index_;

  // Span escape: the carve lands past the declared static footprint. The
  // checked SharedMem buffer spans the whole SM so execution continues.
  if (offset + bytes > declared_shared_) {
    std::ostringstream msg;
    msg << "shared carve overflow: kernel '" << kernel_name_ << "' phase "
        << phase_ << ", lane " << lane_str(lane_) << " carve #"
        << (carve_index_ - 1) << " spans bytes [" << offset << ", "
        << offset + bytes << ") but the kernel declares shared_bytes="
        << declared_shared_ << " — raise KernelConfig::shared_bytes or "
        << "shrink the carve";
    add_hazard(HazardKind::kCarveOverflow, offset,
               static_cast<std::uint32_t>(bytes), msg.str());
  }
  max_carve_extent_ = std::max(max_carve_extent_, offset + bytes);
}

void Checker::add_race(std::size_t byte, std::uint32_t bytes,
                       bool current_is_store, bool other_is_store,
                       std::int32_t other_lane) {
  const Dim3 other = lane_coords(other_lane);
  std::ostringstream msg;
  msg << "intra-phase race: kernel '" << kernel_name_ << "' phase " << phase_
      << ", block (" << block_id_.x << "," << block_id_.y << ","
      << block_id_.z << "): lane " << lane_str(lane_)
      << (current_is_store ? " WRITE" : " READ") << " vs lane "
      << lane_str(other) << (other_is_store ? " WRITE" : " READ")
      << " of shared byte " << byte << " (access spans " << bytes
      << " bytes) in the same phase — on hardware these lanes run "
      << "concurrently; split the conflicting accesses into separate "
      << "phases (__syncthreads)";
  Hazard hazard;
  hazard.kind = HazardKind::kIntraPhaseRace;
  hazard.kernel = kernel_name_;
  hazard.phase = phase_;
  hazard.block_id = block_id_;
  hazard.lane_a = lane_;
  hazard.lane_b = other;
  hazard.has_lane_b = true;
  hazard.offset = byte;
  hazard.bytes = bytes;
  hazard.message = msg.str();
  if (current_.hazards.size() <
      static_cast<std::size_t>(options_.max_reports_per_kernel)) {
    current_.hazards.push_back(std::move(hazard));
  } else {
    ++current_.suppressed_hazards;
  }
}

void Checker::on_shared(std::size_t offset, std::uint32_t bytes, bool store) {
  ++current_.shared_accesses_checked;
  if (offset + bytes > shared_capacity_) {
    std::ostringstream msg;
    msg << "shared out-of-bounds: kernel '" << kernel_name_ << "' phase "
        << phase_ << ", lane " << lane_str(lane_)
        << (store ? " WRITE" : " READ") << " of bytes [" << offset << ", "
        << offset + bytes << ") exceeds the SM shared capacity "
        << shared_capacity_;
    add_hazard(HazardKind::kSharedOutOfBounds, offset, bytes, msg.str());
    return;
  }
  if (store) {
    phase_writes_.emplace_back(offset, offset + bytes);
  }
  // Byte-granular shadow walk; one hazard per access (first bad byte wins)
  // keeps a single defect from flooding the report.
  bool reported_race = false;
  bool reported_uninit = false;
  for (std::size_t b = offset; b < offset + bytes; ++b) {
    ByteState& cell = shadow_[b];
    if (store) {
      if (!reported_race && cell.write_epoch == phase_epoch_ &&
          cell.write_lane != lane_flat_) {
        add_race(b, bytes, /*current_is_store=*/true, /*other_is_store=*/true,
                 cell.write_lane);
        reported_race = true;
      } else if (!reported_race && cell.read_epoch == phase_epoch_ &&
                 cell.read_lane != lane_flat_) {
        add_race(b, bytes, /*current_is_store=*/true,
                 /*other_is_store=*/false, cell.read_lane);
        reported_race = true;
      }
      cell.write_epoch = phase_epoch_;
      cell.write_lane = lane_flat_;
    } else {
      const bool written_this_phase = cell.write_epoch == phase_epoch_;
      if (!reported_race && written_this_phase &&
          cell.write_lane != lane_flat_) {
        add_race(b, bytes, /*current_is_store=*/false,
                 /*other_is_store=*/true, cell.write_lane);
        reported_race = true;
      } else if (!reported_uninit && !written_this_phase &&
                 cell.valid_epoch != block_epoch_) {
        std::ostringstream msg;
        msg << "uninitialized shared read: kernel '" << kernel_name_
            << "' phase " << phase_ << ", block (" << block_id_.x << ","
            << block_id_.y << "," << block_id_.z << "), lane "
            << lane_str(lane_) << " reads shared byte " << b
            << " (access spans bytes [" << offset << ", " << offset + bytes
            << ")) that no earlier phase wrote — __shared__ memory starts "
            << "undefined on hardware";
        add_hazard(HazardKind::kUninitializedSharedRead, b, bytes, msg.str());
        reported_uninit = true;
      }
      cell.read_epoch = phase_epoch_;
      cell.read_lane = lane_flat_;
    }
  }
}

void Checker::on_unattributed_shared(std::uint32_t n) {
  current_.unattributed_shared_accesses += n;
}

void Checker::end_lane(const LaneCtx& lane) {
  if (options_.global_allocations.empty()) {
    return;
  }
  for (const LaneCtx::GlobalOp& op : lane.global_ops()) {
    ++current_.global_ops_checked;
    const std::uint64_t end = op.addr + op.bytes;
    bool inside = false;
    for (const GlobalAllocation& alloc : options_.global_allocations) {
      if (op.addr >= alloc.base && end <= alloc.base + alloc.size) {
        inside = true;
        break;
      }
    }
    if (inside) {
      continue;
    }
    std::ostringstream msg;
    msg << "global out-of-bounds: kernel '" << kernel_name_ << "' phase "
        << phase_ << ", block (" << block_id_.x << "," << block_id_.y << ","
        << block_id_.z << "), lane " << lane_str(lane_)
        << (op.store ? " STORE" : " LOAD") << " of bytes [" << op.addr << ", "
        << end << ") falls outside every registered allocation ("
        << options_.global_allocations.size() << " registered)";
    add_hazard(HazardKind::kGlobalOutOfBounds, op.addr, op.bytes, msg.str());
  }
}

void Checker::end_phase() {
  // The barrier: everything written this phase becomes valid input for the
  // next one.
  for (const auto& [begin, end] : phase_writes_) {
    for (std::size_t b = begin; b < end; ++b) {
      shadow_[b].valid_epoch = block_epoch_;
    }
  }
  phase_writes_.clear();
}

void Checker::end_kernel() {
  FDET_CHECK(in_kernel_) << "checker: end_kernel without begin_kernel";
  if (options_.check_shared_declaration &&
      max_carve_extent_ < declared_shared_) {
    std::ostringstream msg;
    msg << "shared declaration mismatch: kernel '" << kernel_name_
        << "' declares shared_bytes=" << declared_shared_
        << " but carves at most " << max_carve_extent_
        << " — the excess still counts against occupancy "
        << "(KernelConfig::shared_bytes feeds compute_occupancy)";
    add_hazard(HazardKind::kSharedDeclMismatch, max_carve_extent_,
               static_cast<std::uint32_t>(declared_shared_ -
                                          max_carve_extent_),
               msg.str());
  }
  in_kernel_ = false;
  reports_.push_back(std::move(current_));
  current_ = CheckReport{};
}

std::size_t Checker::checked_shared_capacity() const {
  return shared_capacity_;
}

void Checker::set_global_allocations(
    std::vector<GlobalAllocation> allocations) {
  options_.global_allocations = std::move(allocations);
}

std::vector<CheckReport> Checker::take_reports() {
  return std::exchange(reports_, {});
}

bool Checker::clean() const {
  return std::all_of(reports_.begin(), reports_.end(),
                     [](const CheckReport& r) { return r.clean(); });
}

std::size_t Checker::hazard_count() const {
  std::size_t total = 0;
  for (const CheckReport& report : reports_) {
    total += report.hazards.size() +
             static_cast<std::size_t>(report.suppressed_hazards);
  }
  return total;
}

void Checker::add_hazard(HazardKind kind, std::uint64_t offset,
                         std::uint32_t bytes, std::string message) {
  if (current_.hazards.size() >=
      static_cast<std::size_t>(options_.max_reports_per_kernel)) {
    ++current_.suppressed_hazards;
    return;
  }
  Hazard hazard;
  hazard.kind = kind;
  hazard.kernel = kernel_name_;
  hazard.phase = phase_;
  hazard.block_id = block_id_;
  hazard.lane_a = lane_;
  hazard.offset = offset;
  hazard.bytes = bytes;
  hazard.message = std::move(message);
  current_.hazards.push_back(std::move(hazard));
}

Dim3 Checker::lane_coords(std::int32_t flat) const {
  Dim3 lane;
  lane.x = flat % block_dim_.x;
  lane.y = (flat / block_dim_.x) % block_dim_.y;
  lane.z = flat / (block_dim_.x * block_dim_.y);
  return lane;
}

std::string Checker::lane_str(const Dim3& lane) const {
  std::ostringstream out;
  out << "(" << lane.x << "," << lane.y << "," << lane.z << ")";
  return out.str();
}

CheckScope::CheckScope(CheckOptions options)
    : checker_(std::move(options)),
      previous_(std::exchange(g_active_checker, &checker_)) {}

CheckScope::~CheckScope() { g_active_checker = previous_; }

Checker* active_checker() { return g_active_checker; }

}  // namespace fdet::vgpu
