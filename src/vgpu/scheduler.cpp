#include "vgpu/scheduler.h"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>
#include <sstream>

#include "core/check.h"

namespace fdet::vgpu {

namespace {

thread_local ScopedLaunchObserver* g_launch_observer = nullptr;

}  // namespace

ScopedLaunchObserver::ScopedLaunchObserver(LaunchObserver observer)
    : observer_(std::move(observer)), prev_(g_launch_observer) {
  g_launch_observer = this;
}

ScopedLaunchObserver::~ScopedLaunchObserver() { g_launch_observer = prev_; }

const LaunchObserver* ScopedLaunchObserver::current() {
  return g_launch_observer == nullptr ? nullptr : &g_launch_observer->observer_;
}

PerfCounters Timeline::total_counters() const {
  PerfCounters total;
  for (const auto& record : records) {
    total += record.counters;
  }
  return total;
}

Timeline schedule(const DeviceSpec& spec, const std::vector<Launch>& launches,
                  ExecMode mode) {
  Timeline timeline;
  timeline.sm_count = spec.sm_count;
  timeline.sm_spans.resize(static_cast<std::size_t>(spec.sm_count));

  // Min-heap of (free time, sm index): blocks go to the earliest-free SM.
  using SmSlot = std::pair<double, int>;
  std::priority_queue<SmSlot, std::vector<SmSlot>, std::greater<>> sms;
  for (int i = 0; i < spec.sm_count; ++i) {
    sms.push({0.0, i});
  }

  // Dependency structure: within a stream, launches are ordered; in serial
  // mode every launch additionally depends on the previous launch overall.
  // A launch becomes available `launch_overhead_s` (driver latency +
  // inter-kernel drain) after its dependency completes, and no earlier
  // than its host issue slot. The device's work distributor dispatches
  // whichever available launch is ready first (breadth-first across
  // streams), which is what lets concurrent kernel execution fill the
  // gaps that serial execution exposes.
  const int count = static_cast<int>(launches.size());
  std::map<int, std::vector<int>> stream_order;  // stream -> launch indices
  for (int i = 0; i < count; ++i) {
    stream_order[launches[static_cast<std::size_t>(i)].stream].push_back(i);
  }

  std::vector<double> ready_time(static_cast<std::size_t>(count), -1.0);
  std::vector<double> end_time(static_cast<std::size_t>(count), 0.0);
  const auto issue_slot = [&](int i) { return i * spec.host_issue_gap_s; };
  const auto make_ready = [&](int i, double dep_end) {
    ready_time[static_cast<std::size_t>(i)] =
        std::max(dep_end + spec.launch_overhead_s, issue_slot(i));
  };

  if (mode == ExecMode::kSerial) {
    if (count > 0) {
      make_ready(0, 0.0);
    }
  } else {
    for (const auto& [stream, order] : stream_order) {
      make_ready(order.front(), 0.0);
    }
  }

  timeline.records.resize(static_cast<std::size_t>(count));
  // Dispatch loop: pick the available launch with the smallest ready time
  // (ties broken by issue order), pack its blocks onto the earliest-free
  // SMs, then release its successor.
  using Avail = std::pair<double, int>;  // (ready, launch index)
  std::priority_queue<Avail, std::vector<Avail>, std::greater<>> available;
  for (int i = 0; i < count; ++i) {
    if (ready_time[static_cast<std::size_t>(i)] >= 0.0) {
      available.push({ready_time[static_cast<std::size_t>(i)], i});
    }
  }

  int dispatched = 0;
  while (!available.empty()) {
    const auto [ready, index] = available.top();
    available.pop();
    const Launch& launch = launches[static_cast<std::size_t>(index)];
    FDET_CHECK(launch.cost.block_count() > 0)
        << "launch '" << launch.cost.config.name << "' has no blocks";

    double start = std::numeric_limits<double>::infinity();
    double end = 0.0;
    double busy = 0.0;
    for (const double cycles : launch.cost.block_service_cycles) {
      auto [free_at, sm] = sms.top();
      sms.pop();
      const double t0 = std::max(free_at, ready);
      const double t1 = t0 + spec.cycles_to_seconds(cycles);
      sms.push({t1, sm});
      start = std::min(start, t0);
      end = std::max(end, t1);
      busy += t1 - t0;
      timeline.sm_busy_s += t1 - t0;
      // Record the block's SM residency; back-to-back blocks of the same
      // launch on one SM coalesce into a single span.
      auto& spans = timeline.sm_spans[static_cast<std::size_t>(sm)];
      if (!spans.empty() && spans.back().launch_index == index &&
          spans.back().end_s == t0) {
        spans.back().end_s = t1;
      } else {
        spans.push_back({index, t0, t1});
      }
    }
    end_time[static_cast<std::size_t>(index)] = end;
    ++dispatched;

    LaunchRecord record;
    record.name = launch.cost.config.name;
    record.stream = launch.stream;
    record.start_s = start;
    record.end_s = end;
    record.busy_s = busy;
    record.blocks = launch.cost.block_count();
    record.occupancy = launch.cost.occupancy;
    record.counters = launch.cost.counters;
    timeline.records[static_cast<std::size_t>(index)] = std::move(record);
    timeline.makespan_s = std::max(timeline.makespan_s, end);

    // Release the successor.
    if (mode == ExecMode::kSerial) {
      if (index + 1 < count) {
        make_ready(index + 1, end);
        available.push({ready_time[static_cast<std::size_t>(index + 1)],
                        index + 1});
      }
    } else {
      const auto& order = stream_order[launch.stream];
      const auto pos = std::find(order.begin(), order.end(), index);
      if (pos + 1 != order.end()) {
        const int next = *(pos + 1);
        make_ready(next, end);
        available.push({ready_time[static_cast<std::size_t>(next)], next});
      }
    }
  }
  FDET_CHECK(dispatched == count) << "scheduler left launches undispatched";
  if (const LaunchObserver* observer = ScopedLaunchObserver::current()) {
    for (const LaunchRecord& record : timeline.records) {
      (*observer)(record);
    }
  }
  return timeline;
}

MultiDeviceTimeline schedule_multi(const DeviceSpec& spec, int device_count,
                                   const std::vector<Launch>& launches,
                                   ExecMode mode) {
  FDET_CHECK(device_count >= 1);
  std::vector<std::vector<Launch>> partitions(
      static_cast<std::size_t>(device_count));
  for (const Launch& launch : launches) {
    partitions[static_cast<std::size_t>(launch.stream % device_count)]
        .push_back(launch);
  }
  MultiDeviceTimeline result;
  for (const auto& partition : partitions) {
    Timeline tl = partition.empty() ? Timeline{}
                                    : schedule(spec, partition, mode);
    result.makespan_s = std::max(result.makespan_s, tl.makespan_s);
    result.devices.push_back(std::move(tl));
  }
  return result;
}

std::map<int, std::vector<std::size_t>> Timeline::records_by_stream() const {
  std::map<int, std::vector<std::size_t>> by_stream;
  for (std::size_t i = 0; i < records.size(); ++i) {
    by_stream[records[i].stream].push_back(i);
  }
  for (auto& [stream, indices] : by_stream) {
    std::stable_sort(indices.begin(), indices.end(),
                     [this](std::size_t a, std::size_t b) {
                       return records[a].start_s < records[b].start_s;
                     });
  }
  return by_stream;
}

std::string Timeline::render_trace(int columns) const {
  FDET_CHECK(columns >= 10);
  std::ostringstream out;
  if (records.empty() || makespan_s <= 0.0) {
    out << "(empty timeline)\n";
    return out.str();
  }

  out << "time 0 .. " << makespan_s * 1e3 << " ms\n";
  for (const auto& [stream, indices] : records_by_stream()) {
    std::string row(static_cast<std::size_t>(columns), '.');
    for (const std::size_t i : indices) {
      const LaunchRecord& record = records[i];
      int c0 = static_cast<int>(record.start_s / makespan_s * columns);
      int c1 = static_cast<int>(record.end_s / makespan_s * columns);
      c0 = std::clamp(c0, 0, columns - 1);
      c1 = std::clamp(c1, c0 + 1, columns);
      for (int c = c0; c < c1; ++c) {
        row[static_cast<std::size_t>(c)] = '#';
      }
    }
    out << "stream " << stream << " |" << row << "|\n";
  }
  return out.str();
}

}  // namespace fdet::vgpu
