// Kernel launch description and the functional executor.
//
// A kernel is a sequence of *phases*: per-thread functors separated by
// implicit block-wide barriers (the moral equivalent of writing CUDA code
// with __syncthreads between cooperative stages). The executor runs every
// thread of every block on the host — producing the kernel's real output —
// while reducing per-lane operation counts into warp, block and launch
// costs:
//
//   lane issue cycles  = Σ op_count × cost                     (per lane)
//   warp issue cycles  = max over its 32 lanes (SIMD lockstep) +
//                        coalesced global transactions
//   block issue cycles = Σ over warps (single-issue SM frontend)
//   block service      = issue + stalls / latency-hiding(occupancy)
//
// The scheduler (scheduler.h) later places block service times onto SMs to
// obtain virtual timestamps; nothing here depends on wall-clock time.
#pragma once

#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "vgpu/checker.h"
#include "vgpu/counters.h"
#include "vgpu/device.h"
#include "vgpu/dim.h"
#include "vgpu/lane.h"
#include "vgpu/shared_mem.h"

namespace fdet::vgpu {

struct KernelConfig {
  std::string name;
  Dim3 grid;
  Dim3 block;
  int shared_bytes = 0;       ///< static __shared__ footprint per block
  int regs_per_thread = 24;   ///< occupancy input; sm_20-era default
  bool track_branches = false;///< enable per-lane branch traces (divergence)
  bool constant_broadcast = true;  ///< false = serialized constant accesses
  /// Constant-memory footprint the launch depends on (the encoded cascade
  /// bank for the evaluation kernel). Enforced against
  /// DeviceSpec::constant_mem_bytes at launch: execute_kernel throws, and
  /// checked execution reports a constant-overflow hazard instead.
  int constant_bytes = 0;
};

/// Per-thread phase body. Runs the thread's real computation and reports
/// costed operations through LaneCtx. SharedMem::array views are stable
/// across lanes and phases of one block.
using PhaseFn = std::function<void(const ThreadCoord&, LaneCtx&, SharedMem&)>;

/// Launch-time failure of the virtual device — the analogue of a CUDA
/// launch error (cudaErrorLaunchFailure and friends). `transient()`
/// distinguishes glitches a caller may retry (driver hiccup, ECC retry)
/// from hard resource faults (constant/shared overflow) that will fail
/// identically on every attempt.
class LaunchError : public std::runtime_error {
 public:
  LaunchError(const std::string& what, bool transient)
      : std::runtime_error(what), transient_(transient) {}
  bool transient() const { return transient_; }

 private:
  bool transient_;
};

/// Fault-injection seam: when a hook is installed, execute_kernel calls it
/// with the launch config before running any thread. The hook may throw
/// (typically LaunchError) to make the launch fail — this is how the
/// serving layer (serve/faults.h) injects transient launch failures and
/// resource-overflow faults without touching kernel code.
using LaunchFaultHook = std::function<void(const KernelConfig&)>;

/// RAII installer for the process-wide launch-fault hook. Installation is
/// not synchronized: install from the thread that issues the launches,
/// before any concurrent kernel execution. Restores the previously
/// installed hook (hooks nest) on destruction.
class ScopedLaunchFaultHook {
 public:
  explicit ScopedLaunchFaultHook(LaunchFaultHook hook);
  ~ScopedLaunchFaultHook();
  ScopedLaunchFaultHook(const ScopedLaunchFaultHook&) = delete;
  ScopedLaunchFaultHook& operator=(const ScopedLaunchFaultHook&) = delete;

 private:
  LaunchFaultHook previous_;
};

/// Per-launch profiling seam: while a ScopedKernelProfileHook is
/// installed on the current thread, execute_kernel invokes the callback
/// once per successful launch with the device spec and the finished
/// LaunchCost — after all phases ran, before returning. This is how the
/// kernel profiler (obs/profile.h) observes every launch at the point
/// where the caller's ambient context (trace context, profile stage
/// scope) still names the pipeline stage issuing it, without vgpu
/// depending on obs. Hooks nest; each restores the previous one on
/// destruction, and only the innermost hook fires. Installing an *empty*
/// hook therefore suppresses any outer profiler for the scope's lifetime
/// (the profiler-off arm of bench_obs_overhead).
struct LaunchCost;
using KernelProfileHook =
    std::function<void(const DeviceSpec&, const LaunchCost&)>;

class ScopedKernelProfileHook {
 public:
  explicit ScopedKernelProfileHook(KernelProfileHook hook);
  ~ScopedKernelProfileHook();
  ScopedKernelProfileHook(const ScopedKernelProfileHook&) = delete;
  ScopedKernelProfileHook& operator=(const ScopedKernelProfileHook&) = delete;

  /// The innermost installed hook of this thread (nullptr when none).
  static const KernelProfileHook* current();

 private:
  KernelProfileHook hook_;
  ScopedKernelProfileHook* prev_;
};

/// Cost of one executed kernel launch, ready for scheduling.
struct LaunchCost {
  KernelConfig config;
  Occupancy occupancy;
  std::vector<double> block_service_cycles;  ///< indexed by flat block id
  PerfCounters counters;
  double total_service_cycles = 0.0;

  std::int64_t block_count() const {
    return static_cast<std::int64_t>(block_service_cycles.size());
  }
};

/// Executes every thread of the launch functionally and returns its cost.
/// Throws core::CheckError on invalid configuration (block too large,
/// shared memory exceeding the SM, zero occupancy).
LaunchCost execute_kernel(const DeviceSpec& spec, const KernelConfig& config,
                          std::span<const PhaseFn> phases);

/// Convenience overloads for the common one- and two-phase kernels.
LaunchCost execute_kernel(const DeviceSpec& spec, const KernelConfig& config,
                          PhaseFn phase);
LaunchCost execute_kernel(const DeviceSpec& spec, const KernelConfig& config,
                          PhaseFn phase1, PhaseFn phase2);

/// Result of one launch under verification (vgpu/checker.h): the normal
/// cost plus the hazard report.
struct CheckedExecution {
  LaunchCost cost;
  CheckReport report;
};

/// Runs the launch inside a fresh CheckScope and returns cost + report.
/// For checking a *sequence* of launches (or the production wrappers in
/// fdet::integral / fdet::detect), open a CheckScope around the calls
/// instead and read its per-launch reports.
CheckedExecution execute_kernel_checked(const DeviceSpec& spec,
                                        const KernelConfig& config,
                                        std::span<const PhaseFn> phases,
                                        CheckOptions options = {});
CheckedExecution execute_kernel_checked(const DeviceSpec& spec,
                                        const KernelConfig& config,
                                        PhaseFn phase,
                                        CheckOptions options = {});
CheckedExecution execute_kernel_checked(const DeviceSpec& spec,
                                        const KernelConfig& config,
                                        PhaseFn phase1, PhaseFn phase2,
                                        CheckOptions options = {});

}  // namespace fdet::vgpu
