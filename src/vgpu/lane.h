// Per-lane instruction accounting.
//
// Kernels on the virtual GPU are ordinary C++ functors executed once per
// thread (lane). They do their real work on host memory and, along the way,
// report every costed operation to the LaneCtx. The executor then reduces
// lanes warp-wise (32 lanes in lockstep: the warp pays for its slowest
// lane, and early-exiting lanes idle — precisely the SIMD underutilization
// the paper attacks) and derives timing plus profiler-style counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "vgpu/tap.h"

namespace fdet::vgpu {

class LaneCtx {
 public:
  /// Clears all counters and traces; called by the executor before each lane.
  void reset() {
    n_alu_ = n_fma_ = n_sfu_ = n_shared_ = n_const_ = n_tex_ = 0;
    untracked_branches_ = 0;
    global_ops_.clear();
    shared_words_.clear();
    branch_trace_.clear();
    track_branches_ = false;
    tap_ = nullptr;
  }

  // --- arithmetic -----------------------------------------------------
  void alu(int n = 1) { n_alu_ += static_cast<std::uint32_t>(n); }
  void fma(int n = 1) { n_fma_ += static_cast<std::uint32_t>(n); }
  void sfu(int n = 1) { n_sfu_ += static_cast<std::uint32_t>(n); }

  // --- memory ---------------------------------------------------------
  /// Global-memory read of `bytes` at virtual address `addr`. Addresses are
  /// kept so the executor can derive 128-byte coalesced transactions per
  /// warp instead of trusting the kernel author.
  void global_load(std::uint64_t addr, std::uint32_t bytes) {
    global_ops_.push_back({addr, bytes, /*store=*/false});
  }
  void global_store(std::uint64_t addr, std::uint32_t bytes) {
    global_ops_.push_back({addr, bytes, /*store=*/true});
  }
  /// Unaddressed shared-memory access: counted and costed conflict-free.
  /// Carries no address, so checked execution cannot race-check it and
  /// the executor cannot model bank conflicts for it — prefer the
  /// addressed shared_load/shared_store below in kernels that stage data
  /// cooperatively (those feed both the race shadow and the per-warp
  /// bank-conflict model).
  void shared_access(int n = 1) {
    n_shared_ += static_cast<std::uint32_t>(n);
    if (tap_ != nullptr) {
      tap_->on_unattributed_shared(static_cast<std::uint32_t>(n));
    }
  }
  /// Addressed shared-memory read/write of `bytes` at byte `offset` within
  /// the block's buffer (SharedMem::offset_of). Costed like one
  /// shared_access() plus any bank-conflict serialization the executor
  /// derives: lanes of a warp issue their k-th shared access together, and
  /// distinct 4-byte words falling into the same of the 32 banks
  /// serialize (same-word broadcast is free). Accesses wider than a word
  /// are attributed to their first bank. Also feeds the race/memcheck
  /// shadow when a CheckScope is active.
  void shared_load(std::size_t offset, std::uint32_t bytes) {
    ++n_shared_;
    shared_words_.push_back(static_cast<std::uint32_t>(offset / 4));
    if (tap_ != nullptr) {
      tap_->on_shared(offset, bytes, /*store=*/false);
    }
  }
  void shared_store(std::size_t offset, std::uint32_t bytes) {
    ++n_shared_;
    shared_words_.push_back(static_cast<std::uint32_t>(offset / 4));
    if (tap_ != nullptr) {
      tap_->on_shared(offset, bytes, /*store=*/true);
    }
  }
  /// Convenience: report the access for one element of a SharedMem span,
  /// deriving offset and size from the element itself:
  ///   tile[i] = v;  ctx.shared_store_at(shared, tile[i]);
  template <typename SharedMemT, typename T>
  void shared_load_at(const SharedMemT& shared, const T& element) {
    shared_load(shared.offset_of(&element), sizeof(T));
  }
  template <typename SharedMemT, typename T>
  void shared_store_at(const SharedMemT& shared, const T& element) {
    shared_store(shared.offset_of(&element), sizeof(T));
  }
  /// Constant-cache access. The cascade kernel keeps all active lanes of a
  /// warp on the same feature record, so accesses broadcast (see paper
  /// Sec. III-C); the serialized case is exercised by the ablation bench
  /// through KernelConfig::constant_broadcast = false.
  void constant_load(int n = 1) { n_const_ += static_cast<std::uint32_t>(n); }
  /// Bilinearly interpolated texture fetch (tex2D).
  void texture_fetch(int n = 1) { n_tex_ += static_cast<std::uint32_t>(n); }

  // --- control flow ---------------------------------------------------
  /// Records the outcome of a data-dependent branch. When branch tracking
  /// is enabled the per-lane outcome sequence is compared across the warp
  /// to count divergent branches (profiler "branch efficiency").
  void branch(bool taken) {
    if (track_branches_) {
      branch_trace_.push_back(taken ? 1 : 0);
    } else {
      ++untracked_branches_;
    }
  }

  /// Branches that are uniform across the warp by construction (loop
  /// back-edges over a shared trip count, uniform guards). Real kernels
  /// execute many of these per data-dependent branch; they dominate the
  /// profiler's branch statistic, so kernels should report them to keep
  /// branch-efficiency numbers comparable to hardware counters.
  void branch_uniform(int n = 1) {
    untracked_branches_ += static_cast<std::uint32_t>(n);
  }

  // --- executor interface ----------------------------------------------
  struct GlobalOp {
    std::uint64_t addr;
    std::uint32_t bytes;
    bool store;
  };

  void set_track_branches(bool on) { track_branches_ = on; }
  /// Attaches the active launch tap — the verification engine under a
  /// CheckScope, or the analyzer's capture engine (reset() detaches); the
  /// executor wires exactly one per launch (precedence in vgpu/tap.h).
  void set_tap(LaunchTap* tap) { tap_ = tap; }
  std::uint32_t alu_count() const { return n_alu_; }
  std::uint32_t fma_count() const { return n_fma_; }
  std::uint32_t sfu_count() const { return n_sfu_; }
  std::uint32_t shared_count() const { return n_shared_; }
  std::uint32_t constant_count() const { return n_const_; }
  std::uint32_t texture_count() const { return n_tex_; }
  std::uint32_t untracked_branches() const { return untracked_branches_; }
  const std::vector<GlobalOp>& global_ops() const { return global_ops_; }
  /// 4-byte word index of each addressed shared access, in issue order
  /// (the executor aligns these slot-wise across the warp to count bank
  /// conflicts). Unaddressed shared_access() calls do not appear here.
  const std::vector<std::uint32_t>& shared_words() const {
    return shared_words_;
  }
  const std::vector<std::uint8_t>& branch_trace() const { return branch_trace_; }

 private:
  std::uint32_t n_alu_ = 0;
  std::uint32_t n_fma_ = 0;
  std::uint32_t n_sfu_ = 0;
  std::uint32_t n_shared_ = 0;
  std::uint32_t n_const_ = 0;
  std::uint32_t n_tex_ = 0;
  std::uint32_t untracked_branches_ = 0;
  bool track_branches_ = false;
  LaunchTap* tap_ = nullptr;
  std::vector<GlobalOp> global_ops_;
  std::vector<std::uint32_t> shared_words_;
  std::vector<std::uint8_t> branch_trace_;
};

}  // namespace fdet::vgpu
