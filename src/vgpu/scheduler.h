// Discrete-event scheduler: places executed kernel launches onto the
// device's SMs and assigns virtual timestamps.
//
// This is where the paper's serial-vs-concurrent contrast lives. Launches
// carry a CUDA-stream id; within a stream launches are ordered. In
// kSerial mode every launch additionally waits for *all* previously issued
// launches (one implicit stream — the behaviour the paper measures as
// "Serial Kernel Execution"). In kConcurrent mode only the same-stream
// predecessor gates a launch, so small-grid kernels from different scales
// fill SMs left idle by each other ("Concurrent Kernel Execution").
//
// Blocks are dispatched FCFS onto the SM with the earliest free time, one
// resident block at a time per SM — multi-block residency is folded into
// the latency-hiding factor of the cost model (see kernel.h).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "vgpu/kernel.h"

namespace fdet::vgpu {

enum class ExecMode { kSerial, kConcurrent };

/// One issued kernel: an executed LaunchCost plus its stream binding.
struct Launch {
  LaunchCost cost;
  int stream = 0;
};

/// Scheduling outcome for one launch (virtual seconds).
struct LaunchRecord {
  std::string name;
  int stream = 0;
  double start_s = 0.0;
  double end_s = 0.0;
  double busy_s = 0.0;  ///< Σ per-block service time (SM-seconds of work)
  std::int64_t blocks = 0;
  Occupancy occupancy;
  PerfCounters counters;

  double duration_s() const { return end_s - start_s; }
};

/// Contiguous busy interval on one SM: consecutive blocks of the same
/// launch merged together. Raw material for per-SM trace tracks and
/// device-utilization counter tracks (obs/trace.h).
struct SmSpan {
  int launch_index = 0;  ///< index into Timeline::records
  double start_s = 0.0;
  double end_s = 0.0;
};

/// Full schedule of an issue sequence.
struct Timeline {
  std::vector<LaunchRecord> records;
  double makespan_s = 0.0;        ///< completion time of the last launch
  double sm_busy_s = 0.0;         ///< Σ busy time over all SMs
  int sm_count = 0;
  /// Per-SM busy spans, indexed by SM; spans on one SM are time-ordered.
  std::vector<std::vector<SmSpan>> sm_spans;

  /// Mean fraction of SM capacity in use over the makespan.
  double utilization() const {
    return (makespan_s <= 0.0 || sm_count <= 0)
               ? 0.0
               : sm_busy_s / (makespan_s * sm_count);
  }

  /// Aggregated counters over all launches.
  PerfCounters total_counters() const;

  /// Per-stream interval view: stream id -> indices into `records`,
  /// ordered by start time (ties by issue order). The single source of
  /// truth behind both the ASCII Fig. 6 rendering and the Chrome
  /// trace-event exporter (obs/trace.h).
  std::map<int, std::vector<std::size_t>> records_by_stream() const;

  /// Renders a per-stream trace in the style of the paper's Fig. 6
  /// (one row per stream, kernel intervals in virtual milliseconds).
  std::string render_trace(int columns = 100) const;
};

/// Schedules `launches` (in issue order) and returns their timeline.
Timeline schedule(const DeviceSpec& spec, const std::vector<Launch>& launches,
                  ExecMode mode);

/// Per-launch observation seam: while a ScopedLaunchObserver is installed
/// on the current thread, schedule() invokes the callback once per
/// LaunchRecord it finalizes (in issue order, before returning). The
/// observability layer uses this to stamp every virtual kernel launch
/// into the flight recorder under the ambient frame's trace context —
/// without vgpu depending on obs. Observers nest; each restores the
/// previous one on destruction.
using LaunchObserver = std::function<void(const LaunchRecord&)>;

class ScopedLaunchObserver {
 public:
  explicit ScopedLaunchObserver(LaunchObserver observer);
  ~ScopedLaunchObserver();
  ScopedLaunchObserver(const ScopedLaunchObserver&) = delete;
  ScopedLaunchObserver& operator=(const ScopedLaunchObserver&) = delete;

  /// The innermost installed observer of this thread (nullptr when none).
  static const LaunchObserver* current();

 private:
  LaunchObserver observer_;
  ScopedLaunchObserver* prev_;
};

/// Multi-GPU schedule, in the spirit of Hefenbrock et al. (paper related
/// work): streams are partitioned round-robin over `device_count`
/// identical devices (e.g. one pyramid scale per GPU) and each device
/// schedules its share independently.
struct MultiDeviceTimeline {
  std::vector<Timeline> devices;
  double makespan_s = 0.0;  ///< max over devices

  double speedup_vs(const Timeline& single) const {
    return makespan_s == 0.0 ? 0.0 : single.makespan_s / makespan_s;
  }
};

MultiDeviceTimeline schedule_multi(const DeviceSpec& spec, int device_count,
                                   const std::vector<Launch>& launches,
                                   ExecMode mode);

}  // namespace fdet::vgpu
