#include "vgpu/device.h"

#include <algorithm>

#include "core/check.h"

namespace fdet::vgpu {

Occupancy compute_occupancy(const DeviceSpec& spec, int threads_per_block,
                            int shared_bytes_per_block, int regs_per_thread) {
  FDET_CHECK(threads_per_block > 0 &&
             threads_per_block <= spec.max_threads_per_block)
      << "threads_per_block=" << threads_per_block;
  FDET_CHECK(shared_bytes_per_block >= 0 &&
             shared_bytes_per_block <= spec.shared_mem_per_sm)
      << "shared_bytes=" << shared_bytes_per_block;
  FDET_CHECK(regs_per_thread >= 0);

  const int warps_per_block =
      (threads_per_block + spec.warp_size - 1) / spec.warp_size;

  int limit = spec.max_blocks_per_sm;
  limit = std::min(limit, spec.max_warps_per_sm / warps_per_block);
  if (shared_bytes_per_block > 0) {
    limit = std::min(limit, spec.shared_mem_per_sm / shared_bytes_per_block);
  }
  if (regs_per_thread > 0) {
    const int regs_per_block = regs_per_thread * threads_per_block;
    limit = std::min(limit, spec.registers_per_sm / regs_per_block);
  }
  limit = std::max(limit, 0);

  Occupancy occ;
  occ.blocks_per_sm = limit;
  occ.warps_per_block = warps_per_block;
  occ.resident_warps = limit * warps_per_block;
  occ.ratio = static_cast<double>(occ.resident_warps) / spec.max_warps_per_sm;
  return occ;
}

}  // namespace fdet::vgpu
