// Grid/block/thread coordinates for the virtual GPU, mirroring the CUDA
// execution hierarchy (grid of blocks, block of threads, warps of 32 lanes).
#pragma once

#include <cstdint>

namespace fdet::vgpu {

/// CUDA-style 3-component extent. Components must be >= 1.
struct Dim3 {
  int x = 1;
  int y = 1;
  int z = 1;

  constexpr std::int64_t count() const {
    return static_cast<std::int64_t>(x) * y * z;
  }
  constexpr bool operator==(const Dim3&) const = default;
};

/// Identity of one thread during kernel execution.
struct ThreadCoord {
  Dim3 grid;     ///< gridDim
  Dim3 block;    ///< blockDim
  Dim3 block_id; ///< blockIdx
  Dim3 thread;   ///< threadIdx

  /// Linear thread index within the block (x fastest), as CUDA defines it;
  /// warp membership is flat_thread() / warp_size.
  constexpr int flat_thread() const {
    return thread.x + block.x * (thread.y + block.y * thread.z);
  }

  /// Linear block index within the grid (x fastest).
  constexpr std::int64_t flat_block() const {
    return block_id.x +
           static_cast<std::int64_t>(grid.x) *
               (block_id.y + static_cast<std::int64_t>(grid.y) * block_id.z);
  }
};

}  // namespace fdet::vgpu
