// Per-operation virtual cycle costs for the GPU timing model.
//
// The model splits lane cost into an *issue* component (cycles the SM's
// issue logic and ALUs are busy) and a *stall* component (memory latency
// that resident warps can hide). Constants are order-of-magnitude Fermi
// (GF100) values; EXPERIMENTS.md documents the calibration against the
// paper's GTX470 numbers. Absolute times are "virtual milliseconds" —
// ratios and orderings are the reproduced quantities.
#pragma once

namespace fdet::vgpu {

struct CostModel {
  // Issue costs (cycles per warp instruction, charged per lane and reduced
  // warp-wide by max).
  double alu = 1.0;          ///< int/fp add, sub, compare, bitwise
  double fma = 1.0;          ///< fused multiply-add / mul
  double sfu = 8.0;          ///< transcendental / divide
  double shared_access = 2.0;///< conflict-free shared-memory access
  /// Extra cycles per serialized shared-memory pass when lanes of a warp
  /// hit distinct words of the same bank (32 banks, 4-byte wide, Fermi
  /// style; broadcast of one word is free). An n-way conflict charges
  /// (n - 1) of these on top of the base shared_access.
  double shared_conflict = 2.0;
  double constant_access = 1.0;  ///< broadcast constant-cache hit
  double constant_serialized = 16.0;  ///< divergent-address constant access
  double texture_fetch = 4.0;///< texture sample issue (bilinear)
  double branch = 1.0;       ///< branch instruction issue
  double sync = 4.0;         ///< __syncthreads per warp

  // Global memory: each 128-byte transaction occupies the memory pipeline.
  double global_transaction_issue = 4.0;
  double global_latency = 400.0;  ///< stall cycles per transaction, hideable

  /// Fraction of memory latency hidden per additional resident warp; with
  /// w resident warps the visible stall is stall / (1 + hiding * (w - 1)).
  double latency_hiding_per_warp = 3.0;

  /// Sustained warp instructions per cycle of one SM. Fermi GF100 dual
  /// issues from two warp schedulers onto 2x16-lane pipelines, and the
  /// lane accounting above is deliberately generous (it counts C-level
  /// operations, not fused machine instructions), so the calibrated value
  /// is > 1. Divides the issue component of warp cost; stalls are not
  /// affected. Calibrated against paper Table II (see EXPERIMENTS.md).
  double ipc = 4.0;
};

}  // namespace fdet::vgpu
