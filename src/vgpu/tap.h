// Launch-instrumentation seam shared by the dynamic checker and the
// static analyzer's capture mode.
//
// The executor (kernel.cpp) funnels every instrumentation point of a
// launch — kernel/block/phase/lane boundaries, SharedMem carves,
// attributed shared accesses, finished lane traces — through at most ONE
// LaunchTap. Two kinds of tap exist:
//
//   * the verification engine (vgpu/checker.h, installed by CheckScope),
//     which shadows accesses for racecheck/memcheck hazards, and
//   * the symbolic capture engine (analyze/capture.h, installed by
//     analyze::CaptureScope), which records lane programs as a kernel IR
//     for the static access-pattern lint.
//
// Precedence rule (the checker/analyzer overlap seam): when both a
// CheckScope and a capture tap are active on the calling thread, the
// CHECKER WINS — the launch runs checked exactly as if no capture were
// installed, and the capture tap is told via on_shadowed_launch() so it
// can account for the launch it did not observe instead of silently
// producing a partial IR. The two engines never both receive hooks for
// one launch: the checker owns LaneCtx/SharedMem attribution, dual
// delivery would double-count and is deliberately unsupported.
#pragma once

#include <cstddef>
#include <cstdint>

#include "vgpu/dim.h"

namespace fdet::vgpu {

class LaneCtx;
struct DeviceSpec;
struct KernelConfig;

/// Executor-side instrumentation interface. All hooks default to no-ops
/// so a tap only overrides the events it consumes. Hook order per launch:
///   begin_kernel
///     per block: begin_block, per phase: begin_phase,
///       per lane: begin_lane, {on_carve | on_shared |
///       on_unattributed_shared}*, end_lane,
///     end_phase (the block-wide barrier)
///   end_kernel
class LaunchTap {
 public:
  LaunchTap() = default;
  LaunchTap(const LaunchTap&) = delete;
  LaunchTap& operator=(const LaunchTap&) = delete;
  virtual ~LaunchTap() = default;

  virtual void begin_kernel(const DeviceSpec& spec,
                            const KernelConfig& config) = 0;
  virtual void begin_block(const Dim3& block_id) = 0;
  virtual void begin_phase(int phase) = 0;
  virtual void begin_lane(const Dim3& thread) = 0;
  /// SharedMem::array landed a carve at [offset, offset+bytes).
  virtual void on_carve(std::size_t offset, std::size_t bytes,
                        std::size_t alignment) = 0;
  /// Attributed shared access from LaneCtx::shared_load/shared_store.
  virtual void on_shared(std::size_t offset, std::uint32_t bytes,
                         bool store) = 0;
  /// Legacy LaneCtx::shared_access(n) — costed but address-free.
  virtual void on_unattributed_shared(std::uint32_t n) = 0;
  /// Lane finished: its LaneCtx still holds the recorded global ops and
  /// branch trace.
  virtual void end_lane(const LaneCtx& lane) = 0;
  virtual void end_phase() = 0;
  virtual void end_kernel() = 0;

  /// Called instead of the hooks above when this tap lost the precedence
  /// race: a checker was also active, owns the launch, and this tap will
  /// see none of its events.
  virtual void on_shadowed_launch(const KernelConfig& config) { (void)config; }

  /// Size (in bytes) the executor should give each block's SharedMem
  /// buffer instead of the declared footprint; 0 keeps the declared size.
  /// The checker returns the full per-SM capacity so escaping carves are
  /// reported rather than fatal; capture does the same so a defective
  /// kernel can still be recorded.
  virtual std::size_t shared_capacity_override() const { return 0; }

  /// True when the tap absorbs launch-time resource violations (constant
  /// memory overflow) as findings instead of letting execute_kernel throw.
  virtual bool absorbs_resource_faults() const { return false; }

  /// True to force per-lane branch tracking for the launch even when the
  /// kernel config leaves it off — capture needs outcome traces to
  /// classify branches; costs derived under a tap are discarded anyway.
  virtual bool wants_branch_tracking() const { return false; }
};

/// RAII installer for the calling thread's capture-side tap. Scopes nest
/// (the previous tap is restored on destruction). The checker does NOT
/// use this seam — CheckScope has its own thread-local slot — which is
/// what makes the precedence rule above enforceable in one place
/// (execute_kernel) instead of at every install site.
class ScopedLaunchTap {
 public:
  explicit ScopedLaunchTap(LaunchTap* tap);
  ~ScopedLaunchTap();
  ScopedLaunchTap(const ScopedLaunchTap&) = delete;
  ScopedLaunchTap& operator=(const ScopedLaunchTap&) = delete;

 private:
  LaunchTap* previous_;
};

/// The calling thread's installed capture tap, or nullptr. The executor
/// consults this once per launch, after active_checker().
LaunchTap* active_tap();

}  // namespace fdet::vgpu
