// Analytic CPU timing model for the integral-image comparison of paper
// Sec. III-B: a sequential O(n*m) CPU implementation beats the GPU while
// the image fits in the last-level cache, and loses by ~2.5x for HD frames.
//
// The reproduction host's wall clock cannot stand in for the paper's
// Core i7-2600K, so the bench compares the *virtual* GPU milliseconds with
// this model: a classic two-regime (cache-resident vs DRAM-bound) roofline
// with constants chosen for a ~3.4 GHz quad-era core. See EXPERIMENTS.md.
#pragma once

namespace fdet::integral {

struct CpuModel {
  double cache_bytes = 8.0 * 1024 * 1024;  ///< i7-2600K L3
  double ns_per_pixel_cached = 0.22;       ///< cache-resident streaming pass
  double ns_per_pixel_dram = 0.46;         ///< DRAM-bound; calibrated so the
                                           ///< GPU wins ~2.5x at 1080p

  /// Working set of the single-pass integral: input byte + int32 output.
  double working_set_bytes(int width, int height) const {
    return static_cast<double>(width) * height * (1.0 + 4.0);
  }

  /// Modeled milliseconds for one integral image on the CPU.
  double integral_ms(int width, int height) const {
    const double pixels = static_cast<double>(width) * height;
    const double ns = working_set_bytes(width, height) <= cache_bytes
                          ? ns_per_pixel_cached
                          : ns_per_pixel_dram;
    return pixels * ns * 1e-6;
  }
};

}  // namespace fdet::integral
