// Rotated (45°) summed-area tables — the infrastructure behind Lienhart's
// tilted Haar features. Paper Sec. III-C notes the detector "could also be
// significantly improved by performing rotations of the integral image";
// this module provides that substrate plus the tilted rectangle sums, on
// the CPU and as vGPU kernels.
//
// Definition (Lienhart & Maydt): RSAT(x, y) is the sum of pixels inside
// the 45°-bounded half-strip
//
//   S(x, y) = { (x', y') : y' <= y,  x - (y - y') <= x' <= x }
//
// i.e. everything on or above row y, bounded right by column x and left
// by the down-right diagonal through (x - y, 0). It satisfies the exact
// decomposition  S(x, y) = column(x, <= y)  ⊎  S(x - 1, y - 1), giving a
// two-pass O(n·m) construction: vertical prefix sums, then a diagonal
// accumulation. A 45°-rotated rectangle sum then costs four RSAT lookups,
// mirroring the upright case.
#pragma once

#include "img/image.h"
#include "vgpu/kernel.h"

namespace fdet::integral {

class RotatedIntegralImage {
 public:
  RotatedIntegralImage() = default;
  explicit RotatedIntegralImage(img::ImageI32 table)
      : table_(std::move(table)) {}

  int width() const { return table_.width(); }
  int height() const { return table_.height(); }
  const img::ImageI32& table() const { return table_; }

  /// RSAT value with out-of-range coordinates resolving to the correct
  /// region sum (x clamps right/empty-left, y < 0 is empty).
  std::int64_t rsat(int x, int y) const;

  /// Sum of the 45°-rotated rectangle anchored at (x, y) — its topmost
  /// pixel — extending w pixels down-right and h pixels down-left:
  ///   R = { (x + u - v, y + u + v) : 0 <= u < w, 0 <= v < h }.
  /// The rectangle must lie inside the image.
  std::int64_t tilted_sum(int x, int y, int w, int h) const;

 private:
  img::ImageI32 table_;
};

/// CPU reference construction.
RotatedIntegralImage rotated_integral_cpu(const img::ImageU8& input);

/// vGPU construction: a column prefix-sum kernel (one block per column
/// group) followed by a diagonal accumulation kernel (one thread per
/// diagonal). Returns the two launch costs for scheduling.
struct GpuRotatedResult {
  RotatedIntegralImage integral;
  std::vector<vgpu::LaunchCost> launches;
};
GpuRotatedResult rotated_integral_gpu(const vgpu::DeviceSpec& spec,
                                      const img::ImageU8& input);

}  // namespace fdet::integral
