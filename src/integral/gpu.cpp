#include "integral/gpu.h"

#include <array>
#include <cstdint>
#include <string>

#include "core/check.h"

namespace fdet::integral {
namespace {

constexpr int kScanThreads = 256;
constexpr int kScanTreeSteps = 8;  // ceil(log2(kScanThreads))
constexpr int kTileDim = 32;
constexpr int kTileRows = 8;       // threads in y; each handles 4 tile rows
constexpr int kTileStride = kTileDim + 1;  // +1 padding avoids bank conflicts

/// Deterministic virtual address: the element's byte offset within its
/// image. Within one warp access slot all lanes touch the same array, so
/// offsets are sufficient for coalescing analysis — and, unlike host
/// pointers, they keep simulated timings identical across runs.
std::uint64_t addr_of(const img::ImageI32& image, int x, int y) {
  return (static_cast<std::uint64_t>(y) * static_cast<std::uint64_t>(image.width()) +
          static_cast<std::uint64_t>(x)) *
         sizeof(std::int32_t);
}

}  // namespace

vgpu::LaunchCost scan_rows_gpu(const vgpu::DeviceSpec& spec,
                               const img::ImageI32& input,
                               img::ImageI32& output) {
  const int w = input.width();
  const int h = input.height();
  FDET_CHECK(output.width() == w && output.height() == h)
      << "scan output must match input dimensions";

  const int chunk = (w + kScanThreads - 1) / kScanThreads;
  const int padded = chunk * kScanThreads;
  const int shared_bytes =
      static_cast<int>((padded + 2 * kScanThreads) * sizeof(std::int32_t));

  vgpu::KernelConfig config{
      .name = "scan_rows",
      .grid = {1, h, 1},
      .block = {kScanThreads, 1, 1},
      .shared_bytes = shared_bytes,
      .regs_per_thread = 20,
  };

  // Shared layout (identical carve order in every phase): the padded row
  // buffer, then the two chunk-sum ping-pong buffers.
  const auto carve = [padded](vgpu::SharedMem& shared) {
    struct Views {
      std::span<std::int32_t> row;
      std::span<std::int32_t> sums_a;
      std::span<std::int32_t> sums_b;
    };
    return Views{shared.array<std::int32_t>(static_cast<std::size_t>(padded)),
                 shared.array<std::int32_t>(kScanThreads),
                 shared.array<std::int32_t>(kScanThreads)};
  };

  std::vector<vgpu::PhaseFn> phases;

  // Phase 1: cooperative coalesced load (lane l reads elements i*T + l).
  phases.push_back([&, chunk, w](const vgpu::ThreadCoord& t, vgpu::LaneCtx& ctx,
                                 vgpu::SharedMem& shared) {
    auto views = carve(shared);
    const int row_y = t.block_id.y;
    for (int i = 0; i < chunk; ++i) {
      const int idx = i * kScanThreads + t.thread.x;
      ctx.alu(2);
      std::int32_t value = 0;
      if (idx < w) {
        value = input(idx, row_y);
        ctx.global_load(addr_of(input, idx, row_y), 4);
      }
      views.row[static_cast<std::size_t>(idx)] = value;
      ctx.shared_store_at(shared, views.row[static_cast<std::size_t>(idx)]);
    }
  });

  // Phase 2: each lane scans its contiguous chunk, depositing the chunk sum.
  phases.push_back([&, chunk](const vgpu::ThreadCoord& t, vgpu::LaneCtx& ctx,
                              vgpu::SharedMem& shared) {
    auto views = carve(shared);
    const int base = t.thread.x * chunk;
    std::int32_t acc = 0;
    for (int i = 0; i < chunk; ++i) {
      auto& cell = views.row[static_cast<std::size_t>(base + i)];
      acc += cell;
      ctx.shared_load_at(shared, cell);
      cell = acc;
      ctx.shared_store_at(shared, cell);
      ctx.alu(1);
    }
    views.sums_a[static_cast<std::size_t>(t.thread.x)] = acc;
    ctx.shared_store_at(shared,
                        views.sums_a[static_cast<std::size_t>(t.thread.x)]);
  });

  // Phases 3..10: Hillis–Steele inclusive scan over the chunk sums with
  // ping-pong buffers (a real barrier-separated tree, not a shortcut).
  for (int step = 0; step < kScanTreeSteps; ++step) {
    const int offset = 1 << step;
    const bool src_is_a = (step % 2 == 0);
    phases.push_back([&, offset, src_is_a](const vgpu::ThreadCoord& t,
                                           vgpu::LaneCtx& ctx,
                                           vgpu::SharedMem& shared) {
      auto views = carve(shared);
      auto src = src_is_a ? views.sums_a : views.sums_b;
      auto dst = src_is_a ? views.sums_b : views.sums_a;
      const int lane = t.thread.x;
      std::int32_t value = src[static_cast<std::size_t>(lane)];
      ctx.shared_load_at(shared, src[static_cast<std::size_t>(lane)]);
      ctx.branch(lane >= offset);
      if (lane >= offset) {
        value += src[static_cast<std::size_t>(lane - offset)];
        ctx.shared_load_at(shared,
                           src[static_cast<std::size_t>(lane - offset)]);
        ctx.alu(1);
      }
      dst[static_cast<std::size_t>(lane)] = value;
      ctx.shared_store_at(shared, dst[static_cast<std::size_t>(lane)]);
    });
  }
  // After 8 steps (last destination: sums_a) the inclusive chunk-sum scan
  // lives in sums_a.
  static_assert(kScanTreeSteps % 2 == 0,
                "final tree buffer assumed to be sums_a");

  // Phase 11: propagate chunk offsets (exclusive: lane l adds scan[l-1]).
  phases.push_back([&, chunk](const vgpu::ThreadCoord& t, vgpu::LaneCtx& ctx,
                              vgpu::SharedMem& shared) {
    auto views = carve(shared);
    const int lane = t.thread.x;
    ctx.branch(lane > 0);
    if (lane == 0) {
      return;
    }
    const std::int32_t offset = views.sums_a[static_cast<std::size_t>(lane - 1)];
    ctx.shared_load_at(shared, views.sums_a[static_cast<std::size_t>(lane - 1)]);
    const int base = lane * chunk;
    for (int i = 0; i < chunk; ++i) {
      auto& cell = views.row[static_cast<std::size_t>(base + i)];
      ctx.shared_load_at(shared, cell);
      cell += offset;
      ctx.shared_store_at(shared, cell);
      ctx.alu(1);
    }
  });

  // Phase 12: cooperative coalesced store.
  phases.push_back([&, chunk, w](const vgpu::ThreadCoord& t, vgpu::LaneCtx& ctx,
                                 vgpu::SharedMem& shared) {
    auto views = carve(shared);
    const int row_y = t.block_id.y;
    for (int i = 0; i < chunk; ++i) {
      const int idx = i * kScanThreads + t.thread.x;
      ctx.alu(2);
      if (idx < w) {
        output(idx, row_y) = views.row[static_cast<std::size_t>(idx)];
        ctx.shared_load_at(shared, views.row[static_cast<std::size_t>(idx)]);
        ctx.global_store(addr_of(output, idx, row_y), 4);
      }
    }
  });

  return execute_kernel(spec, config, std::span<const vgpu::PhaseFn>(phases));
}

vgpu::LaunchCost transpose_gpu(const vgpu::DeviceSpec& spec,
                               const img::ImageI32& input,
                               img::ImageI32& output) {
  const int w = input.width();
  const int h = input.height();
  FDET_CHECK(output.width() == h && output.height() == w)
      << "transpose output must have swapped dimensions";

  vgpu::KernelConfig config{
      .name = "transpose",
      .grid = {(w + kTileDim - 1) / kTileDim, (h + kTileDim - 1) / kTileDim, 1},
      .block = {kTileDim, kTileRows, 1},
      .shared_bytes =
          static_cast<int>(kTileDim * kTileStride * sizeof(std::int32_t)),
      .regs_per_thread = 16,
  };

  const int rows_per_thread = kTileDim / kTileRows;

  const auto load_phase = [&](const vgpu::ThreadCoord& t, vgpu::LaneCtx& ctx,
                              vgpu::SharedMem& shared) {
    auto tile = shared.array<std::int32_t>(kTileDim * kTileStride);
    for (int j = 0; j < rows_per_thread; ++j) {
      const int x = t.block_id.x * kTileDim + t.thread.x;
      const int y = t.block_id.y * kTileDim + t.thread.y + j * kTileRows;
      ctx.alu(3);
      if (x < w && y < h) {
        auto& cell = tile[static_cast<std::size_t>(
            (t.thread.y + j * kTileRows) * kTileStride + t.thread.x)];
        cell = input(x, y);
        ctx.global_load(addr_of(input, x, y), 4);
        ctx.shared_store_at(shared, cell);
      }
    }
  };

  const auto store_phase = [&](const vgpu::ThreadCoord& t, vgpu::LaneCtx& ctx,
                               vgpu::SharedMem& shared) {
    auto tile = shared.array<std::int32_t>(kTileDim * kTileStride);
    for (int j = 0; j < rows_per_thread; ++j) {
      // Destination coordinates: the tile's grid position transposes.
      const int x = t.block_id.y * kTileDim + t.thread.x;
      const int y = t.block_id.x * kTileDim + t.thread.y + j * kTileRows;
      ctx.alu(3);
      if (x < h && y < w) {
        const auto& cell = tile[static_cast<std::size_t>(
            t.thread.x * kTileStride + t.thread.y + j * kTileRows)];
        output(x, y) = cell;
        ctx.shared_load_at(shared, cell);
        ctx.global_store(addr_of(output, x, y), 4);
      }
    }
  };

  return execute_kernel(spec, config, load_phase, store_phase);
}

GpuIntegralResult integral_gpu(const vgpu::DeviceSpec& spec,
                               const img::ImageU8& input) {
  check_integral_range(input);
  const int w = input.width();
  const int h = input.height();

  // On the real device the first scan kernel reads the 8-bit luma plane
  // directly; the cast here only changes the host representation.
  const img::ImageI32 source = input.cast<std::int32_t>();

  GpuIntegralResult result;
  img::ImageI32 row_scanned(w, h);
  result.launches.push_back(scan_rows_gpu(spec, source, row_scanned));

  img::ImageI32 transposed(h, w);
  result.launches.push_back(transpose_gpu(spec, row_scanned, transposed));

  img::ImageI32 col_scanned(h, w);
  result.launches.push_back(scan_rows_gpu(spec, transposed, col_scanned));

  img::ImageI32 table(w, h);
  result.launches.push_back(transpose_gpu(spec, col_scanned, table));

  result.integral = IntegralImage(std::move(table));
  return result;
}

}  // namespace fdet::integral
