#include "integral/integral.h"

#include "core/check.h"

namespace fdet::integral {

void check_integral_range(const img::ImageU8& input) {
  const std::int64_t worst =
      static_cast<std::int64_t>(input.width()) * input.height() * 255;
  FDET_CHECK(worst < (std::int64_t{1} << 31))
      << input.width() << "x" << input.height()
      << " exceeds exact int32 integral range";
}

IntegralImage integral_naive(const img::ImageU8& input) {
  check_integral_range(input);
  const int w = input.width();
  const int h = input.height();

  img::ImageI32 rows(w, h);
  for (int y = 0; y < h; ++y) {
    std::int32_t acc = 0;
    for (int x = 0; x < w; ++x) {
      acc += input(x, y);
      rows(x, y) = acc;
    }
  }
  img::ImageI32 table(w, h);
  for (int x = 0; x < w; ++x) {
    std::int32_t acc = 0;
    for (int y = 0; y < h; ++y) {
      acc += rows(x, y);
      table(x, y) = acc;
    }
  }
  return IntegralImage(std::move(table));
}

IntegralImage integral_cpu(const img::ImageU8& input) {
  check_integral_range(input);
  const int w = input.width();
  const int h = input.height();

  img::ImageI32 table(w, h);
  // First row: plain prefix sum.
  {
    std::int32_t acc = 0;
    for (int x = 0; x < w; ++x) {
      acc += input(x, 0);
      table(x, 0) = acc;
    }
  }
  // Remaining rows stream sequentially: ii(x,y) = row_acc + ii(x,y-1).
  for (int y = 1; y < h; ++y) {
    std::int32_t row_acc = 0;
    const auto above = table.row(y - 1);
    auto current = table.row(y);
    const auto pixels = input.row(y);
    for (int x = 0; x < w; ++x) {
      row_acc += pixels[static_cast<std::size_t>(x)];
      current[static_cast<std::size_t>(x)] =
          row_acc + above[static_cast<std::size_t>(x)];
    }
  }
  return IntegralImage(std::move(table));
}

}  // namespace fdet::integral
