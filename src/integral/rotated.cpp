#include "integral/rotated.h"

#include <array>

#include "core/check.h"

namespace fdet::integral {
namespace {

// The cone table is stored on an extended grid: apex columns -1..width
// (tilted rectangles touching the left/right image edge need corner
// lookups one column outside), rows 0..height-1.
constexpr int kPad = 1;

/// One scan line through the image: start + direction + length.
struct Line {
  int x0;
  int y0;
  int dx;
  int dy;
  int length;
};

/// Down-right diagonals (d = x - y constant), each traversed with
/// direction (+1, +1).
std::vector<Line> diagonal_lines(int w, int h) {
  std::vector<Line> lines;
  for (int k = 0; k < w + h - 1; ++k) {
    const int x0 = (k < h) ? 0 : k - h + 1;
    const int y0 = (k < h) ? h - 1 - k : 0;
    lines.push_back({x0, y0, 1, 1, std::min(w - x0, h - y0)});
  }
  return lines;
}

/// Anti-diagonals (e = x + y constant), traversed top-right to
/// bottom-left with direction (-1, +1) — the cone-accumulation order.
std::vector<Line> antidiagonal_lines(int w, int h) {
  std::vector<Line> lines;
  for (int e = 0; e < w + h - 1; ++e) {
    const int x0 = std::min(e, w - 1);
    const int y0 = e - x0;
    lines.push_back({x0, y0, -1, 1, x0 - std::max(0, e - h + 1) + 1});
  }
  return lines;
}

/// Generic per-line inclusive prefix-sum kernel: one thread block per
/// line, same scan-then-propagate structure as the row-scan kernel of
/// integral/gpu.cpp. `fetch` reads the line's i-th element; `carries`
/// (when non-empty) holds a per-line value added to element 0 — the
/// incoming sum for lines whose logical predecessor lies on another line.
template <typename Fetch>
vgpu::LaunchCost scan_lines_gpu(const vgpu::DeviceSpec& spec,
                                const std::vector<Line>& lines,
                                const Fetch& fetch,
                                std::span<const std::int32_t> carries,
                                img::ImageI32& output,
                                const std::string& name) {
  constexpr int kThreads = 256;
  constexpr int kTreeSteps = 8;
  int max_length = 1;
  for (const Line& line : lines) {
    max_length = std::max(max_length, line.length);
  }
  const int chunk = (max_length + kThreads - 1) / kThreads;
  const int padded = chunk * kThreads;

  vgpu::KernelConfig config{
      .name = name,
      .grid = {1, static_cast<int>(lines.size()), 1},
      .block = {kThreads, 1, 1},
      .shared_bytes =
          static_cast<int>((padded + 2 * kThreads) * sizeof(std::int32_t)),
      .regs_per_thread = 22,
  };

  const auto carve = [padded](vgpu::SharedMem& shared) {
    struct Views {
      std::span<std::int32_t> line;
      std::span<std::int32_t> sums_a;
      std::span<std::int32_t> sums_b;
    };
    return Views{shared.array<std::int32_t>(static_cast<std::size_t>(padded)),
                 shared.array<std::int32_t>(kThreads),
                 shared.array<std::int32_t>(kThreads)};
  };
  const auto line_of = [&lines](const vgpu::ThreadCoord& t) -> const Line& {
    return lines[static_cast<std::size_t>(t.block_id.y)];
  };

  std::vector<vgpu::PhaseFn> phases;
  // Load (coalescing is imperfect for diagonal walks — faithfully charged:
  // each element's address is its true image offset).
  phases.push_back([&, chunk](const vgpu::ThreadCoord& t, vgpu::LaneCtx& ctx,
                              vgpu::SharedMem& shared) {
    auto views = carve(shared);
    const Line& line = line_of(t);
    for (int i = 0; i < chunk; ++i) {
      const int idx = i * kThreads + t.thread.x;
      ctx.alu(3);
      std::int32_t value = 0;
      if (idx < line.length) {
        const int x = line.x0 + idx * line.dx;
        const int y = line.y0 + idx * line.dy;
        value = fetch(x, y, ctx);
        if (idx == 0 && !carries.empty()) {
          value += carries[static_cast<std::size_t>(t.block_id.y)];
          ctx.constant_load();
          ctx.alu(1);
        }
      }
      views.line[static_cast<std::size_t>(idx)] = value;
      ctx.shared_access();
    }
  });
  // Per-lane chunk scan.
  phases.push_back([&, chunk](const vgpu::ThreadCoord& t, vgpu::LaneCtx& ctx,
                              vgpu::SharedMem& shared) {
    auto views = carve(shared);
    const int base = t.thread.x * chunk;
    std::int32_t acc = 0;
    for (int i = 0; i < chunk; ++i) {
      acc += views.line[static_cast<std::size_t>(base + i)];
      views.line[static_cast<std::size_t>(base + i)] = acc;
      ctx.alu(1);
      ctx.shared_access(2);
    }
    views.sums_a[static_cast<std::size_t>(t.thread.x)] = acc;
    ctx.shared_access();
  });
  // Hillis–Steele tree over chunk sums.
  for (int step = 0; step < kTreeSteps; ++step) {
    const int offset = 1 << step;
    const bool src_is_a = (step % 2 == 0);
    phases.push_back([carve, offset, src_is_a](const vgpu::ThreadCoord& t,
                                               vgpu::LaneCtx& ctx,
                                               vgpu::SharedMem& shared) {
      auto views = carve(shared);
      auto src = src_is_a ? views.sums_a : views.sums_b;
      auto dst = src_is_a ? views.sums_b : views.sums_a;
      const int lane = t.thread.x;
      std::int32_t value = src[static_cast<std::size_t>(lane)];
      ctx.shared_access();
      ctx.branch(lane >= offset);
      if (lane >= offset) {
        value += src[static_cast<std::size_t>(lane - offset)];
        ctx.shared_access();
        ctx.alu(1);
      }
      dst[static_cast<std::size_t>(lane)] = value;
      ctx.shared_access();
    });
  }
  // Propagate chunk offsets.
  phases.push_back([carve, chunk](const vgpu::ThreadCoord& t,
                                  vgpu::LaneCtx& ctx,
                                  vgpu::SharedMem& shared) {
    auto views = carve(shared);
    const int lane = t.thread.x;
    ctx.branch(lane > 0);
    if (lane == 0) {
      return;
    }
    const std::int32_t offset =
        views.sums_a[static_cast<std::size_t>(lane - 1)];
    ctx.shared_access();
    const int base = lane * chunk;
    for (int i = 0; i < chunk; ++i) {
      views.line[static_cast<std::size_t>(base + i)] += offset;
      ctx.alu(1);
      ctx.shared_access(2);
    }
  });
  // Store.
  phases.push_back([&, chunk](const vgpu::ThreadCoord& t, vgpu::LaneCtx& ctx,
                              vgpu::SharedMem& shared) {
    auto views = carve(shared);
    const Line& line = line_of(t);
    for (int i = 0; i < chunk; ++i) {
      const int idx = i * kThreads + t.thread.x;
      ctx.alu(3);
      if (idx < line.length) {
        const int x = line.x0 + idx * line.dx;
        const int y = line.y0 + idx * line.dy;
        output(x, y) = views.line[static_cast<std::size_t>(idx)];
        ctx.shared_access();
        ctx.global_store(
            (static_cast<std::uint64_t>(y) * output.width() + x) * 4, 4);
      }
    }
  });

  return execute_kernel(spec, config, std::span<const vgpu::PhaseFn>(phases));
}

}  // namespace

std::int64_t RotatedIntegralImage::rsat(int x, int y) const {
  if (y < 0) {
    return 0;  // cone entirely above the image
  }
  FDET_CHECK(y < table_.height()) << "rsat row " << y;
  FDET_CHECK(x >= -kPad && x < table_.width() - kPad)
      << "rsat column " << x;
  return table_(x + kPad, y);
}

std::int64_t RotatedIntegralImage::tilted_sum(int x, int y, int w,
                                              int h) const {
  FDET_CHECK(w >= 1 && h >= 1);
  // Solid 45°-rotated rectangle hanging below the apex (x, y): in diagonal
  // coordinates d = x'-y', e = x'+y' it is the box
  //   d in [x-y-2h, x-y-1],  e in [x+y+1, x+y+2w]
  // (2wh pixels). Four cone lookups, mirroring the upright case.
  return rsat(x, y) + rsat(x + w - h, y + w + h) - rsat(x + w, y + w) -
         rsat(x - h, y + h);
}

RotatedIntegralImage rotated_integral_cpu(const img::ImageU8& input) {
  const int w = input.width();
  const int h = input.height();
  FDET_CHECK(static_cast<std::int64_t>(w) * h * 255 < (std::int64_t{1} << 31))
      << "image too large for exact int32 rotated integral";

  // Interior: the Lienhart recurrence
  //   T(x,y) = T(x-1,y-1) + T(x+1,y-1) - T(x,y-2) + I(x,y) + I(x,y-1).
  // Borders: an apex one column outside the image sees the same pixels as
  // the in-image apex one row up: T(-1,y) = T(0,y-1), T(w,y) = T(w-1,y-1).
  img::ImageI32 table(w + 2 * kPad, h);
  const auto at = [&table](int tx, int y) -> std::int64_t {
    return y < 0 ? 0 : table(tx, y);
  };
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const int tx = x + kPad;
      std::int64_t value = input(x, y);
      if (y >= 1) {
        value += input(x, y - 1);
      }
      value += at(tx - 1, y - 1) + at(tx + 1, y - 1) - at(tx, y - 2);
      table(tx, y) = static_cast<std::int32_t>(value);
    }
    table(0, y) = static_cast<std::int32_t>(at(kPad, y - 1));
    table(w + kPad, y) = static_cast<std::int32_t>(at(w - 1 + kPad, y - 1));
  }
  return RotatedIntegralImage(std::move(table));
}

GpuRotatedResult rotated_integral_gpu(const vgpu::DeviceSpec& spec,
                                      const img::ImageU8& input) {
  // Separable construction in diagonal coordinates — the rotated analogue
  // of the paper's row-scan + transpose scheme:
  //   stage A (down-right diagonals):  A(x,y) = A(x-1,y-1) + I(x,y)
  //   stage B (anti-diagonals):        T(x,y) = T(x+1,y-1) + A(x,y) + A(x,y-1)
  const int w = input.width();
  const int h = input.height();

  GpuRotatedResult result;
  img::ImageI32 diag(w, h);
  result.launches.push_back(scan_lines_gpu(
      spec, diagonal_lines(w, h),
      [&input](int x, int y, vgpu::LaneCtx& ctx) -> std::int32_t {
        ctx.global_load(
            static_cast<std::uint64_t>(y) * static_cast<std::uint64_t>(
                                                input.width()) +
            static_cast<std::uint64_t>(x),
            1);
        return input(x, y);
      },
      {}, diag, "rotated_scan_diag"));

  // Anti-diagonal lines starting on the right image edge have a logical
  // predecessor T(w, y0-1) = T(w-1, y0-2) — the head of the line two
  // anti-diagonals earlier. These carries form two sequential chains
  // down the right edge; a tiny single-warp kernel resolves them (its
  // per-element cost is charged; two lanes walk the two parity chains).
  const std::vector<Line> anti = antidiagonal_lines(w, h);
  std::vector<std::int32_t> carries(anti.size(), 0);
  {
    vgpu::KernelConfig config{
        .name = "rotated_edge_carry",
        .grid = {1, 1, 1},
        .block = {32, 1, 1},
        .regs_per_thread = 12,
        .track_branches = true,
    };
    result.launches.push_back(execute_kernel(
        spec, config,
        [&](const vgpu::ThreadCoord& t, vgpu::LaneCtx& ctx,
            vgpu::SharedMem&) {
          const int lane = t.thread.x;
          ctx.branch(lane < 2);
          if (lane >= 2) {
            return;  // two chains (anti-diagonal parity classes)
          }
          // Cone values down the right edge: G(y) = T(w-1, y) satisfies
          // G(y) = A(w-1,y) + A(w-1,y-1) + G(y-2); the carry of line e is
          // T(w, e-w) = T(w-1, e-w-1) = G(e-w-1).
          std::int64_t cone_value = 0;
          for (int y = lane; y < h; y += 2) {
            cone_value += diag(w - 1, y);
            ctx.global_load(
                (static_cast<std::uint64_t>(y) * diag.width() + w - 1) * 4, 4);
            if (y >= 1) {
              cone_value += diag(w - 1, y - 1);
              ctx.global_load(
                  (static_cast<std::uint64_t>(y - 1) * diag.width() + w - 1) *
                      4,
                  4);
            }
            ctx.alu(3);
            const int e = w + 1 + y;
            if (e < w + h - 1) {
              carries[static_cast<std::size_t>(e)] =
                  static_cast<std::int32_t>(cone_value);
              ctx.global_store(static_cast<std::uint64_t>(e) * 4, 4);
            }
          }
        }));
  }

  img::ImageI32 cone(w, h);
  result.launches.push_back(scan_lines_gpu(
      spec, anti,
      [&diag](int x, int y, vgpu::LaneCtx& ctx) -> std::int32_t {
        std::int32_t value = diag(x, y);
        ctx.global_load(
            (static_cast<std::uint64_t>(y) * diag.width() + x) * 4, 4);
        if (y >= 1) {
          value += diag(x, y - 1);
          ctx.global_load(
              (static_cast<std::uint64_t>(y - 1) * diag.width() + x) * 4, 4);
          ctx.alu(1);
        }
        return value;
      },
      carries, cone, "rotated_scan_anti"));

  // Repack into the extended-grid layout (border apexes as in the CPU
  // path: T(-1,y) = T(0,y-1), T(w,y) = T(w-1,y-1)).
  img::ImageI32 table(w + 2 * kPad, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      table(x + kPad, y) = cone(x, y);
    }
    table(0, y) = (y >= 1) ? cone(0, y - 1) : 0;
    table(w + kPad, y) = (y >= 1) ? cone(w - 1, y - 1) : 0;
  }
  result.integral = RotatedIntegralImage(std::move(table));
  return result;
}

}  // namespace fdet::integral
