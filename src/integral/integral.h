// Integral images (summed-area tables) — the memory-access backbone of
// Haar feature evaluation (Viola–Jones): any rectangle sum costs four
// lookups regardless of its size.
//
// Convention: the stored table is *inclusive*, ii(x, y) = Σ pixels in
// [0..x] x [0..y]. IntegralImage::sum() exposes half-open rectangle sums
// and handles the implicit zero row/column.
//
// Values are int32: a 255-valued 8-bit image needs width*height*255 <
// 2^31, i.e. images up to ~8.4 Mpixels (1080p = 2.1 Mpixels) are exact.
#pragma once

#include "img/image.h"

namespace fdet::integral {

class IntegralImage {
 public:
  IntegralImage() = default;

  /// Wraps an inclusive summed-area table (as produced by the builders).
  explicit IntegralImage(img::ImageI32 table) : table_(std::move(table)) {}

  int width() const { return table_.width(); }
  int height() const { return table_.height(); }
  const img::ImageI32& table() const { return table_; }

  /// Sum of pixels in the half-open rectangle [x0,x1) x [y0,y1).
  /// Requires 0 <= x0 <= x1 <= width, same for y.
  std::int64_t sum(int x0, int y0, int x1, int y1) const {
    const auto at = [this](int x, int y) -> std::int64_t {
      return (x < 0 || y < 0) ? 0 : table_(x, y);
    };
    return at(x1 - 1, y1 - 1) - at(x0 - 1, y1 - 1) - at(x1 - 1, y0 - 1) +
           at(x0 - 1, y0 - 1);
  }

  /// Sum over a Rect (half-open, like sum()).
  std::int64_t sum(const img::Rect& r) const {
    return sum(r.x, r.y, r.right(), r.bottom());
  }

 private:
  img::ImageI32 table_;
};

/// O(n*m) two-pass reference implementation (row scan + column scan); the
/// ground truth every other builder is tested against.
IntegralImage integral_naive(const img::ImageU8& input);

/// Single-pass cache-friendly CPU implementation (running row sum + the
/// value directly above) — the "CPU beats GPU while the image fits in L2"
/// contender from paper Sec. III-B.
IntegralImage integral_cpu(const img::ImageU8& input);

/// Throws core::CheckError if the image is too large for exact int32 sums.
void check_integral_range(const img::ImageU8& input);

}  // namespace fdet::integral
