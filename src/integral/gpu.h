// Integral-image computation on the virtual GPU, following the paper's
// recipe (Sec. III-B): row-wise parallel prefix sum, matrix transposition,
// a second row-wise prefix sum and a final transposition.
//
// The scan kernel is the scan-then-propagate scheme of Sengupta et al.
// (the paper's ref [18]): one thread block per row — coalesced cooperative
// load into shared memory, per-lane sequential chunk scan, Hillis–Steele
// tree over the chunk sums, offset propagation, coalesced store. The
// transpose kernel is the padded 32x32 shared-memory tile of Ruetsch &
// Micikevicius (ref [19]).
#pragma once

#include <vector>

#include "integral/integral.h"
#include "vgpu/kernel.h"

namespace fdet::integral {

/// Row-wise inclusive prefix sum: out(x, y) = Σ_{i<=x} in(i, y).
/// One thread block per row. Returns the launch cost for scheduling.
vgpu::LaunchCost scan_rows_gpu(const vgpu::DeviceSpec& spec,
                               const img::ImageI32& input,
                               img::ImageI32& output);

/// Tiled matrix transpose: out(y, x) = in(x, y).
vgpu::LaunchCost transpose_gpu(const vgpu::DeviceSpec& spec,
                               const img::ImageI32& input,
                               img::ImageI32& output);

/// Full integral-image pipeline (scan, transpose, scan, transpose).
struct GpuIntegralResult {
  IntegralImage integral;
  std::vector<vgpu::LaunchCost> launches;  ///< in issue order

  double total_service_cycles() const {
    double total = 0.0;
    for (const auto& launch : launches) {
      total += launch.total_service_cycles;
    }
    return total;
  }
};

GpuIntegralResult integral_gpu(const vgpu::DeviceSpec& spec,
                               const img::ImageU8& input);

}  // namespace fdet::integral
