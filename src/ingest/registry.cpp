#include "ingest/registry.h"

#include <algorithm>
#include <utility>

#include "core/check.h"
#include "img/nv12.h"
#include "ingest/gif.h"
#include "ingest/mjpeg.h"
#include "ingest/raw.h"

namespace fdet::ingest {
namespace {

std::vector<img::Nv12Frame> render_nv12(const video::SyntheticTrailer& trailer) {
  std::vector<img::Nv12Frame> frames;
  frames.reserve(static_cast<std::size_t>(trailer.spec().frames));
  for (int i = 0; i < trailer.spec().frames; ++i) {
    frames.push_back(img::Nv12Frame::from_gray(trailer.render_luma(i)));
  }
  return frames;
}

}  // namespace

std::string_view format_name(Format format) {
  switch (format) {
    case Format::kRaw:
      return "raw";
    case Format::kMjpeg:
      return "mjpeg";
    case Format::kGif:
      return "gif";
  }
  FDET_CHECK(false) << "unreachable format " << static_cast<int>(format);
  return "";
}

Format parse_format(std::string_view name) {
  for (const Format format : kAllFormats) {
    if (name == format_name(format)) {
      return format;
    }
  }
  throw IngestError(IngestErrorKind::kUnsupported, std::string(name), 0,
                    "unknown format (known: raw, mjpeg, gif)");
}

std::string encode_stream(Format format,
                          const video::SyntheticTrailer& trailer) {
  const double fps = trailer.spec().fps;
  switch (format) {
    case Format::kRaw:
      return encode_raw(render_nv12(trailer), fps);
    case Format::kMjpeg:
      return encode_mjpeg(render_nv12(trailer), fps);
    case Format::kGif: {
      std::vector<img::ImageU8> frames;
      frames.reserve(static_cast<std::size_t>(trailer.spec().frames));
      for (int i = 0; i < trailer.spec().frames; ++i) {
        frames.push_back(trailer.render_luma(i));
      }
      return encode_gif(frames, fps);
    }
  }
  FDET_CHECK(false) << "unreachable format " << static_cast<int>(format);
  return "";
}

std::unique_ptr<FrameSource> open_stream(std::string bytes) {
  const std::string_view head =
      std::string_view(bytes).substr(0, std::min<std::size_t>(3, bytes.size()));
  if (head == "FRW") {
    return std::make_unique<RawSource>(std::move(bytes));
  }
  if (head == "FMJ") {
    return std::make_unique<MjpegSource>(std::move(bytes));
  }
  if (head == "FGF") {
    return std::make_unique<GifSource>(std::move(bytes));
  }
  throw IngestError(
      IngestErrorKind::kBadMagic, "unknown", 0,
      "no container parser claims this stream (known magics: FRW, FMJ, FGF)");
}

}  // namespace fdet::ingest
