// Format registry: the one place that knows every simulated container —
// name parsing for CLI flags, magic sniffing for open_stream(), and
// trailer-backed encoding so tests, the fuzz harness and the example can
// serialize the same synthetic footage into any byte-stream format.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ingest/frame_source.h"
#include "video/trailer.h"

namespace fdet::ingest {

/// The byte-stream container formats (the mock H.264 path has no byte
/// stream and lives outside the registry).
enum class Format { kRaw, kMjpeg, kGif };

inline constexpr Format kAllFormats[] = {Format::kRaw, Format::kMjpeg,
                                         Format::kGif};

/// Stable lowercase token: "raw" | "mjpeg" | "gif".
std::string_view format_name(Format format);

/// Parses a CLI token; throws IngestError(kUnsupported) listing the
/// known formats on anything else.
Format parse_format(std::string_view name);

/// Serializes the trailer's frames into the given container format.
std::string encode_stream(Format format, const video::SyntheticTrailer& trailer);

/// Sniffs the magic and dispatches to the matching validating parser.
/// Throws IngestError: kBadMagic when no parser claims the stream, or
/// whatever the claiming parser raises for a malformed body.
std::unique_ptr<FrameSource> open_stream(std::string bytes);

}  // namespace fdet::ingest
