// Typed error taxonomy of the hardened ingest layer.
//
// Every way an untrusted byte stream can be malformed maps to one
// IngestErrorKind, so callers (the streaming service, the fuzz harness,
// the quarantine store) can branch on *what* was wrong without string
// matching. IngestError derives core::CheckError — the same idiom as
// core::ArtifactError and haar::CascadeParseError — so existing call
// sites that catch the library error type keep working, and the fuzz
// invariant "every mutated input either decodes or raises a typed
// IngestError" is checkable with a single catch clause.
#pragma once

#include <cstddef>
#include <string>

#include "core/check.h"

namespace fdet::ingest {

enum class IngestErrorKind {
  kTruncated,          ///< stream ends before a declared field/payload
  kBadMagic,           ///< container magic / frame marker mismatch
  kBadVersion,         ///< recognized magic, unsupported version
  kDimensionOverflow,  ///< zero/odd/negative or above-cap dimensions
  kPlaneSizeMismatch,  ///< payload does not decode to the declared plane size
  kChecksumMismatch,   ///< per-frame CRC does not match the payload
  kTrailingGarbage,    ///< bytes left over after the last declared frame
  kBadFrameIndex,      ///< decode(i) outside [0, frame_count)
  kPaletteOverflow,    ///< pixel index outside the declared palette
  kBadSubRect,         ///< delta-frame rectangle escapes the canvas
  kAbsurdMetadata,     ///< declared counts/lengths beyond the hard caps
  kUnsupported,        ///< operation the source cannot perform (no bytes)
  kInjected,           ///< fault-plan injected bitstream corruption
  kMissingFrame,       ///< delivery gap: the frame never arrived (lossy source)
  kOutOfOrder,         ///< frame arrived after a successor (lossy source)
};

/// Stable lower-case token: "truncated", "bad-magic", "bad-version",
/// "dimension-overflow", "plane-size-mismatch", "checksum-mismatch",
/// "trailing-garbage", "bad-frame-index", "palette-overflow",
/// "bad-sub-rect", "absurd-metadata", "unsupported", "injected",
/// "missing-frame", "out-of-order".
const char* ingest_error_kind_name(IngestErrorKind kind);

/// Error thrown by validating container parsers and FrameSources. Carries
/// the kind, the format token of the parser that rejected the stream
/// ("raw" | "mjpeg" | "gif" | "h264" | "?" while sniffing), and the byte
/// offset the parser had reached — so a rejected stream's diagnostic
/// names the exact corrupt location, the way CascadeParseError names its
/// line and field.
class IngestError : public core::CheckError {
 public:
  IngestError(IngestErrorKind kind, std::string format, std::size_t offset,
              const std::string& detail)
      : core::CheckError("ingest error [" + format + " @" +
                         std::to_string(offset) + "] " +
                         ingest_error_kind_name(kind) + ": " + detail),
        kind_(kind),
        format_(std::move(format)),
        offset_(offset),
        detail_(detail) {}

  IngestErrorKind kind() const { return kind_; }
  const std::string& format() const { return format_; }
  std::size_t offset() const { return offset_; }
  const std::string& detail() const { return detail_; }

 private:
  IngestErrorKind kind_;
  std::string format_;
  std::size_t offset_;
  std::string detail_;
};

}  // namespace fdet::ingest
