// Codec-agnostic frame source — the ingest layer's core abstraction.
//
// The paper's pipeline begins at a fixed-function H.264 decode stage
// (Sec. III-A/V); the reproduction generalizes that single trusted source
// into FrameSource: decode-by-index with a per-format latency model and a
// capability/metadata query, so serve::StreamingService and
// detect::Pipeline run identically over the mock hardware decoder, the
// validating container parsers (raw/mjpeg/gif), or any future source.
//
// Contract (enforced by tests/ingest_conformance_test.cpp on all
// implementations):
//
//   * decode(i) is deterministic and stateless: any order, any number of
//     times, byte-identical frames — even for inter-coded formats whose
//     frames reference predecessors (they recompute internally);
//   * decode(i) outside [0, frame_count) throws IngestError
//     (kBadFrameIndex), never UB;
//   * a malformed frame payload throws a typed IngestError; a returned
//     frame is always a valid Nv12Frame matching info() geometry;
//   * decode_latency_ms(i) is the modeled fixed-function decode cost in
//     virtual time (the serving layer charges it against the deadline
//     budget), deterministic in (stream, i).
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "ingest/error.h"
#include "video/decoder.h"

namespace fdet::ingest {

// Hard caps every validating parser enforces on *declared* metadata
// before allocating anything: a hostile header cannot make the parser
// reserve gigabytes or loop forever, no matter what the stream claims.
inline constexpr int kMaxIngestDimension = 8192;   ///< per-axis pixel cap
inline constexpr int kMaxIngestFrames = 65536;     ///< frame-count cap
inline constexpr double kMaxIngestFps = 240.0;     ///< declared-rate cap

/// Capability and geometry metadata of an opened stream.
struct SourceInfo {
  std::string format;     ///< "h264" | "mjpeg" | "raw" | "gif"
  std::string container;  ///< human-readable container description
  int width = 0;
  int height = 0;
  int frames = 0;
  double fps = 24.0;
  /// Every frame decodes independently (true for h264-mock/mjpeg/raw;
  /// false for gif, whose delta frames composite onto predecessors).
  bool intra_only = true;
  /// The stream carries per-frame ground truth (only the synthetic H.264
  /// path does; real byte-stream containers cannot).
  bool has_ground_truth = false;
};

/// Byte extent of one frame's payload inside the serialized container —
/// the corruption surface the seeded mutator targets.
struct ByteRange {
  std::size_t offset = 0;
  std::size_t size = 0;
};

/// How delivery slot `i` of a source relates to the original stream
/// order. Well-behaved sources deliver every frame exactly once, in
/// order; a network-ish wrapper (LossyReorderSource) can deliver frames
/// late or twice — the serving layer counts and cause-tags both instead
/// of treating them as malformed input.
enum class FrameArrival {
  kInOrder,
  kOutOfOrder,  ///< an earlier frame delivered after a later one
  kDuplicate,   ///< same frame delivered again
};

const char* frame_arrival_name(FrameArrival arrival);

class FrameSource {
 public:
  virtual ~FrameSource() = default;

  virtual const SourceInfo& info() const = 0;
  int frame_count() const { return info().frames; }

  /// Decodes frame `index`. Throws IngestError on a bad index or a
  /// malformed frame payload; never returns a malformed frame.
  virtual video::DecodedFrame decode(int index) const = 0;

  /// Modeled fixed-function decode latency for frame `index`.
  virtual double decode_latency_ms(int index) const = 0;

  /// Delivery-order classification of slot `index`. In-order for every
  /// source except wrappers that model network-ish arrival.
  virtual FrameArrival arrival_kind(int index) const {
    (void)index;
    return FrameArrival::kInOrder;
  }

  /// Byte extent of frame `index`'s payload in the serialized container,
  /// when the source is backed by one (nullopt for the mock hardware
  /// decoder, which synthesizes frames without a byte stream).
  virtual std::optional<ByteRange> frame_bytes(int index) const {
    (void)index;
    return std::nullopt;
  }

 protected:
  /// Shared index guard: throws IngestError(kBadFrameIndex) with the
  /// stream's format token instead of crashing on out-of-range access.
  void check_index(int index) const;
};

/// Retrofit adapter: the mock hardware H.264 decoder behind the
/// FrameSource interface. Owns nothing — the decoder (and its trailer)
/// must outlive the adapter, mirroring how the serving layer already
/// borrows the decoder per run().
class H264FrameSource final : public FrameSource {
 public:
  explicit H264FrameSource(const video::MockH264Decoder& decoder);

  const SourceInfo& info() const override { return info_; }
  video::DecodedFrame decode(int index) const override;
  double decode_latency_ms(int index) const override;

 private:
  const video::MockH264Decoder* decoder_;
  SourceInfo info_;
};

}  // namespace fdet::ingest
