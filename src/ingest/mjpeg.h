// FMJ — an MJPEG-like container: every frame is an independently coded
// picture delimited by SOI/EOI markers, with run-length "entropy coded"
// planes. Unlike FRW, frame payloads are variable length, so the open
// path walks a chain of declared lengths and the decode path exercises a
// decompressor that must stay in bounds no matter what the bytes say.
//
// Wire layout (all integers little-endian):
//
//   "FMJ" version-byte '1'
//   u32 width   u32 height   u32 frames   u32 fps_milli
//   frames x [ 0xFF 0xD8 | u32 rle_len | rle_len bytes RLE | 0xFF 0xD9 ]
//   (end of stream — trailing bytes are an error)
//
// RLE stream: pairs of (count u8 >= 1, value u8), luma plane first then
// chroma, expanding to exactly w*h + w*(h/2) bytes. Open-time validation
// covers the header caps, every marker, every declared length and the
// total byte count; RLE expansion is validated lazily at decode(i):
// a zero count, an expansion short of the plane sizes, or one that would
// overrun them throws kPlaneSizeMismatch — a typed error, never an
// out-of-bounds write.
#pragma once

#include <string>
#include <vector>

#include "ingest/frame_source.h"

namespace fdet::ingest {

class MjpegSource final : public FrameSource {
 public:
  /// Parses and validates the container structure; throws IngestError.
  /// The source takes ownership of the byte stream.
  explicit MjpegSource(std::string bytes);

  const SourceInfo& info() const override { return info_; }
  video::DecodedFrame decode(int index) const override;
  double decode_latency_ms(int index) const override;
  std::optional<ByteRange> frame_bytes(int index) const override;

 private:
  std::string bytes_;
  SourceInfo info_;
  std::vector<ByteRange> frames_;  ///< RLE extents (markers/length excluded)
  std::uint64_t latency_seed_ = 0;
};

/// Serializes NV12 frames into the FMJ container (trusted path —
/// geometry mismatches are core::CheckError, not IngestError).
std::string encode_mjpeg(const std::vector<img::Nv12Frame>& frames,
                         double fps);

}  // namespace fdet::ingest
