#include "ingest/lossy.h"

#include <algorithm>
#include <string>

#include "core/check.h"
#include "core/rng.h"

namespace fdet::ingest {

LossyReorderSource::LossyReorderSource(const FrameSource& inner,
                                       LossyOptions options)
    : inner_(&inner), options_(options) {
  FDET_CHECK(options.drop_probability >= 0.0 &&
             options.drop_probability <= 1.0)
      << "lossy: drop_probability outside [0, 1]";
  FDET_CHECK(options.duplicate_probability >= 0.0 &&
             options.duplicate_probability <= 1.0)
      << "lossy: duplicate_probability outside [0, 1]";
  FDET_CHECK(options.reorder_probability >= 0.0 &&
             options.reorder_probability <= 1.0)
      << "lossy: reorder_probability outside [0, 1]";
  FDET_CHECK(options.max_displacement >= 1)
      << "lossy: max_displacement must be >= 1";

  const int inner_frames = inner.frame_count();
  // Independent decision streams so toggling one probability never
  // reshuffles the outcomes of the others under the same seed.
  core::Rng drop_rng(core::hash_combine(options.seed, 0xd809));
  core::Rng dup_rng(core::hash_combine(options.seed, 0xd011));
  core::Rng move_rng(core::hash_combine(options.seed, 0x302e));

  // Pass 1: drops leave a -1 gap in the frame's natural slot; a
  // duplicate occupies an extra slot right after the original.
  for (int i = 0; i < inner_frames; ++i) {
    if (drop_rng.bernoulli(options.drop_probability)) {
      delivery_.push_back(-1);
      ++dropped_;
      continue;
    }
    delivery_.push_back(i);
    if (dup_rng.bernoulli(options.duplicate_probability)) {
      delivery_.push_back(i);
      ++duplicated_;
    }
  }

  // Pass 2: displacement. A selected frame drifts up to max_displacement
  // slots later (rotate, so no other frame is lost); gaps stay put —
  // the receiver notices the loss where the frame should have been.
  for (std::size_t slot = 0; slot < delivery_.size(); ++slot) {
    if (delivery_[slot] < 0 ||
        !move_rng.bernoulli(options.reorder_probability)) {
      continue;
    }
    const std::size_t limit = delivery_.size() - 1;
    const std::size_t target = std::min(
        limit, slot + static_cast<std::size_t>(
                          move_rng.uniform_int(1, options.max_displacement)));
    if (target > slot) {
      std::rotate(delivery_.begin() + static_cast<std::ptrdiff_t>(slot),
                  delivery_.begin() + static_cast<std::ptrdiff_t>(slot) + 1,
                  delivery_.begin() + static_cast<std::ptrdiff_t>(target) + 1);
      ++displaced_;
    }
  }

  // Classify each slot against the highest inner index already seen.
  arrival_.assign(delivery_.size(), FrameArrival::kInOrder);
  int max_seen = -1;
  int previous = -1;
  for (std::size_t slot = 0; slot < delivery_.size(); ++slot) {
    const int frame = delivery_[slot];
    if (frame < 0) {
      continue;
    }
    if (frame == previous) {
      arrival_[slot] = FrameArrival::kDuplicate;
    } else if (frame < max_seen) {
      arrival_[slot] = FrameArrival::kOutOfOrder;
    }
    max_seen = std::max(max_seen, frame);
    previous = frame;
  }

  info_ = inner.info();
  info_.frames = static_cast<int>(delivery_.size());
  info_.container += " + lossy transport (seeded drop/reorder/duplicate)";
  info_.has_ground_truth = false;  // slot i no longer matches gt i
}

video::DecodedFrame LossyReorderSource::decode(int index) const {
  check_index(index);
  const int frame = delivery_[static_cast<std::size_t>(index)];
  if (frame < 0) {
    throw IngestError(IngestErrorKind::kMissingFrame, info_.format, 0,
                      "slot " + std::to_string(index) +
                          " lost in transit (delivery gap)");
  }
  video::DecodedFrame decoded = inner_->decode(frame);
  decoded.index = index;  // slot identity, not inner identity
  return decoded;
}

double LossyReorderSource::decode_latency_ms(int index) const {
  check_index(index);
  const int frame = delivery_[static_cast<std::size_t>(index)];
  // A gap costs nothing: no bytes ever reached the decoder.
  return frame < 0 ? 0.0 : inner_->decode_latency_ms(frame);
}

FrameArrival LossyReorderSource::arrival_kind(int index) const {
  check_index(index);
  return arrival_[static_cast<std::size_t>(index)];
}

int LossyReorderSource::delivered_inner_index(int index) const {
  check_index(index);
  return delivery_[static_cast<std::size_t>(index)];
}

}  // namespace fdet::ingest
