// Stream quarantine: what happens to bytes the validating parsers
// reject.
//
// The training cache quarantines corrupt *files* in place
// (core::quarantine_file); ingest streams arrive as in-memory bytes, so
// the quarantine here is a bounded in-process store of rejected streams
// plus, when a directory is configured, an atomically written dump of
// each rejected stream (`<dir>/<name>.quarantined`) for offline triage —
// the artifact the CI fuzz job uploads when something unexpected gets
// rejected.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ingest/error.h"
#include "ingest/frame_source.h"

namespace fdet::ingest {

/// One rejected stream (bytes retained up to a cap, error always).
struct QuarantineRecord {
  std::string name;        ///< caller-provided stream label
  IngestErrorKind kind = IngestErrorKind::kTruncated;
  std::string format;      ///< format token from the error
  std::size_t offset = 0;  ///< byte offset from the error
  std::string detail;
  std::size_t byte_count = 0;
  std::string dump_path;   ///< empty unless a dump directory is set
};

class StreamQuarantine {
 public:
  /// `dump_dir` empty disables on-disk dumps. `max_records` bounds the
  /// in-process store; older records are dropped first (the store must
  /// not grow without bound under a malformed-input flood).
  explicit StreamQuarantine(std::string dump_dir = "",
                            std::size_t max_records = 64);

  /// Attempts open_stream(bytes). On success returns the source; on an
  /// IngestError records (and optionally dumps) the rejected stream and
  /// rethrows, so callers keep their typed error handling.
  std::unique_ptr<FrameSource> open_or_quarantine(std::string bytes,
                                                  const std::string& name);

  /// Records a rejection observed elsewhere (e.g. a per-frame decode
  /// error mid-stream, where the stream itself already opened).
  void record(const std::string& name, const IngestError& error,
              std::string_view bytes);

  const std::vector<QuarantineRecord>& records() const { return records_; }
  std::size_t total_rejected() const { return total_rejected_; }

 private:
  std::string dump_dir_;
  std::size_t max_records_;
  std::vector<QuarantineRecord> records_;
  std::size_t total_rejected_ = 0;
};

}  // namespace fdet::ingest
