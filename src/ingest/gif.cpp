#include "ingest/gif.h"

#include <algorithm>
#include <utility>

#include "core/artifact.h"
#include "core/check.h"
#include "core/rng.h"
#include "ingest/bytes.h"

namespace fdet::ingest {
namespace {

constexpr std::string_view kMagicFamily = "FGF";
constexpr char kVersion = '1';

// The encoder quantizes gray to a fixed 64-level palette; the parser
// accepts any declared size in [1, 255] (the wire field is one byte).
constexpr int kEncoderPaletteSize = 64;

std::uint8_t palette_level(int index) {
  return static_cast<std::uint8_t>(index * 255 / (kEncoderPaletteSize - 1));
}

std::uint8_t quantize(std::uint8_t gray) {
  const int index = (gray * (kEncoderPaletteSize - 1) + 127) / 255;
  return static_cast<std::uint8_t>(index);
}

}  // namespace

GifSource::GifSource(std::string bytes) : bytes_(std::move(bytes)) {
  ByteReader reader(bytes_, "gif");
  reader.expect_magic(kMagicFamily, "container magic");
  const char version = static_cast<char>(reader.u8("container version"));
  if (version != kVersion) {
    reader.fail(IngestErrorKind::kBadVersion,
                std::string("unsupported FGF version '") + version + "'");
  }
  const int width = static_cast<int>(reader.u32("width"));
  const int height = static_cast<int>(reader.u32("height"));
  const int frames = static_cast<int>(reader.u32("frame count"));
  const std::uint32_t fps_milli = reader.u32("fps");
  if (width <= 0 || height <= 0 || width > kMaxIngestDimension ||
      height > kMaxIngestDimension || width % 2 != 0 || height % 2 != 0) {
    reader.fail(IngestErrorKind::kDimensionOverflow,
                "declared canvas " + std::to_string(width) + "x" +
                    std::to_string(height) + " not even in (0, " +
                    std::to_string(kMaxIngestDimension) + "]");
  }
  if (frames <= 0 || frames > kMaxIngestFrames) {
    reader.fail(IngestErrorKind::kAbsurdMetadata,
                "declared frame count " + std::to_string(frames) +
                    " outside (0, " + std::to_string(kMaxIngestFrames) + "]");
  }
  if (fps_milli == 0 ||
      static_cast<double>(fps_milli) > kMaxIngestFps * 1000.0) {
    reader.fail(IngestErrorKind::kAbsurdMetadata,
                "declared rate " + std::to_string(fps_milli) +
                    " milli-fps over the " +
                    std::to_string(static_cast<int>(kMaxIngestFps)) +
                    " fps cap");
  }

  const std::uint8_t palette_size = reader.u8("palette size");
  if (palette_size == 0) {
    reader.fail(IngestErrorKind::kAbsurdMetadata, "empty palette");
  }
  const std::string_view palette_bytes =
      reader.bytes(palette_size, "palette");
  palette_.assign(palette_bytes.begin(), palette_bytes.end());

  patches_.reserve(static_cast<std::size_t>(frames));
  for (int i = 0; i < frames; ++i) {
    img::Rect rect;
    if (i == 0) {
      rect = {0, 0, width, height};
    } else {
      rect.x = static_cast<int>(reader.u16("patch x"));
      rect.y = static_cast<int>(reader.u16("patch y"));
      rect.w = static_cast<int>(reader.u16("patch width"));
      rect.h = static_cast<int>(reader.u16("patch height"));
      if (rect.w <= 0 || rect.h <= 0 || rect.right() > width ||
          rect.bottom() > height) {
        reader.fail(IngestErrorKind::kBadSubRect,
                    "frame " + std::to_string(i) + " patch " +
                        std::to_string(rect.w) + "x" + std::to_string(rect.h) +
                        "@(" + std::to_string(rect.x) + "," +
                        std::to_string(rect.y) + ") outside canvas " +
                        std::to_string(width) + "x" + std::to_string(height));
      }
    }
    const std::uint32_t declared = reader.u32("patch pixel count");
    const std::uint64_t area = static_cast<std::uint64_t>(rect.area());
    if (declared != area) {
      reader.fail(IngestErrorKind::kPlaneSizeMismatch,
                  "frame " + std::to_string(i) + " declares " +
                      std::to_string(declared) + " pixel(s), rect area is " +
                      std::to_string(area));
    }
    const std::size_t offset = reader.offset();
    reader.bytes(static_cast<std::size_t>(area), "patch indices");
    patches_.push_back({rect, {offset, static_cast<std::size_t>(area)}});
  }
  reader.expect_end("container end");

  info_.format = "gif";
  info_.container = "FGF animated-GIF-like container (paletted key+delta)";
  info_.width = width;
  info_.height = height;
  info_.frames = frames;
  info_.fps = static_cast<double>(fps_milli) / 1000.0;
  info_.intra_only = false;  // delta frames composite onto predecessors
  latency_seed_ = core::hash_combine(core::crc32(bytes_.substr(0, 20)),
                                     0x6769665fULL);
}

video::DecodedFrame GifSource::decode(int index) const {
  check_index(index);
  const int width = info_.width;
  const int height = info_.height;
  img::ImageU8 luma(width, height);

  // Recompute from the keyframe each call: slower than caching, but it
  // keeps decode stateless and any-order per the FrameSource contract.
  for (int p = 0; p <= index; ++p) {
    const Patch& patch = patches_[static_cast<std::size_t>(p)];
    ByteReader reader(bytes_, "gif");
    reader.seek(patch.indices.offset, "patch seek");
    const std::string_view indices =
        reader.bytes(patch.indices.size, "patch indices");
    for (int y = 0; y < patch.rect.h; ++y) {
      for (int x = 0; x < patch.rect.w; ++x) {
        const auto idx = static_cast<std::uint8_t>(
            indices[static_cast<std::size_t>(y) *
                        static_cast<std::size_t>(patch.rect.w) +
                    static_cast<std::size_t>(x)]);
        if (idx >= palette_.size()) {
          reader.fail(IngestErrorKind::kPaletteOverflow,
                      "frame " + std::to_string(p) + " pixel (" +
                          std::to_string(patch.rect.x + x) + "," +
                          std::to_string(patch.rect.y + y) + ") indexes " +
                          std::to_string(idx) + " into a " +
                          std::to_string(palette_.size()) + "-entry palette");
        }
        luma(patch.rect.x + x, patch.rect.y + y) = palette_[idx];
      }
    }
  }

  img::ImageU8 chroma(width, height / 2);
  chroma.fill(128);  // gray source — synthesize neutral chroma

  video::DecodedFrame out;
  out.index = index;
  out.frame = img::Nv12Frame::from_planes(std::move(luma), std::move(chroma));
  out.decode_ms = decode_latency_ms(index);
  return out;
}

double GifSource::decode_latency_ms(int index) const {
  check_index(index);
  // Keyframe pays the full-canvas cost; each composited delta adds its
  // patch area. Deterministic per-(stream, frame) jitter as elsewhere.
  const double canvas =
      static_cast<double>(info_.width) * static_cast<double>(info_.height);
  double painted = canvas;
  for (int p = 1; p <= index; ++p) {
    painted +=
        static_cast<double>(patches_[static_cast<std::size_t>(p)].rect.area());
  }
  core::Rng rng(core::hash_combine(latency_seed_,
                                   static_cast<std::uint64_t>(index)));
  return 3.0 * (painted / (1920.0 * 1080.0)) + rng.uniform(0.0, 0.3);
}

std::optional<ByteRange> GifSource::frame_bytes(int index) const {
  check_index(index);
  return patches_[static_cast<std::size_t>(index)].indices;
}

std::string encode_gif(const std::vector<img::ImageU8>& frames, double fps) {
  FDET_CHECK(!frames.empty()) << "encode_gif: no frames";
  FDET_CHECK(fps > 0.0 && fps <= kMaxIngestFps)
      << "encode_gif: fps " << fps << " outside (0, " << kMaxIngestFps << "]";
  const int width = frames.front().width();
  const int height = frames.front().height();

  ByteWriter writer;
  writer.bytes(kMagicFamily);
  writer.u8(static_cast<std::uint8_t>(kVersion));
  writer.u32(static_cast<std::uint32_t>(width));
  writer.u32(static_cast<std::uint32_t>(height));
  writer.u32(static_cast<std::uint32_t>(frames.size()));
  writer.u32(static_cast<std::uint32_t>(fps * 1000.0));
  writer.u8(static_cast<std::uint8_t>(kEncoderPaletteSize));
  for (int i = 0; i < kEncoderPaletteSize; ++i) {
    writer.u8(palette_level(i));
  }

  std::vector<std::uint8_t> previous;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    const img::ImageU8& frame = frames[f];
    FDET_CHECK(frame.width() == width && frame.height() == height)
        << "encode_gif: frame geometry " << frame.width() << "x"
        << frame.height() << " != stream " << width << "x" << height;

    std::vector<std::uint8_t> quantized(frame.size());
    for (std::size_t i = 0; i < frame.size(); ++i) {
      quantized[i] = quantize(frame.pixels()[i]);
    }

    img::Rect rect{0, 0, width, height};
    if (f > 0) {
      // Tightest dirty rect against the previous quantized frame; a
      // still frame repaints a single pixel to keep extents positive.
      int min_x = width, min_y = height, max_x = -1, max_y = -1;
      for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
          const std::size_t i = static_cast<std::size_t>(y) *
                                    static_cast<std::size_t>(width) +
                                static_cast<std::size_t>(x);
          if (quantized[i] != previous[i]) {
            min_x = std::min(min_x, x);
            min_y = std::min(min_y, y);
            max_x = std::max(max_x, x);
            max_y = std::max(max_y, y);
          }
        }
      }
      if (max_x < 0) {
        rect = {0, 0, 1, 1};
      } else {
        rect = {min_x, min_y, max_x - min_x + 1, max_y - min_y + 1};
      }
      writer.u16(static_cast<std::uint16_t>(rect.x));
      writer.u16(static_cast<std::uint16_t>(rect.y));
      writer.u16(static_cast<std::uint16_t>(rect.w));
      writer.u16(static_cast<std::uint16_t>(rect.h));
    }
    writer.u32(static_cast<std::uint32_t>(rect.area()));
    for (int y = rect.y; y < rect.bottom(); ++y) {
      for (int x = rect.x; x < rect.right(); ++x) {
        writer.u8(quantized[static_cast<std::size_t>(y) *
                                static_cast<std::size_t>(width) +
                            static_cast<std::size_t>(x)]);
      }
    }
    previous = std::move(quantized);
  }
  return writer.take();
}

}  // namespace fdet::ingest
