#include "ingest/raw.h"

#include <utility>

#include "core/artifact.h"
#include "core/check.h"
#include "core/rng.h"
#include "ingest/bytes.h"

namespace fdet::ingest {
namespace {

constexpr std::string_view kMagicFamily = "FRW";
constexpr char kVersion = '1';

/// Shared header validation: dimensions, frame count and fps against the
/// declared-metadata caps. Runs before anything is allocated.
void validate_header(ByteReader& reader, int width, int height, int frames,
                     std::uint32_t fps_milli) {
  if (width <= 0 || height <= 0 || width > kMaxIngestDimension ||
      height > kMaxIngestDimension) {
    reader.fail(IngestErrorKind::kDimensionOverflow,
                "declared dimensions " + std::to_string(width) + "x" +
                    std::to_string(height) + " outside (0, " +
                    std::to_string(kMaxIngestDimension) + "]");
  }
  if (width % 2 != 0 || height % 2 != 0) {
    reader.fail(IngestErrorKind::kDimensionOverflow,
                "NV12 payload needs even dimensions, declared " +
                    std::to_string(width) + "x" + std::to_string(height));
  }
  if (frames <= 0 || frames > kMaxIngestFrames) {
    reader.fail(IngestErrorKind::kAbsurdMetadata,
                "declared frame count " + std::to_string(frames) +
                    " outside (0, " + std::to_string(kMaxIngestFrames) + "]");
  }
  if (fps_milli == 0 ||
      static_cast<double>(fps_milli) > kMaxIngestFps * 1000.0) {
    reader.fail(IngestErrorKind::kAbsurdMetadata,
                "declared rate " + std::to_string(fps_milli) +
                    " milli-fps outside (0, " +
                    std::to_string(static_cast<int>(kMaxIngestFps * 1000)) +
                    "]");
  }
}

}  // namespace

RawSource::RawSource(std::string bytes) : bytes_(std::move(bytes)) {
  ByteReader reader(bytes_, "raw");
  reader.expect_magic(kMagicFamily, "container magic");
  const char version = static_cast<char>(reader.u8("container version"));
  if (version != kVersion) {
    reader.fail(IngestErrorKind::kBadVersion,
                std::string("unsupported FRW version '") + version + "'");
  }
  const int width = static_cast<int>(reader.u32("width"));
  const int height = static_cast<int>(reader.u32("height"));
  const int frames = static_cast<int>(reader.u32("frame count"));
  const std::uint32_t fps_milli = reader.u32("fps");
  validate_header(reader, width, height, frames, fps_milli);

  // The header fully determines the stream length; reject any mismatch
  // before touching (or allocating for) a single payload byte.
  const std::uint64_t payload =
      static_cast<std::uint64_t>(width) * static_cast<std::uint64_t>(height) *
      3 / 2;
  const std::uint64_t expected =
      static_cast<std::uint64_t>(frames) * (4 + payload);
  if (reader.remaining() < expected) {
    reader.fail(IngestErrorKind::kTruncated,
                "header declares " + std::to_string(expected) +
                    " payload byte(s), stream holds " +
                    std::to_string(reader.remaining()));
  }
  if (reader.remaining() > expected) {
    reader.fail(IngestErrorKind::kTrailingGarbage,
                std::to_string(reader.remaining() - expected) +
                    " byte(s) past the last declared frame");
  }

  frames_.reserve(static_cast<std::size_t>(frames));
  for (int i = 0; i < frames; ++i) {
    reader.bytes(4, "frame crc");
    const std::size_t offset = reader.offset();
    reader.bytes(static_cast<std::size_t>(payload), "frame payload");
    frames_.push_back({offset, static_cast<std::size_t>(payload)});
  }
  reader.expect_end("container end");

  info_.format = "raw";
  info_.container = "FRW raw-NV12 container (uncompressed, per-frame CRC)";
  info_.width = width;
  info_.height = height;
  info_.frames = frames;
  info_.fps = static_cast<double>(fps_milli) / 1000.0;
  info_.intra_only = true;
  latency_seed_ = core::hash_combine(core::crc32(bytes_.substr(0, 20)),
                                     0xfa11ed5eedULL);
}

video::DecodedFrame RawSource::decode(int index) const {
  check_index(index);
  const ByteRange range = frames_[static_cast<std::size_t>(index)];
  ByteReader reader(bytes_, "raw");
  reader.seek(range.offset - 4, "frame seek");
  const std::uint32_t declared = reader.u32("frame crc");
  const std::string_view payload = reader.bytes(range.size, "frame payload");
  const std::uint32_t actual = core::crc32(payload);
  if (declared != actual) {
    reader.fail(IngestErrorKind::kChecksumMismatch,
                "frame " + std::to_string(index) + " payload crc32 " +
                    std::to_string(actual) + " != declared " +
                    std::to_string(declared));
  }

  const int width = info_.width;
  const int height = info_.height;
  img::ImageU8 luma(width, height);
  img::ImageU8 chroma(width, height / 2);
  const std::size_t luma_bytes = luma.size();
  for (std::size_t i = 0; i < luma_bytes; ++i) {
    luma.pixels()[i] = static_cast<std::uint8_t>(payload[i]);
  }
  for (std::size_t i = 0; i < chroma.size(); ++i) {
    chroma.pixels()[i] = static_cast<std::uint8_t>(payload[luma_bytes + i]);
  }

  video::DecodedFrame out;
  out.index = index;
  out.frame = img::Nv12Frame::from_planes(std::move(luma), std::move(chroma));
  out.decode_ms = decode_latency_ms(index);
  return out;
}

double RawSource::decode_latency_ms(int index) const {
  check_index(index);
  // Uncompressed planes decode at memcpy speed: ~1 ms per 1080p frame,
  // with deterministic per-(stream, frame) jitter like the H.264 mock.
  const double pixels =
      static_cast<double>(info_.width) * static_cast<double>(info_.height);
  const double scale = pixels / (1920.0 * 1080.0);
  core::Rng rng(core::hash_combine(latency_seed_,
                                   static_cast<std::uint64_t>(index)));
  return scale * (1.0 + rng.uniform(0.0, 0.25));
}

std::optional<ByteRange> RawSource::frame_bytes(int index) const {
  check_index(index);
  return frames_[static_cast<std::size_t>(index)];
}

std::string encode_raw(const std::vector<img::Nv12Frame>& frames, double fps) {
  FDET_CHECK(!frames.empty()) << "encode_raw: no frames";
  FDET_CHECK(fps > 0.0 && fps <= kMaxIngestFps)
      << "encode_raw: fps " << fps << " outside (0, " << kMaxIngestFps << "]";
  const int width = frames.front().width();
  const int height = frames.front().height();
  ByteWriter writer;
  writer.bytes(kMagicFamily);
  writer.u8(static_cast<std::uint8_t>(kVersion));
  writer.u32(static_cast<std::uint32_t>(width));
  writer.u32(static_cast<std::uint32_t>(height));
  writer.u32(static_cast<std::uint32_t>(frames.size()));
  writer.u32(static_cast<std::uint32_t>(fps * 1000.0));
  for (const img::Nv12Frame& frame : frames) {
    FDET_CHECK(frame.width() == width && frame.height() == height)
        << "encode_raw: frame geometry " << frame.width() << "x"
        << frame.height() << " != stream " << width << "x" << height;
    std::string payload;
    payload.reserve(frame.luma().size() + frame.chroma().size());
    payload.append(reinterpret_cast<const char*>(frame.luma().data()),
                   frame.luma().size());
    payload.append(reinterpret_cast<const char*>(frame.chroma().data()),
                   frame.chroma().size());
    writer.u32(core::crc32(payload));
    writer.bytes(payload);
  }
  return writer.take();
}

}  // namespace fdet::ingest
