#include "ingest/mutate.h"

#include <algorithm>
#include <utility>

#include "core/rng.h"
#include "ingest/registry.h"

namespace fdet::ingest {
namespace {

/// Uniform offset in [lo, hi) as size_t (uniform_int is int-ranged and
/// streams can exceed INT_MAX bytes in principle).
std::size_t uniform_offset(core::Rng& rng, std::size_t lo, std::size_t hi) {
  return lo + static_cast<std::size_t>(rng() % (hi - lo));
}

/// Applies `kind` within [lo, hi) of `bytes` (the whole stream or one
/// frame's payload extent). Truncation cuts at a point inside the range;
/// the other kinds stay within it.
std::string mutate_range(std::string_view bytes, MutationKind kind,
                         std::uint64_t seed, std::size_t lo, std::size_t hi) {
  std::string out(bytes);
  core::Rng rng(seed);
  switch (kind) {
    case MutationKind::kBitFlip: {
      const int flips = rng.uniform_int(1, 8);
      for (int i = 0; i < flips; ++i) {
        const std::size_t at = uniform_offset(rng, lo, hi);
        out[at] = static_cast<char>(static_cast<unsigned char>(out[at]) ^
                                    (1u << rng.uniform_int(0, 7)));
      }
      return out;
    }
    case MutationKind::kTruncate:
      out.resize(uniform_offset(rng, lo, hi));
      return out;
    case MutationKind::kSplice: {
      const std::size_t span = std::min<std::size_t>(
          hi - lo, static_cast<std::size_t>(rng.uniform_int(4, 64)));
      const std::size_t from = uniform_offset(rng, 0, bytes.size() - span + 1);
      const std::size_t to = uniform_offset(rng, lo, hi - span + 1);
      const std::string chunk = out.substr(from, span);
      out.replace(to, span, chunk);
      return out;
    }
    case MutationKind::kZeroRun: {
      const std::size_t span = std::min<std::size_t>(
          hi - lo, static_cast<std::size_t>(rng.uniform_int(4, 64)));
      const std::size_t at = uniform_offset(rng, lo, hi - span + 1);
      std::fill(out.begin() + static_cast<std::ptrdiff_t>(at),
                out.begin() + static_cast<std::ptrdiff_t>(at + span), '\0');
      return out;
    }
    case MutationKind::kGarbageTail: {
      const int extra = rng.uniform_int(1, 64);
      for (int i = 0; i < extra; ++i) {
        out.push_back(static_cast<char>(rng() & 0xff));
      }
      return out;
    }
  }
  return out;  // unreachable
}

}  // namespace

std::string_view mutation_kind_name(MutationKind kind) {
  switch (kind) {
    case MutationKind::kBitFlip:
      return "flip";
    case MutationKind::kTruncate:
      return "trunc";
    case MutationKind::kSplice:
      return "splice";
    case MutationKind::kZeroRun:
      return "zero";
    case MutationKind::kGarbageTail:
      return "garbage";
  }
  return "";
}

MutationKind parse_mutation_kind(std::string_view name) {
  for (const MutationKind kind : kAllMutations) {
    if (name == mutation_kind_name(kind)) {
      return kind;
    }
  }
  throw IngestError(
      IngestErrorKind::kUnsupported, "corrupt-plan", 0,
      "unknown mutation \"" + std::string(name) +
          "\" (known: flip, trunc, splice, zero, garbage)");
}

std::string mutate_stream(std::string_view bytes, MutationKind kind,
                          std::uint64_t seed) {
  if (bytes.empty()) {
    return std::string(bytes);
  }
  return mutate_range(bytes, kind, seed, 0, bytes.size());
}

CorruptPlan CorruptPlan::parse(std::string_view spec, std::uint64_t seed) {
  CorruptPlan plan;
  plan.seed = seed;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string_view::npos) {
      end = spec.size();
    }
    const std::string_view item = spec.substr(start, end - start);
    start = end + 1;
    if (item.empty()) {
      continue;
    }
    const std::size_t at = item.find('@');
    if (at == std::string_view::npos) {
      throw IngestError(IngestErrorKind::kUnsupported, "corrupt-plan", 0,
                        "entry \"" + std::string(item) +
                            "\" is not of the form kind@frame");
    }
    Entry entry;
    entry.kind = parse_mutation_kind(item.substr(0, at));
    const std::string_view frame_text = item.substr(at + 1);
    int frame = 0;
    bool valid = !frame_text.empty();
    for (const char c : frame_text) {
      if (c < '0' || c > '9' || frame > kMaxIngestFrames) {
        valid = false;
        break;
      }
      frame = frame * 10 + (c - '0');
    }
    if (!valid) {
      throw IngestError(IngestErrorKind::kUnsupported, "corrupt-plan", 0,
                        "frame index \"" + std::string(frame_text) +
                            "\" is not a non-negative integer within caps");
    }
    entry.frame = frame;
    plan.entries.push_back(entry);
  }
  return plan;
}

const CorruptPlan::Entry* CorruptPlan::find(int frame) const {
  for (const Entry& entry : entries) {
    if (entry.frame == frame) {
      return &entry;
    }
  }
  return nullptr;
}

CorruptingSource::CorruptingSource(std::string bytes, CorruptPlan plan)
    : bytes_(std::move(bytes)), plan_(std::move(plan)),
      inner_(open_stream(bytes_)) {}

video::DecodedFrame CorruptingSource::decode(int index) const {
  const CorruptPlan::Entry* entry = plan_.find(index);
  if (entry == nullptr) {
    return inner_->decode(index);
  }
  const std::optional<ByteRange> range = inner_->frame_bytes(index);
  if (!range.has_value() || range->size == 0) {
    return inner_->decode(index);  // nothing to damage (mock sources)
  }
  const std::uint64_t seed =
      core::hash_combine(plan_.seed, static_cast<std::uint64_t>(index));
  const std::string damaged = mutate_range(
      bytes_, entry->kind, seed, range->offset, range->offset + range->size);
  // Re-open the damaged copy: structural wounds (truncation) throw here,
  // payload wounds throw from decode — either way a typed IngestError.
  return open_stream(damaged)->decode(index);
}

double CorruptingSource::decode_latency_ms(int index) const {
  return inner_->decode_latency_ms(index);
}

std::optional<ByteRange> CorruptingSource::frame_bytes(int index) const {
  return inner_->frame_bytes(index);
}

}  // namespace fdet::ingest
