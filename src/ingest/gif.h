// FGF — an animated-GIF-like container: a global gray palette, a full
// keyframe, then delta frames that each repaint one sub-rectangle. The
// format exists to exercise two validation surfaces the intra-only
// containers cannot: palette indirection (every pixel byte indexes the
// palette — an index past its end is kPaletteOverflow, not an OOB read)
// and inter-frame state (decode(i) composites deltas 1..i onto the
// keyframe internally, so the FrameSource contract — stateless,
// any-order, byte-identical decode — still holds).
//
// Wire layout (all integers little-endian):
//
//   "FGF" version-byte '1'
//   u32 width   u32 height   u32 frames   u32 fps_milli
//   u8 palette_size (>= 1)   palette_size bytes (gray levels)
//   frame 0:        u32 w*h           | w*h palette indices (keyframe)
//   frames 1..n-1:  u16 x y w h (sub-rect) | u32 w*h | w*h palette indices
//   (end of stream — trailing bytes are an error)
//
// Open-time validation: header caps, palette size, every sub-rect inside
// the canvas with positive extent (kBadSubRect otherwise), every declared
// pixel count equal to its rect area, and exact total length. Palette
// indices are validated lazily at decode(i) (kPaletteOverflow), modeling
// payload rot behind a clean index. Chroma is synthesized neutral — the
// detector only consumes luma, matching the paper's pipeline.
#pragma once

#include <string>
#include <vector>

#include "ingest/frame_source.h"

namespace fdet::ingest {

class GifSource final : public FrameSource {
 public:
  /// Parses and validates the container structure; throws IngestError.
  /// The source takes ownership of the byte stream.
  explicit GifSource(std::string bytes);

  const SourceInfo& info() const override { return info_; }
  video::DecodedFrame decode(int index) const override;
  double decode_latency_ms(int index) const override;
  std::optional<ByteRange> frame_bytes(int index) const override;

 private:
  struct Patch {
    img::Rect rect;       ///< full canvas for the keyframe
    ByteRange indices;    ///< palette-index bytes for the rect
  };

  std::string bytes_;
  SourceInfo info_;
  std::vector<std::uint8_t> palette_;
  std::vector<Patch> patches_;
  std::uint64_t latency_seed_ = 0;
};

/// Serializes grayscale frames into the FGF container: frame 0 becomes
/// the keyframe, each later frame the tightest dirty rect against its
/// predecessor (full canvas when everything changed). Trusted path —
/// geometry mismatches are core::CheckError.
std::string encode_gif(const std::vector<img::ImageU8>& frames, double fps);

}  // namespace fdet::ingest
