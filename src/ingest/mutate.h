// Deterministic malformed-input generation — the corruption half of the
// fuzz-style harness.
//
// Two surfaces:
//
//   * mutate_stream(): whole-stream mutations (bit flips, truncation,
//     splices, zeroed runs, garbage tails) keyed by (kind, seed). The
//     fdet_fuzz harness sweeps seeds and asserts the corpus invariant:
//     every mutant either decodes or throws a typed IngestError.
//   * CorruptingSource: frame-targeted corruption behind the FrameSource
//     interface. A CorruptPlan ("flip@12,zero@30") names which frames'
//     payload bytes to damage; decode of an untargeted frame passes
//     through to the pristine stream, decode of a targeted frame mutates
//     inside that frame's ByteRange, re-opens the stream and decodes —
//     so the serving layer sees a mid-stream malformed burst exactly
//     where the plan says, deterministic in the plan seed.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ingest/frame_source.h"

namespace fdet::ingest {

enum class MutationKind {
  kBitFlip,      ///< flip 1–8 random bits anywhere in the stream
  kTruncate,     ///< cut the stream at a random offset
  kSplice,       ///< copy a random chunk over another offset
  kZeroRun,      ///< zero a random run of bytes
  kGarbageTail,  ///< append 1–64 random bytes
};

inline constexpr MutationKind kAllMutations[] = {
    MutationKind::kBitFlip, MutationKind::kTruncate, MutationKind::kSplice,
    MutationKind::kZeroRun, MutationKind::kGarbageTail};

/// Stable token: "flip" | "trunc" | "splice" | "zero" | "garbage".
std::string_view mutation_kind_name(MutationKind kind);

/// Parses a mutation token; throws IngestError(kUnsupported) otherwise.
MutationKind parse_mutation_kind(std::string_view name);

/// Applies one mutation, deterministic in (bytes, kind, seed). The
/// result may still be valid (a bit flip inside a luma plane of a
/// CRC-less format) — the corpus invariant is about typed failure, not
/// guaranteed failure.
std::string mutate_stream(std::string_view bytes, MutationKind kind,
                          std::uint64_t seed);

/// Frame-targeted corruption plan: comma-separated `kind@frame` entries,
/// e.g. "flip@12,zero@30,splice@31".
struct CorruptPlan {
  struct Entry {
    MutationKind kind = MutationKind::kBitFlip;
    int frame = 0;
  };

  std::vector<Entry> entries;
  std::uint64_t seed = 0;

  /// Parses the spec; throws IngestError(kUnsupported) on a malformed
  /// entry (CLI input is untrusted too).
  static CorruptPlan parse(std::string_view spec, std::uint64_t seed = 1);

  bool empty() const { return entries.empty(); }
  /// First entry targeting `frame`, or nullptr.
  const Entry* find(int frame) const;
};

/// Wraps a pristine serialized container; targeted frames decode through
/// a per-frame-corrupted copy of the stream. The pristine stream must
/// open cleanly (its parse errors propagate from the constructor).
class CorruptingSource final : public FrameSource {
 public:
  CorruptingSource(std::string bytes, CorruptPlan plan);

  const SourceInfo& info() const override { return inner_->info(); }
  video::DecodedFrame decode(int index) const override;
  double decode_latency_ms(int index) const override;
  std::optional<ByteRange> frame_bytes(int index) const override;

 private:
  std::string bytes_;
  CorruptPlan plan_;
  std::unique_ptr<FrameSource> inner_;
};

}  // namespace fdet::ingest
