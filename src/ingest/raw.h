// FRW — a raw-NV12/Y4M-like container: uncompressed planes, one CRC per
// frame. The simplest of the simulated formats, and the one whose
// validation is purely structural (geometry, sizes, checksums).
//
// Wire layout (all integers little-endian):
//
//   "FRW" version-byte '1'
//   u32 width   u32 height   u32 frames   u32 fps_milli
//   frames x [ u32 crc32(payload) | luma w*h bytes | chroma w*(h/2) bytes ]
//   (end of stream — trailing bytes are an error)
//
// Open-time validation (before any plane allocation): magic + version,
// dimension caps/evenness, frame-count and fps caps, and that the byte
// count implied by the header exactly matches the stream — so truncation,
// plane-size inconsistencies and trailing garbage are all rejected from
// the header alone. Per-frame CRCs are checked lazily at decode(i),
// modeling containers whose index parses clean but whose payload rotted.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ingest/frame_source.h"

namespace fdet::ingest {

class RawSource final : public FrameSource {
 public:
  /// Parses and validates the container structure; throws IngestError.
  /// The source takes ownership of the byte stream.
  explicit RawSource(std::string bytes);

  const SourceInfo& info() const override { return info_; }
  video::DecodedFrame decode(int index) const override;
  double decode_latency_ms(int index) const override;
  std::optional<ByteRange> frame_bytes(int index) const override;

 private:
  std::string bytes_;
  SourceInfo info_;
  std::vector<ByteRange> frames_;  ///< payload extents (crc excluded)
  std::uint64_t latency_seed_ = 0;
};

/// Serializes NV12 frames into the FRW container. All frames must share
/// the first frame's geometry (core::CheckError otherwise — encoding is a
/// trusted path, unlike parsing).
std::string encode_raw(const std::vector<img::Nv12Frame>& frames, double fps);

}  // namespace fdet::ingest
