#include "ingest/error.h"

namespace fdet::ingest {

const char* ingest_error_kind_name(IngestErrorKind kind) {
  switch (kind) {
    case IngestErrorKind::kTruncated: return "truncated";
    case IngestErrorKind::kBadMagic: return "bad-magic";
    case IngestErrorKind::kBadVersion: return "bad-version";
    case IngestErrorKind::kDimensionOverflow: return "dimension-overflow";
    case IngestErrorKind::kPlaneSizeMismatch: return "plane-size-mismatch";
    case IngestErrorKind::kChecksumMismatch: return "checksum-mismatch";
    case IngestErrorKind::kTrailingGarbage: return "trailing-garbage";
    case IngestErrorKind::kBadFrameIndex: return "bad-frame-index";
    case IngestErrorKind::kPaletteOverflow: return "palette-overflow";
    case IngestErrorKind::kBadSubRect: return "bad-sub-rect";
    case IngestErrorKind::kAbsurdMetadata: return "absurd-metadata";
    case IngestErrorKind::kUnsupported: return "unsupported";
    case IngestErrorKind::kInjected: return "injected";
    case IngestErrorKind::kMissingFrame: return "missing-frame";
    case IngestErrorKind::kOutOfOrder: return "out-of-order";
  }
  return "?";
}

}  // namespace fdet::ingest
