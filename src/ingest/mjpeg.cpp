#include "ingest/mjpeg.h"

#include <span>
#include <utility>

#include "core/artifact.h"
#include "core/check.h"
#include "core/rng.h"
#include "ingest/bytes.h"

namespace fdet::ingest {
namespace {

constexpr std::string_view kMagicFamily = "FMJ";
constexpr char kVersion = '1';
constexpr char kSoi[] = {static_cast<char>(0xff), static_cast<char>(0xd8)};
constexpr char kEoi[] = {static_cast<char>(0xff), static_cast<char>(0xd9)};

std::string_view soi() { return {kSoi, 2}; }
std::string_view eoi() { return {kEoi, 2}; }

/// Expands one frame's RLE stream into `out` (pre-sized to the exact
/// plane total). Every structural defect is a typed error at the byte
/// that exhibits it; `out` is never written past its end.
void expand_rle(ByteReader& reader, std::string_view rle, int frame_index,
                std::string& out) {
  std::size_t produced = 0;
  for (std::size_t i = 0; i < rle.size(); i += 2) {
    if (i + 1 >= rle.size()) {
      reader.fail(IngestErrorKind::kPlaneSizeMismatch,
                  "frame " + std::to_string(frame_index) +
                      ": dangling RLE count byte without a value");
    }
    const auto count =
        static_cast<std::size_t>(static_cast<unsigned char>(rle[i]));
    const char value = rle[i + 1];
    if (count == 0) {
      reader.fail(IngestErrorKind::kPlaneSizeMismatch,
                  "frame " + std::to_string(frame_index) +
                      ": zero-length run at RLE byte " + std::to_string(i));
    }
    if (produced + count > out.size()) {
      reader.fail(IngestErrorKind::kPlaneSizeMismatch,
                  "frame " + std::to_string(frame_index) +
                      ": RLE expands past the declared plane total (" +
                      std::to_string(produced + count) + " > " +
                      std::to_string(out.size()) + ")");
    }
    for (std::size_t j = 0; j < count; ++j) {
      out[produced + j] = value;
    }
    produced += count;
  }
  if (produced != out.size()) {
    reader.fail(IngestErrorKind::kPlaneSizeMismatch,
                "frame " + std::to_string(frame_index) + ": RLE expands to " +
                    std::to_string(produced) + " byte(s), planes need " +
                    std::to_string(out.size()));
  }
}

void rle_append(ByteWriter& writer, std::span<const std::uint8_t> plane) {
  std::size_t i = 0;
  while (i < plane.size()) {
    const std::uint8_t value = plane[i];
    std::size_t run = 1;
    while (run < 255 && i + run < plane.size() && plane[i + run] == value) {
      ++run;
    }
    writer.u8(static_cast<std::uint8_t>(run));
    writer.u8(value);
    i += run;
  }
}

}  // namespace

MjpegSource::MjpegSource(std::string bytes) : bytes_(std::move(bytes)) {
  ByteReader reader(bytes_, "mjpeg");
  reader.expect_magic(kMagicFamily, "container magic");
  const char version = static_cast<char>(reader.u8("container version"));
  if (version != kVersion) {
    reader.fail(IngestErrorKind::kBadVersion,
                std::string("unsupported FMJ version '") + version + "'");
  }
  const int width = static_cast<int>(reader.u32("width"));
  const int height = static_cast<int>(reader.u32("height"));
  const int frames = static_cast<int>(reader.u32("frame count"));
  const std::uint32_t fps_milli = reader.u32("fps");
  if (width <= 0 || height <= 0 || width > kMaxIngestDimension ||
      height > kMaxIngestDimension || width % 2 != 0 || height % 2 != 0) {
    reader.fail(IngestErrorKind::kDimensionOverflow,
                "declared dimensions " + std::to_string(width) + "x" +
                    std::to_string(height) + " not even in (0, " +
                    std::to_string(kMaxIngestDimension) + "]");
  }
  if (frames <= 0 || frames > kMaxIngestFrames) {
    reader.fail(IngestErrorKind::kAbsurdMetadata,
                "declared frame count " + std::to_string(frames) +
                    " outside (0, " + std::to_string(kMaxIngestFrames) + "]");
  }
  if (fps_milli == 0 ||
      static_cast<double>(fps_milli) > kMaxIngestFps * 1000.0) {
    reader.fail(IngestErrorKind::kAbsurdMetadata,
                "declared rate " + std::to_string(fps_milli) +
                    " milli-fps over the " +
                    std::to_string(static_cast<int>(kMaxIngestFps)) +
                    " fps cap");
  }

  // An RLE stream never exceeds 2x its expanded size (worst case: every
  // run has length 1), which bounds each declared length before we trust
  // it enough to skip over the payload.
  const std::uint64_t plane_total =
      static_cast<std::uint64_t>(width) * static_cast<std::uint64_t>(height) *
      3 / 2;
  const std::uint64_t max_rle = plane_total * 2;

  frames_.reserve(static_cast<std::size_t>(frames));
  for (int i = 0; i < frames; ++i) {
    reader.expect_magic(soi(), "SOI marker");
    const std::uint32_t rle_len = reader.u32("RLE length");
    if (rle_len == 0 || rle_len > max_rle) {
      reader.fail(IngestErrorKind::kAbsurdMetadata,
                  "frame " + std::to_string(i) + " declares " +
                      std::to_string(rle_len) + " RLE byte(s), cap is " +
                      std::to_string(max_rle));
    }
    const std::size_t offset = reader.offset();
    reader.bytes(rle_len, "RLE payload");
    frames_.push_back({offset, rle_len});
    reader.expect_magic(eoi(), "EOI marker");
  }
  reader.expect_end("container end");

  info_.format = "mjpeg";
  info_.container = "FMJ motion-JPEG-like container (RLE intra frames)";
  info_.width = width;
  info_.height = height;
  info_.frames = frames;
  info_.fps = static_cast<double>(fps_milli) / 1000.0;
  info_.intra_only = true;
  latency_seed_ = core::hash_combine(core::crc32(bytes_.substr(0, 20)),
                                     0x6d6a7065ULL);
}

video::DecodedFrame MjpegSource::decode(int index) const {
  check_index(index);
  const ByteRange range = frames_[static_cast<std::size_t>(index)];
  ByteReader reader(bytes_, "mjpeg");
  reader.seek(range.offset, "frame seek");
  const std::string_view rle = reader.bytes(range.size, "RLE payload");

  const int width = info_.width;
  const int height = info_.height;
  const std::size_t luma_bytes =
      static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
  std::string expanded(luma_bytes + luma_bytes / 2, '\0');
  expand_rle(reader, rle, index, expanded);

  img::ImageU8 luma(width, height);
  img::ImageU8 chroma(width, height / 2);
  for (std::size_t i = 0; i < luma_bytes; ++i) {
    luma.pixels()[i] = static_cast<std::uint8_t>(expanded[i]);
  }
  for (std::size_t i = 0; i < chroma.size(); ++i) {
    chroma.pixels()[i] = static_cast<std::uint8_t>(expanded[luma_bytes + i]);
  }

  video::DecodedFrame out;
  out.index = index;
  out.frame = img::Nv12Frame::from_planes(std::move(luma), std::move(chroma));
  out.decode_ms = decode_latency_ms(index);
  return out;
}

double MjpegSource::decode_latency_ms(int index) const {
  check_index(index);
  // Intra-frame entropy decode: ~2.5 ms per 1080p frame plus a term for
  // the compressed size (denser frames cost more), with deterministic
  // per-(stream, frame) jitter.
  const double pixels =
      static_cast<double>(info_.width) * static_cast<double>(info_.height);
  const double scale = pixels / (1920.0 * 1080.0);
  const double density =
      static_cast<double>(frames_[static_cast<std::size_t>(index)].size) /
      (pixels * 1.5);
  core::Rng rng(core::hash_combine(latency_seed_,
                                   static_cast<std::uint64_t>(index)));
  return scale * (2.5 + 2.0 * density) + rng.uniform(0.0, 0.3);
}

std::optional<ByteRange> MjpegSource::frame_bytes(int index) const {
  check_index(index);
  return frames_[static_cast<std::size_t>(index)];
}

std::string encode_mjpeg(const std::vector<img::Nv12Frame>& frames,
                         double fps) {
  FDET_CHECK(!frames.empty()) << "encode_mjpeg: no frames";
  FDET_CHECK(fps > 0.0 && fps <= kMaxIngestFps)
      << "encode_mjpeg: fps " << fps << " outside (0, " << kMaxIngestFps
      << "]";
  const int width = frames.front().width();
  const int height = frames.front().height();
  ByteWriter writer;
  writer.bytes(kMagicFamily);
  writer.u8(static_cast<std::uint8_t>(kVersion));
  writer.u32(static_cast<std::uint32_t>(width));
  writer.u32(static_cast<std::uint32_t>(height));
  writer.u32(static_cast<std::uint32_t>(frames.size()));
  writer.u32(static_cast<std::uint32_t>(fps * 1000.0));
  for (const img::Nv12Frame& frame : frames) {
    FDET_CHECK(frame.width() == width && frame.height() == height)
        << "encode_mjpeg: frame geometry " << frame.width() << "x"
        << frame.height() << " != stream " << width << "x" << height;
    ByteWriter rle;
    rle_append(rle, frame.luma().pixels());
    rle_append(rle, frame.chroma().pixels());
    writer.bytes(soi());
    writer.u32(static_cast<std::uint32_t>(rle.size()));
    writer.bytes(rle.str());
    writer.bytes(eoi());
  }
  return writer.take();
}

}  // namespace fdet::ingest
