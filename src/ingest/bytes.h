// Bounded byte-cursor primitives shared by every validating container
// parser in the ingest layer.
//
// ByteReader is the validation workhorse: every read goes through
// require(), which throws a typed IngestError naming the current byte
// offset instead of reading past the end — so a truncated or bit-flipped
// stream is rejected with "truncated at offset N" rather than UB. All
// multi-byte fields are little-endian and assembled byte-by-byte, so
// parsing is independent of host endianness and alignment.
//
// ByteWriter is the matching serializer the encoders use; it exists so
// the byte-level wire formats are defined in exactly one place per field
// (writer and reader share the same field helpers' shapes).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "ingest/error.h"

namespace fdet::ingest {

class ByteReader {
 public:
  /// `format` names the parser in diagnostics ("raw" | "mjpeg" | "gif").
  ByteReader(std::string_view data, std::string format)
      : data_(data), format_(std::move(format)) {}

  std::size_t offset() const { return offset_; }
  std::size_t remaining() const { return data_.size() - offset_; }
  bool at_end() const { return offset_ == data_.size(); }

  /// Throws IngestError(kTruncated) unless `count` more bytes exist.
  void require(std::size_t count, const char* what) const {
    if (remaining() < count) {
      throw IngestError(IngestErrorKind::kTruncated, format_, offset_,
                        std::string(what) + ": need " +
                            std::to_string(count) + " byte(s), have " +
                            std::to_string(remaining()));
    }
  }

  std::uint8_t u8(const char* what) {
    require(1, what);
    return static_cast<std::uint8_t>(data_[offset_++]);
  }

  std::uint16_t u16(const char* what) {
    require(2, what);
    const auto lo = static_cast<std::uint16_t>(u8(what));
    const auto hi = static_cast<std::uint16_t>(u8(what));
    return static_cast<std::uint16_t>(lo | (hi << 8));
  }

  std::uint32_t u32(const char* what) {
    require(4, what);
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(u8(what)) << (8 * i);
    }
    return value;
  }

  /// A view of the next `count` payload bytes (no copy), advancing.
  std::string_view bytes(std::size_t count, const char* what) {
    require(count, what);
    const std::string_view view = data_.substr(offset_, count);
    offset_ += count;
    return view;
  }

  /// Consumes and compares a fixed magic/marker; throws kBadMagic naming
  /// both the expected and the observed token.
  void expect_magic(std::string_view magic, const char* what) {
    const std::size_t at = offset_;
    const std::string_view got = bytes(magic.size(), what);
    if (got != magic) {
      throw IngestError(IngestErrorKind::kBadMagic, format_, at,
                        std::string(what) + ": expected \"" +
                            std::string(magic) + "\", got \"" +
                            printable(got) + "\"");
    }
  }

  /// Throws kTrailingGarbage unless the cursor consumed the whole stream.
  void expect_end(const char* what) const {
    if (!at_end()) {
      throw IngestError(IngestErrorKind::kTrailingGarbage, format_, offset_,
                        std::string(what) + ": " +
                            std::to_string(remaining()) +
                            " byte(s) past the last declared frame");
    }
  }

  /// Jumps to an absolute offset recorded earlier (frame index tables).
  void seek(std::size_t offset, const char* what) {
    if (offset > data_.size()) {
      throw IngestError(IngestErrorKind::kTruncated, format_, offset,
                        std::string(what) + ": seek past end");
    }
    offset_ = offset;
  }

  /// Raises a typed error at the current offset (for semantic checks the
  /// caller performs on already-read fields).
  [[noreturn]] void fail(IngestErrorKind kind, const std::string& detail) const {
    throw IngestError(kind, format_, offset_, detail);
  }

 private:
  static std::string printable(std::string_view raw) {
    std::string out;
    for (const char c : raw) {
      if (c >= 0x20 && c < 0x7f) {
        out += c;
      } else {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\x%02x",
                      static_cast<unsigned>(static_cast<unsigned char>(c)));
        out += buf;
      }
    }
    return out;
  }

  std::string_view data_;
  std::string format_;
  std::size_t offset_ = 0;
};

class ByteWriter {
 public:
  void u8(std::uint8_t value) { out_.push_back(static_cast<char>(value)); }

  void u16(std::uint16_t value) {
    u8(static_cast<std::uint8_t>(value & 0xff));
    u8(static_cast<std::uint8_t>(value >> 8));
  }

  void u32(std::uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      u8(static_cast<std::uint8_t>((value >> (8 * i)) & 0xff));
    }
  }

  void bytes(std::string_view data) { out_.append(data); }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

 private:
  std::string out_;
};

}  // namespace fdet::ingest
