// Network-ish delivery simulation over any FrameSource.
//
// Real camera feeds reach the detector over lossy transports: frames go
// missing, arrive late (after a successor), or arrive twice. The
// hardened parsers (DESIGN.md §11) cover *malformed bytes*; this wrapper
// covers *malformed arrival order* — a different failure axis that
// exercises the serving queue and DegradationLadder without any byte
// being wrong. LossyReorderSource precomputes a seeded delivery
// schedule over an inner source:
//
//   * a dropped frame leaves a gap — decoding its slot throws
//     IngestError(kMissingFrame), the typed signal the service turns
//     into a counted drop (never a malformed-stream quarantine);
//   * a displaced frame is delivered after a later one — its slot
//     reports FrameArrival::kOutOfOrder;
//   * a duplicated frame occupies two slots — the second reports
//     FrameArrival::kDuplicate.
//
// The schedule is a pure function of (inner frame count, options.seed),
// so the wrapper keeps the FrameSource determinism contract: any slot,
// any order, any number of times, byte-identical results.
#pragma once

#include <vector>

#include "ingest/frame_source.h"

namespace fdet::ingest {

struct LossyOptions {
  double drop_probability = 0.0;       ///< frame never delivered
  double duplicate_probability = 0.0;  ///< frame delivered twice
  double reorder_probability = 0.0;    ///< frame displaced later
  int max_displacement = 3;            ///< how many slots a frame can drift
  std::uint64_t seed = 0x105512;
};

class LossyReorderSource final : public FrameSource {
 public:
  /// The inner source must outlive the wrapper (same borrow rule as
  /// H264FrameSource and CorruptingSource).
  LossyReorderSource(const FrameSource& inner, LossyOptions options);

  const SourceInfo& info() const override { return info_; }
  video::DecodedFrame decode(int index) const override;
  double decode_latency_ms(int index) const override;
  FrameArrival arrival_kind(int index) const override;

  /// Inner frame index delivered in slot `index`, or -1 for a gap.
  int delivered_inner_index(int index) const;

  int dropped() const { return dropped_; }
  int duplicated() const { return duplicated_; }
  int displaced() const { return displaced_; }

 private:
  const FrameSource* inner_;
  LossyOptions options_;
  SourceInfo info_;
  std::vector<int> delivery_;          ///< slot -> inner index, -1 = gap
  std::vector<FrameArrival> arrival_;  ///< slot -> order classification
  int dropped_ = 0;
  int duplicated_ = 0;
  int displaced_ = 0;
};

}  // namespace fdet::ingest
