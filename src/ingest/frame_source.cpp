#include "ingest/frame_source.h"

namespace fdet::ingest {

const char* frame_arrival_name(FrameArrival arrival) {
  switch (arrival) {
    case FrameArrival::kInOrder: return "in-order";
    case FrameArrival::kOutOfOrder: return "out-of-order";
    case FrameArrival::kDuplicate: return "duplicate";
  }
  return "?";
}

void FrameSource::check_index(int index) const {
  const SourceInfo& meta = info();
  if (index < 0 || index >= meta.frames) {
    throw IngestError(IngestErrorKind::kBadFrameIndex, meta.format, 0,
                      "frame " + std::to_string(index) + " outside [0, " +
                          std::to_string(meta.frames) + ")");
  }
}

H264FrameSource::H264FrameSource(const video::MockH264Decoder& decoder)
    : decoder_(&decoder) {
  const video::TrailerSpec& spec = decoder.spec();
  info_.format = "h264";
  info_.container = "mock NVCUVID H.264 elementary stream (synthesized)";
  info_.width = spec.width;
  info_.height = spec.height;
  info_.frames = spec.frames;
  info_.fps = spec.fps;
  info_.intra_only = true;  // the mock decodes any frame independently
  info_.has_ground_truth = true;
}

video::DecodedFrame H264FrameSource::decode(int index) const {
  check_index(index);
  return decoder_->decode(index);
}

double H264FrameSource::decode_latency_ms(int index) const {
  check_index(index);
  return decoder_->decode_latency_ms(index);
}

}  // namespace fdet::ingest
