#include "ingest/quarantine.h"

#include <utility>

#include "core/artifact.h"
#include "ingest/registry.h"

namespace fdet::ingest {
namespace {

/// Filesystem-safe version of a caller-provided stream label.
std::string sanitize(const std::string& name) {
  std::string out;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    out += ok ? c : '_';
  }
  return out.empty() ? "stream" : out;
}

}  // namespace

StreamQuarantine::StreamQuarantine(std::string dump_dir,
                                   std::size_t max_records)
    : dump_dir_(std::move(dump_dir)), max_records_(max_records) {}

std::unique_ptr<FrameSource> StreamQuarantine::open_or_quarantine(
    std::string bytes, const std::string& name) {
  try {
    // The parsers take ownership of their argument; keep the original so
    // a rejection can still be dumped for triage.
    std::string copy = bytes;
    return open_stream(std::move(copy));
  } catch (const IngestError& error) {
    record(name, error, bytes);
    throw;
  }
}

void StreamQuarantine::record(const std::string& name,
                              const IngestError& error,
                              std::string_view bytes) {
  ++total_rejected_;
  QuarantineRecord rec;
  rec.name = name;
  rec.kind = error.kind();
  rec.format = error.format();
  rec.offset = error.offset();
  rec.detail = error.detail();
  rec.byte_count = bytes.size();
  if (!dump_dir_.empty() && !bytes.empty()) {
    rec.dump_path = dump_dir_ + "/" + sanitize(name) + ".quarantined";
    core::atomic_write_file(rec.dump_path, bytes);
  }
  if (records_.size() >= max_records_) {
    records_.erase(records_.begin());
  }
  records_.push_back(std::move(rec));
}

}  // namespace fdet::ingest
