#include "img/nv12.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/check.h"

namespace fdet::img {
namespace {

/// Validated before any plane is allocated, so a bad geometry fails with
/// this message instead of an opaque error from the plane constructors
/// (e.g. "image dimensions 640x0" for an odd height of 1).
int checked_nv12_width(int width, int height) {
  FDET_CHECK(width > 0 && height > 0)
      << "NV12 frame dimensions must be positive, got " << width << "x"
      << height;
  FDET_CHECK(width % 2 == 0 && height % 2 == 0)
      << "NV12 frame dimensions must be even (4:2:0 chroma subsampling "
         "halves both axes), got "
      << width << "x" << height;
  return width;
}

}  // namespace

Nv12Frame::Nv12Frame(int width, int height)
    : width_(checked_nv12_width(width, height)), height_(height),
      luma_(width, height), chroma_(width, height / 2) {}

Nv12Frame Nv12Frame::from_gray(const ImageU8& gray) {
  FDET_CHECK(!gray.empty()) << "NV12 from_gray: empty source image";
  Nv12Frame frame(gray.width(), gray.height());
  frame.luma_ = gray;
  frame.chroma_.fill(128);  // neutral chroma
  return frame;
}

Nv12Frame Nv12Frame::from_planes(ImageU8 luma, ImageU8 chroma) {
  checked_nv12_width(luma.width(), luma.height());
  FDET_CHECK(chroma.width() == luma.width() &&
             chroma.height() == luma.height() / 2)
      << "NV12 from_planes: chroma plane " << chroma.width() << "x"
      << chroma.height() << " does not match luma " << luma.width() << "x"
      << luma.height() << " (expected " << luma.width() << "x"
      << luma.height() / 2 << ")";
  Nv12Frame frame;
  frame.width_ = luma.width();
  frame.height_ = luma.height();
  frame.luma_ = std::move(luma);
  frame.chroma_ = std::move(chroma);
  return frame;
}

void Nv12Frame::to_rgb(ImageU8& r, ImageU8& g, ImageU8& b) const {
  r = ImageU8(width_, height_);
  g = ImageU8(width_, height_);
  b = ImageU8(width_, height_);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const float yy = static_cast<float>(luma_(x, y));
      const int cx = (x / 2) * 2;
      const float cb = static_cast<float>(chroma_(cx, y / 2)) - 128.0f;
      const float cr = static_cast<float>(chroma_(cx + 1, y / 2)) - 128.0f;
      const auto clamp8 = [](float v) {
        return static_cast<std::uint8_t>(std::clamp(v, 0.0f, 255.0f));
      };
      r(x, y) = clamp8(yy + 1.402f * cr);
      g(x, y) = clamp8(yy - 0.344f * cb - 0.714f * cr);
      b(x, y) = clamp8(yy + 1.772f * cb);
    }
  }
}

}  // namespace fdet::img
