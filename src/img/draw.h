// Host-side rectangle drawing (reference for the vGPU display kernel).
#pragma once

#include "img/image.h"

namespace fdet::img {

/// Draws the 1-pixel outline of `rect` with `value`, clipping to the image.
void draw_rect(ImageU8& image, const Rect& rect, std::uint8_t value);

/// Draws an outline of the given thickness (grows inward).
void draw_rect(ImageU8& image, const Rect& rect, std::uint8_t value,
               int thickness);

}  // namespace fdet::img
