#include "img/io.h"

#include <fstream>

#include "core/check.h"

namespace fdet::img {

void write_pgm(const std::string& path, const ImageU8& image) {
  std::ofstream out(path, std::ios::binary);
  FDET_CHECK(out.good()) << "cannot open " << path;
  out << "P5\n" << image.width() << " " << image.height() << "\n255\n";
  out.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
  FDET_CHECK(out.good()) << "write failed for " << path;
}

ImageU8 read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FDET_CHECK(in.good()) << "cannot open " << path;
  std::string magic;
  int width = 0;
  int height = 0;
  int maxval = 0;
  in >> magic >> width >> height >> maxval;
  FDET_CHECK(magic == "P5") << path << ": not a binary PGM";
  FDET_CHECK(width > 0 && height > 0 && maxval == 255)
      << path << ": unsupported header";
  in.get();  // single whitespace after maxval
  ImageU8 image(width, height);
  in.read(reinterpret_cast<char*>(image.data()),
          static_cast<std::streamsize>(image.size()));
  FDET_CHECK(in.gcount() == static_cast<std::streamsize>(image.size()))
      << path << ": truncated pixel data";
  return image;
}

void write_ppm(const std::string& path, const ImageU8& r, const ImageU8& g,
               const ImageU8& b) {
  FDET_CHECK(r.width() == g.width() && g.width() == b.width() &&
             r.height() == g.height() && g.height() == b.height())
      << "mismatched plane sizes";
  std::ofstream out(path, std::ios::binary);
  FDET_CHECK(out.good()) << "cannot open " << path;
  out << "P6\n" << r.width() << " " << r.height() << "\n255\n";
  for (int y = 0; y < r.height(); ++y) {
    for (int x = 0; x < r.width(); ++x) {
      const char rgb[3] = {static_cast<char>(r(x, y)),
                           static_cast<char>(g(x, y)),
                           static_cast<char>(b(x, y))};
      out.write(rgb, 3);
    }
  }
  FDET_CHECK(out.good()) << "write failed for " << path;
}

}  // namespace fdet::img
