#include "img/pyramid.h"

#include <cmath>

#include "core/check.h"
#include "img/filter.h"
#include "img/texture.h"

namespace fdet::img {

PyramidPlan plan_pyramid(int width, int height, double step, int min_size) {
  FDET_CHECK(width > 0 && height > 0);
  FDET_CHECK(step > 1.0) << "pyramid step must shrink: " << step;
  FDET_CHECK(min_size > 0);

  PyramidPlan plan;
  double factor = 1.0;
  for (int index = 0;; ++index, factor *= step) {
    const int w = static_cast<int>(std::lround(width / factor));
    const int h = static_cast<int>(std::lround(height / factor));
    if (w < min_size || h < min_size) {
      break;
    }
    plan.levels.push_back({index, factor, w, h});
  }
  FDET_CHECK(!plan.levels.empty())
      << "frame " << width << "x" << height << " smaller than window";
  return plan;
}

ImageF32 resize_bilinear(const ImageF32& input, int width, int height) {
  FDET_CHECK(width > 0 && height > 0);
  ImageF32 output(width, height);
  const BilinearSampler<float> sampler(input);
  const float sx = static_cast<float>(input.width()) / static_cast<float>(width);
  const float sy =
      static_cast<float>(input.height()) / static_cast<float>(height);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      // Sample at the center of the destination pixel mapped to source.
      output(x, y) = sampler.sample((static_cast<float>(x) + 0.5f) * sx,
                                    (static_cast<float>(y) + 0.5f) * sy);
    }
  }
  return output;
}

std::vector<ImageF32> build_pyramid_cpu(const ImageU8& frame,
                                        const PyramidPlan& plan) {
  std::vector<ImageF32> levels;
  levels.reserve(plan.levels.size());
  const ImageF32 base = frame.cast<float>();
  for (const PyramidLevel& level : plan.levels) {
    if (level.factor == 1.0) {
      levels.push_back(base);
      continue;
    }
    const ImageF32 filtered =
        binomial_blur(base, antialias_radius(level.factor));
    levels.push_back(resize_bilinear(filtered, level.width, level.height));
  }
  return levels;
}

}  // namespace fdet::img
