#include "img/image.h"

#include <algorithm>

namespace fdet::img {

std::int64_t intersection_area(const Rect& a, const Rect& b) {
  const int x0 = std::max(a.x, b.x);
  const int y0 = std::max(a.y, b.y);
  const int x1 = std::min(a.right(), b.right());
  const int y1 = std::min(a.bottom(), b.bottom());
  if (x1 <= x0 || y1 <= y0) {
    return 0;
  }
  return static_cast<std::int64_t>(x1 - x0) * static_cast<std::int64_t>(y1 - y0);
}

std::int64_t union_area(const Rect& a, const Rect& b) {
  return a.area() + b.area() - intersection_area(a, b);
}

}  // namespace fdet::img
