#include "img/draw.h"

#include <algorithm>

namespace fdet::img {
namespace {

void hline(ImageU8& image, int x0, int x1, int y, std::uint8_t value) {
  if (y < 0 || y >= image.height()) {
    return;
  }
  x0 = std::max(x0, 0);
  x1 = std::min(x1, image.width());
  for (int x = x0; x < x1; ++x) {
    image(x, y) = value;
  }
}

void vline(ImageU8& image, int x, int y0, int y1, std::uint8_t value) {
  if (x < 0 || x >= image.width()) {
    return;
  }
  y0 = std::max(y0, 0);
  y1 = std::min(y1, image.height());
  for (int y = y0; y < y1; ++y) {
    image(x, y) = value;
  }
}

}  // namespace

void draw_rect(ImageU8& image, const Rect& rect, std::uint8_t value) {
  draw_rect(image, rect, value, 1);
}

void draw_rect(ImageU8& image, const Rect& rect, std::uint8_t value,
               int thickness) {
  for (int t = 0; t < thickness; ++t) {
    hline(image, rect.x + t, rect.right() - t, rect.y + t, value);
    hline(image, rect.x + t, rect.right() - t, rect.bottom() - 1 - t, value);
    vline(image, rect.x + t, rect.y + t, rect.bottom() - t, value);
    vline(image, rect.right() - 1 - t, rect.y + t, rect.bottom() - t, value);
  }
}

}  // namespace fdet::img
