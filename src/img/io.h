// Minimal binary PGM/PPM image I/O for examples and debugging output
// (the reproduction's stand-in for the paper's CUDA-OpenGL display path).
#pragma once

#include <string>

#include "img/image.h"

namespace fdet::img {

/// Writes an 8-bit grayscale image as binary PGM (P5).
void write_pgm(const std::string& path, const ImageU8& image);

/// Reads a binary PGM (P5) image; throws core::CheckError on parse errors.
ImageU8 read_pgm(const std::string& path);

/// Writes an RGB triplet of planes as binary PPM (P6).
void write_ppm(const std::string& path, const ImageU8& r, const ImageU8& g,
               const ImageU8& b);

}  // namespace fdet::img
