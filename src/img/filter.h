// Anti-alias filtering for the scaling stage (paper Sec. III-A: "The
// filtering stage ... is necessary to avoid aliasing effects produced
// during the scaling stage").
//
// A separable binomial kernel approximates the Gaussian; the radius is
// chosen from the downscale factor so the cutoff tracks the new Nyquist
// rate.
#pragma once

#include "img/image.h"

namespace fdet::img {

/// Applies a separable binomial low-pass of the given radius (kernel width
/// 2*radius+1; radius 0 = identity). Edge handling is clamp-to-edge.
ImageF32 binomial_blur(const ImageF32& input, int radius);

/// Radius that suppresses frequencies folded by downscaling with `factor`
/// (>1 shrinks). Returns 0 when factor <= 1.
int antialias_radius(double factor);

}  // namespace fdet::img
