// NV12 frame layout — the output format of the (mock) hardware H.264
// decoder. NV12 stores a full-resolution luma plane followed by a
// half-resolution interleaved CbCr plane; the detection pipeline consumes
// only the luma plane (paper Sec. V: "it is enough to consider only the
// initial array of luminance components").
#pragma once

#include <cstdint>
#include <vector>

#include "img/image.h"

namespace fdet::img {

class Nv12Frame {
 public:
  Nv12Frame() = default;

  /// Allocates a zeroed frame. Dimensions must be positive and even
  /// (4:2:0 sampling); throws core::CheckError naming the offending
  /// geometry otherwise.
  Nv12Frame(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }

  /// Full-resolution luminance plane (the detector's input).
  const ImageU8& luma() const { return luma_; }
  ImageU8& luma() { return luma_; }

  /// Interleaved CbCr at half resolution: chroma()(2x, y) = Cb, (2x+1, y) = Cr.
  const ImageU8& chroma() const { return chroma_; }
  ImageU8& chroma() { return chroma_; }

  /// Converts a grayscale image (luma = gray, neutral chroma).
  static Nv12Frame from_gray(const ImageU8& gray);

  /// Adopts already-filled planes. The luma plane fixes the frame geometry
  /// (positive, even — same rules as the allocating constructor); the
  /// chroma plane must be exactly luma-width x luma-height/2 (interleaved
  /// CbCr halves rows, not columns). Throws core::CheckError naming the
  /// mismatch otherwise — a decoder bug or hostile container cannot
  /// produce a frame whose planes disagree with its geometry.
  static Nv12Frame from_planes(ImageU8 luma, ImageU8 chroma);

  /// Expands to an RGB triplet of planes using BT.601 (used by the display
  /// stage and the examples that write PPM files).
  void to_rgb(ImageU8& r, ImageU8& g, ImageU8& b) const;

 private:
  int width_ = 0;
  int height_ = 0;
  ImageU8 luma_;
  ImageU8 chroma_;
};

}  // namespace fdet::img
