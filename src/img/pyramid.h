// Image-pyramid construction for fixed-size sliding-window detection.
//
// The paper keeps the detection window constant (24x24, the training
// normalization) and downscales the frame by successive factors instead of
// scaling the Haar features (Sec. III-A, Fig. 2) — this is what keeps the
// GPU thread count high for every face size. This header provides the
// host-side plan plus a reference (CPU) pyramid builder; the vGPU scaling
// kernel in fdet::detect follows the same plan.
#pragma once

#include <vector>

#include "img/image.h"

namespace fdet::img {

/// One pyramid level: the frame downscaled by `factor` (>= 1).
struct PyramidLevel {
  int index = 0;
  double factor = 1.0;  ///< original_size / level_size
  int width = 0;
  int height = 0;
};

struct PyramidPlan {
  std::vector<PyramidLevel> levels;
};

/// Computes the level geometry for a frame, halting once either dimension
/// drops below `min_size` (the detection window). `step` is the per-level
/// scale ratio (paper-style 1.25).
PyramidPlan plan_pyramid(int width, int height, double step, int min_size);

/// Reference CPU pyramid: anti-alias filter + bilinear resample per level.
/// Level 0 is the unfiltered input converted to float.
std::vector<ImageF32> build_pyramid_cpu(const ImageU8& frame,
                                        const PyramidPlan& plan);

/// Bilinear downscale of `input` to exactly (width, height).
ImageF32 resize_bilinear(const ImageF32& input, int width, int height);

}  // namespace fdet::img
