// Dense row-major single-channel image container.
//
// The detection pipeline works on three pixel types: std::uint8_t (decoded
// luma), float (filtered/scaled planes) and std::int64_t (integral images —
// wide enough for the second-order sums a squared-integral variant needs).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/check.h"

namespace fdet::img {

template <typename T>
class Image {
 public:
  Image() = default;

  Image(int width, int height, T fill_value = T{})
      : width_(width), height_(height),
        pixels_(checked_size(width, height), fill_value) {}

  int width() const { return width_; }
  int height() const { return height_; }
  std::size_t size() const { return pixels_.size(); }
  bool empty() const { return pixels_.empty(); }

  T& at(int x, int y) {
    FDET_CHECK(contains(x, y)) << "(" << x << "," << y << ") outside "
                               << width_ << "x" << height_;
    return pixels_[index(x, y)];
  }
  const T& at(int x, int y) const {
    FDET_CHECK(contains(x, y)) << "(" << x << "," << y << ") outside "
                               << width_ << "x" << height_;
    return pixels_[index(x, y)];
  }

  /// Unchecked access for hot loops; callers own the bounds reasoning.
  T& operator()(int x, int y) { return pixels_[index(x, y)]; }
  const T& operator()(int x, int y) const { return pixels_[index(x, y)]; }

  bool contains(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  std::span<T> row(int y) {
    FDET_CHECK(y >= 0 && y < height_);
    return {pixels_.data() + index(0, y), static_cast<std::size_t>(width_)};
  }
  std::span<const T> row(int y) const {
    FDET_CHECK(y >= 0 && y < height_);
    return {pixels_.data() + index(0, y), static_cast<std::size_t>(width_)};
  }

  std::span<T> pixels() { return pixels_; }
  std::span<const T> pixels() const { return pixels_; }
  T* data() { return pixels_.data(); }
  const T* data() const { return pixels_.data(); }

  void fill(T value) { pixels_.assign(pixels_.size(), value); }

  /// Element-wise conversion to another pixel type.
  template <typename U>
  Image<U> cast() const {
    Image<U> out(width_, height_);
    for (std::size_t i = 0; i < pixels_.size(); ++i) {
      out.pixels()[i] = static_cast<U>(pixels_[i]);
    }
    return out;
  }

  bool operator==(const Image&) const = default;

 private:
  static std::size_t checked_size(int width, int height) {
    FDET_CHECK(width > 0 && height > 0)
        << "image dimensions " << width << "x" << height;
    return static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
  }

  std::size_t index(int x, int y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<T> pixels_;
};

using ImageU8 = Image<std::uint8_t>;
using ImageF32 = Image<float>;
using ImageI32 = Image<std::int32_t>;
using ImageI64 = Image<std::int64_t>;

/// Axis-aligned rectangle in pixel coordinates ((x,y) top-left, inclusive-
/// exclusive extent). Used for detections, ground truth and drawing.
struct Rect {
  int x = 0;
  int y = 0;
  int w = 0;
  int h = 0;

  std::int64_t area() const {
    return static_cast<std::int64_t>(w) * static_cast<std::int64_t>(h);
  }
  int right() const { return x + w; }
  int bottom() const { return y + h; }
  bool operator==(const Rect&) const = default;
};

/// Intersection area of two rectangles (0 when disjoint).
std::int64_t intersection_area(const Rect& a, const Rect& b);

/// Union area (inclusion–exclusion).
std::int64_t union_area(const Rect& a, const Rect& b);

}  // namespace fdet::img
