#include "img/filter.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/check.h"

namespace fdet::img {
namespace {

/// Binomial coefficients row 2r normalized to 1 — the classic Gaussian
/// approximation with sigma ~ sqrt(r/2).
std::vector<float> binomial_kernel(int radius) {
  std::vector<double> row{1.0};
  for (int i = 0; i < 2 * radius; ++i) {
    std::vector<double> next(row.size() + 1, 0.0);
    for (std::size_t j = 0; j < row.size(); ++j) {
      next[j] += row[j] * 0.5;
      next[j + 1] += row[j] * 0.5;
    }
    row = std::move(next);
  }
  return {row.begin(), row.end()};
}

}  // namespace

int antialias_radius(double factor) {
  if (factor <= 1.0) {
    return 0;
  }
  // One tap of support per halving of resolution, minimum 1.
  return std::max(1, static_cast<int>(std::lround(factor - 1.0)));
}

ImageF32 binomial_blur(const ImageF32& input, int radius) {
  FDET_CHECK(radius >= 0);
  if (radius == 0) {
    return input;
  }
  const std::vector<float> kernel = binomial_kernel(radius);
  const int w = input.width();
  const int h = input.height();

  ImageF32 horizontal(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      float acc = 0.0f;
      for (int k = -radius; k <= radius; ++k) {
        const int sx = std::clamp(x + k, 0, w - 1);
        acc += kernel[static_cast<std::size_t>(k + radius)] * input(sx, y);
      }
      horizontal(x, y) = acc;
    }
  }

  ImageF32 output(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      float acc = 0.0f;
      for (int k = -radius; k <= radius; ++k) {
        const int sy = std::clamp(y + k, 0, h - 1);
        acc += kernel[static_cast<std::size_t>(k + radius)] * horizontal(x, sy);
      }
      output(x, y) = acc;
    }
  }
  return output;
}

}  // namespace fdet::img
