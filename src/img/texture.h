// Texture-unit emulation: floating-point addressed fetches with bilinear
// interpolation and clamp-to-edge addressing, matching the tex2D semantics
// the paper's scaling stage relies on (Sec. III-A).
#pragma once

#include <algorithm>
#include <cmath>

#include "img/image.h"

namespace fdet::img {

/// Read-only bilinear sampler over a single-channel image.
template <typename T>
class BilinearSampler {
 public:
  explicit BilinearSampler(const Image<T>& image) : image_(&image) {}

  /// Samples at continuous coordinates (texel centers at integer+0.5, as in
  /// CUDA's non-normalized texture addressing), clamped to the edge.
  float sample(float x, float y) const {
    const Image<T>& im = *image_;
    // Shift so that (0.5, 0.5) addresses the center of pixel (0, 0).
    const float fx = x - 0.5f;
    const float fy = y - 0.5f;
    const int x0 = static_cast<int>(std::floor(fx));
    const int y0 = static_cast<int>(std::floor(fy));
    const float ax = fx - static_cast<float>(x0);
    const float ay = fy - static_cast<float>(y0);

    const auto texel = [&im](int px, int py) -> float {
      px = std::clamp(px, 0, im.width() - 1);
      py = std::clamp(py, 0, im.height() - 1);
      return static_cast<float>(im(px, py));
    };

    const float top = texel(x0, y0) * (1.0f - ax) + texel(x0 + 1, y0) * ax;
    const float bottom =
        texel(x0, y0 + 1) * (1.0f - ax) + texel(x0 + 1, y0 + 1) * ax;
    return top * (1.0f - ay) + bottom * ay;
  }

 private:
  const Image<T>* image_;
};

}  // namespace fdet::img
