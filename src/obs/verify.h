// Publishes kernel-verification verdicts (vgpu/checker.h) as metrics.
//
// One CheckReport — a single launch run under a CheckScope — becomes a
// `vgpu.check.*` metric family labelled by kernel name, so verification
// results travel through the same --metrics-out files, fdet_report tables
// and CI gates as the performance numbers:
//
//   vgpu.check.clean{kernel=K}          gauge, 1 when no hazards
//   vgpu.check.hazards{kernel=K,kind=}  counter per hazard kind (includes
//                                       kind=suppressed beyond the cap)
//   vgpu.check.shared_accesses{kernel=K}    attributed accesses checked
//   vgpu.check.unattributed_shared{kernel=K} legacy shared_access() counts
//   vgpu.check.carves{kernel=K}         SharedMem carves checked
//   vgpu.check.global_ops{kernel=K}     global ops bounds-checked
#pragma once

#include "obs/metrics.h"
#include "vgpu/checker.h"

namespace fdet::obs {

/// Publishes one launch's verification verdict. `base` labels are
/// prepended to every metric (the kernel label is always appended).
void publish_check_report(Registry& registry,
                          const vgpu::CheckReport& report,
                          const Labels& base = {});

/// Convenience: publishes every report a checker accumulated.
void publish_check_reports(Registry& registry,
                           const std::vector<vgpu::CheckReport>& reports,
                           const Labels& base = {});

}  // namespace fdet::obs
