#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <functional>
#include <sstream>

#include "core/check.h"
#include "core/rng.h"
#include "obs/json.h"

namespace fdet::obs {

namespace {

std::atomic<TraceSession*> g_current{nullptr};

thread_local ScopedTraceContext* g_context_top = nullptr;

std::uint64_t nonzero(std::uint64_t id) { return id == 0 ? 1 : id; }

void attach_context(TraceEvent& event, const TraceContext& context) {
  if (!context.valid()) {
    return;
  }
  event.str_args.emplace_back("trace_id", hex_id(context.trace_id));
  event.str_args.emplace_back("span_id", hex_id(context.span_id));
  if (context.parent_span_id != 0) {
    event.str_args.emplace_back("parent_span_id",
                                hex_id(context.parent_span_id));
  }
}

TraceEvent metadata(const char* name, int pid, int tid, std::string value) {
  TraceEvent event;
  event.name = name;
  event.phase = 'M';
  event.pid = pid;
  event.tid = tid;
  event.str_args.emplace_back("name", std::move(value));
  return event;
}

TraceEvent counter(const char* track, int pid, double ts_us, const char* key,
                   double value) {
  TraceEvent event;
  event.name = track;
  event.phase = 'C';
  event.pid = pid;
  event.ts_us = ts_us;
  event.num_args.emplace_back(key, value);
  return event;
}

/// Emits one counter event per change point of a step function given as
/// (time, delta) pairs.
void emit_step_counter(std::vector<TraceEvent>& out,
                       std::vector<std::pair<double, double>> deltas, int pid,
                       const char* track, const char* key) {
  std::sort(deltas.begin(), deltas.end());
  double value = 0.0;
  for (std::size_t i = 0; i < deltas.size();) {
    const double t = deltas[i].first;
    while (i < deltas.size() && deltas[i].first == t) {
      value += deltas[i].second;
      ++i;
    }
    out.push_back(counter(track, pid, t * 1e6, key, value));
  }
}

}  // namespace

TraceContext make_frame_context(std::uint64_t seed, int frame) {
  TraceContext context;
  context.trace_id = nonzero(
      core::hash_combine(seed, static_cast<std::uint64_t>(frame) + 1));
  context.span_id = nonzero(core::hash_combine(context.trace_id, 0));
  context.parent_span_id = 0;
  return context;
}

TraceContext child_context(const TraceContext& parent,
                           const std::string& name) {
  TraceContext context;
  context.trace_id = parent.trace_id;
  context.parent_span_id = parent.span_id;
  context.span_id = nonzero(core::hash_combine(
      parent.span_id, std::hash<std::string>{}(name)));
  return context;
}

std::string hex_id(std::uint64_t id) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[id & 0xf];
    id >>= 4;
  }
  return out;
}

ScopedTraceContext::ScopedTraceContext(TraceContext context)
    : context_(context), prev_(g_context_top) {
  g_context_top = this;
}

ScopedTraceContext::~ScopedTraceContext() { g_context_top = prev_; }

const TraceContext* current_trace_context() {
  return g_context_top == nullptr ? nullptr : &g_context_top->context();
}

std::string chrome_trace_json(
    const std::vector<TraceEvent>& events,
    const std::vector<std::pair<std::string, std::string>>& root_extras) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) {
      out << ",\n";
    }
    first = false;
    out << "{\"name\":\"" << json::escape(event.name) << "\",\"ph\":\""
        << event.phase << "\",\"pid\":" << event.pid
        << ",\"tid\":" << event.tid;
    if (event.phase != 'M') {
      out << ",\"ts\":" << json::number(event.ts_us);
    }
    if (event.phase == 'X') {
      out << ",\"dur\":" << json::number(event.dur_us);
    }
    if (event.phase == 'i') {
      out << ",\"s\":\"t\"";
    }
    if (!event.num_args.empty() || !event.str_args.empty()) {
      out << ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : event.num_args) {
        if (!first_arg) out << ",";
        first_arg = false;
        out << "\"" << json::escape(key) << "\":" << json::number(value);
      }
      for (const auto& [key, value] : event.str_args) {
        if (!first_arg) out << ",";
        first_arg = false;
        out << "\"" << json::escape(key) << "\":\"" << json::escape(value)
            << "\"";
      }
      out << "}";
    }
    out << "}";
  }
  out << "]";
  for (const auto& [key, raw_json] : root_extras) {
    out << ",\"" << json::escape(key) << "\":" << raw_json;
  }
  out << "}";
  return out.str();
}

std::vector<TraceEvent> timeline_trace_events(const vgpu::Timeline& timeline,
                                              int pid,
                                              const std::string& label) {
  std::vector<TraceEvent> events;
  events.push_back(metadata("process_name", pid, 0, "vgpu:" + label));

  // Stream tracks: one complete event per launch, annotated with the
  // per-launch profiler statistics.
  for (const auto& [stream, indices] : timeline.records_by_stream()) {
    events.push_back(metadata("thread_name", pid, stream,
                              "stream " + std::to_string(stream)));
    for (const std::size_t i : indices) {
      const vgpu::LaunchRecord& record = timeline.records[i];
      TraceEvent event;
      event.name = record.name;
      event.phase = 'X';
      event.pid = pid;
      event.tid = stream;
      event.ts_us = record.start_s * 1e6;
      event.dur_us = record.duration_s() * 1e6;
      event.num_args.emplace_back("blocks",
                                  static_cast<double>(record.blocks));
      event.num_args.emplace_back("occupancy", record.occupancy.ratio);
      event.num_args.emplace_back("branch_efficiency",
                                  record.counters.branch_efficiency());
      event.num_args.emplace_back("simd_efficiency",
                                  record.counters.simd_efficiency());
      event.num_args.emplace_back(
          "dram_read_gbps",
          record.counters.dram_read_throughput(record.duration_s()) / 1e9);
      events.push_back(std::move(event));
    }
  }

  // SM tracks: merged busy spans, named after the launch they served.
  for (std::size_t sm = 0; sm < timeline.sm_spans.size(); ++sm) {
    const auto& spans = timeline.sm_spans[sm];
    if (spans.empty()) {
      continue;
    }
    const int tid = kSmTrackBase + static_cast<int>(sm);
    events.push_back(
        metadata("thread_name", pid, tid, "sm " + std::to_string(sm)));
    for (const vgpu::SmSpan& span : spans) {
      TraceEvent event;
      event.name =
          timeline.records[static_cast<std::size_t>(span.launch_index)].name;
      event.phase = 'X';
      event.pid = pid;
      event.tid = tid;
      event.ts_us = span.start_s * 1e6;
      event.dur_us = (span.end_s - span.start_s) * 1e6;
      events.push_back(std::move(event));
    }
  }

  // Counter tracks: SMs busy and resident warps over time — the
  // utilization picture behind the paper's serial-vs-concurrent contrast.
  std::vector<std::pair<double, double>> sm_deltas;
  for (const auto& spans : timeline.sm_spans) {
    for (const vgpu::SmSpan& span : spans) {
      sm_deltas.emplace_back(span.start_s, 1.0);
      sm_deltas.emplace_back(span.end_s, -1.0);
    }
  }
  emit_step_counter(events, std::move(sm_deltas), pid, "busy_sms", "sms");

  std::vector<std::pair<double, double>> warp_deltas;
  for (const vgpu::LaunchRecord& record : timeline.records) {
    const double warps = static_cast<double>(record.occupancy.resident_warps);
    warp_deltas.emplace_back(record.start_s, warps);
    warp_deltas.emplace_back(record.end_s, -warps);
  }
  emit_step_counter(events, std::move(warp_deltas), pid, "resident_warps",
                    "warps");
  return events;
}

TraceSession::TraceSession() : epoch_(std::chrono::steady_clock::now()) {
  events_.push_back(metadata("process_name", 0, 0, "host"));
}

TraceSession::~TraceSession() { uninstall(); }

double TraceSession::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceSession::Span::Span(Span&& other) noexcept
    : session_(other.session_), token_(other.token_) {
  other.session_ = nullptr;
}

TraceSession::Span::~Span() {
  if (session_ != nullptr) {
    session_->end_span(token_);
  }
}

TraceSession::Span TraceSession::span(std::string name) {
  OpenSpan open;
  open.start_us = now_us();
  if (const TraceContext* ambient = current_trace_context()) {
    open.context = child_context(*ambient, name);
  }
  open.name = std::move(name);
  std::lock_guard lock(mutex_);
  const std::uint64_t token = next_span_token_++;
  // Distinguish same-named sibling spans (e.g. per-frame stage spans
  // under one ambient context) by folding the token into the span id.
  if (open.context.valid()) {
    open.context.span_id =
        nonzero(core::hash_combine(open.context.span_id, token));
  }
  open_spans_.emplace(token, std::move(open));
  return Span(this, token);
}

void TraceSession::end_span(std::uint64_t token) {
  std::lock_guard lock(mutex_);
  const auto it = open_spans_.find(token);
  if (it == open_spans_.end()) {
    return;
  }
  TraceEvent event;
  event.name = it->second.name;
  event.phase = 'X';
  event.ts_us = it->second.start_us;
  event.dur_us = now_us() - it->second.start_us;
  attach_context(event, it->second.context);
  open_spans_.erase(it);
  events_.push_back(std::move(event));
}

TraceEvent TraceSession::synthesize(const OpenSpan& open, double now) const {
  TraceEvent event;
  event.name = open.name;
  event.phase = 'X';
  event.ts_us = open.start_us;
  event.dur_us = now - open.start_us;
  attach_context(event, open.context);
  event.str_args.emplace_back("incomplete", "true");
  return event;
}

void TraceSession::instant(std::string name) {
  TraceEvent event;
  event.name = std::move(name);
  event.phase = 'i';
  event.ts_us = now_us();
  if (const TraceContext* ambient = current_trace_context()) {
    attach_context(event, *ambient);
  }
  add_event(std::move(event));
}

int TraceSession::add_timeline(const std::string& label,
                               const vgpu::Timeline& timeline) {
  int pid = 0;
  {
    std::lock_guard lock(mutex_);
    pid = next_pid_++;
  }
  std::vector<TraceEvent> events = timeline_trace_events(timeline, pid, label);
  std::lock_guard lock(mutex_);
  events_.insert(events_.end(), std::make_move_iterator(events.begin()),
                 std::make_move_iterator(events.end()));
  return pid;
}

void TraceSession::add_timeline(const std::string& label,
                                const vgpu::MultiDeviceTimeline& timeline) {
  for (std::size_t device = 0; device < timeline.devices.size(); ++device) {
    add_timeline(label + ":dev" + std::to_string(device),
                 timeline.devices[device]);
  }
}

void TraceSession::add_event(TraceEvent event) {
  std::lock_guard lock(mutex_);
  events_.push_back(std::move(event));
}

std::size_t TraceSession::event_count() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> TraceSession::events() const {
  const double now = now_us();
  std::lock_guard lock(mutex_);
  std::vector<TraceEvent> snapshot = events_;
  for (const auto& [token, open] : open_spans_) {
    snapshot.push_back(synthesize(open, now));
  }
  return snapshot;
}

std::string TraceSession::to_json() const { return chrome_trace_json(events()); }

void TraceSession::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  FDET_CHECK(out.good()) << "cannot write trace file '" << path << "'";
  out << to_json();
  FDET_CHECK(out.good()) << "error writing trace file '" << path << "'";
}

void TraceSession::install() { g_current.store(this); }

void TraceSession::uninstall() {
  TraceSession* expected = this;
  g_current.compare_exchange_strong(expected, nullptr);
}

TraceSession* TraceSession::current() { return g_current.load(); }

void publish_timeline(Registry& registry, const vgpu::Timeline& timeline,
                      const Labels& labels) {
  const vgpu::PerfCounters total = timeline.total_counters();
  registry.gauge("vgpu.makespan_ms", labels).set(timeline.makespan_s * 1e3);
  registry.gauge("vgpu.sm_utilization", labels).set(timeline.utilization());
  registry.gauge("vgpu.branch_efficiency", labels)
      .set(total.branch_efficiency());
  registry.gauge("vgpu.simd_efficiency", labels).set(total.simd_efficiency());
  registry.gauge("vgpu.dram_read_gbps", labels)
      .set(total.dram_read_throughput(timeline.makespan_s) / 1e9);
  registry.gauge("vgpu.sm_busy_s", labels).set(timeline.sm_busy_s);

  auto& launches = registry.counter("vgpu.kernel_launches", labels);
  auto& blocks = registry.counter("vgpu.blocks", labels);
  launches.add(static_cast<double>(timeline.records.size()));
  double block_total = 0.0;
  for (const vgpu::LaunchRecord& record : timeline.records) {
    block_total += static_cast<double>(record.blocks);
  }
  blocks.add(block_total);
  registry.counter("vgpu.global_read_bytes", labels)
      .add(static_cast<double>(total.global_read_bytes));
  registry.counter("vgpu.global_write_bytes", labels)
      .add(static_cast<double>(total.global_write_bytes));

  auto& durations = registry.histogram(
      "vgpu.kernel_duration_ms",
      {0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0},
      labels);
  for (const vgpu::LaunchRecord& record : timeline.records) {
    durations.observe(record.duration_s() * 1e3);
  }
}

void publish_timeline(Registry& registry,
                      const vgpu::MultiDeviceTimeline& timeline,
                      const Labels& labels) {
  registry.gauge("vgpu.multi_makespan_ms", labels)
      .set(timeline.makespan_s * 1e3);
  for (std::size_t device = 0; device < timeline.devices.size(); ++device) {
    Labels device_labels = labels;
    device_labels.emplace_back("device", std::to_string(device));
    publish_timeline(registry, timeline.devices[device], device_labels);
  }
}

}  // namespace fdet::obs
