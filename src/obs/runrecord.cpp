#include "obs/runrecord.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <utility>

#include "core/check.h"

namespace fdet::obs {

double median_of(std::vector<double> values) {
  FDET_CHECK(!values.empty()) << "median of empty sample set";
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  const double upper = values[mid];
  if (values.size() % 2 == 1) {
    return upper;
  }
  const double lower =
      *std::max_element(values.begin(), values.begin() + mid);
  return (lower + upper) / 2.0;
}

double mad_of(const std::vector<double>& values, double center) {
  FDET_CHECK(!values.empty()) << "MAD of empty sample set";
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (const double v : values) {
    deviations.push_back(std::fabs(v - center));
  }
  return median_of(std::move(deviations));
}

const MetricSeries* RunRecord::find(std::string_view name,
                                    const Labels& match_labels) const {
  const std::string label_key = format_labels(match_labels);
  for (const MetricSeries& series : metrics) {
    if (series.name == name && format_labels(series.labels) == label_key) {
      return &series;
    }
  }
  return nullptr;
}

namespace {

json::Value labels_to_json(const Labels& labels) {
  json::Value::Object members;
  for (const auto& [key, value] : labels) {
    members.emplace_back(key, json::Value::make_string(value));
  }
  return json::Value::make_object(std::move(members));
}

Labels labels_from_json(const json::Value& value) {
  Labels labels;
  for (const auto& [key, member] : value.as_object()) {
    labels.emplace_back(key, member.as_string());
  }
  return labels;
}

/// Numbers parse as themselves; `null` (how json::number serializes
/// non-finite values) parses back as NaN.
double number_or_nan(const json::Value& value) {
  return value.is_null() ? std::nan("") : value.as_number();
}

}  // namespace

json::Value RunRecord::to_json() const {
  json::Value::Array series_array;
  for (const MetricSeries& series : metrics) {
    json::Value::Object m;
    m.emplace_back("name", json::Value::make_string(series.name));
    m.emplace_back("kind", json::Value::make_string(series.kind));
    m.emplace_back("labels", labels_to_json(series.labels));
    json::Value::Array samples;
    for (const double sample : series.samples) {
      samples.push_back(json::Value::make_number(sample));
    }
    m.emplace_back("samples", json::Value::make_array(std::move(samples)));
    m.emplace_back("median", json::Value::make_number(series.median));
    m.emplace_back("mad", json::Value::make_number(series.mad));
    series_array.push_back(json::Value::make_object(std::move(m)));
  }
  json::Value::Object doc;
  doc.emplace_back("schema_version",
                   json::Value::make_number(schema_version));
  doc.emplace_back("artifact", json::Value::make_string(artifact));
  doc.emplace_back("variant", json::Value::make_string(variant));
  doc.emplace_back("repeats", json::Value::make_number(repeats));
  doc.emplace_back("labels", labels_to_json(labels));
  doc.emplace_back("metrics", json::Value::make_array(std::move(series_array)));
  return json::Value::make_object(std::move(doc));
}

std::string RunRecord::dump() const { return to_json().dump(); }

void RunRecord::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  FDET_CHECK(out.good()) << "cannot write run record '" << path << "'";
  out << dump() << "\n";
  FDET_CHECK(out.good()) << "error writing run record '" << path << "'";
}

RunRecord RunRecord::from_json(const json::Value& doc) {
  RunRecord record;
  record.schema_version = static_cast<int>(doc.at("schema_version").as_number());
  FDET_CHECK(record.schema_version == kRunRecordSchemaVersion)
      << "run record schema_version " << record.schema_version
      << " (this build reads version " << kRunRecordSchemaVersion << ")";
  record.artifact = doc.at("artifact").as_string();
  FDET_CHECK(!record.artifact.empty()) << "run record has an empty artifact";
  record.variant = doc.at("variant").as_string();
  record.repeats = static_cast<int>(doc.at("repeats").as_number());
  FDET_CHECK(record.repeats >= 1)
      << "run record claims " << record.repeats << " repeats";
  record.labels = labels_from_json(doc.at("labels"));
  for (const json::Value& entry : doc.at("metrics").as_array()) {
    MetricSeries series;
    series.name = entry.at("name").as_string();
    FDET_CHECK(!series.name.empty()) << "run record series without a name";
    series.kind = entry.at("kind").as_string();
    series.labels = labels_from_json(entry.at("labels"));
    for (const json::Value& sample : entry.at("samples").as_array()) {
      series.samples.push_back(number_or_nan(sample));
    }
    FDET_CHECK(!series.samples.empty())
        << "series '" << series.name << "' has no samples";
    series.median = number_or_nan(entry.at("median"));
    series.mad = number_or_nan(entry.at("mad"));
    record.metrics.push_back(std::move(series));
  }
  return record;
}

RunRecord RunRecord::parse(std::string_view text) {
  return from_json(json::parse(text));
}

RunRecord RunRecord::load_file(const std::string& path) {
  try {
    return from_json(json::parse_file(path));
  } catch (const core::CheckError& error) {
    // Parse/schema failures name the defect but not the file; re-raise
    // with the path so "which baseline was bad" is never a mystery.
    const std::string what = error.what();
    if (what.find(path) == std::string::npos) {
      FDET_CHECK(false) << "run record '" << path << "': " << what;
    }
    throw;
  }
}

RunRecord build_run_record(std::string artifact, std::string variant,
                           Labels labels,
                           const std::vector<const Registry*>& repeats) {
  FDET_CHECK(!repeats.empty()) << "run record needs at least one repeat";
  RunRecord record;
  record.artifact = std::move(artifact);
  record.variant = std::move(variant);
  record.labels = std::move(labels);
  record.repeats = static_cast<int>(repeats.size());

  // (name, formatted labels) -> series, accumulated in repeat order. The
  // map keeps the record sorted the same way Registry::samples() is.
  std::map<std::pair<std::string, std::string>, MetricSeries> series_map;
  const auto append = [&](const std::string& name, const std::string& kind,
                          const Labels& sample_labels, double value) {
    const auto key = std::make_pair(name, format_labels(sample_labels));
    MetricSeries& series = series_map[key];
    if (series.name.empty()) {
      series.name = name;
      series.kind = kind;
      series.labels = sample_labels;
    }
    FDET_CHECK(series.kind == kind)
        << "series '" << name << "' changed kind across repeats";
    series.samples.push_back(value);
  };
  for (const Registry* registry : repeats) {
    FDET_CHECK(registry != nullptr);
    for (const Registry::Sample& sample : registry->samples()) {
      if (sample.kind == "histogram") {
        append(sample.name + ".sum", "histogram_sum", sample.labels,
               sample.value);
        append(sample.name + ".count", "histogram_count", sample.labels,
               sample.count);
      } else {
        append(sample.name, sample.kind, sample.labels, sample.value);
      }
    }
  }

  for (auto& [key, series] : series_map) {
    std::vector<double> finite;
    for (const double v : series.samples) {
      if (std::isfinite(v)) {
        finite.push_back(v);
      }
    }
    if (finite.empty()) {
      series.median = std::nan("");
      series.mad = std::nan("");
    } else {
      series.median = median_of(finite);
      series.mad = mad_of(finite, series.median);
    }
    record.metrics.push_back(std::move(series));
  }
  return record;
}

std::string run_record_path(const std::string& artifact) {
  return "BENCH_" + artifact + ".json";
}

}  // namespace fdet::obs
