// Always-on flight recorder for the serving path.
//
// A fixed-size lock-free ring of compact, trivially-copyable events. The
// serving loop records every frame, stage, vgpu launch, and control-plane
// decision (retry, fault, breaker, ladder, shed, quarantine) into the
// ring unconditionally — the write path is a ticket fetch_add plus a
// word-wise seqlock publish, no allocation, no locks, bounded work — and
// the ring simply forgets events older than capacity.
//
// When an anomaly fires (deadline miss, quarantine, breaker-open,
// ladder-climb, or an injected fault), the service snapshots the last N
// virtual seconds of the ring and writes a Perfetto-loadable dump via
// core::atomic_write_file. The dump's root carries an "anomaly" header
// ({kind, frame, cause, trace_id}) and every event carries the causal
// TraceContext of the frame that produced it, so the span chain in the
// dump names the frame, the stage, and the cause (DESIGN.md §8).
//
// Timestamps are *virtual* serving time (the same clock the deadline is
// judged against), not wall-clock: dumps from two runs with the same
// seed are identical.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "obs/trace.h"

namespace fdet::obs {

enum class FlightEventKind : std::uint8_t {
  kFrame,         ///< one span per served/attempted frame (dur = latency)
  kStage,         ///< decode/detect/backoff span within a frame
  kLaunch,        ///< one vgpu kernel launch (virtual device time)
  kRetry,         ///< a retry decision (detail = stage, value = backoff ms)
  kFault,         ///< an injected fault fired (detail = fault kind)
  kBreaker,       ///< breaker state change (detail = stage:state)
  kLadder,        ///< ladder movement (detail = rung name, value = level)
  kDrop,          ///< frame shed (detail = why)
  kQuarantine,    ///< frame quarantined (detail = stage/class/message)
  kDeadlineMiss,  ///< frame blew the deadline (value = latency ms)
  kSlo,           ///< SLO engine signal (detail = degrade/recover, value = burn)
  kAnomaly,       ///< dump trigger marker (detail = anomaly name)
};
const char* flight_event_kind_name(FlightEventKind kind);

/// Anomaly classes that trigger a dump. kFaultInjected exists so chaos
/// runs can demand a causal dump for *every* injected fault, including
/// ones (luma corruption) that perturb no latency or control decision.
enum class Anomaly : std::uint8_t {
  kDeadlineMiss,
  kQuarantine,
  kBreakerOpen,
  kLadderClimb,
  kFaultInjected,
};
inline constexpr int kAnomalyCount = 5;
const char* anomaly_name(Anomaly anomaly);

/// Compact fixed-size event. Strings are truncating copies — names and
/// details are labels, not payloads.
struct FlightEvent {
  double ts_us = 0.0;   ///< virtual serving time
  double dur_us = 0.0;  ///< spans only (kFrame/kStage/kLaunch)
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  double value = 0.0;  ///< kind-specific scalar (latency, level, burn...)
  std::int32_t frame = -1;
  FlightEventKind kind = FlightEventKind::kFrame;
  char name[24] = {};
  char detail[56] = {};

  void set_name(const char* text);
  void set_detail(const char* text);
  /// Copies the context ids; pass current_trace_context() when ambient.
  void set_context(const TraceContext& context);
};
static_assert(std::is_trivially_copyable_v<FlightEvent>);

class FlightRecorder {
 public:
  /// Capacity is rounded up to a power of two; default fits several
  /// seconds of serving events (launches dominate at ~10²/frame).
  explicit FlightRecorder(std::size_t capacity = 8192);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;
  ~FlightRecorder();

  /// Wait-free writer: claims a ticket and publishes the event through a
  /// per-slot seqlock. Never blocks, never allocates.
  void record(const FlightEvent& event);

  /// Consistent snapshot in record order — torn slots (concurrently
  /// overwritten during the read) are skipped, so a snapshot holds at
  /// most capacity() and possibly fewer events.
  std::vector<FlightEvent> snapshot() const;
  /// Snapshot filtered to events whose end (ts + dur) falls within
  /// `window_us` of the newest event end.
  std::vector<FlightEvent> snapshot_window(double window_us) const;

  std::uint64_t recorded() const;  ///< total events ever recorded
  std::size_t capacity() const { return mask_ + 1; }

  /// Ambient recorder, mirroring TraceSession::install: at most one;
  /// emit() records there and is a no-op when none is installed.
  void install();
  void uninstall();
  static FlightRecorder* current();
  static void emit(const FlightEvent& event);

 private:
  static constexpr std::size_t kSlotWords =
      (sizeof(FlightEvent) + sizeof(std::uint64_t) - 1) /
      sizeof(std::uint64_t);

  struct Slot {
    /// Seqlock stamp: 0 empty, odd = write in progress for ticket
    /// (seq-1)/2, even = ticket (seq-2)/2 published.
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> words[kSlotWords];
  };

  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};
};

/// Anomaly header attached to a dump at the document root.
struct AnomalyInfo {
  Anomaly kind = Anomaly::kDeadlineMiss;
  int frame = -1;
  std::string cause;  ///< causal chain, e.g. "fault:launch -> retry-exhausted"
  std::uint64_t trace_id = 0;
};

/// Converts flight events to Chrome trace events: spans become 'X' on
/// per-category tracks (frames/stages/launches), decisions become 'i'
/// instants on the control track, all annotated with frame ids, causal
/// trace ids, and details.
std::vector<TraceEvent> flight_trace_events(
    const std::vector<FlightEvent>& events);

/// Perfetto-loadable dump document: trace events plus the root-level
/// "anomaly" header. Valid (empty traceEvents) even with no events.
std::string flight_dump_json(const std::vector<FlightEvent>& events,
                             const AnomalyInfo& anomaly);

/// Writes flight_dump_json via core::atomic_write_file (throws
/// core::ArtifactError on failure).
void write_flight_dump(const std::string& path,
                       const std::vector<FlightEvent>& events,
                       const AnomalyInfo& anomaly);

}  // namespace fdet::obs
