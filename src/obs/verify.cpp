#include "obs/verify.h"

namespace fdet::obs {
namespace {

Labels with_kernel(const Labels& base, const std::string& kernel) {
  Labels labels = base;
  labels.emplace_back("kernel", kernel);
  return labels;
}

}  // namespace

void publish_check_report(Registry& registry, const vgpu::CheckReport& report,
                          const Labels& base) {
  const Labels labels = with_kernel(base, report.kernel);
  registry.gauge("vgpu.check.clean", labels).set(report.clean() ? 1.0 : 0.0);
  registry.counter("vgpu.check.shared_accesses", labels)
      .add(static_cast<double>(report.shared_accesses_checked));
  registry.counter("vgpu.check.unattributed_shared", labels)
      .add(static_cast<double>(report.unattributed_shared_accesses));
  registry.counter("vgpu.check.carves", labels)
      .add(static_cast<double>(report.carves_checked));
  registry.counter("vgpu.check.global_ops", labels)
      .add(static_cast<double>(report.global_ops_checked));
  for (const vgpu::Hazard& hazard : report.hazards) {
    Labels hazard_labels = labels;
    hazard_labels.emplace_back("kind", vgpu::hazard_name(hazard.kind));
    registry.counter("vgpu.check.hazards", hazard_labels).increment();
  }
  if (report.suppressed_hazards > 0) {
    Labels hazard_labels = labels;
    hazard_labels.emplace_back("kind", "suppressed");
    registry.counter("vgpu.check.hazards", hazard_labels)
        .add(static_cast<double>(report.suppressed_hazards));
  }
}

void publish_check_reports(Registry& registry,
                           const std::vector<vgpu::CheckReport>& reports,
                           const Labels& base) {
  for (const vgpu::CheckReport& report : reports) {
    publish_check_report(registry, report, base);
  }
}

}  // namespace fdet::obs
