// Streaming SLO engine for the serving path.
//
// Consumes one end-to-end virtual latency per *served* frame and keeps:
//
//   - sliding-window latency percentiles (p50/p95/p99/p99.9) over
//     mergeable QuantileSketch slots (obs/sketch.h);
//   - deadline-miss ratio, lifetime and windowed;
//   - burn rates in the SRE sense: miss ratio over a window divided by
//     the miss budget. A fast window (default: 1 frame) reacts to the
//     current frame; a slow window (default: the full sketch window)
//     tracks sustained burn.
//
// observe_frame() returns an SloDecision the DegradationLadder consumes
// as its climb/recover signal (serve::DegradationLadder::apply). The
// default options reproduce the pre-SLO ladder dynamics bit-for-bit:
// fast_window_frames = 1 and degrade_burn such that a single miss burns
// the whole fast budget (degrade exactly on `latency > deadline`), and
// recovery fires on a recover_after-long streak of frames under
// recover_fraction * deadline, with the streak resetting on a miss, on
// an in-budget-but-close frame, and when recovery fires — the same state
// machine DegradationLadder::observe() implemented locally.
//
// Per-stage latency and queue depth feed lifetime sketches surfaced in
// SloSnapshot/publish() for the BENCH_serving_slo artifact.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/sketch.h"

namespace fdet::obs {

class Registry;

struct SloOptions {
  /// Per-frame latency budget in virtual ms. Must be > 0 before the first
  /// observe_frame().
  double deadline_ms = 0.0;
  /// SLO miss budget: the tolerated deadline-miss ratio. Burn rate 1.0
  /// means misses arrive exactly at budget.
  double miss_budget = 0.05;
  /// Slow-window length in frames (sketch window = this many frames).
  int window_frames = 240;
  /// Sketch slots covering the slow window; rotation cadence is
  /// window_frames / window_slots frames.
  int window_slots = 8;
  /// Fast burn window in frames. 1 = the current frame alone, which makes
  /// `degrade` fire exactly on a deadline miss (legacy ladder behavior).
  int fast_window_frames = 1;
  /// Degrade when fast burn rate >= this. With fast_window_frames = 1 any
  /// single miss yields burn 1/miss_budget >= 1, so the default threshold
  /// keeps miss == degrade.
  double degrade_burn = 1.0;
  /// Recovery: "comfortably in budget" = latency < recover_fraction *
  /// deadline_ms (mirror of serve::DegradeOptions::recover_fraction).
  double recover_fraction = 0.75;
  /// Consecutive comfortable frames per recover signal (mirror of
  /// serve::DegradeOptions::recover_after).
  int recover_after = 3;
  SketchOptions sketch;
};

/// Climb/recover signal for one served frame, plus the burn rates that
/// produced it (recorded in flight-recorder events for causality).
struct SloDecision {
  bool miss = false;     ///< this frame blew the deadline
  bool degrade = false;  ///< ladder should shed one more level
  bool recover = false;  ///< ladder may climb one level back
  double fast_burn = 0.0;
  double slow_burn = 0.0;
};

struct SloSnapshot {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double miss_ratio = 0.0;         ///< lifetime misses / frames
  double window_miss_ratio = 0.0;  ///< misses / frames over the slow window
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  std::uint64_t frames = 0;
  std::uint64_t misses = 0;
  double max_relative_error = 0.0;  ///< sketch quantile error bound
};

class SloEngine {
 public:
  explicit SloEngine(SloOptions options);

  /// One served frame's end-to-end virtual latency. Only served frames
  /// count toward the latency SLO (dropped/failed frames are accounted by
  /// their own serve.* counters).
  SloDecision observe_frame(double latency_ms);

  /// Per-stage virtual latency ("decode", "detect", "backoff", ...).
  void observe_stage(const std::string& stage, double latency_ms);
  /// Service queue depth sampled at frame arrival.
  void observe_queue_depth(double depth);

  /// Clears the recovery streak without touching the window statistics —
  /// called when a breaker forces a serial fallback, mirroring the
  /// pre-SLO `force_serial_fallback` streak reset.
  void reset_recovery();

  SloSnapshot snapshot() const;
  /// Stage names with recorded latency, sorted.
  std::vector<std::string> stages() const;
  /// Lifetime quantile for one stage; throws if the stage is unknown.
  double stage_quantile(const std::string& stage, double q) const;
  double queue_depth_quantile(double q) const;
  bool has_queue_depth() const { return !queue_depth_.empty(); }

  /// Publishes slo.* gauges into `registry` (see DESIGN.md §8 for the
  /// exported names).
  void publish(Registry& registry) const;

  const SloOptions& options() const { return options_; }

 private:
  double window_miss_ratio() const;
  double fast_miss_ratio() const;

  SloOptions options_;
  SlidingWindowSketch latency_window_;
  std::map<std::string, QuantileSketch> stage_latency_;
  QuantileSketch queue_depth_;

  /// Per-slot (frames, misses) aligned with latency_window_ rotation.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> slot_counts_;
  std::size_t slot_head_ = 0;
  int frames_in_slot_ = 0;
  int frames_per_slot_ = 1;

  /// Fast window: circular miss flags.
  std::vector<char> fast_ring_;
  std::size_t fast_head_ = 0;
  std::uint64_t fast_seen_ = 0;
  int fast_misses_ = 0;

  std::uint64_t frames_ = 0;
  std::uint64_t misses_ = 0;
  int good_streak_ = 0;
};

}  // namespace fdet::obs
