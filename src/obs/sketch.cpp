#include "obs/sketch.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/check.h"

namespace fdet::obs {

QuantileSketch::QuantileSketch(SketchOptions options)
    : options_(options),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  FDET_CHECK(options_.relative_error > 0.0 && options_.relative_error < 1.0)
      << "sketch relative_error must be in (0, 1), got "
      << options_.relative_error;
  FDET_CHECK(options_.min_value > 0.0)
      << "sketch min_value must be positive, got " << options_.min_value;
  FDET_CHECK(options_.max_buckets >= 2)
      << "sketch needs at least 2 buckets, got " << options_.max_buckets;
  gamma_ = (1.0 + options_.relative_error) / (1.0 - options_.relative_error);
  log_gamma_ = std::log(gamma_);
  buckets_.assign(static_cast<std::size_t>(options_.max_buckets), 0.0);
}

int QuantileSketch::bucket_index(double value) const {
  if (!(value > options_.min_value)) {
    return 0;  // zero bucket: non-positive, NaN, and tiny values
  }
  const double raw = std::ceil(std::log(value / options_.min_value) / log_gamma_);
  const int last = options_.max_buckets - 1;
  if (raw >= static_cast<double>(last)) {
    return last;  // out of covered range: clamp (error grows only here)
  }
  return std::max(1, static_cast<int>(raw));
}

double QuantileSketch::representative(int bucket) const {
  if (bucket <= 0) {
    return options_.min_value;
  }
  // Geometric midpoint of (min * gamma^(i-1), min * gamma^i]: at most a
  // factor sqrt(gamma) from any value in the bucket.
  return options_.min_value *
         std::exp((static_cast<double>(bucket) - 0.5) * log_gamma_);
}

double QuantileSketch::max_relative_error() const {
  return std::sqrt(gamma_) - 1.0;
}

void QuantileSketch::observe(double value, double count) {
  FDET_CHECK(count >= 0.0) << "sketch counts must be non-negative";
  if (count == 0.0) {
    return;
  }
  buckets_[static_cast<std::size_t>(bucket_index(value))] += count;
  count_ += count;
  sum_ += value * count;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void QuantileSketch::merge(const QuantileSketch& other) {
  FDET_CHECK(options_ == other.options_)
      << "cannot merge sketches with different options (relative_error "
      << options_.relative_error << " vs " << other.options_.relative_error
      << ", min_value " << options_.min_value << " vs "
      << other.options_.min_value << ", max_buckets " << options_.max_buckets
      << " vs " << other.options_.max_buckets << ")";
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double QuantileSketch::quantile(double q) const {
  FDET_CHECK(q >= 0.0 && q <= 1.0) << "quantile q must be in [0, 1], got " << q;
  FDET_CHECK(count_ > 0.0) << "quantile of an empty sketch";
  const double rank = q * count_;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] <= 0.0) {
      continue;
    }
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      return representative(static_cast<int>(i));
    }
  }
  // Floating accumulation can land a hair short of count_ at q=1.
  for (std::size_t i = buckets_.size(); i-- > 0;) {
    if (buckets_[i] > 0.0) {
      return representative(static_cast<int>(i));
    }
  }
  return options_.min_value;
}

double QuantileSketch::min_observed() const {
  FDET_CHECK(count_ > 0.0) << "min of an empty sketch";
  return min_;
}

double QuantileSketch::max_observed() const {
  FDET_CHECK(count_ > 0.0) << "max of an empty sketch";
  return max_;
}

void QuantileSketch::clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0.0);
  count_ = 0.0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

SlidingWindowSketch::SlidingWindowSketch(int slots, SketchOptions options) {
  FDET_CHECK(slots >= 1) << "sliding window needs at least 1 slot, got "
                         << slots;
  ring_.reserve(static_cast<std::size_t>(slots));
  for (int i = 0; i < slots; ++i) {
    ring_.emplace_back(options);
  }
}

void SlidingWindowSketch::observe(double value, double count) {
  ring_[head_].observe(value, count);
}

void SlidingWindowSketch::rotate() {
  head_ = (head_ + 1) % ring_.size();
  ring_[head_].clear();  // the evicted oldest slot becomes the new current
  ++rotations_;
}

QuantileSketch SlidingWindowSketch::merged() const {
  QuantileSketch out(ring_.front().options());
  for (const QuantileSketch& slot : ring_) {
    out.merge(slot);
  }
  return out;
}

double SlidingWindowSketch::quantile(double q) const {
  return merged().quantile(q);
}

double SlidingWindowSketch::count() const {
  double total = 0.0;
  for (const QuantileSketch& slot : ring_) {
    total += slot.count();
  }
  return total;
}

}  // namespace fdet::obs
