// Kernel profiler and performance attribution: the "why is it slow"
// half of the observability loop.
//
// A KernelProfiler subscribes to every vgpu kernel launch through the
// executor's ScopedKernelProfileHook seam and aggregates, per kernel
// *base name* (the per-scale `_s<N>` suffix stripped, so `cascade_s0`
// ... `cascade_s7` roll up into one `cascade` row):
//
//   - launch count and total service cycles,
//   - the stall taxonomy from the executor's service-cycle decomposition
//     (vgpu/counters.h): issue vs. memory stall, and within issue the
//     cycles burned on SIMD divergence and shared-memory bank-conflict
//     serialization; within stall the occupancy-limited share a fully
//     occupied SM would have hidden,
//   - achieved occupancy (cycle-weighted), branch/SIMD efficiency,
//     memory transactions, and a roofline classification (memory- vs
//     compute-bound by arithmetic intensity against the device ridge).
//
// Cycles are simultaneously attributed along two ambient axes captured at
// launch time:
//
//   stage   the innermost ProfileStageScope (detect::Pipeline installs
//           scale / integral / cascade / grouping around its launches);
//           launches outside any scope land in "(unattributed)"
//   frame   the innermost TraceContext's trace_id (obs/trace.h) — the
//           per-frame context the serving loop / bench harness installs;
//           launches outside any context land in "(no-frame)"
//
// Because every bucket sums the same LaunchCost::total_service_cycles,
// kernel totals, stage totals and frame totals each sum to the same
// grand total — the conservation property obs_profile_test asserts and
// `fdet_report profile show` surfaces as a coverage percentage.
//
// Snapshots persist as `PROFILE_<artifact>.json` (schema below, versioned
// and validated like obs/runrecord.h), and ProfileRecord::to_run_record
// projects the per-kernel / per-stage totals into a RunRecord so
// obs/compare.h can gate profile drift with the same direction-aware
// verdicts the bench records use (`fdet_report profile diff`).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"
#include "obs/runrecord.h"
#include "vgpu/device.h"
#include "vgpu/kernel.h"

namespace fdet::obs {

/// Bump when the on-disk layout changes; from_json rejects mismatches.
inline constexpr int kProfileSchemaVersion = 1;

/// Stage bucket for launches issued outside any ProfileStageScope.
inline constexpr const char* kUnattributedStage = "(unattributed)";
/// Frame bucket for launches issued outside any trace context.
inline constexpr const char* kNoFrame = "(no-frame)";

/// Strips the per-scale launch suffix: "cascade_s12" -> "cascade",
/// "scan2_s0" -> "scan2". Names without a `_s<digits>` tail pass through.
std::string kernel_base_name(std::string_view name);

/// Names the pipeline stage for cycle attribution on the current thread
/// (stack discipline — scopes nest, the innermost wins). detect::Pipeline
/// installs one per stage; tests and tools may install their own.
class ProfileStageScope {
 public:
  explicit ProfileStageScope(std::string stage);
  ~ProfileStageScope();
  ProfileStageScope(const ProfileStageScope&) = delete;
  ProfileStageScope& operator=(const ProfileStageScope&) = delete;

  /// Innermost installed stage name of this thread, or nullptr.
  static const std::string* current();

 private:
  std::string stage_;
  ProfileStageScope* prev_;
};

/// Aggregated profile of one kernel (by base name) across all launches.
struct KernelProfile {
  std::string name;
  std::uint64_t launches = 0;
  double total_cycles = 0.0;  ///< Σ LaunchCost::total_service_cycles

  // Stall taxonomy (service-cycle domain, see vgpu/counters.h):
  //   total = issue + stall
  //   divergence + bank_conflict <= issue
  //   occupancy_limited          <= stall
  double issue_cycles = 0.0;
  double stall_cycles = 0.0;
  double divergence_cycles = 0.0;
  double bank_conflict_cycles = 0.0;
  double occupancy_limited_cycles = 0.0;

  /// Σ occupancy.ratio × launch cycles; divide by total_cycles for the
  /// cycle-weighted achieved occupancy.
  double occupancy_cycles = 0.0;

  std::uint64_t bank_conflicts = 0;
  std::uint64_t global_transactions = 0;
  std::uint64_t arithmetic_ops = 0;
  std::uint64_t global_bytes = 0;
  std::uint64_t warp_branches = 0;
  std::uint64_t divergent_branches = 0;
  double lane_issue_cycles = 0.0;
  double warp_issue_cycles = 0.0;

  /// Cycle-weighted achieved occupancy in [0, 1]; 0 when no cycles.
  double achieved_occupancy() const {
    return total_cycles <= 0.0 ? 0.0 : occupancy_cycles / total_cycles;
  }
  /// Fraction of warp branches with a uniform outcome (1.0 when none).
  double branch_efficiency() const;
  /// Average fraction of lanes doing useful work (1.0 when degenerate).
  double simd_efficiency() const;
  /// Roofline arithmetic intensity in ops per global byte. A kernel with
  /// no global traffic is unboundedly compute-heavy (+inf); serialized
  /// records store ops and bytes instead of the ratio.
  double arithmetic_intensity() const;
  /// "memory" when arithmetic intensity sits below `ridge`, else
  /// "compute" (a kernel with no global traffic is compute-bound).
  const char* roofline_bound(double ridge) const;
};

/// Cycles attributed to one pipeline stage / one frame.
struct AttributionBucket {
  std::string name;
  std::uint64_t launches = 0;
  double cycles = 0.0;
};

/// One persisted profiler snapshot: `PROFILE_<artifact>.json`.
struct ProfileRecord {
  int schema_version = kProfileSchemaVersion;
  std::string artifact;             ///< bench artifact id ("fig5", ...)
  std::string variant = "default";  ///< configuration variant
  Labels labels;                    ///< run-level label set

  /// Device roofline ridge in ops per global byte: peak issue rate
  /// (ipc × 32 lanes) over peak global bandwidth (128 bytes per
  /// transaction-issue slot), both in cycles of the profiled device.
  double ridge_ops_per_byte = 0.0;

  std::uint64_t launches = 0;  ///< total launches observed
  double total_cycles = 0.0;   ///< Σ over all launches

  std::vector<KernelProfile> kernels;     ///< sorted by cycles, descending
  std::vector<AttributionBucket> stages;  ///< sorted by cycles, descending
  std::vector<AttributionBucket> frames;  ///< sorted by name (frame id)

  /// Kernel lookup by base name; nullptr when absent.
  const KernelProfile* find_kernel(std::string_view name) const;
  /// Stage lookup; nullptr when absent.
  const AttributionBucket* find_stage(std::string_view name) const;

  json::Value to_json() const;
  std::string dump() const;  ///< to_json().dump()
  /// Writes dump(); throws core::CheckError when the file cannot be
  /// written.
  void write_file(const std::string& path) const;

  /// Validating deserialization; throws core::CheckError on a missing or
  /// mistyped field or a schema_version mismatch.
  static ProfileRecord from_json(const json::Value& doc);
  static ProfileRecord parse(std::string_view text);
  static ProfileRecord load_file(const std::string& path);

  /// Projects the profile into a RunRecord (one single-sample series per
  /// quantity: profile.total_cycles, profile.kernel.* labeled kernel=N,
  /// profile.stage.cycles labeled stage=N) so obs::compare_runs can gate
  /// profile drift. Per-frame buckets are not projected — frame ids are
  /// seed-dependent and would churn the comparison identity.
  RunRecord to_run_record() const;
};

/// Collects launches into per-kernel / per-stage / per-frame aggregates.
/// Not thread-safe: install on the thread issuing the launches (the
/// executor's hook seam is thread-local anyway).
class KernelProfiler {
 public:
  /// Feeds one finished launch (the hook target). Reads the ambient
  /// ProfileStageScope and TraceContext for attribution.
  void on_launch(const vgpu::DeviceSpec& spec, const vgpu::LaunchCost& cost);

  std::uint64_t launches() const { return launches_; }
  double total_cycles() const { return total_cycles_; }

  /// Aggregates collected launches into a persistable record (sorted as
  /// documented on ProfileRecord). Callable repeatedly; collection
  /// continues afterwards.
  ProfileRecord snapshot(std::string artifact, std::string variant = "default",
                         Labels labels = {}) const;

  /// Discards everything collected so far.
  void reset();

 private:
  std::uint64_t launches_ = 0;
  double total_cycles_ = 0.0;
  double ridge_ops_per_byte_ = 0.0;
  std::vector<KernelProfile> kernels_;        // insertion order
  std::vector<AttributionBucket> stages_;     // insertion order
  std::vector<AttributionBucket> frames_;     // insertion order
};

/// RAII collection window: installs `profiler` as the thread's kernel
/// profile hook for the scope's lifetime. Nests like the underlying hook
/// (innermost profiler observes the launches).
class ScopedProfileCollection {
 public:
  explicit ScopedProfileCollection(KernelProfiler& profiler);

 private:
  vgpu::ScopedKernelProfileHook hook_;
};

/// Canonical on-disk name: `PROFILE_<artifact>.json`.
std::string profile_record_path(const std::string& artifact);

/// Paper-style text rendering of a profile (the detection-time breakdown
/// of `fdet_report profile show`): per-kernel cycle shares with the stall
/// taxonomy, per-stage shares, and the attribution-coverage line.
std::string render_profile_text(const ProfileRecord& record);

}  // namespace fdet::obs
