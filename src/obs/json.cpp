#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/check.h"

namespace fdet::obs::json {

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string number(double value) {
  if (!std::isfinite(value)) {
    // NaN/Inf are invalid JSON. `null` keeps the document parseable and
    // keeps the degeneracy visible (a silent 0 would read as "0 ms");
    // Value::parse and RunRecord::from_json map it back to NaN.
    return "null";
  }
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", value);
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

Value Value::make_bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::make_number(double n) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

Value Value::make_string(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::make_array(Array a) {
  Value v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(a);
  return v;
}

Value Value::make_object(Object o) {
  Value v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(o);
  return v;
}

bool Value::as_bool() const {
  FDET_CHECK(is_bool()) << "JSON value is not a bool";
  return bool_;
}

double Value::as_number() const {
  FDET_CHECK(is_number()) << "JSON value is not a number";
  return number_;
}

const std::string& Value::as_string() const {
  FDET_CHECK(is_string()) << "JSON value is not a string";
  return string_;
}

const Value::Array& Value::as_array() const {
  FDET_CHECK(is_array()) << "JSON value is not an array";
  return array_;
}

const Value::Object& Value::as_object() const {
  FDET_CHECK(is_object()) << "JSON value is not an object";
  return object_;
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) {
    return nullptr;
  }
  for (const auto& [name, value] : object_) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* found = find(key);
  FDET_CHECK(found != nullptr) << "missing JSON key '" << key << "'";
  return *found;
}

std::string Value::dump() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return bool_ ? "true" : "false";
    case Kind::kNumber:
      return number(number_);
    case Kind::kString: {
      std::string out;
      out += '"';
      out += escape(string_);
      out += '"';
      return out;
    }
    case Kind::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        out += array_[i].dump();
      }
      out += ']';
      return out;
    }
    case Kind::kObject: {
      std::string out = "{";
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        out += '"';
        out += escape(object_[i].first);
        out += "\":";
        out += object_[i].second.dump();
      }
      out += '}';
      return out;
    }
  }
  return "null";
}

namespace {

/// Recursive-descent parser over a string_view with an explicit cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value value = parse_value();
    skip_ws();
    FDET_CHECK(pos_ == text_.size())
        << "trailing JSON content at offset " << pos_;
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    FDET_CHECK(pos_ < text_.size()) << "unexpected end of JSON input";
    return text_[pos_];
  }

  void expect(char c) {
    FDET_CHECK(peek() == c) << "expected '" << c << "' at offset " << pos_;
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Value parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value::make_string(parse_string());
      case 't': return parse_literal("true", Value::make_bool(true));
      case 'f': return parse_literal("false", Value::make_bool(false));
      case 'n': return parse_literal("null", Value());
      default:  return parse_number();
    }
  }

  Value parse_literal(std::string_view word, Value value) {
    FDET_CHECK(text_.substr(pos_, word.size()) == word)
        << "malformed JSON literal at offset " << pos_;
    pos_ += word.size();
    return value;
  }

  Value parse_object() {
    expect('{');
    Value::Object members;
    if (!consume('}')) {
      do {
        std::string key = parse_string();
        expect(':');
        members.emplace_back(std::move(key), parse_value());
      } while (consume(','));
      expect('}');
    }
    return Value::make_object(std::move(members));
  }

  Value parse_array() {
    expect('[');
    Value::Array items;
    if (!consume(']')) {
      do {
        items.push_back(parse_value());
      } while (consume(','));
      expect(']');
    }
    return Value::make_array(std::move(items));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      FDET_CHECK(pos_ < text_.size()) << "unterminated JSON string";
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      FDET_CHECK(pos_ < text_.size()) << "unterminated JSON escape";
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':  out += '"'; break;
        case '\\': out += '\\'; break;
        case '/':  out += '/'; break;
        case 'b':  out += '\b'; break;
        case 'f':  out += '\f'; break;
        case 'n':  out += '\n'; break;
        case 'r':  out += '\r'; break;
        case 't':  out += '\t'; break;
        case 'u': {
          FDET_CHECK(pos_ + 4 <= text_.size()) << "truncated \\u escape";
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            unsigned digit = 0;
            if (h >= '0' && h <= '9') digit = static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') digit = static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') digit = static_cast<unsigned>(h - 'A' + 10);
            else FDET_CHECK(false) << "bad hex digit in \\u escape";
            code = code * 16 + digit;
          }
          // UTF-8 encode the code point (surrogate pairs not needed for
          // the subset this library emits).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          FDET_CHECK(false) << "bad JSON escape '\\" << esc << "'";
      }
    }
  }

  Value parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    FDET_CHECK(pos_ > start) << "malformed JSON value at offset " << start;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    FDET_CHECK(end == token.c_str() + token.size())
        << "malformed JSON number '" << token << "'";
    return Value::make_number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

Value parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FDET_CHECK(in.good()) << "cannot open JSON file '" << path << "'";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

}  // namespace fdet::obs::json
