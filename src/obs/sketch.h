// Mergeable streaming quantile sketches for the serving SLO engine.
//
// QuantileSketch is a DDSketch-style log-bucketed histogram: values land
// in geometric buckets (min_value * gamma^i), so any quantile estimate
// carries a bounded *relative* error regardless of the latency range —
// the property that makes p99.9 over a 0.1 ms..10 s span feasible in a
// few hundred counters. Sketches over the same SketchOptions merge by
// bucket-wise addition, which is associative and commutative: the order
// in which per-slot or per-stream sketches are combined cannot change
// the result (tested in obs_sketch_test). This is the integral-histogram
// trick of arXiv 1711.01919 applied to the time axis: per-bin prefix
// sums over a fixed bucket layout.
//
// SlidingWindowSketch keeps a ring of per-slot sketches and answers
// quantiles over the merged live slots: rotate() retires the oldest slot
// wholesale, so eviction is O(buckets) and never touches individual
// samples. The SLO engine rotates once per window_frames / slots frames.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fdet::obs {

struct SketchOptions {
  /// Target relative accuracy e: gamma = (1 + e) / (1 - e). The guaranteed
  /// bound on any quantile estimate is sqrt(gamma) - 1 (~e for small e);
  /// see QuantileSketch::max_relative_error().
  double relative_error = 0.01;
  /// Values at or below this collapse into the zero bucket and report as
  /// min_value; pick it below any latency the caller cares about.
  double min_value = 1e-3;
  /// Hard cap on log buckets; values beyond the covered range clamp into
  /// the last bucket (error grows only for those). 1024 buckets at e=0.01
  /// cover min_value * gamma^1024 ≈ 7.9e8 * min_value — with the default
  /// min_value, latencies from 1 µs up to ~13 virtual minutes.
  int max_buckets = 1024;

  bool operator==(const SketchOptions&) const = default;
};

/// Log-bucketed quantile sketch with bounded relative error. Mergeable
/// across instances built from identical SketchOptions.
class QuantileSketch {
 public:
  explicit QuantileSketch(SketchOptions options = {});

  /// Records `count` observations of `value` (count >= 0; negative values
  /// are clamped into the zero bucket — latencies are non-negative).
  void observe(double value, double count = 1.0);

  /// Bucket-wise addition; throws core::CheckError when `other` was built
  /// from different SketchOptions.
  void merge(const QuantileSketch& other);

  /// Quantile estimate for q in [0, 1]; q=0 is the smallest bucket with
  /// mass, q=1 the largest. Throws core::CheckError on an empty sketch.
  double quantile(double q) const;

  double count() const { return count_; }
  double sum() const { return sum_; }
  /// Exact extrema of the observed values (not bucket representatives).
  double min_observed() const;
  double max_observed() const;
  bool empty() const { return count_ <= 0.0; }
  void clear();

  const SketchOptions& options() const { return options_; }
  /// Guaranteed relative error bound of quantile(): sqrt(gamma) - 1.
  double max_relative_error() const;

  /// Internal layout, exposed for tests: bucket 0 is the zero bucket
  /// (values <= min_value), bucket i covers
  /// (min_value * gamma^(i-1), min_value * gamma^i].
  const std::vector<double>& buckets() const { return buckets_; }
  int bucket_index(double value) const;

 private:
  double representative(int bucket) const;

  SketchOptions options_;
  double gamma_ = 0.0;
  double log_gamma_ = 0.0;
  std::vector<double> buckets_;
  double count_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed number of sketch slots covering a sliding window; the caller
/// rotates on its own cadence (frames or seconds). Quantiles answer over
/// the merge of all live slots.
class SlidingWindowSketch {
 public:
  /// `slots` >= 1; each slot is one rotation period of history.
  SlidingWindowSketch(int slots, SketchOptions options = {});

  void observe(double value, double count = 1.0);
  /// Advances the window one slot: the oldest slot's mass is evicted and
  /// its storage becomes the new current slot.
  void rotate();

  /// Merge of all live slots (freshly built; O(slots * buckets)).
  QuantileSketch merged() const;
  /// Convenience: merged().quantile(q); throws on an empty window.
  double quantile(double q) const;
  double count() const;
  bool empty() const { return count() <= 0.0; }

  int slots() const { return static_cast<int>(ring_.size()); }
  std::uint64_t rotations() const { return rotations_; }

 private:
  std::vector<QuantileSketch> ring_;
  std::size_t head_ = 0;  ///< index of the current (newest) slot
  std::uint64_t rotations_ = 0;
};

}  // namespace fdet::obs
