#include "obs/compare.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "core/check.h"

namespace fdet::obs {

const char* verdict_name(Verdict verdict) {
  switch (verdict) {
    case Verdict::kImproved:  return "improved";
    case Verdict::kUnchanged: return "unchanged";
    case Verdict::kRegressed: return "regressed";
    case Verdict::kMissing:   return "missing";
    case Verdict::kNew:       return "new";
  }
  return "unknown";
}

namespace {

bool contains_any(std::string_view haystack,
                  std::initializer_list<const char*> needles) {
  for (const char* needle : needles) {
    if (haystack.find(needle) != std::string_view::npos) {
      return true;
    }
  }
  return false;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

int severity(Verdict verdict) {
  switch (verdict) {
    case Verdict::kRegressed: return 0;
    case Verdict::kMissing:   return 1;
    case Verdict::kImproved:  return 2;
    case Verdict::kNew:       return 3;
    case Verdict::kUnchanged: return 4;
  }
  return 5;
}

}  // namespace

Direction metric_direction(std::string_view name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  // Cycle and serialization counts gate downward even when the name also
  // mentions an occupancy ("occupancy_limited_cycles"), so they come
  // before the higher-is-better keywords.
  if (contains_any(lower, {"cycles", "conflict", "transaction"})) {
    return Direction::kLowerIsBetter;
  }
  // Higher-is-better keywords before the generic lower-is-better bucket:
  // "dram_read_gbps" must not fall in via some other substring.
  if (contains_any(lower, {"efficiency", "utilization", "throughput", "gbps",
                           "speedup", "fps", "tpr", "advantage",
                           "occupancy"})) {
    return Direction::kHigherIsBetter;
  }
  if (contains_any(lower, {"_ms", "_seconds", "latency", "makespan",
                           "duration", "violations", "_time", "overhead",
                           "miss_ratio", "queue_depth", "burn"}) ||
      ends_with(lower, "_s") || ends_with(lower, "_s.sum")) {
    return Direction::kLowerIsBetter;
  }
  return Direction::kExact;
}

CompareReport compare_runs(const RunRecord& baseline, const RunRecord& current,
                           const CompareOptions& options) {
  FDET_CHECK(options.relative_threshold >= 0.0 && options.mad_multiplier >= 0.0)
      << "compare thresholds must be non-negative";
  const auto ignored = [&](const std::string& name) {
    for (const std::string& needle : options.ignore) {
      if (name.find(needle) != std::string::npos) {
        return true;
      }
    }
    return false;
  };

  CompareReport report;
  for (const MetricSeries& base : baseline.metrics) {
    if (ignored(base.name)) {
      continue;
    }
    MetricVerdict v;
    v.name = base.name;
    v.labels = base.labels;
    v.direction = metric_direction(base.name);
    v.baseline_median = base.median;

    const MetricSeries* cur = current.find(base.name, base.labels);
    if (cur == nullptr) {
      v.verdict = Verdict::kMissing;
      ++report.missing;
      report.verdicts.push_back(std::move(v));
      continue;
    }
    v.current_median = cur->median;

    const bool base_finite = std::isfinite(base.median);
    const bool cur_finite = std::isfinite(cur->median);
    if (!base_finite || !cur_finite) {
      // Both degenerate: nothing moved. One degenerate: a metric became
      // (or stopped being) computable — treat as a regression either way.
      v.verdict = (base_finite == cur_finite) ? Verdict::kUnchanged
                                              : Verdict::kRegressed;
    } else {
      const double delta = cur->median - base.median;
      v.relative_change =
          base.median == 0.0 ? 0.0 : delta / std::fabs(base.median);
      v.band = std::max(
          {options.relative_threshold * std::fabs(base.median),
           options.mad_multiplier * std::max(base.mad, cur->mad),
           options.absolute_floor});
      if (std::fabs(delta) <= v.band) {
        v.verdict = Verdict::kUnchanged;
      } else {
        switch (v.direction) {
          case Direction::kLowerIsBetter:
            v.verdict = delta < 0.0 ? Verdict::kImproved : Verdict::kRegressed;
            break;
          case Direction::kHigherIsBetter:
            v.verdict = delta > 0.0 ? Verdict::kImproved : Verdict::kRegressed;
            break;
          case Direction::kExact:
            v.verdict = Verdict::kRegressed;
            break;
        }
      }
    }
    switch (v.verdict) {
      case Verdict::kImproved:  ++report.improved; break;
      case Verdict::kUnchanged: ++report.unchanged; break;
      case Verdict::kRegressed: ++report.regressed; break;
      default: break;
    }
    report.verdicts.push_back(std::move(v));
  }

  for (const MetricSeries& cur : current.metrics) {
    if (ignored(cur.name) ||
        baseline.find(cur.name, cur.labels) != nullptr) {
      continue;
    }
    MetricVerdict v;
    v.name = cur.name;
    v.labels = cur.labels;
    v.verdict = Verdict::kNew;
    v.direction = metric_direction(cur.name);
    v.current_median = cur.median;
    ++report.added;
    report.verdicts.push_back(std::move(v));
  }

  std::stable_sort(report.verdicts.begin(), report.verdicts.end(),
                   [](const MetricVerdict& a, const MetricVerdict& b) {
                     if (severity(a.verdict) != severity(b.verdict)) {
                       return severity(a.verdict) < severity(b.verdict);
                     }
                     if (a.name != b.name) {
                       return a.name < b.name;
                     }
                     return format_labels(a.labels) < format_labels(b.labels);
                   });
  return report;
}

std::string describe(const MetricVerdict& v) {
  char buf[256];
  std::string id = v.name;
  const std::string labels = format_labels(v.labels);
  if (!labels.empty()) {
    id += "{" + labels + "}";
  }
  switch (v.verdict) {
    case Verdict::kMissing:
      std::snprintf(buf, sizeof buf, "%-9s  %s  (baseline %.6g)",
                    verdict_name(v.verdict), id.c_str(), v.baseline_median);
      break;
    case Verdict::kNew:
      std::snprintf(buf, sizeof buf, "%-9s  %s  (current %.6g)",
                    verdict_name(v.verdict), id.c_str(), v.current_median);
      break;
    default:
      std::snprintf(buf, sizeof buf,
                    "%-9s  %s  %.6g -> %.6g  (%+.1f%%, band %.3g)",
                    verdict_name(v.verdict), id.c_str(), v.baseline_median,
                    v.current_median, v.relative_change * 100.0, v.band);
  }
  return buf;
}

std::string render_text_report(const CompareReport& report,
                               bool include_unchanged) {
  std::ostringstream out;
  for (const MetricVerdict& v : report.verdicts) {
    if (!include_unchanged && v.verdict == Verdict::kUnchanged) {
      continue;
    }
    out << describe(v) << "\n";
  }
  out << "verdicts: " << report.regressed << " regressed, " << report.missing
      << " missing, " << report.improved << " improved, " << report.added
      << " new, " << report.unchanged << " unchanged — "
      << (report.ok() ? "OK" : "GATE FAILED") << "\n";
  return out.str();
}

}  // namespace fdet::obs
