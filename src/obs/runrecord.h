// Versioned benchmark run records: the persistence half of the
// observability loop.
//
// A RunRecord captures one invocation of a bench binary — the artifact
// it reproduces (fig5, table2, ...), the cascade/configuration variant,
// and, per metric series, the raw sample from every measurement repeat
// plus robust location/scale statistics (median and MAD). Records
// serialize through obs::json as `BENCH_<artifact>.json`; committed
// records at the repo root form the bench trajectory that
// obs::compare_runs and the `fdet_report` CLI gate new runs against.
//
// Schema (version 1):
//
//   {
//     "schema_version": 1,
//     "artifact": "fig5",
//     "variant": "default",
//     "repeats": 3,
//     "labels": {"host": "ci"},
//     "metrics": [
//       {"name": "vgpu.makespan_ms", "kind": "gauge",
//        "labels": {"mode": "concurrent"},
//        "samples": [4.01, 4.00, 4.02], "median": 4.01, "mad": 0.01},
//       ...
//     ]
//   }
//
// Histograms flatten into two scalar series, `<name>.sum` and
// `<name>.count` (kinds `histogram_sum` / `histogram_count`): run-to-run
// comparison needs robust scalars, not buckets — the full bucket layout
// stays available via --metrics-out. Non-finite samples serialize as
// `null` (see json::number) and parse back as NaN, so one degenerate
// repeat cannot make a record unreadable.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace fdet::obs {

/// Bump when the on-disk layout changes; from_json rejects mismatches.
inline constexpr int kRunRecordSchemaVersion = 1;

/// Median of `values` (copied: the selection is destructive). Ignores
/// nothing — callers filter non-finite values first if desired. FDET_CHECKs
/// non-empty input.
double median_of(std::vector<double> values);

/// Median absolute deviation around `center` — the robust scale estimate
/// used for the regression-gate noise band. FDET_CHECKs non-empty input.
double mad_of(const std::vector<double>& values, double center);

/// One metric series across all repeats of a run.
struct MetricSeries {
  std::string name;
  std::string kind;  ///< counter | gauge | histogram_sum | histogram_count
  Labels labels;
  std::vector<double> samples;  ///< one per repeat (repeat order)
  double median = 0.0;          ///< median_of(samples)
  double mad = 0.0;             ///< mad_of(samples, median)
};

struct RunRecord {
  int schema_version = kRunRecordSchemaVersion;
  std::string artifact;            ///< bench artifact id ("fig5", "integral")
  std::string variant = "default"; ///< cascade/configuration variant
  int repeats = 0;                 ///< measurement repetitions recorded
  Labels labels;                   ///< run-level label set (host, commit, ...)
  std::vector<MetricSeries> metrics;  ///< sorted by (name, labels)

  /// Series lookup by exact (name, labels) identity; nullptr when absent.
  const MetricSeries* find(std::string_view name,
                           const Labels& match_labels) const;

  json::Value to_json() const;
  std::string dump() const;  ///< to_json().dump()
  /// Writes dump(); throws core::CheckError when the file cannot be
  /// written.
  void write_file(const std::string& path) const;

  /// Validating deserialization; throws core::CheckError on a missing or
  /// mistyped field or a schema_version mismatch.
  static RunRecord from_json(const json::Value& doc);
  static RunRecord parse(std::string_view text);
  static RunRecord load_file(const std::string& path);
};

/// Aggregates one registry snapshot per repeat into a record: every
/// (name, labels) series collects its per-repeat values (histograms
/// flatten into .sum/.count) and gets median/MAD attached. A series
/// absent from some repeats keeps only the samples it has.
RunRecord build_run_record(std::string artifact, std::string variant,
                           Labels labels,
                           const std::vector<const Registry*>& repeats);

/// Canonical on-disk name for a bench artifact: `BENCH_<artifact>.json`.
std::string run_record_path(const std::string& artifact);

}  // namespace fdet::obs
