// Statistical baseline comparison for benchmark run records: the gating
// half of the observability loop.
//
// compare_runs() walks every metric series of a baseline RunRecord,
// matches it against the current record by (name, labels) identity, and
// issues one of the paper-evaluation verdicts:
//
//   improved    median shifted beyond the noise band, in the good
//               direction for this metric
//   unchanged   median shift within the noise band
//   regressed   shift beyond the band in the bad direction — or any
//               shift of a direction-neutral (exact) metric, since the
//               virtual-GPU quantities are deterministic and drift means
//               behavior changed
//   missing     series present in the baseline, absent from the run
//   new         series only the current run has (informational)
//
// The noise band combines a relative threshold (default 10 %, the kind
// of margin the paper's Table II ratios carry) with a multiple of the
// repeats' median absolute deviation, so host-noisy metrics need a
// genuinely large shift while deterministic virtual metrics gate tightly.
// `fdet_report diff` and bench::RunRecorder's --baseline flag both sit on
// top of this and exit non-zero when CompareReport::ok() is false.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/runrecord.h"

namespace fdet::obs {

enum class Verdict { kImproved, kUnchanged, kRegressed, kMissing, kNew };

/// Lower-case verdict label ("improved", ...), stable for reports/tests.
const char* verdict_name(Verdict verdict);

/// Which way a metric is allowed to move without being a regression.
enum class Direction {
  kLowerIsBetter,   ///< latencies, makespans, deadline violations
  kHigherIsBetter,  ///< efficiencies, throughputs, speedups, TPR
  kExact,           ///< deterministic quantities; any drift regresses
};

/// Infers the direction from the metric name (substring conventions used
/// across src/obs and the bench binaries: "_ms"/"latency"/"makespan"/
/// "cycles"/"conflict"/"transaction" are lower-is-better, "efficiency"/
/// "throughput"/"speedup"/"tpr"/"occupancy" higher). Unrecognized names
/// are kExact.
Direction metric_direction(std::string_view name);

struct CompareOptions {
  /// Relative shift tolerated before a verdict: |Δ| <= rel * |baseline|.
  double relative_threshold = 0.10;
  /// Noise band as a multiple of max(baseline MAD, current MAD).
  double mad_multiplier = 3.0;
  /// Absolute floor so near-zero medians don't gate on rounding dust.
  double absolute_floor = 1e-9;
  /// Series whose name contains any of these substrings are skipped
  /// entirely (host wall time is run-to-run noise, not a bench
  /// regression).
  std::vector<std::string> ignore = {"bench.wall_seconds", "host_wall"};
};

struct MetricVerdict {
  std::string name;
  Labels labels;
  Verdict verdict = Verdict::kUnchanged;
  Direction direction = Direction::kExact;
  double baseline_median = 0.0;
  double current_median = 0.0;
  /// (current - baseline) / |baseline|; 0 when the baseline median is 0
  /// or either side is non-finite.
  double relative_change = 0.0;
  double band = 0.0;  ///< absolute tolerance that was applied
};

struct CompareReport {
  /// Sorted most-severe first: regressed, missing, improved, new,
  /// unchanged; by (name, labels) within a severity class.
  std::vector<MetricVerdict> verdicts;
  int improved = 0;
  int unchanged = 0;
  int regressed = 0;
  int missing = 0;
  int added = 0;

  /// The gate: true when nothing regressed and nothing went missing.
  bool ok() const { return regressed == 0 && missing == 0; }
};

CompareReport compare_runs(const RunRecord& baseline, const RunRecord& current,
                           const CompareOptions& options = {});

/// One human-readable line, e.g.
/// `regressed  vgpu.makespan_ms{mode=concurrent}  4.000 -> 4.800  (+20.0%, band 0.400)`.
std::string describe(const MetricVerdict& verdict);

/// Multi-line report: every non-unchanged verdict (all of them with
/// `include_unchanged`) plus a summary count line.
std::string render_text_report(const CompareReport& report,
                               bool include_unchanged = false);

}  // namespace fdet::obs
