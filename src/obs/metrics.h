// Labeled metrics registry for the observability layer.
//
// Mirrors the shape of the numbers the paper reports — profiler ratios
// (branch efficiency, SIMD utilization), throughputs (DRAM reads),
// timings (makespan, per-frame latency) and distributions (per-scale
// cascade rejection depths) — as three metric kinds:
//
//   Counter    monotonically increasing total (kernel launches, bytes)
//   Gauge      last-written value (makespan_ms, sm_utilization)
//   Histogram  explicit-bucket distribution (frame latency, stage depth)
//
// Every metric carries a name plus an ordered label set, so the same
// quantity can be published per {mode=serial|concurrent}, per scale, per
// trailer, ... The registry serializes to JSON and CSV; bench binaries
// write these files via --metrics-out (bench_common.h).
//
// Thread safety: metric creation and all value updates are guarded by one
// registry mutex — contention is irrelevant at the rates benches publish.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/check.h"

namespace fdet::obs {

/// Thrown when creating a new (name, labels) series would exceed the
/// registry's cardinality cap — the typed signal that a label (frame
/// index, trace id, ...) with unbounded values leaked into a metric
/// identity. Existing series keep working; only *new* series are
/// rejected.
class MetricCardinalityError : public core::CheckError {
 public:
  explicit MetricCardinalityError(const std::string& what)
      : core::CheckError(what) {}
};

/// Ordered key=value labels. Keep keys unique; order is preserved in the
/// exported identity, so use a consistent order per metric name.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Renders labels as `k1=v1,k2=v2` (empty string for no labels).
std::string format_labels(const Labels& labels);

class Registry;

class Counter {
 public:
  void add(double delta);
  void increment() { add(1.0); }
  double value() const;

 private:
  friend class Registry;
  explicit Counter(Registry* registry) : registry_(registry) {}
  Registry* registry_;
  double value_ = 0.0;
};

class Gauge {
 public:
  void set(double value);
  double value() const;

 private:
  friend class Registry;
  explicit Gauge(Registry* registry) : registry_(registry) {}
  Registry* registry_;
  double value_ = 0.0;
};

// Bucket-count convention (applies to every exported surface): bucket
// counts are CUMULATIVE, Prometheus-style — element i is the count of
// observations <= bounds()[i], the final element (the implicit +inf
// bucket) equals count(). This holds for Histogram::bucket_counts(),
// Registry::Sample::bucket_counts, the JSON "buckets" array and the CSV
// `le_*` rows. Only the private accumulation buffer `counts_` stores
// per-bucket (non-cumulative) increments; it is never exported.
class Histogram {
 public:
  /// Records `count` observations of `value`.
  void observe(double value, double count = 1.0);
  double sum() const;
  double count() const;
  /// Cumulative: element i counts observations <= bounds()[i]; the last
  /// element (implicit +inf bucket) equals count().
  std::vector<double> bucket_counts() const;
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  friend class Registry;
  Histogram(Registry* registry, std::vector<double> bounds);
  Registry* registry_;
  std::vector<double> bounds_;   ///< ascending upper bounds; +inf implicit
  /// Per-bucket accumulation buffer (last slot = +inf bucket). Internal
  /// only: every exported view converts to cumulative counts (see the
  /// class comment).
  std::vector<double> counts_;
  double sum_ = 0.0;
  double count_ = 0.0;
};

/// Equal-width bucket bounds [0, count) — handy for depth histograms.
std::vector<double> linear_buckets(double start, double width, int count);

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Metric accessors create on first use and return the same instance for
  /// the same (name, labels) afterwards. Re-registering a name with a
  /// different kind throws core::CheckError; creating a series beyond the
  /// cardinality cap throws MetricCardinalityError.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const Labels& labels = {});

  /// Default cap on distinct (name, labels) series. Generous for every
  /// legitimate publisher (benches sit in the hundreds) while bounding
  /// the damage of an unbounded label.
  static constexpr std::size_t kDefaultSeriesLimit = 4096;
  /// Adjusts the cap (takes effect for subsequent creations; existing
  /// series are never evicted). `limit` must be >= 1.
  void set_series_limit(std::size_t limit);
  std::size_t series_limit() const;

  bool empty() const;
  std::size_t size() const;

  /// One exported data point (histograms flatten into sum/count/buckets).
  struct Sample {
    std::string name;
    std::string kind;  ///< "counter" | "gauge" | "histogram"
    Labels labels;
    double value = 0.0;               ///< counter/gauge value, histogram sum
    double count = 0.0;               ///< histogram only
    std::vector<double> bounds;       ///< histogram only
    /// Histogram only; cumulative (element i = observations <=
    /// bounds[i], last = total), matching Histogram::bucket_counts().
    std::vector<double> bucket_counts;
  };

  /// Deterministic snapshot, sorted by (name, labels).
  std::vector<Sample> samples() const;

  /// `{"metrics": [...]}` — one object per sample.
  std::string to_json() const;

  /// `name,kind,labels,field,value` rows; histograms emit sum/count plus
  /// one `le_<bound>` row per bucket.
  std::string to_csv() const;

  /// Writes to_csv() when `path` ends in `.csv`, to_json() otherwise.
  /// Throws core::CheckError when the file cannot be written.
  void write_file(const std::string& path) const;

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct Entry {
    std::string name;
    Labels labels;
    std::string kind;
    // Stable addresses: metrics hand out references.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry(const std::string& name, const Labels& labels,
               const std::string& kind);

  mutable std::mutex mutex_;
  std::map<std::pair<std::string, std::string>, Entry> entries_;
  std::size_t series_limit_ = kDefaultSeriesLimit;
};

}  // namespace fdet::obs
