#include "obs/recorder.h"

#include <algorithm>
#include <utility>

#include "core/artifact.h"
#include "core/check.h"
#include "obs/json.h"

namespace fdet::obs {

namespace {

std::atomic<FlightRecorder*> g_recorder{nullptr};

void copy_label(char* dst, std::size_t size, const char* text) {
  std::size_t i = 0;
  for (; text != nullptr && text[i] != '\0' && i + 1 < size; ++i) {
    dst[i] = text[i];
  }
  dst[i] = '\0';
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

const char* flight_event_kind_name(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kFrame: return "frame";
    case FlightEventKind::kStage: return "stage";
    case FlightEventKind::kLaunch: return "launch";
    case FlightEventKind::kRetry: return "retry";
    case FlightEventKind::kFault: return "fault";
    case FlightEventKind::kBreaker: return "breaker";
    case FlightEventKind::kLadder: return "ladder";
    case FlightEventKind::kDrop: return "drop";
    case FlightEventKind::kQuarantine: return "quarantine";
    case FlightEventKind::kDeadlineMiss: return "deadline-miss";
    case FlightEventKind::kSlo: return "slo";
    case FlightEventKind::kAnomaly: return "anomaly";
  }
  return "?";
}

const char* anomaly_name(Anomaly anomaly) {
  switch (anomaly) {
    case Anomaly::kDeadlineMiss: return "deadline-miss";
    case Anomaly::kQuarantine: return "quarantine";
    case Anomaly::kBreakerOpen: return "breaker-open";
    case Anomaly::kLadderClimb: return "ladder-climb";
    case Anomaly::kFaultInjected: return "fault-injected";
  }
  return "?";
}

void FlightEvent::set_name(const char* text) {
  copy_label(name, sizeof(name), text);
}

void FlightEvent::set_detail(const char* text) {
  copy_label(detail, sizeof(detail), text);
}

void FlightEvent::set_context(const TraceContext& context) {
  trace_id = context.trace_id;
  span_id = context.span_id;
  parent_span_id = context.parent_span_id;
}

FlightRecorder::FlightRecorder(std::size_t capacity) {
  FDET_CHECK(capacity >= 2) << "flight recorder capacity must be >= 2, got "
                            << capacity;
  const std::size_t rounded = round_up_pow2(capacity);
  slots_ = std::make_unique<Slot[]>(rounded);
  mask_ = rounded - 1;
}

FlightRecorder::~FlightRecorder() { uninstall(); }

void FlightRecorder::record(const FlightEvent& event) {
  const std::uint64_t ticket =
      head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];
  slot.seq.store(2 * ticket + 1, std::memory_order_release);
  // Keep the payload stores after the odd (write-in-progress) stamp.
  std::atomic_thread_fence(std::memory_order_release);
  std::uint64_t buffer[kSlotWords] = {};
  std::memcpy(buffer, &event, sizeof(FlightEvent));
  for (std::size_t i = 0; i < kSlotWords; ++i) {
    slot.words[i].store(buffer[i], std::memory_order_relaxed);
  }
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<std::pair<std::uint64_t, FlightEvent>> ordered;
  ordered.reserve(mask_ + 1);
  for (std::size_t i = 0; i <= mask_; ++i) {
    const Slot& slot = slots_[i];
    const std::uint64_t seq1 = slot.seq.load(std::memory_order_acquire);
    if (seq1 == 0 || (seq1 & 1) != 0) {
      continue;  // empty or mid-write
    }
    std::uint64_t buffer[kSlotWords];
    for (std::size_t w = 0; w < kSlotWords; ++w) {
      buffer[w] = slot.words[w].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != seq1) {
      continue;  // torn: overwritten while reading
    }
    FlightEvent event;
    std::memcpy(&event, buffer, sizeof(FlightEvent));
    ordered.emplace_back((seq1 - 2) / 2, event);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<FlightEvent> events;
  events.reserve(ordered.size());
  for (auto& [ticket, event] : ordered) {
    events.push_back(event);
  }
  return events;
}

std::vector<FlightEvent> FlightRecorder::snapshot_window(
    double window_us) const {
  std::vector<FlightEvent> events = snapshot();
  if (events.empty() || window_us <= 0.0) {
    return events;
  }
  double newest = 0.0;
  for (const FlightEvent& event : events) {
    newest = std::max(newest, event.ts_us + event.dur_us);
  }
  const double cutoff = newest - window_us;
  std::vector<FlightEvent> recent;
  recent.reserve(events.size());
  for (const FlightEvent& event : events) {
    if (event.ts_us + event.dur_us >= cutoff) {
      recent.push_back(event);
    }
  }
  return recent;
}

std::uint64_t FlightRecorder::recorded() const {
  return head_.load(std::memory_order_relaxed);
}

void FlightRecorder::install() { g_recorder.store(this); }

void FlightRecorder::uninstall() {
  FlightRecorder* expected = this;
  g_recorder.compare_exchange_strong(expected, nullptr);
}

FlightRecorder* FlightRecorder::current() { return g_recorder.load(); }

void FlightRecorder::emit(const FlightEvent& event) {
  if (FlightRecorder* recorder = current()) {
    recorder->record(event);
  }
}

namespace {

/// Track layout of a dump: one thread per event category so Perfetto
/// shows frames, stages, launches, and control decisions as stacked
/// swimlanes of the same (virtual-time) process.
constexpr int kFrameTrack = 1;
constexpr int kStageTrack = 2;
constexpr int kLaunchTrack = 3;
constexpr int kControlTrack = 4;

int track_for(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kFrame: return kFrameTrack;
    case FlightEventKind::kStage: return kStageTrack;
    case FlightEventKind::kLaunch: return kLaunchTrack;
    default: return kControlTrack;
  }
}

bool is_span(FlightEventKind kind) {
  return kind == FlightEventKind::kFrame ||
         kind == FlightEventKind::kStage || kind == FlightEventKind::kLaunch;
}

TraceEvent track_metadata(int tid, const char* label) {
  TraceEvent event;
  event.name = "thread_name";
  event.phase = 'M';
  event.pid = 0;
  event.tid = tid;
  event.str_args.emplace_back("name", label);
  return event;
}

}  // namespace

std::vector<TraceEvent> flight_trace_events(
    const std::vector<FlightEvent>& events) {
  std::vector<TraceEvent> out;
  out.reserve(events.size() + 5);
  TraceEvent process;
  process.name = "process_name";
  process.phase = 'M';
  process.str_args.emplace_back("name", "flight-recorder");
  out.push_back(std::move(process));
  out.push_back(track_metadata(kFrameTrack, "frames"));
  out.push_back(track_metadata(kStageTrack, "stages"));
  out.push_back(track_metadata(kLaunchTrack, "launches"));
  out.push_back(track_metadata(kControlTrack, "control"));

  for (const FlightEvent& event : events) {
    TraceEvent trace;
    trace.name = event.name[0] != '\0'
                     ? std::string(event.name)
                     : std::string(flight_event_kind_name(event.kind));
    trace.phase = is_span(event.kind) ? 'X' : 'i';
    trace.pid = 0;
    trace.tid = track_for(event.kind);
    trace.ts_us = event.ts_us;
    trace.dur_us = event.dur_us;
    trace.str_args.emplace_back("kind", flight_event_kind_name(event.kind));
    if (event.frame >= 0) {
      trace.num_args.emplace_back("frame", static_cast<double>(event.frame));
    }
    if (event.value != 0.0) {
      trace.num_args.emplace_back("value", event.value);
    }
    if (event.detail[0] != '\0') {
      trace.str_args.emplace_back("detail", event.detail);
    }
    TraceContext context{event.trace_id, event.span_id, event.parent_span_id};
    if (context.valid()) {
      trace.str_args.emplace_back("trace_id", hex_id(context.trace_id));
      trace.str_args.emplace_back("span_id", hex_id(context.span_id));
      if (context.parent_span_id != 0) {
        trace.str_args.emplace_back("parent_span_id",
                                    hex_id(context.parent_span_id));
      }
    }
    out.push_back(std::move(trace));
  }
  return out;
}

std::string flight_dump_json(const std::vector<FlightEvent>& events,
                             const AnomalyInfo& anomaly) {
  std::string header = "{\"kind\":\"";
  header += json::escape(anomaly_name(anomaly.kind));
  header += "\",\"frame\":" + std::to_string(anomaly.frame);
  header += ",\"cause\":\"" + json::escape(anomaly.cause) + "\"";
  if (anomaly.trace_id != 0) {
    header += ",\"trace_id\":\"" + hex_id(anomaly.trace_id) + "\"";
  }
  header += ",\"events\":" + std::to_string(events.size());
  header += "}";
  return chrome_trace_json(flight_trace_events(events),
                           {{"anomaly", header}});
}

void write_flight_dump(const std::string& path,
                       const std::vector<FlightEvent>& events,
                       const AnomalyInfo& anomaly) {
  core::atomic_write_file(path, flight_dump_json(events, anomaly));
}

}  // namespace fdet::obs
