#include "obs/profile.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <utility>

#include "core/check.h"
#include "obs/trace.h"

namespace fdet::obs {

std::string kernel_base_name(std::string_view name) {
  const std::size_t pos = name.rfind("_s");
  if (pos == std::string_view::npos || pos + 2 >= name.size()) {
    return std::string(name);
  }
  for (std::size_t i = pos + 2; i < name.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(name[i])) == 0) {
      return std::string(name);
    }
  }
  return std::string(name.substr(0, pos));
}

namespace {

/// Innermost stage scope of this thread (see ProfileStageScope).
thread_local ProfileStageScope* g_stage_scope = nullptr;

/// Device roofline ridge: peak issue ops per cycle over peak global
/// bytes per cycle.
double ridge_of(const vgpu::DeviceSpec& spec) {
  const double peak_ops = spec.cost.ipc * 32.0;
  const double peak_bytes = 128.0 / spec.cost.global_transaction_issue;
  return peak_bytes <= 0.0 ? 0.0 : peak_ops / peak_bytes;
}

AttributionBucket& bucket_of(std::vector<AttributionBucket>& buckets,
                             std::string_view name) {
  for (AttributionBucket& bucket : buckets) {
    if (bucket.name == name) {
      return bucket;
    }
  }
  buckets.push_back(AttributionBucket{std::string(name), 0, 0.0});
  return buckets.back();
}

void sort_by_cycles(std::vector<AttributionBucket>& buckets) {
  std::stable_sort(buckets.begin(), buckets.end(),
                   [](const AttributionBucket& a, const AttributionBucket& b) {
                     if (a.cycles != b.cycles) {
                       return a.cycles > b.cycles;
                     }
                     return a.name < b.name;
                   });
}

std::string format_pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

std::string format_cycles(double cycles) {
  char buf[32];
  if (cycles >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", cycles / 1e6);
  } else if (cycles >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", cycles / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", cycles);
  }
  return buf;
}

json::Value labels_to_json(const Labels& labels) {
  json::Value::Object members;
  for (const auto& [key, value] : labels) {
    members.emplace_back(key, json::Value::make_string(value));
  }
  return json::Value::make_object(std::move(members));
}

Labels labels_from_json(const json::Value& value) {
  Labels labels;
  for (const auto& [key, member] : value.as_object()) {
    labels.emplace_back(key, member.as_string());
  }
  return labels;
}

std::uint64_t u64_field(const json::Value& doc, std::string_view key) {
  const double n = doc.at(key).as_number();
  FDET_CHECK(n >= 0.0) << "profile field '" << key << "' is negative";
  return static_cast<std::uint64_t>(n);
}

json::Value::Object bucket_to_json(const AttributionBucket& bucket) {
  json::Value::Object m;
  m.emplace_back("name", json::Value::make_string(bucket.name));
  m.emplace_back("launches",
                 json::Value::make_number(static_cast<double>(bucket.launches)));
  m.emplace_back("cycles", json::Value::make_number(bucket.cycles));
  return m;
}

AttributionBucket bucket_from_json(const json::Value& doc) {
  AttributionBucket bucket;
  bucket.name = doc.at("name").as_string();
  FDET_CHECK(!bucket.name.empty()) << "profile bucket has an empty name";
  bucket.launches = u64_field(doc, "launches");
  bucket.cycles = doc.at("cycles").as_number();
  return bucket;
}

}  // namespace

ProfileStageScope::ProfileStageScope(std::string stage)
    : stage_(std::move(stage)), prev_(g_stage_scope) {
  g_stage_scope = this;
}

ProfileStageScope::~ProfileStageScope() { g_stage_scope = prev_; }

const std::string* ProfileStageScope::current() {
  return g_stage_scope == nullptr ? nullptr : &g_stage_scope->stage_;
}

double KernelProfile::branch_efficiency() const {
  if (warp_branches == 0) {
    return 1.0;
  }
  const double eff =
      1.0 - static_cast<double>(divergent_branches) / warp_branches;
  return std::clamp(eff, 0.0, 1.0);
}

double KernelProfile::simd_efficiency() const {
  if (warp_issue_cycles <= 0.0) {
    return 1.0;
  }
  return std::clamp(lane_issue_cycles / (warp_issue_cycles * 32.0), 0.0, 1.0);
}

double KernelProfile::arithmetic_intensity() const {
  if (global_bytes == 0) {
    return arithmetic_ops == 0 ? 0.0
                               : std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(arithmetic_ops) /
         static_cast<double>(global_bytes);
}

const char* KernelProfile::roofline_bound(double ridge) const {
  if (global_bytes == 0) {
    return "compute";  // no global traffic: unboundedly compute-heavy
  }
  return arithmetic_intensity() < ridge ? "memory" : "compute";
}

void KernelProfiler::on_launch(const vgpu::DeviceSpec& spec,
                               const vgpu::LaunchCost& cost) {
  ridge_ops_per_byte_ = ridge_of(spec);

  const double cycles = cost.total_service_cycles;
  ++launches_;
  total_cycles_ += cycles;

  const std::string base = kernel_base_name(cost.config.name);
  KernelProfile* slot = nullptr;
  for (KernelProfile& kernel : kernels_) {
    if (kernel.name == base) {
      slot = &kernel;
      break;
    }
  }
  if (slot == nullptr) {
    kernels_.push_back(KernelProfile{});
    slot = &kernels_.back();
    slot->name = base;
  }

  const vgpu::PerfCounters& c = cost.counters;
  ++slot->launches;
  slot->total_cycles += cycles;
  slot->issue_cycles += c.issue_service_cycles;
  slot->stall_cycles += c.stall_service_cycles;
  slot->divergence_cycles += c.divergence_cycles;
  slot->bank_conflict_cycles += c.bank_conflict_cycles;
  slot->occupancy_limited_cycles +=
      std::max(0.0, c.stall_service_cycles - c.stall_base_cycles);
  slot->occupancy_cycles += cost.occupancy.ratio * cycles;
  slot->bank_conflicts += c.bank_conflicts;
  slot->global_transactions += c.global_transactions;
  slot->arithmetic_ops += c.arithmetic_ops();
  slot->global_bytes += c.global_bytes();
  slot->warp_branches += c.warp_branches;
  slot->divergent_branches += c.divergent_branches;
  slot->lane_issue_cycles += c.lane_issue_cycles;
  slot->warp_issue_cycles += c.warp_issue_cycles;

  const std::string* stage = ProfileStageScope::current();
  AttributionBucket& stage_bucket =
      bucket_of(stages_, stage == nullptr ? kUnattributedStage : *stage);
  ++stage_bucket.launches;
  stage_bucket.cycles += cycles;

  const TraceContext* context = current_trace_context();
  AttributionBucket& frame_bucket = bucket_of(
      frames_,
      context == nullptr || !context->valid() ? std::string(kNoFrame)
                                              : hex_id(context->trace_id));
  ++frame_bucket.launches;
  frame_bucket.cycles += cycles;
}

ProfileRecord KernelProfiler::snapshot(std::string artifact,
                                       std::string variant,
                                       Labels labels) const {
  ProfileRecord record;
  record.artifact = std::move(artifact);
  record.variant = std::move(variant);
  record.labels = std::move(labels);
  record.ridge_ops_per_byte = ridge_ops_per_byte_;
  record.launches = launches_;
  record.total_cycles = total_cycles_;
  record.kernels = kernels_;
  record.stages = stages_;
  record.frames = frames_;

  std::stable_sort(record.kernels.begin(), record.kernels.end(),
                   [](const KernelProfile& a, const KernelProfile& b) {
                     if (a.total_cycles != b.total_cycles) {
                       return a.total_cycles > b.total_cycles;
                     }
                     return a.name < b.name;
                   });
  sort_by_cycles(record.stages);
  std::stable_sort(record.frames.begin(), record.frames.end(),
                   [](const AttributionBucket& a, const AttributionBucket& b) {
                     return a.name < b.name;
                   });
  return record;
}

void KernelProfiler::reset() {
  launches_ = 0;
  total_cycles_ = 0.0;
  kernels_.clear();
  stages_.clear();
  frames_.clear();
}

ScopedProfileCollection::ScopedProfileCollection(KernelProfiler& profiler)
    : hook_([&profiler](const vgpu::DeviceSpec& spec,
                        const vgpu::LaunchCost& cost) {
        profiler.on_launch(spec, cost);
      }) {}

const KernelProfile* ProfileRecord::find_kernel(std::string_view name) const {
  for (const KernelProfile& kernel : kernels) {
    if (kernel.name == name) {
      return &kernel;
    }
  }
  return nullptr;
}

const AttributionBucket* ProfileRecord::find_stage(
    std::string_view name) const {
  for (const AttributionBucket& stage : stages) {
    if (stage.name == name) {
      return &stage;
    }
  }
  return nullptr;
}

json::Value ProfileRecord::to_json() const {
  json::Value::Array kernel_array;
  for (const KernelProfile& k : kernels) {
    json::Value::Object m;
    m.emplace_back("name", json::Value::make_string(k.name));
    m.emplace_back("launches",
                   json::Value::make_number(static_cast<double>(k.launches)));
    m.emplace_back("total_cycles", json::Value::make_number(k.total_cycles));
    m.emplace_back("issue_cycles", json::Value::make_number(k.issue_cycles));
    m.emplace_back("stall_cycles", json::Value::make_number(k.stall_cycles));
    m.emplace_back("divergence_cycles",
                   json::Value::make_number(k.divergence_cycles));
    m.emplace_back("bank_conflict_cycles",
                   json::Value::make_number(k.bank_conflict_cycles));
    m.emplace_back("occupancy_limited_cycles",
                   json::Value::make_number(k.occupancy_limited_cycles));
    m.emplace_back("occupancy_cycles",
                   json::Value::make_number(k.occupancy_cycles));
    m.emplace_back(
        "bank_conflicts",
        json::Value::make_number(static_cast<double>(k.bank_conflicts)));
    m.emplace_back(
        "global_transactions",
        json::Value::make_number(static_cast<double>(k.global_transactions)));
    m.emplace_back(
        "arithmetic_ops",
        json::Value::make_number(static_cast<double>(k.arithmetic_ops)));
    m.emplace_back(
        "global_bytes",
        json::Value::make_number(static_cast<double>(k.global_bytes)));
    m.emplace_back(
        "warp_branches",
        json::Value::make_number(static_cast<double>(k.warp_branches)));
    m.emplace_back(
        "divergent_branches",
        json::Value::make_number(static_cast<double>(k.divergent_branches)));
    m.emplace_back("lane_issue_cycles",
                   json::Value::make_number(k.lane_issue_cycles));
    m.emplace_back("warp_issue_cycles",
                   json::Value::make_number(k.warp_issue_cycles));
    // Derived, for human readers of the artifact; from_json recomputes.
    m.emplace_back("bound", json::Value::make_string(
                                k.roofline_bound(ridge_ops_per_byte)));
    kernel_array.push_back(json::Value::make_object(std::move(m)));
  }

  json::Value::Array stage_array;
  for (const AttributionBucket& stage : stages) {
    stage_array.push_back(json::Value::make_object(bucket_to_json(stage)));
  }
  json::Value::Array frame_array;
  for (const AttributionBucket& frame : frames) {
    frame_array.push_back(json::Value::make_object(bucket_to_json(frame)));
  }

  json::Value::Object doc;
  doc.emplace_back("schema_version", json::Value::make_number(schema_version));
  doc.emplace_back("artifact", json::Value::make_string(artifact));
  doc.emplace_back("variant", json::Value::make_string(variant));
  doc.emplace_back("labels", labels_to_json(labels));
  doc.emplace_back("ridge_ops_per_byte",
                   json::Value::make_number(ridge_ops_per_byte));
  doc.emplace_back("launches",
                   json::Value::make_number(static_cast<double>(launches)));
  doc.emplace_back("total_cycles", json::Value::make_number(total_cycles));
  doc.emplace_back("kernels", json::Value::make_array(std::move(kernel_array)));
  doc.emplace_back("stages", json::Value::make_array(std::move(stage_array)));
  doc.emplace_back("frames", json::Value::make_array(std::move(frame_array)));
  return json::Value::make_object(std::move(doc));
}

std::string ProfileRecord::dump() const { return to_json().dump(); }

void ProfileRecord::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  FDET_CHECK(out.good()) << "cannot write profile record '" << path << "'";
  out << dump() << "\n";
  FDET_CHECK(out.good()) << "error writing profile record '" << path << "'";
}

ProfileRecord ProfileRecord::from_json(const json::Value& doc) {
  ProfileRecord record;
  record.schema_version =
      static_cast<int>(doc.at("schema_version").as_number());
  FDET_CHECK(record.schema_version == kProfileSchemaVersion)
      << "profile record schema_version " << record.schema_version
      << " (this build reads version " << kProfileSchemaVersion << ")";
  record.artifact = doc.at("artifact").as_string();
  FDET_CHECK(!record.artifact.empty())
      << "profile record has an empty artifact";
  record.variant = doc.at("variant").as_string();
  record.labels = labels_from_json(doc.at("labels"));
  record.ridge_ops_per_byte = doc.at("ridge_ops_per_byte").as_number();
  FDET_CHECK(record.ridge_ops_per_byte >= 0.0)
      << "profile record has a negative roofline ridge";
  record.launches = u64_field(doc, "launches");
  record.total_cycles = doc.at("total_cycles").as_number();
  FDET_CHECK(std::isfinite(record.total_cycles) && record.total_cycles >= 0.0)
      << "profile record total_cycles is not a finite non-negative number";

  for (const json::Value& entry : doc.at("kernels").as_array()) {
    KernelProfile k;
    k.name = entry.at("name").as_string();
    FDET_CHECK(!k.name.empty()) << "profile kernel has an empty name";
    k.launches = u64_field(entry, "launches");
    FDET_CHECK(k.launches >= 1)
        << "profile kernel '" << k.name << "' claims zero launches";
    k.total_cycles = entry.at("total_cycles").as_number();
    k.issue_cycles = entry.at("issue_cycles").as_number();
    k.stall_cycles = entry.at("stall_cycles").as_number();
    k.divergence_cycles = entry.at("divergence_cycles").as_number();
    k.bank_conflict_cycles = entry.at("bank_conflict_cycles").as_number();
    k.occupancy_limited_cycles =
        entry.at("occupancy_limited_cycles").as_number();
    k.occupancy_cycles = entry.at("occupancy_cycles").as_number();
    k.bank_conflicts = u64_field(entry, "bank_conflicts");
    k.global_transactions = u64_field(entry, "global_transactions");
    k.arithmetic_ops = u64_field(entry, "arithmetic_ops");
    k.global_bytes = u64_field(entry, "global_bytes");
    k.warp_branches = u64_field(entry, "warp_branches");
    k.divergent_branches = u64_field(entry, "divergent_branches");
    k.lane_issue_cycles = entry.at("lane_issue_cycles").as_number();
    k.warp_issue_cycles = entry.at("warp_issue_cycles").as_number();
    record.kernels.push_back(std::move(k));
  }
  for (const json::Value& entry : doc.at("stages").as_array()) {
    record.stages.push_back(bucket_from_json(entry));
  }
  for (const json::Value& entry : doc.at("frames").as_array()) {
    record.frames.push_back(bucket_from_json(entry));
  }
  return record;
}

ProfileRecord ProfileRecord::parse(std::string_view text) {
  return from_json(json::parse(text));
}

ProfileRecord ProfileRecord::load_file(const std::string& path) {
  return from_json(json::parse_file(path));
}

RunRecord ProfileRecord::to_run_record() const {
  RunRecord record;
  record.artifact = artifact;
  record.variant = variant;
  record.repeats = 1;
  record.labels = labels;

  const auto add = [&record](std::string name, Labels series_labels,
                             double value) {
    MetricSeries series;
    series.name = std::move(name);
    series.kind = "gauge";
    series.labels = std::move(series_labels);
    series.samples = {value};
    series.median = value;
    series.mad = 0.0;
    record.metrics.push_back(std::move(series));
  };

  add("profile.total_cycles", {}, total_cycles);
  add("profile.launches", {}, static_cast<double>(launches));
  for (const KernelProfile& k : kernels) {
    const Labels kl = {{"kernel", k.name}};
    add("profile.kernel.cycles", kl, k.total_cycles);
    add("profile.kernel.issue_cycles", kl, k.issue_cycles);
    add("profile.kernel.stall_cycles", kl, k.stall_cycles);
    add("profile.kernel.divergence_cycles", kl, k.divergence_cycles);
    add("profile.kernel.bank_conflict_cycles", kl, k.bank_conflict_cycles);
    add("profile.kernel.occupancy_limited_cycles", kl,
        k.occupancy_limited_cycles);
    add("profile.kernel.bank_conflicts", kl,
        static_cast<double>(k.bank_conflicts));
    add("profile.kernel.global_transactions", kl,
        static_cast<double>(k.global_transactions));
    add("profile.kernel.achieved_occupancy", kl, k.achieved_occupancy());
    add("profile.kernel.branch_efficiency", kl, k.branch_efficiency());
  }
  for (const AttributionBucket& stage : stages) {
    add("profile.stage.cycles", {{"stage", stage.name}}, stage.cycles);
  }
  return record;
}

std::string profile_record_path(const std::string& artifact) {
  return "PROFILE_" + artifact + ".json";
}

std::string render_profile_text(const ProfileRecord& record) {
  std::string out;
  char line[256];

  std::snprintf(line, sizeof(line), "PROFILE %s (variant %s)\n",
                record.artifact.c_str(), record.variant.c_str());
  out += line;
  std::snprintf(line, sizeof(line),
                "total: %s cycles over %llu launches; roofline ridge %.2f "
                "ops/byte\n\n",
                format_cycles(record.total_cycles).c_str(),
                static_cast<unsigned long long>(record.launches),
                record.ridge_ops_per_byte);
  out += line;

  std::snprintf(line, sizeof(line), "%-12s %8s %9s %7s  %s\n", "kernel",
                "launches", "cycles", "share", "breakdown");
  out += line;
  for (const KernelProfile& k : record.kernels) {
    const double share =
        record.total_cycles <= 0.0 ? 0.0 : k.total_cycles / record.total_cycles;
    const double total = k.total_cycles <= 0.0 ? 1.0 : k.total_cycles;
    std::snprintf(
        line, sizeof(line),
        "%-12s %8llu %9s %7s  issue %s | stall %s (occ-lim %s) | "
        "diverg %s | bankcf %s\n",
        k.name.c_str(), static_cast<unsigned long long>(k.launches),
        format_cycles(k.total_cycles).c_str(), format_pct(share).c_str(),
        format_pct(k.issue_cycles / total).c_str(),
        format_pct(k.stall_cycles / total).c_str(),
        format_pct(k.occupancy_limited_cycles / total).c_str(),
        format_pct(k.divergence_cycles / total).c_str(),
        format_pct(k.bank_conflict_cycles / total).c_str());
    out += line;
    std::snprintf(
        line, sizeof(line),
        "%-12s %8s %9s %7s  occ %s | beff %s | simd %s | %llu conflicts | "
        "%s-bound\n",
        "", "", "", "", format_pct(k.achieved_occupancy()).c_str(),
        format_pct(k.branch_efficiency()).c_str(),
        format_pct(k.simd_efficiency()).c_str(),
        static_cast<unsigned long long>(k.bank_conflicts),
        k.roofline_bound(record.ridge_ops_per_byte));
    out += line;
  }

  out += "\nstage breakdown:\n";
  double attributed_stage = 0.0;
  for (const AttributionBucket& stage : record.stages) {
    const double share =
        record.total_cycles <= 0.0 ? 0.0 : stage.cycles / record.total_cycles;
    if (stage.name != kUnattributedStage) {
      attributed_stage += stage.cycles;
    }
    std::snprintf(line, sizeof(line), "  %-14s %7s  (%s cycles, %llu launches)\n",
                  stage.name.c_str(), format_pct(share).c_str(),
                  format_cycles(stage.cycles).c_str(),
                  static_cast<unsigned long long>(stage.launches));
    out += line;
  }

  double attributed_frame = 0.0;
  std::uint64_t frame_count = 0;
  for (const AttributionBucket& frame : record.frames) {
    if (frame.name != kNoFrame) {
      attributed_frame += frame.cycles;
      ++frame_count;
    }
  }
  const double stage_cov = record.total_cycles <= 0.0
                               ? 1.0
                               : attributed_stage / record.total_cycles;
  const double frame_cov = record.total_cycles <= 0.0
                               ? 1.0
                               : attributed_frame / record.total_cycles;
  std::snprintf(line, sizeof(line),
                "\nattribution: %s of cycles in named stages, %s in %llu "
                "frames\n",
                format_pct(stage_cov).c_str(), format_pct(frame_cov).c_str(),
                static_cast<unsigned long long>(frame_count));
  out += line;
  return out;
}

}  // namespace fdet::obs
