// Perfetto/chrome://tracing-compatible tracing for the virtual GPU.
//
// Two time domains meet here, and the trace keeps them on separate
// process tracks:
//
//   pid 0         host wall-clock spans (TraceSession::span) around the
//                 simulator's own work: pipeline stages, boosting rounds.
//   pid 1, 2, ... one process per added vgpu::Timeline ("vgpu:<label>"),
//                 in *virtual* device time: one thread track per CUDA
//                 stream (the paper's Fig. 6 rows), one per SM, plus
//                 counter tracks for busy SMs and resident warps.
//
// Everything serializes to the Chrome trace-event JSON format
// ({"traceEvents": [...]}), which loads directly in https://ui.perfetto.dev
// or chrome://tracing. Stream/SM intervals come from the same
// Timeline::records_by_stream / Timeline::sm_spans model that backs the
// ASCII render_trace, so the two views can never drift apart.
#pragma once

#include <chrono>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "vgpu/scheduler.h"

namespace fdet::obs {

/// One trace-event JSON entry. `phase` uses the Chrome trace-event
/// phase codes: 'X' complete, 'C' counter, 'i' instant, 'M' metadata.
struct TraceEvent {
  std::string name;
  char phase = 'X';
  int pid = 0;
  int tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;  ///< complete events only
  std::vector<std::pair<std::string, double>> num_args;
  std::vector<std::pair<std::string, std::string>> str_args;
};

/// Serializes events as a Chrome trace-event document.
std::string chrome_trace_json(const std::vector<TraceEvent>& events);

/// Converts one scheduled timeline into trace events under process `pid`:
/// stream tracks (tid = stream id), SM tracks (tid = kSmTrackBase + sm),
/// and `busy_sms` / `resident_warps` counter tracks. Usable standalone;
/// TraceSession::add_timeline builds on it.
inline constexpr int kSmTrackBase = 1000;
std::vector<TraceEvent> timeline_trace_events(const vgpu::Timeline& timeline,
                                              int pid,
                                              const std::string& label);

/// Collects host spans and device timelines for one run and writes the
/// combined Chrome trace. Host spans are wall-clock microseconds since
/// construction. All methods are thread-safe.
class TraceSession {
 public:
  TraceSession();
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// RAII host span: records a complete event on the host track when it
  /// goes out of scope. Move-only.
  class Span {
   public:
    Span(Span&& other) noexcept;
    Span& operator=(Span&&) = delete;
    Span(const Span&) = delete;
    ~Span();

   private:
    friend class TraceSession;
    Span(TraceSession* session, std::string name, double start_us)
        : session_(session), name_(std::move(name)), start_us_(start_us) {}
    TraceSession* session_;
    std::string name_;
    double start_us_;
  };

  Span span(std::string name);
  /// Zero-duration marker on the host track.
  void instant(std::string name);
  /// Wall-clock microseconds since the session started.
  double now_us() const;

  /// Adds a scheduled timeline as a new "vgpu:<label>" trace process and
  /// returns its pid.
  int add_timeline(const std::string& label, const vgpu::Timeline& timeline);
  /// Adds every device of a multi-GPU schedule ("vgpu:<label>:devN").
  void add_timeline(const std::string& label,
                    const vgpu::MultiDeviceTimeline& timeline);

  void add_event(TraceEvent event);

  std::size_t event_count() const;
  std::vector<TraceEvent> events() const;  ///< snapshot
  std::string to_json() const;
  /// Writes to_json(); throws core::CheckError when the file cannot be
  /// written.
  void write_file(const std::string& path) const;

  /// Ambient session used by library-internal instrumentation
  /// (detect::Pipeline stages, train boosting rounds) via ScopedSpan.
  /// At most one session is ambient at a time; install() replaces the
  /// previous one, uninstall() clears it only if this session holds it.
  /// The destructor uninstalls automatically.
  void install();
  void uninstall();
  static TraceSession* current();

 private:
  void end_span(const std::string& name, double start_us);

  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  int next_pid_ = 1;  // pid 0 is the host process
  std::chrono::steady_clock::time_point epoch_;
};

/// Opens a span on the ambient session; a silent no-op when none is
/// installed, so library code can instrument unconditionally.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name) {
    if (TraceSession* session = TraceSession::current()) {
      span_.emplace(session->span(std::move(name)));
    }
  }

 private:
  std::optional<TraceSession::Span> span_;
};

/// Publishes the scheduler-level metrics of one timeline into `registry`
/// under `labels` — the quantities the paper reads off the CUDA profiler:
/// makespan, SM utilization, branch efficiency, SIMD efficiency, DRAM read
/// throughput, plus launch/block/byte totals and a kernel-duration
/// histogram.
void publish_timeline(Registry& registry, const vgpu::Timeline& timeline,
                      const Labels& labels = {});

/// Multi-GPU variant: per-device metrics labeled device=N plus the overall
/// makespan.
void publish_timeline(Registry& registry,
                      const vgpu::MultiDeviceTimeline& timeline,
                      const Labels& labels = {});

}  // namespace fdet::obs
