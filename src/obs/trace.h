// Perfetto/chrome://tracing-compatible tracing for the virtual GPU.
//
// Two time domains meet here, and the trace keeps them on separate
// process tracks:
//
//   pid 0         host wall-clock spans (TraceSession::span) around the
//                 simulator's own work: pipeline stages, boosting rounds.
//   pid 1, 2, ... one process per added vgpu::Timeline ("vgpu:<label>"),
//                 in *virtual* device time: one thread track per CUDA
//                 stream (the paper's Fig. 6 rows), one per SM, plus
//                 counter tracks for busy SMs and resident warps.
//
// Everything serializes to the Chrome trace-event JSON format
// ({"traceEvents": [...]}), which loads directly in https://ui.perfetto.dev
// or chrome://tracing. Stream/SM intervals come from the same
// Timeline::records_by_stream / Timeline::sm_spans model that backs the
// ASCII render_trace, so the two views can never drift apart.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "vgpu/scheduler.h"

namespace fdet::obs {

/// Causal trace context: every frame gets a trace_id, every stage/launch
/// under it a span_id chained to its parent. Ids are deterministic hashes
/// of (seed, frame, span name), so two runs with the same seed produce
/// identical ids — dumps diff cleanly. trace_id == 0 means "no context".
///
/// Propagation rules (DESIGN.md §8): the serving loop creates one frame
/// context per frame and installs it with ScopedTraceContext; spans opened
/// while a context is installed automatically become children of it, and
/// control-plane decisions (retry, breaker, ladder, shed, quarantine)
/// record the ambient context in their flight-recorder events so an
/// anomaly dump names the exact frame and cause chain.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;

  bool valid() const { return trace_id != 0; }
};

/// Root context for one frame, derived from (seed, frame index).
TraceContext make_frame_context(std::uint64_t seed, int frame);
/// Child context: same trace, parent_span_id = parent.span_id, fresh
/// span_id derived from (parent span, name).
TraceContext child_context(const TraceContext& parent,
                           const std::string& name);
/// 16-digit lowercase hex rendering used in trace args and dump JSON.
std::string hex_id(std::uint64_t id);

/// Installs a trace context for the current thread (stack discipline —
/// contexts nest). Library spans and flight-recorder events pick up the
/// innermost installed context.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext context);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

  const TraceContext& context() const { return context_; }

 private:
  TraceContext context_;
  ScopedTraceContext* prev_;
};

/// Innermost installed context of the current thread, or nullptr.
const TraceContext* current_trace_context();

/// One trace-event JSON entry. `phase` uses the Chrome trace-event
/// phase codes: 'X' complete, 'C' counter, 'i' instant, 'M' metadata.
struct TraceEvent {
  std::string name;
  char phase = 'X';
  int pid = 0;
  int tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;  ///< complete events only
  std::vector<std::pair<std::string, double>> num_args;
  std::vector<std::pair<std::string, std::string>> str_args;
};

/// Serializes events as a Chrome trace-event document. `root_extras` are
/// additional root-level members appended after "traceEvents": each pair
/// is (key, raw JSON value) — Perfetto ignores unknown root keys, so the
/// flight recorder uses this to attach its anomaly header.
std::string chrome_trace_json(
    const std::vector<TraceEvent>& events,
    const std::vector<std::pair<std::string, std::string>>& root_extras = {});

/// Converts one scheduled timeline into trace events under process `pid`:
/// stream tracks (tid = stream id), SM tracks (tid = kSmTrackBase + sm),
/// and `busy_sms` / `resident_warps` counter tracks. Usable standalone;
/// TraceSession::add_timeline builds on it.
inline constexpr int kSmTrackBase = 1000;
std::vector<TraceEvent> timeline_trace_events(const vgpu::Timeline& timeline,
                                              int pid,
                                              const std::string& label);

/// Collects host spans and device timelines for one run and writes the
/// combined Chrome trace. Host spans are wall-clock microseconds since
/// construction. All methods are thread-safe.
class TraceSession {
 public:
  TraceSession();
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// RAII host span: records a complete event on the host track when it
  /// goes out of scope. Move-only.
  class Span {
   public:
    Span(Span&& other) noexcept;
    Span& operator=(Span&&) = delete;
    Span(const Span&) = delete;
    ~Span();

   private:
    friend class TraceSession;
    Span(TraceSession* session, std::uint64_t token)
        : session_(session), token_(token) {}
    TraceSession* session_;
    std::uint64_t token_;
  };

  /// Opens a span. The span captures the thread's installed TraceContext
  /// (current_trace_context()) as a child context, so the exported event
  /// carries trace_id/span_id/parent_span_id args. Spans still open when
  /// events()/to_json() runs are flushed as `incomplete="true"` events
  /// with the duration observed so far — a crash dump never loses the
  /// stage that was in flight.
  Span span(std::string name);
  /// Zero-duration marker on the host track, annotated with the thread's
  /// installed TraceContext (if any).
  void instant(std::string name);
  /// Wall-clock microseconds since the session started.
  double now_us() const;

  /// Adds a scheduled timeline as a new "vgpu:<label>" trace process and
  /// returns its pid.
  int add_timeline(const std::string& label, const vgpu::Timeline& timeline);
  /// Adds every device of a multi-GPU schedule ("vgpu:<label>:devN").
  void add_timeline(const std::string& label,
                    const vgpu::MultiDeviceTimeline& timeline);

  void add_event(TraceEvent event);

  /// Closed events recorded so far (open spans are not counted).
  std::size_t event_count() const;
  /// Snapshot: closed events plus one synthesized `incomplete="true"`
  /// event per still-open span. An empty session still serializes to a
  /// valid Perfetto document (process metadata only).
  std::vector<TraceEvent> events() const;
  std::string to_json() const;
  /// Writes to_json(); throws core::CheckError when the file cannot be
  /// written.
  void write_file(const std::string& path) const;

  /// Ambient session used by library-internal instrumentation
  /// (detect::Pipeline stages, train boosting rounds) via ScopedSpan.
  /// At most one session is ambient at a time; install() replaces the
  /// previous one, uninstall() clears it only if this session holds it.
  /// The destructor uninstalls automatically.
  void install();
  void uninstall();
  static TraceSession* current();

 private:
  struct OpenSpan {
    std::string name;
    double start_us = 0.0;
    TraceContext context;
  };

  void end_span(std::uint64_t token);
  TraceEvent synthesize(const OpenSpan& open, double now) const;

  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::map<std::uint64_t, OpenSpan> open_spans_;
  std::uint64_t next_span_token_ = 1;
  int next_pid_ = 1;  // pid 0 is the host process
  std::chrono::steady_clock::time_point epoch_;
};

/// Opens a span on the ambient session; a silent no-op when none is
/// installed, so library code can instrument unconditionally.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name) {
    if (TraceSession* session = TraceSession::current()) {
      span_.emplace(session->span(std::move(name)));
    }
  }

 private:
  std::optional<TraceSession::Span> span_;
};

/// Publishes the scheduler-level metrics of one timeline into `registry`
/// under `labels` — the quantities the paper reads off the CUDA profiler:
/// makespan, SM utilization, branch efficiency, SIMD efficiency, DRAM read
/// throughput, plus launch/block/byte totals and a kernel-duration
/// histogram.
void publish_timeline(Registry& registry, const vgpu::Timeline& timeline,
                      const Labels& labels = {});

/// Multi-GPU variant: per-device metrics labeled device=N plus the overall
/// makespan.
void publish_timeline(Registry& registry,
                      const vgpu::MultiDeviceTimeline& timeline,
                      const Labels& labels = {});

}  // namespace fdet::obs
