#include "obs/slo.h"

#include <algorithm>

#include "core/check.h"
#include "obs/metrics.h"

namespace fdet::obs {

SloEngine::SloEngine(SloOptions options)
    : options_(options),
      latency_window_(std::max(1, options.window_slots), options.sketch),
      queue_depth_(options.sketch) {
  FDET_CHECK(options_.miss_budget > 0.0 && options_.miss_budget <= 1.0)
      << "miss_budget must be in (0, 1], got " << options_.miss_budget;
  FDET_CHECK(options_.window_frames >= 1)
      << "window_frames must be >= 1, got " << options_.window_frames;
  FDET_CHECK(options_.window_slots >= 1)
      << "window_slots must be >= 1, got " << options_.window_slots;
  FDET_CHECK(options_.fast_window_frames >= 1)
      << "fast_window_frames must be >= 1, got " << options_.fast_window_frames;
  FDET_CHECK(options_.recover_after >= 1)
      << "recover_after must be >= 1, got " << options_.recover_after;
  frames_per_slot_ =
      std::max(1, options_.window_frames / std::max(1, options_.window_slots));
  slot_counts_.assign(static_cast<std::size_t>(latency_window_.slots()),
                      {0, 0});
  fast_ring_.assign(static_cast<std::size_t>(options_.fast_window_frames), 0);
}

SloDecision SloEngine::observe_frame(double latency_ms) {
  FDET_CHECK(options_.deadline_ms > 0.0)
      << "SloEngine needs a positive deadline_ms before observing frames";
  SloDecision decision;
  decision.miss = latency_ms > options_.deadline_ms;

  // Slow window: sketch + per-slot miss accounting, rotated in lockstep.
  latency_window_.observe(latency_ms);
  auto& [slot_frames, slot_misses] = slot_counts_[slot_head_];
  ++slot_frames;
  if (decision.miss) {
    ++slot_misses;
  }
  if (++frames_in_slot_ >= frames_per_slot_) {
    frames_in_slot_ = 0;
    latency_window_.rotate();
    slot_head_ = (slot_head_ + 1) % slot_counts_.size();
    slot_counts_[slot_head_] = {0, 0};
  }

  // Fast window: circular miss flags.
  if (fast_seen_ >= fast_ring_.size()) {
    fast_misses_ -= fast_ring_[fast_head_];
  }
  fast_ring_[fast_head_] = decision.miss ? 1 : 0;
  fast_misses_ += fast_ring_[fast_head_];
  fast_head_ = (fast_head_ + 1) % fast_ring_.size();
  ++fast_seen_;

  ++frames_;
  if (decision.miss) {
    ++misses_;
  }

  decision.fast_burn = fast_miss_ratio() / options_.miss_budget;
  decision.slow_burn = window_miss_ratio() / options_.miss_budget;
  decision.degrade = decision.fast_burn >= options_.degrade_burn;

  // Recovery state machine — identical to the pre-SLO ladder: the streak
  // grows only on comfortably-in-budget frames and resets on a miss, on a
  // close-to-the-edge frame, and when recovery fires.
  if (decision.miss) {
    good_streak_ = 0;
  } else if (latency_ms < options_.recover_fraction * options_.deadline_ms) {
    if (++good_streak_ >= options_.recover_after) {
      good_streak_ = 0;
      decision.recover = true;
    }
  } else {
    good_streak_ = 0;
  }
  return decision;
}

void SloEngine::observe_stage(const std::string& stage, double latency_ms) {
  auto it = stage_latency_.find(stage);
  if (it == stage_latency_.end()) {
    it = stage_latency_.emplace(stage, QuantileSketch(options_.sketch)).first;
  }
  it->second.observe(latency_ms);
}

void SloEngine::observe_queue_depth(double depth) {
  queue_depth_.observe(depth);
}

void SloEngine::reset_recovery() { good_streak_ = 0; }

double SloEngine::window_miss_ratio() const {
  std::uint64_t frames = 0;
  std::uint64_t misses = 0;
  for (const auto& [slot_frames, slot_misses] : slot_counts_) {
    frames += slot_frames;
    misses += slot_misses;
  }
  if (frames == 0) {
    return 0.0;
  }
  return static_cast<double>(misses) / static_cast<double>(frames);
}

double SloEngine::fast_miss_ratio() const {
  const std::uint64_t live = std::min<std::uint64_t>(fast_seen_,
                                                     fast_ring_.size());
  if (live == 0) {
    return 0.0;
  }
  return static_cast<double>(fast_misses_) / static_cast<double>(live);
}

SloSnapshot SloEngine::snapshot() const {
  SloSnapshot snap;
  snap.frames = frames_;
  snap.misses = misses_;
  snap.miss_ratio =
      frames_ == 0 ? 0.0
                   : static_cast<double>(misses_) / static_cast<double>(frames_);
  snap.window_miss_ratio = window_miss_ratio();
  snap.fast_burn = fast_miss_ratio() / options_.miss_budget;
  snap.slow_burn = snap.window_miss_ratio / options_.miss_budget;
  if (!latency_window_.empty()) {
    const QuantileSketch merged = latency_window_.merged();
    snap.p50_ms = merged.quantile(0.50);
    snap.p95_ms = merged.quantile(0.95);
    snap.p99_ms = merged.quantile(0.99);
    snap.p999_ms = merged.quantile(0.999);
    snap.max_relative_error = merged.max_relative_error();
  }
  return snap;
}

std::vector<std::string> SloEngine::stages() const {
  std::vector<std::string> names;
  names.reserve(stage_latency_.size());
  for (const auto& [name, sketch] : stage_latency_) {
    names.push_back(name);
  }
  return names;
}

double SloEngine::stage_quantile(const std::string& stage, double q) const {
  const auto it = stage_latency_.find(stage);
  FDET_CHECK(it != stage_latency_.end())
      << "no latency recorded for stage '" << stage << "'";
  return it->second.quantile(q);
}

double SloEngine::queue_depth_quantile(double q) const {
  return queue_depth_.quantile(q);
}

void SloEngine::publish(Registry& registry) const {
  const SloSnapshot snap = snapshot();
  registry.gauge("slo.frames").set(static_cast<double>(snap.frames));
  registry.gauge("slo.misses").set(static_cast<double>(snap.misses));
  registry.gauge("slo.deadline_miss_ratio").set(snap.miss_ratio);
  registry.gauge("slo.window_miss_ratio").set(snap.window_miss_ratio);
  registry.gauge("slo.burn_rate", {{"window", "fast"}}).set(snap.fast_burn);
  registry.gauge("slo.burn_rate", {{"window", "slow"}}).set(snap.slow_burn);
  registry.gauge("slo.deadline_ms").set(options_.deadline_ms);
  registry.gauge("slo.sketch_error_bound").set(snap.max_relative_error);
  if (snap.frames > 0) {
    registry.gauge("slo.latency_p50_ms").set(snap.p50_ms);
    registry.gauge("slo.latency_p95_ms").set(snap.p95_ms);
    registry.gauge("slo.latency_p99_ms").set(snap.p99_ms);
    registry.gauge("slo.latency_p999_ms").set(snap.p999_ms);
  }
  for (const auto& [stage, sketch] : stage_latency_) {
    if (sketch.empty()) {
      continue;
    }
    registry.gauge("slo.stage_p50_ms", {{"stage", stage}})
        .set(sketch.quantile(0.50));
    registry.gauge("slo.stage_p99_ms", {{"stage", stage}})
        .set(sketch.quantile(0.99));
  }
  if (!queue_depth_.empty()) {
    registry.gauge("slo.queue_depth_p50").set(queue_depth_.quantile(0.50));
    registry.gauge("slo.queue_depth_p99").set(queue_depth_.quantile(0.99));
    registry.gauge("slo.queue_depth_max").set(queue_depth_.max_observed());
  }
}

}  // namespace fdet::obs
