#include "obs/metrics.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "core/check.h"
#include "obs/json.h"

namespace fdet::obs {

std::string format_labels(const Labels& labels) {
  std::string out;
  for (const auto& [key, value] : labels) {
    if (!out.empty()) {
      out += ',';
    }
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

void Counter::add(double delta) {
  FDET_CHECK(delta >= 0.0) << "counter deltas must be non-negative";
  std::lock_guard lock(registry_->mutex_);
  value_ += delta;
}

double Counter::value() const {
  std::lock_guard lock(registry_->mutex_);
  return value_;
}

void Gauge::set(double value) {
  std::lock_guard lock(registry_->mutex_);
  value_ = value;
}

double Gauge::value() const {
  std::lock_guard lock(registry_->mutex_);
  return value_;
}

Histogram::Histogram(Registry* registry, std::vector<double> bounds)
    : registry_(registry), bounds_(std::move(bounds)) {
  FDET_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bucket bounds must be ascending";
  counts_.assign(bounds_.size() + 1, 0.0);  // trailing +inf bucket
}

void Histogram::observe(double value, double count) {
  FDET_CHECK(count >= 0.0) << "histogram counts must be non-negative";
  std::lock_guard lock(registry_->mutex_);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  counts_[static_cast<std::size_t>(it - bounds_.begin())] += count;
  sum_ += value * count;
  count_ += count;
}

double Histogram::sum() const {
  std::lock_guard lock(registry_->mutex_);
  return sum_;
}

double Histogram::count() const {
  std::lock_guard lock(registry_->mutex_);
  return count_;
}

std::vector<double> Histogram::bucket_counts() const {
  std::lock_guard lock(registry_->mutex_);
  std::vector<double> cumulative(counts_.size(), 0.0);
  double running = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    running += counts_[i];
    cumulative[i] = running;
  }
  return cumulative;
}

std::vector<double> linear_buckets(double start, double width, int count) {
  FDET_CHECK(width > 0.0 && count > 0);
  std::vector<double> bounds(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    bounds[static_cast<std::size_t>(i)] = start + width * i;
  }
  return bounds;
}

Registry::Entry& Registry::entry(const std::string& name, const Labels& labels,
                                 const std::string& kind) {
  const auto key = std::make_pair(name, format_labels(labels));
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    FDET_CHECK(it->second.kind == kind)
        << "metric '" << name << "' already registered as " << it->second.kind;
    return it->second;
  }
  if (entries_.size() >= series_limit_) {
    throw MetricCardinalityError(
        "metric series cardinality cap (" + std::to_string(series_limit_) +
        ") reached creating '" + name + "{" + key.second +
        "}' — an unbounded label value is leaking into a metric identity");
  }
  Entry& created = entries_[key];
  created.name = name;
  created.labels = labels;
  created.kind = kind;
  return created;
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  std::lock_guard lock(mutex_);
  Entry& e = entry(name, labels, "counter");
  if (!e.counter) {
    e.counter.reset(new Counter(this));
  }
  return *e.counter;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  std::lock_guard lock(mutex_);
  Entry& e = entry(name, labels, "gauge");
  if (!e.gauge) {
    e.gauge.reset(new Gauge(this));
  }
  return *e.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds,
                               const Labels& labels) {
  std::lock_guard lock(mutex_);
  Entry& e = entry(name, labels, "histogram");
  if (!e.histogram) {
    e.histogram.reset(new Histogram(this, std::move(bounds)));
  }
  return *e.histogram;
}

void Registry::set_series_limit(std::size_t limit) {
  FDET_CHECK(limit >= 1) << "series limit must be >= 1";
  std::lock_guard lock(mutex_);
  series_limit_ = limit;
}

std::size_t Registry::series_limit() const {
  std::lock_guard lock(mutex_);
  return series_limit_;
}

bool Registry::empty() const {
  std::lock_guard lock(mutex_);
  return entries_.empty();
}

std::size_t Registry::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

std::vector<Registry::Sample> Registry::samples() const {
  std::vector<Sample> out;
  std::lock_guard lock(mutex_);
  for (const auto& [key, e] : entries_) {
    Sample sample;
    sample.name = e.name;
    sample.kind = e.kind;
    sample.labels = e.labels;
    if (e.counter) {
      sample.value = e.counter->value_;
    } else if (e.gauge) {
      sample.value = e.gauge->value_;
    } else if (e.histogram) {
      const Histogram& h = *e.histogram;
      sample.value = h.sum_;
      sample.count = h.count_;
      sample.bounds = h.bounds_;
      double running = 0.0;
      for (const double c : h.counts_) {
        running += c;
        sample.bucket_counts.push_back(running);
      }
    }
    out.push_back(std::move(sample));
  }
  return out;
}

std::string Registry::to_json() const {
  std::ostringstream out;
  out << "{\"metrics\":[";
  bool first = true;
  for (const Sample& s : samples()) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "{\"name\":\"" << json::escape(s.name) << "\",\"kind\":\"" << s.kind
        << "\",\"labels\":{";
    for (std::size_t i = 0; i < s.labels.size(); ++i) {
      if (i > 0) out << ",";
      out << "\"" << json::escape(s.labels[i].first) << "\":\""
          << json::escape(s.labels[i].second) << "\"";
    }
    out << "}";
    if (s.kind == "histogram") {
      out << ",\"sum\":" << json::number(s.value)
          << ",\"count\":" << json::number(s.count) << ",\"buckets\":[";
      for (std::size_t i = 0; i < s.bucket_counts.size(); ++i) {
        if (i > 0) out << ",";
        out << "{\"le\":";
        if (i < s.bounds.size()) {
          out << json::number(s.bounds[i]);
        } else {
          out << "\"inf\"";
        }
        out << ",\"count\":" << json::number(s.bucket_counts[i]) << "}";
      }
      out << "]";
    } else {
      out << ",\"value\":" << json::number(s.value);
    }
    out << "}";
  }
  out << "]}";
  return out.str();
}

std::string Registry::to_csv() const {
  std::ostringstream out;
  out << "name,kind,labels,field,value\n";
  const auto row = [&](const Sample& s, const std::string& field,
                       double value) {
    // Labels may contain commas between pairs; quote the cell.
    out << s.name << "," << s.kind << ",\"" << format_labels(s.labels)
        << "\"," << field << "," << json::number(value) << "\n";
  };
  for (const Sample& s : samples()) {
    if (s.kind == "histogram") {
      row(s, "sum", s.value);
      row(s, "count", s.count);
      for (std::size_t i = 0; i < s.bucket_counts.size(); ++i) {
        const std::string le =
            i < s.bounds.size() ? "le_" + json::number(s.bounds[i]) : "le_inf";
        row(s, le, s.bucket_counts[i]);
      }
    } else {
      row(s, "value", s.value);
    }
  }
  return out.str();
}

void Registry::write_file(const std::string& path) const {
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  std::ofstream out(path, std::ios::binary);
  FDET_CHECK(out.good()) << "cannot write metrics file '" << path << "'";
  out << (csv ? to_csv() : to_json());
  FDET_CHECK(out.good()) << "error writing metrics file '" << path << "'";
}

}  // namespace fdet::obs
