// Minimal JSON support for the observability layer: string escaping,
// number formatting, and a small DOM with a validating parser.
//
// The exporters (trace.h, metrics.h) *stream* their output — they only
// need escape()/number() — while tests and the bench smoke targets
// re-parse emitted files into Value to validate schema and content.
// Deliberately tiny: no external dependencies, throws core::CheckError on
// malformed input.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace fdet::obs::json {

/// Escapes `text` for use inside a double-quoted JSON string (quotes and
/// backslashes escaped, control characters as \u00XX).
std::string escape(std::string_view text);

/// Formats a finite double compactly: integral values print without a
/// fractional part, others with enough digits to round-trip. NaN and
/// infinities (invalid JSON) are emitted as `null` — deterministic, still
/// parseable, and visibly degenerate (unlike a silent 0). Readers that
/// expect a number treat the null as NaN (see RunRecord::from_json).
std::string number(double value);

/// Parsed JSON value. Objects preserve insertion order of the source text.
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Value>;
  using Member = std::pair<std::string, Value>;
  using Object = std::vector<Member>;

  Value() = default;
  static Value make_bool(bool b);
  static Value make_number(double n);
  static Value make_string(std::string s);
  static Value make_array(Array a);
  static Value make_object(Object o);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; FDET_CHECK the kind.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  const Value* find(std::string_view key) const;
  /// Object member access; FDET_CHECKs presence.
  const Value& at(std::string_view key) const;

  /// Compact serialization (inverse of parse, modulo number formatting).
  std::string dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
/// Throws core::CheckError with an offset on malformed input.
Value parse(std::string_view text);

/// Reads and parses a JSON file; throws core::CheckError when the file is
/// unreadable or malformed.
Value parse_file(const std::string& path);

}  // namespace fdet::obs::json
