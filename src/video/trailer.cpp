#include "video/trailer.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/rng.h"
#include "facegen/background.h"

namespace fdet::video {

std::vector<TrailerSpec> table2_trailers(int frames_per_trailer, int width,
                                         int height) {
  // Face densities tuned so that per-trailer detection cost orders like
  // paper Table II (drama/comedy ensembles like "50/50" carry more and
  // larger faces than action-heavy cuts like "American Reunion").
  const std::vector<std::pair<std::string, double>> presets = {
      {"21 Jump Street", 1.6},
      {"50/50", 4.2},
      {"American Reunion", 1.0},
      {"Bad Teacher", 3.6},
      {"Friends With Kids", 3.2},
      {"One For The Money", 1.7},
      {"The Dictator", 3.3},
      {"Tim & Eric's Billion Dollar Movie", 3.8},
      {"Unicorn City", 2.0},
      {"What To Expect When You're Expecting", 1.4},
  };
  std::vector<TrailerSpec> specs;
  std::uint64_t seed = 5050;
  for (const auto& [title, density] : presets) {
    TrailerSpec spec;
    spec.title = title;
    spec.width = width;
    spec.height = height;
    spec.frames = frames_per_trailer;
    spec.face_density = density;
    spec.seed = seed;
    seed = core::hash_combine(seed, 0x7ea11e5);
    specs.push_back(std::move(spec));
  }
  return specs;
}

SyntheticTrailer::SyntheticTrailer(TrailerSpec spec) : spec_(std::move(spec)) {
  FDET_CHECK(spec_.width >= 48 && spec_.height >= 48);
  FDET_CHECK(spec_.frames >= 1 && spec_.shot_frames >= 1);
  FDET_CHECK(spec_.face_density >= 0.0);

  core::Rng rng(core::hash_combine(spec_.seed, 0x5e07));
  int next_track = 0;
  const int max_face = std::clamp(spec_.height / 3, 36, 320);
  for (int first = 0; first < spec_.frames; first += spec_.shot_frames) {
    Shot shot;
    shot.first_frame = first;
    shot.frames = std::min(spec_.shot_frames, spec_.frames - first);
    shot.background_seed = rng();

    // Face count per shot: density scaled by +-60 % shot-to-shot jitter
    // (zero density means a face-free trailer).
    const int count = static_cast<int>(
        std::lround(spec_.face_density * rng.uniform(0.4, 1.6)));
    for (int i = 0; i < count; ++i) {
      Track track;
      track.id = next_track++;
      // Log-uniform sizes: many small faces, occasional large ones.
      const double t = rng.uniform();
      track.size = static_cast<int>(
          36.0 * std::pow(static_cast<double>(max_face) / 36.0, t * t));
      track.size = std::clamp(track.size, 36, max_face);
      track.x0 = rng.uniform(0.0, std::max(1.0, double(spec_.width - track.size)));
      track.y0 = rng.uniform(0.0, std::max(1.0, double(spec_.height - track.size)));
      track.vx = rng.uniform(-2.0, 2.0);
      track.vy = rng.uniform(-1.0, 1.0);
      track.wobble_amp = rng.uniform(0.0, 4.0);
      track.wobble_freq = rng.uniform(0.02, 0.12);
      track.params = facegen::FaceParams::random(rng);
      shot.tracks.push_back(track);
    }
    shots_.push_back(std::move(shot));
  }
  background_cache_.resize(shots_.size());
  face_cache_.resize(static_cast<std::size_t>(next_track));
  face_instance_cache_.resize(static_cast<std::size_t>(next_track));
}

int SyntheticTrailer::shot_of(int frame) const {
  FDET_CHECK(frame >= 0 && frame < spec_.frames)
      << "frame " << frame << " of " << spec_.frames;
  return frame / spec_.shot_frames;
}

std::pair<double, double> SyntheticTrailer::track_position(const Track& track,
                                                           int frame_in_shot) {
  const double t = static_cast<double>(frame_in_shot);
  const double x =
      track.x0 + track.vx * t +
      track.wobble_amp * std::sin(2.0 * 3.14159265 * track.wobble_freq * t);
  const double y = track.y0 + track.vy * t;
  return {x, y};
}

const img::ImageU8& SyntheticTrailer::background_of(int shot) const {
  auto& cached = background_cache_[static_cast<std::size_t>(shot)];
  if (cached.empty()) {
    core::Rng rng(shots_[static_cast<std::size_t>(shot)].background_seed);
    // Movie shots: every texture family except full-frame static noise
    // (kNoise stays in the training negative pool, but a whole frame of it
    // is not plausible trailer content).
    // Clutter ("crowd") shots are deliberately rarer: they carry face-like
    // distractors and cost accordingly, like the paper's busy scenes.
    static constexpr facegen::BackgroundStyle kShotStyles[] = {
        facegen::BackgroundStyle::kGradient, facegen::BackgroundStyle::kBlobs,
        facegen::BackgroundStyle::kStripes, facegen::BackgroundStyle::kBlocks,
        facegen::BackgroundStyle::kGradient, facegen::BackgroundStyle::kBlobs,
        facegen::BackgroundStyle::kBlocks,  facegen::BackgroundStyle::kClutter,
    };
    const auto style = kShotStyles[rng.uniform_int(0, 7)];
    cached = facegen::render_background(style, spec_.width, spec_.height, rng);
  }
  return cached;
}

const img::ImageU8& SyntheticTrailer::face_image_of(const Track& track) const {
  auto& cached = face_cache_[static_cast<std::size_t>(track.id)];
  if (cached.empty()) {
    face_instance_cache_[static_cast<std::size_t>(track.id)] =
        facegen::render_face(track.params, track.size);
    cached = face_instance_cache_[static_cast<std::size_t>(track.id)].image;
  }
  return cached;
}

img::ImageU8 SyntheticTrailer::render_luma(int index) const {
  const int shot_index = shot_of(index);
  const Shot& shot = shots_[static_cast<std::size_t>(shot_index)];
  img::ImageU8 frame = background_of(shot_index);

  const int offset = index - shot.first_frame;
  for (const Track& track : shot.tracks) {
    const img::ImageU8& face = face_image_of(track);
    auto [fx, fy] = track_position(track, offset);
    const int x0 = std::clamp(static_cast<int>(std::lround(fx)), 0,
                              spec_.width - track.size);
    const int y0 = std::clamp(static_cast<int>(std::lround(fy)), 0,
                              spec_.height - track.size);
    for (int y = 0; y < track.size; ++y) {
      for (int x = 0; x < track.size; ++x) {
        frame(x0 + x, y0 + y) = face(x, y);
      }
    }
  }
  return frame;
}

std::vector<FaceGt> SyntheticTrailer::ground_truth(int index) const {
  const int shot_index = shot_of(index);
  const Shot& shot = shots_[static_cast<std::size_t>(shot_index)];
  const int offset = index - shot.first_frame;

  std::vector<FaceGt> gt;
  gt.reserve(shot.tracks.size());
  for (const Track& track : shot.tracks) {
    (void)face_image_of(track);  // ensure the instance cache is filled
    const facegen::FaceInstance& instance =
        face_instance_cache_[static_cast<std::size_t>(track.id)];
    auto [fx, fy] = track_position(track, offset);
    const int x0 = std::clamp(static_cast<int>(std::lround(fx)), 0,
                              spec_.width - track.size);
    const int y0 = std::clamp(static_cast<int>(std::lround(fy)), 0,
                              spec_.height - track.size);
    FaceGt face;
    face.box = img::Rect{x0, y0, track.size, track.size};
    face.left_eye_x = x0 + instance.left_eye_x;
    face.left_eye_y = y0 + instance.left_eye_y;
    face.right_eye_x = x0 + instance.right_eye_x;
    face.right_eye_y = y0 + instance.right_eye_y;
    face.track_id = track.id;
    gt.push_back(face);
  }
  return gt;
}

}  // namespace fdet::video
