// Mock hardware H.264 decoder.
//
// Stand-in for the NVCUVID fixed-function path of paper Sec. III-A/V: the
// "decoder" synthesizes the frame (our equivalent of bitstream decode),
// emits NV12 — downstream stages consume only the luma plane, exactly as
// the paper does — and reports a decode latency from the paper's measured
// envelope (8–10 ms per 1080p frame, scaling with pixel count). Because
// decode runs on dedicated silicon concurrently with the CUDA kernels,
// the pipeline overlaps it with detection when computing throughput.
#pragma once

#include "img/nv12.h"
#include "video/trailer.h"

namespace fdet::video {

struct DecodedFrame {
  int index = 0;
  img::Nv12Frame frame;
  double decode_ms = 0.0;        ///< modeled fixed-function decode latency
  std::vector<FaceGt> ground_truth;
};

class MockH264Decoder {
 public:
  explicit MockH264Decoder(const SyntheticTrailer& trailer);

  /// Decodes frame `index` (any order; the decoder is stateless).
  DecodedFrame decode(int index) const;

  /// Modeled decode latency for a frame of the trailer's resolution.
  double decode_latency_ms(int index) const;

  int frame_count() const { return trailer_->spec().frames; }
  const TrailerSpec& spec() const { return trailer_->spec(); }

 private:
  const SyntheticTrailer* trailer_;
};

}  // namespace fdet::video
