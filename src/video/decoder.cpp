#include "video/decoder.h"

#include "core/check.h"
#include "core/rng.h"

namespace fdet::video {

MockH264Decoder::MockH264Decoder(const SyntheticTrailer& trailer)
    : trailer_(&trailer) {}

double MockH264Decoder::decode_latency_ms(int index) const {
  const TrailerSpec& spec = trailer_->spec();
  // Paper Sec. VI-A: 8-10 ms per 1080p frame on the GTX470's VP4 decoder.
  // Latency scales with the pixel rate; per-frame jitter is deterministic
  // in (seed, frame) so runs are reproducible.
  const double pixels = static_cast<double>(spec.width) * spec.height;
  const double base = 8.0 * pixels / (1920.0 * 1080.0);
  std::uint64_t h = core::hash_combine(spec.seed,
                                       static_cast<std::uint64_t>(index));
  core::Rng rng(h);
  return base + rng.uniform(0.0, 2.0 * pixels / (1920.0 * 1080.0));
}

DecodedFrame MockH264Decoder::decode(int index) const {
  FDET_CHECK(index >= 0 && index < frame_count())
      << "frame " << index << " of " << frame_count();
  DecodedFrame out;
  out.index = index;
  out.frame = img::Nv12Frame::from_gray(trailer_->render_luma(index));
  out.decode_ms = decode_latency_ms(index);
  out.ground_truth = trailer_->ground_truth(index);
  return out;
}

}  // namespace fdet::video
