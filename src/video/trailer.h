// Synthetic movie trailers — the benchmark workload substitute for the
// paper's ten 1080p iTunes trailers (Sec. V).
//
// A trailer is a sequence of shots (scene cuts every ~3 s); each shot has
// a procedural background and a set of face tracks with fixed appearance
// and linear+sinusoidal motion. Face count varies per shot around the
// preset's density, which is what drives the per-frame latency variability
// of paper Fig. 5 and the trailer-to-trailer spread of Table II. Every
// frame carries exact ground truth (face boxes and eye centers).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "facegen/face.h"
#include "img/image.h"

namespace fdet::video {

struct TrailerSpec {
  std::string title;
  int width = 1920;
  int height = 1080;
  int frames = 240;        ///< ~10 s at 24 fps; full trailers are ~4000
  double fps = 24.0;
  int shot_frames = 72;    ///< frames per shot (3 s)
  double face_density = 2.5;  ///< mean simultaneous faces per shot
  std::uint64_t seed = 1;
};

/// The ten Table II trailer presets. Densities are chosen so the relative
/// per-trailer detection-cost ordering matches the paper's table (more
/// faces -> deeper cascade work -> higher latency).
std::vector<TrailerSpec> table2_trailers(int frames_per_trailer = 240,
                                         int width = 1920, int height = 1080);

/// Ground-truth face instance in one frame.
struct FaceGt {
  img::Rect box;
  double left_eye_x = 0.0;
  double left_eye_y = 0.0;
  double right_eye_x = 0.0;
  double right_eye_y = 0.0;
  int track_id = 0;
};

class SyntheticTrailer {
 public:
  explicit SyntheticTrailer(TrailerSpec spec);

  const TrailerSpec& spec() const { return spec_; }

  /// Renders the luminance plane of frame `index` (deterministic).
  img::ImageU8 render_luma(int index) const;

  /// Ground truth for frame `index` (faces fully inside the frame).
  std::vector<FaceGt> ground_truth(int index) const;

  int shot_of(int frame) const;
  int shot_count() const { return static_cast<int>(shots_.size()); }

 private:
  struct Track {
    int id = 0;
    int size = 48;            ///< face side in pixels
    double x0 = 0.0, y0 = 0.0;///< top-left at shot start
    double vx = 0.0, vy = 0.0;///< pixels per frame
    double wobble_amp = 0.0;
    double wobble_freq = 0.0;
    facegen::FaceParams params;
  };
  struct Shot {
    int first_frame = 0;
    int frames = 0;
    std::uint64_t background_seed = 0;
    std::vector<Track> tracks;
  };

  /// Track top-left position at a frame offset within its shot.
  static std::pair<double, double> track_position(const Track& track,
                                                  int frame_in_shot);

  const img::ImageU8& background_of(int shot) const;
  const img::ImageU8& face_image_of(const Track& track) const;

  TrailerSpec spec_;
  std::vector<Shot> shots_;

  // Render caches (backgrounds per shot, face chips per track). Rendering
  // is logically const; caches are not thread-safe by design.
  mutable std::vector<img::ImageU8> background_cache_;
  mutable std::vector<img::ImageU8> face_cache_;
  mutable std::vector<facegen::FaceInstance> face_instance_cache_;
};

}  // namespace fdet::video
