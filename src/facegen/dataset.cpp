#include "facegen/dataset.h"

#include <algorithm>

#include "core/check.h"
#include "img/pyramid.h"

namespace fdet::facegen {

TrainingSet build_training_set(int face_count, int background_count,
                               int background_size, std::uint64_t seed) {
  FDET_CHECK(face_count > 0 && background_count > 0 && background_size >= 24);
  TrainingSet set;
  set.faces.reserve(static_cast<std::size_t>(face_count));
  core::Rng face_rng(core::hash_combine(seed, 0xfacef));
  for (int i = 0; i < face_count; ++i) {
    set.faces.push_back(random_training_face(face_rng));
  }
  // Negative material must span the window statistics seen in deployment:
  // a 24x24 window over a 1080p frame is often locally smooth, while a
  // 24x24 crop of a small texture is busy. Alternate between native-scale
  // textures and zoomed-in (downscaled-from-large) renders so the stage
  // thresholds generalize to both regimes.
  set.backgrounds.reserve(static_cast<std::size_t>(background_count));
  core::Rng bg_rng(core::hash_combine(seed, 0xb6d));
  for (int i = 0; i < background_count; ++i) {
    if (i % 2 == 0) {
      set.backgrounds.push_back(
          render_background(background_size, background_size, bg_rng));
    } else {
      const int zoom = bg_rng.uniform_int(3, 8);
      const img::ImageU8 large = render_background(
          background_size * zoom, background_size * zoom, bg_rng);
      const img::ImageF32 resized = img::resize_bilinear(
          large.cast<float>(), background_size, background_size);
      img::ImageU8 smooth(background_size, background_size);
      for (int y = 0; y < background_size; ++y) {
        for (int x = 0; x < background_size; ++x) {
          smooth(x, y) = static_cast<std::uint8_t>(
              std::clamp(resized(x, y), 0.0f, 255.0f));
        }
      }
      set.backgrounds.push_back(std::move(smooth));
    }
  }
  return set;
}

MugshotBenchmark build_mugshot_benchmark(int mugshot_count,
                                         int background_count, int image_size,
                                         std::uint64_t seed) {
  FDET_CHECK(mugshot_count > 0 && background_count >= 0 && image_size >= 48);
  MugshotBenchmark bench;
  bench.mugshots.reserve(static_cast<std::size_t>(mugshot_count));
  core::Rng rng(core::hash_combine(seed, 0x3156));

  for (int i = 0; i < mugshot_count; ++i) {
    Mugshot shot;
    shot.image = render_background(image_size, image_size, rng);

    // Face size between 40 % and 75 % of the image — mugshot framing.
    const int face_size = rng.uniform_int(
        std::max(24, static_cast<int>(image_size * 0.40)),
        std::max(25, static_cast<int>(image_size * 0.75)));
    const int fx = rng.uniform_int(0, image_size - face_size);
    const int fy = rng.uniform_int(0, image_size - face_size);

    const FaceParams params = FaceParams::random(rng);
    const FaceInstance face = render_face(params, face_size);
    for (int y = 0; y < face_size; ++y) {
      for (int x = 0; x < face_size; ++x) {
        shot.image(fx + x, fy + y) = face.image(x, y);
      }
    }
    shot.face = img::Rect{fx, fy, face_size, face_size};
    shot.left_eye_x = fx + face.left_eye_x;
    shot.left_eye_y = fy + face.left_eye_y;
    shot.right_eye_x = fx + face.right_eye_x;
    shot.right_eye_y = fy + face.right_eye_y;
    bench.mugshots.push_back(std::move(shot));
  }

  bench.backgrounds.reserve(static_cast<std::size_t>(background_count));
  for (int i = 0; i < background_count; ++i) {
    bench.backgrounds.push_back(render_background(image_size, image_size, rng));
  }
  return bench;
}

}  // namespace fdet::facegen
