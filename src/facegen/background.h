// Procedural background textures — negative examples for training and the
// non-face content of the synthetic movie trailers. Several texture
// families (smooth gradients, blobs, stripes, buildings, plain noise)
// stand in for the paper's 3500 background photographs.
#pragma once

#include "core/rng.h"
#include "img/image.h"

namespace fdet::facegen {

enum class BackgroundStyle {
  kGradient = 0,
  kBlobs = 1,
  kStripes = 2,
  kBlocks = 3,   ///< rectangular structures ("buildings"/interiors)
  kNoise = 4,
  kClutter = 5,  ///< face-like distractors: oval patches with dark dot
                 ///< pairs and bars — the hard negatives that give early
                 ///< cascade stages realistic (non-trivial) pass rates
};
inline constexpr int kBackgroundStyleCount = 6;

/// Content version: bump when the synthetic face/background distributions
/// change, so cached trained cascades are invalidated.
inline constexpr int kFacegenVersion = 9;

/// Renders a w x h texture of the given style.
img::ImageU8 render_background(BackgroundStyle style, int w, int h,
                               core::Rng& rng);

/// Random style.
img::ImageU8 render_background(int w, int h, core::Rng& rng);

/// Extracts a random square patch of side `size` from `source`.
img::ImageU8 random_patch(const img::ImageU8& source, int size,
                          core::Rng& rng);

}  // namespace fdet::facegen
