#include "facegen/face.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace fdet::facegen {
namespace {

double sq(double v) { return v * v; }

/// Smoothstep falloff for soft-edged shapes: 1 inside, 0 outside, a ~1px
/// transition band controlled by `softness` (in normalized units).
double soft_inside(double d, double softness) {
  // d: signed "distance" with d <= 1 inside (normalized ellipse metric).
  const double t = std::clamp((1.0 - d) / softness, 0.0, 1.0);
  return t * t * (3.0 - 2.0 * t);
}

}  // namespace

FaceParams FaceParams::random(core::Rng& rng) {
  FaceParams p;
  p.center_x = rng.uniform(0.44, 0.56);
  p.center_y = rng.uniform(0.46, 0.58);
  p.face_rx = rng.uniform(0.30, 0.44);
  p.face_ry = rng.uniform(0.38, 0.50);
  p.eye_y = rng.uniform(0.36, 0.44);
  p.eye_dx = rng.uniform(0.14, 0.20);
  p.eye_r = rng.uniform(0.045, 0.07);
  p.brow_offset = rng.uniform(0.07, 0.11);
  p.nose_w = rng.uniform(0.05, 0.09);
  p.mouth_y = rng.uniform(0.70, 0.78);
  p.mouth_w = rng.uniform(0.16, 0.26);
  p.mouth_h = rng.uniform(0.025, 0.05);
  p.skin = rng.uniform(125.0, 210.0);
  p.feature_dark = rng.uniform(35.0, 105.0);
  p.backdrop = rng.uniform(40.0, 160.0);
  p.light_tilt = rng.uniform(-50.0, 50.0);
  p.noise_sigma = rng.uniform(5.0, 14.0);
  return p;
}

FaceInstance render_face(const FaceParams& p, int size) {
  FDET_CHECK(size >= 8) << "face size " << size;
  const double s = static_cast<double>(size);

  FaceInstance instance;
  instance.image = img::ImageU8(size, size);
  instance.left_eye_x = (p.center_x - p.eye_dx) * s;
  instance.left_eye_y = p.eye_y * s;
  instance.right_eye_x = (p.center_x + p.eye_dx) * s;
  instance.right_eye_y = p.eye_y * s;

  // Deterministic per-face noise derived from the parameters themselves,
  // so the same FaceParams always renders identically.
  core::Rng noise(core::hash_combine(
      static_cast<std::uint64_t>(p.skin * 1000.0),
      static_cast<std::uint64_t>(p.eye_y * 100000.0 + size)));

  const double soft = std::max(0.08, 2.0 / s);  // ~2 px transition band

  for (int yi = 0; yi < size; ++yi) {
    for (int xi = 0; xi < size; ++xi) {
      const double x = (static_cast<double>(xi) + 0.5) / s;
      const double y = (static_cast<double>(yi) + 0.5) / s;

      // Lateral illumination across the whole chip.
      double value = p.backdrop + p.light_tilt * (x - 0.5);

      // Face oval.
      const double face_d = sq((x - p.center_x) / p.face_rx) +
                            sq((y - p.center_y) / p.face_ry);
      const double face_m = soft_inside(face_d, soft);
      const double skin = p.skin + p.light_tilt * (x - 0.5) -
                          25.0 * std::max(0.0, face_d - 0.55);
      value = value * (1.0 - face_m) + skin * face_m;

      // Features are only visible on the face.
      double feature_m = 0.0;
      // Eyes (two soft disks).
      for (const double ex : {p.center_x - p.eye_dx, p.center_x + p.eye_dx}) {
        const double d = (sq(x - ex) + sq(y - p.eye_y) * 1.6) / sq(p.eye_r);
        feature_m = std::max(feature_m, soft_inside(d, soft * 3.0));
      }
      // Eyebrows (flat dark bars above the eyes).
      for (const double ex : {p.center_x - p.eye_dx, p.center_x + p.eye_dx}) {
        const double d = std::max(sq(x - ex) / sq(p.eye_r * 1.8),
                                  sq(y - (p.eye_y - p.brow_offset)) /
                                      sq(p.eye_r * 0.6));
        feature_m = std::max(feature_m, 0.7 * soft_inside(d, soft * 3.0));
      }
      // Mouth bar.
      {
        const double d = std::max(sq(x - p.center_x) / sq(p.mouth_w),
                                  sq(y - p.mouth_y) / sq(p.mouth_h));
        feature_m = std::max(feature_m, 0.85 * soft_inside(d, soft * 3.0));
      }
      const double featured =
          value * (1.0 - feature_m) + p.feature_dark * feature_m;
      value = value * (1.0 - face_m) + featured * face_m;

      // Bright nose ridge between the eyes and the mouth.
      const double nose_top = p.eye_y + 0.03;
      const double nose_bottom = p.mouth_y - 0.10;
      if (y > nose_top && y < nose_bottom) {
        const double d = sq(x - p.center_x) / sq(p.nose_w);
        value += face_m * 20.0 * soft_inside(d, soft * 3.0);
      }

      value += noise.normal(0.0, p.noise_sigma);
      instance.image(xi, yi) =
          static_cast<std::uint8_t>(std::clamp(value, 0.0, 255.0));
    }
  }
  return instance;
}

FaceInstance random_training_face(core::Rng& rng) {
  return render_face(FaceParams::random(rng), 24);
}

}  // namespace fdet::facegen
