// Dataset assembly: training sets (24x24 face chips + background images)
// and the mugshot accuracy benchmark (the SCFace + 3000 backgrounds
// substitute of paper Sec. VI-B).
#pragma once

#include <cstdint>
#include <vector>

#include "facegen/background.h"
#include "facegen/face.h"

namespace fdet::facegen {

/// Training material in the layout paper Sec. IV describes: positive
/// 24x24 face chips and full background images to mine negatives from.
struct TrainingSet {
  std::vector<FaceInstance> faces;        ///< 24x24 chips with eye GT
  std::vector<img::ImageU8> backgrounds;  ///< larger non-face images
};

/// Builds a deterministic training set. The paper used 11742 faces and
/// 3500 backgrounds; smaller counts keep the reproduction's training
/// minutes-scale while preserving the pipeline.
TrainingSet build_training_set(int face_count, int background_count,
                               int background_size, std::uint64_t seed);

/// One mugshot-style test image: a face of known size and position over a
/// backdrop, with the eye ground truth in image coordinates.
struct Mugshot {
  img::ImageU8 image;
  img::Rect face;  ///< tight face bounding box
  double left_eye_x = 0.0;
  double left_eye_y = 0.0;
  double right_eye_x = 0.0;
  double right_eye_y = 0.0;
};

/// Builds the accuracy benchmark: `mugshot_count` single-face images and
/// `background_count` face-free images (for false-positive statistics).
struct MugshotBenchmark {
  std::vector<Mugshot> mugshots;
  std::vector<img::ImageU8> backgrounds;
};

MugshotBenchmark build_mugshot_benchmark(int mugshot_count,
                                         int background_count, int image_size,
                                         std::uint64_t seed);

}  // namespace fdet::facegen
