// Parametric synthetic face renderer.
//
// Substitute for the paper's face data (11742 frontal training faces,
// SCFace mugshots): a grayscale geometric face model whose discriminative
// structure matches what Haar cascades exploit on real faces — a dark eye
// band over bright cheeks, a bright nose ridge, a dark mouth bar inside a
// smooth face oval. Geometry, illumination and noise are randomized per
// instance; annotated eye centers support the paper's S_eyes metric.
#pragma once

#include <cstdint>

#include "core/rng.h"
#include "img/image.h"

namespace fdet::facegen {

/// Normalized face geometry/appearance. All positions and sizes are
/// fractions of the rendered square, so the same parameters render at any
/// resolution (24x24 training chips up to in-scene faces of 100+ px).
struct FaceParams {
  // Geometry (fractions of the square side).
  double center_x = 0.5;
  double center_y = 0.52;
  double face_rx = 0.38;   ///< face-oval radii
  double face_ry = 0.46;
  double eye_y = 0.40;     ///< eye row
  double eye_dx = 0.17;    ///< eye offset from the center line
  double eye_r = 0.055;    ///< eye radius
  double brow_offset = 0.09;  ///< eyebrow height above the eyes
  double nose_w = 0.07;
  double mouth_y = 0.74;
  double mouth_w = 0.22;
  double mouth_h = 0.035;

  // Appearance (8-bit levels).
  double skin = 175.0;
  double feature_dark = 55.0;   ///< eyes/brows/mouth intensity
  double backdrop = 95.0;       ///< outside the face oval
  double light_tilt = 0.0;      ///< lateral illumination gradient, +-40
  double noise_sigma = 6.0;

  /// Draws plausible random parameters.
  static FaceParams random(core::Rng& rng);
};

/// A rendered face with its ground-truth eye annotation (pixel coords).
struct FaceInstance {
  img::ImageU8 image;
  double left_eye_x = 0.0;
  double left_eye_y = 0.0;
  double right_eye_x = 0.0;
  double right_eye_y = 0.0;
};

/// Renders the model at `size` x `size` pixels.
FaceInstance render_face(const FaceParams& params, int size);

/// Convenience: random face at the 24x24 training resolution.
FaceInstance random_training_face(core::Rng& rng);

}  // namespace fdet::facegen
