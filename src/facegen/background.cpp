#include "facegen/background.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace fdet::facegen {
namespace {

void add_noise(img::ImageU8& im, double sigma, core::Rng& rng) {
  for (auto& p : im.pixels()) {
    const double v = static_cast<double>(p) + rng.normal(0.0, sigma);
    p = static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
  }
}

img::ImageU8 gradient(int w, int h, core::Rng& rng) {
  img::ImageU8 im(w, h);
  const double base = rng.uniform(60.0, 180.0);
  const double gx = rng.uniform(-80.0, 80.0);
  const double gy = rng.uniform(-80.0, 80.0);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const double v = base + gx * (static_cast<double>(x) / w - 0.5) +
                       gy * (static_cast<double>(y) / h - 0.5);
      im(x, y) = static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
    }
  }
  add_noise(im, 3.0, rng);
  return im;
}

img::ImageU8 blobs(int w, int h, core::Rng& rng) {
  img::ImageU8 im(w, h);
  const double base = rng.uniform(70.0, 160.0);
  im.fill(static_cast<std::uint8_t>(base));
  const int count = rng.uniform_int(6, 18);
  struct Blob {
    double cx, cy, r, amp;
  };
  std::vector<Blob> list;
  list.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    list.push_back({rng.uniform(0.0, w), rng.uniform(0.0, h),
                    rng.uniform(0.05, 0.35) * std::min(w, h),
                    rng.uniform(-70.0, 70.0)});
  }
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      double v = base;
      for (const Blob& b : list) {
        const double d2 =
            ((x - b.cx) * (x - b.cx) + (y - b.cy) * (y - b.cy)) / (b.r * b.r);
        v += b.amp * std::exp(-d2);
      }
      im(x, y) = static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
    }
  }
  add_noise(im, 4.0, rng);
  return im;
}

img::ImageU8 stripes(int w, int h, core::Rng& rng) {
  img::ImageU8 im(w, h);
  const double base = rng.uniform(70.0, 160.0);
  // Mild amplitude and longer periods: full-frame high-contrast gratings
  // resonate with Haar edge features and are not plausible video content.
  const double amp = rng.uniform(12.0, 36.0);
  const double period = rng.uniform(10.0, 60.0);
  const double angle = rng.uniform(0.0, 3.14159);
  const double kx = std::cos(angle) / period;
  const double ky = std::sin(angle) / period;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const double v = base + amp * std::sin(2.0 * 3.14159 * (kx * x + ky * y));
      im(x, y) = static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
    }
  }
  add_noise(im, 4.0, rng);
  return im;
}

img::ImageU8 blocks(int w, int h, core::Rng& rng) {
  img::ImageU8 im(w, h);
  im.fill(static_cast<std::uint8_t>(rng.uniform(60.0, 140.0)));
  const int count = rng.uniform_int(8, 24);
  for (int i = 0; i < count; ++i) {
    const int bw = rng.uniform_int(w / 16 + 1, w / 3 + 2);
    const int bh = rng.uniform_int(h / 16 + 1, h / 3 + 2);
    const int bx = rng.uniform_int(0, std::max(0, w - bw));
    const int by = rng.uniform_int(0, std::max(0, h - bh));
    const auto level =
        static_cast<std::uint8_t>(std::clamp(rng.uniform(30.0, 220.0), 0.0, 255.0));
    for (int y = by; y < std::min(h, by + bh); ++y) {
      for (int x = bx; x < std::min(w, bx + bw); ++x) {
        im(x, y) = level;
      }
    }
  }
  add_noise(im, 5.0, rng);
  return im;
}

/// Face-like distractors: soft oval patches carrying dark dot pairs and a
/// dark bar — enough eye/mouth structure to pass early cascade stages
/// occasionally, over a textured base.
img::ImageU8 clutter(int w, int h, core::Rng& rng) {
  img::ImageU8 im = blobs(w, h, rng);
  // Density tuned for training patches; capped so a full 1080p frame gets
  // a handful of crowd-like distractors, not a wall of them.
  const int count = std::clamp((w * h) / 25000, 2, 12);
  for (int i = 0; i < count; ++i) {
    const int size =
        rng.uniform_int(16, std::max(18, std::min(64, std::min(w, h) / 3)));
    const int cx = rng.uniform_int(0, std::max(0, w - size));
    const int cy = rng.uniform_int(0, std::max(0, h - size));
    const double patch = rng.uniform(110.0, 210.0);
    const double dark = rng.uniform(30.0, 110.0);
    // Deliberately imperfect pseudo-faces: dot rows at uneven heights,
    // sometimes a missing mouth bar or an extra dot — enough structure to
    // pass early stages, enough wrongness for deep stages to reject.
    const int dots = rng.uniform_int(1, 3);
    const bool has_bar = rng.bernoulli(0.6);
    double dot_x[3];
    double dot_y[3];
    for (int d = 0; d < dots; ++d) {
      dot_x[d] = rng.uniform(-0.26, 0.26);
      dot_y[d] = rng.uniform(-0.25, 0.10);
    }
    const double bar_y = rng.uniform(0.62, 0.88);
    for (int y = 0; y < size; ++y) {
      for (int x = 0; x < size; ++x) {
        const double nx = (x + 0.5) / size - 0.5;
        const double ny = (y + 0.5) / size - 0.5;
        if (nx * nx / 0.20 + ny * ny / 0.23 > 1.0) {
          continue;  // outside the oval
        }
        double v = patch;
        for (int d = 0; d < dots; ++d) {
          const double dist =
              (nx - dot_x[d]) * (nx - dot_x[d]) + (ny - dot_y[d]) * (ny - dot_y[d]);
          if (dist < 0.004) {
            v = dark;
          }
        }
        if (has_bar && std::abs(ny - (bar_y - 0.5)) < 0.035 &&
            std::abs(nx) < 0.22) {
          v = dark;
        }
        im(cx + x, cy + y) =
            static_cast<std::uint8_t>(std::clamp(v + rng.normal(0.0, 6.0),
                                                 0.0, 255.0));
      }
    }
  }
  return im;
}

img::ImageU8 noise_only(int w, int h, core::Rng& rng) {
  img::ImageU8 im(w, h);
  const double base = rng.uniform(60.0, 180.0);
  im.fill(static_cast<std::uint8_t>(base));
  // Film-grain strength: strong enough to be non-trivial, weak enough that
  // a whole frame of it does not read as wall-to-wall structure.
  add_noise(im, rng.uniform(6.0, 16.0), rng);
  return im;
}

}  // namespace

img::ImageU8 render_background(BackgroundStyle style, int w, int h,
                               core::Rng& rng) {
  FDET_CHECK(w > 0 && h > 0);
  switch (style) {
    case BackgroundStyle::kGradient:
      return gradient(w, h, rng);
    case BackgroundStyle::kBlobs:
      return blobs(w, h, rng);
    case BackgroundStyle::kStripes:
      return stripes(w, h, rng);
    case BackgroundStyle::kBlocks:
      return blocks(w, h, rng);
    case BackgroundStyle::kNoise:
      return noise_only(w, h, rng);
    case BackgroundStyle::kClutter:
      return clutter(w, h, rng);
  }
  FDET_CHECK(false) << "unknown background style";
  return {};
}

img::ImageU8 render_background(int w, int h, core::Rng& rng) {
  const auto style = static_cast<BackgroundStyle>(
      rng.uniform_int(0, kBackgroundStyleCount - 1));
  return render_background(style, w, h, rng);
}

img::ImageU8 random_patch(const img::ImageU8& source, int size,
                          core::Rng& rng) {
  FDET_CHECK(source.width() >= size && source.height() >= size)
      << "patch " << size << " larger than source";
  const int x = rng.uniform_int(0, source.width() - size);
  const int y = rng.uniform_int(0, source.height() - size);
  img::ImageU8 patch(size, size);
  for (int py = 0; py < size; ++py) {
    for (int px = 0; px < size; ++px) {
      patch(px, py) = source(x + px, y + py);
    }
  }
  return patch;
}

}  // namespace fdet::facegen
