// Table II: average face-detection time per frame (virtual milliseconds)
// over the ten synthetic trailer presets, for {our cascade, OpenCV-style
// cascade} x {concurrent, serial kernel execution}. Also reports the
// profiler-style statistics quoted in the paper's text: branch efficiency
// (98.9 %), integral-image share (~20 %), cascade-kernel DRAM read
// throughput range, decode latency and end-to-end throughput (~70 fps).
#include <map>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fdet;
  int frames = 4;
  int width = 1920;
  int height = 1080;
  std::string cache_dir = bench::kDefaultCacheDir;
  bench::RunRecorder run("table2");
  core::Cli cli("bench_table2_detection_time");
  cli.flag("frames", frames, "frames sampled per trailer");
  cli.flag("width", width, "frame width");
  cli.flag("height", height, "frame height");
  cli.flag("cache-dir", cache_dir, "trained-cascade cache directory");
  run.add_flags(cli);
  if (!cli.parse(argc, argv)) {
    return 1;
  }
  bench::print_header("Table II", "average face detection time per frame (ms)");

  const train::CascadePair pair = bench::load_cascades(cache_dir);
  const vgpu::DeviceSpec spec;
  detect::PipelineOptions options;  // mode handled by process_dual
  const detect::Pipeline ours(spec, pair.ours, options);
  const detect::Pipeline opencv(spec, pair.opencv_like, options);

  // Paper Table II reference values (ms), per trailer:
  // {ours-conc, ours-serial, ocv-conc, ocv-serial}.
  const std::map<std::string, std::array<double, 4>> paper = {
      {"21 Jump Street", {4.17, 8.53, 10.91, 22.12}},
      {"50/50", {4.91, 10.17, 13.58, 27.86}},
      {"American Reunion", {4.01, 8.12, 9.98, 20.12}},
      {"Bad Teacher", {4.8, 9.13, 12.43, 23.37}},
      {"Friends With Kids", {4.68, 9.11, 12.52, 24.05}},
      {"One For The Money", {4.17, 8.43, 10.72, 21.40}},
      {"The Dictator", {4.7, 8.99, 12.55, 22.65}},
      {"Tim & Eric's Billion Dollar Movie", {4.83, 9.03, 12.56, 22.66}},
      {"Unicorn City", {4.23, 8.41, 11.03, 20.99}},
      {"What To Expect When You're Expecting", {4.13, 8.52, 10.43, 20.51}},
  };

  core::Table table({"Movie Trailer", "Ours Conc", "Ours Serial", "OCV Conc",
                     "OCV Serial", "(paper: O-C", "O-S", "C-C", "C-S)"});

  vgpu::PerfCounters cascade_totals;
  double cascade_busy_s = 0.0;
  double dram_min = 1e30;
  double dram_max = 0.0;
  double sum_ours_conc = 0.0;
  double sum_decode = 0.0;
  int frames_total = 0;
  std::array<double, 4> grand{};

  for (video::TrailerSpec spec_t :
       video::table2_trailers(frames, width, height)) {
    // Spread the sampled frames over several shots so one pathological
    // scene cannot dominate a trailer's average.
    spec_t.shot_frames = std::max(1, frames / 4);
    const video::SyntheticTrailer trailer(spec_t);
    const video::MockH264Decoder decoder(trailer);
    std::array<double, 4> avg{};
    for (int f = 0; f < frames; ++f) {
      const video::DecodedFrame frame = decoder.decode(f);
      const auto [ours_conc, ours_serial] =
          ours.process_dual(frame.frame.luma());
      const auto [ocv_conc, ocv_serial] =
          opencv.process_dual(frame.frame.luma());
      ours_conc.publish_metrics(run.metrics(), {{"mode", "concurrent"}});
      ours_serial.publish_metrics(run.metrics(), {{"mode", "serial"}});
      if (f == 0 && frames_total == 0) {
        run.add_timeline("ours:concurrent", ours_conc.timeline);
        run.add_timeline("ours:serial", ours_serial.timeline);
      }
      avg[0] += ours_conc.detect_ms;
      avg[1] += ours_serial.detect_ms;
      avg[2] += ocv_conc.detect_ms;
      avg[3] += ocv_serial.detect_ms;
      sum_decode += frame.decode_ms;
      sum_ours_conc += ours_conc.detect_ms;
      ++frames_total;

      cascade_totals += ours_conc.cascade_counters;
      for (const auto& record : ours_conc.timeline.records) {
        if (record.name.rfind("cascade", 0) == 0) {
          cascade_busy_s += record.busy_s;
          const double bps =
              record.counters.dram_read_throughput(record.busy_s);
          if (bps > 0.0) {
            dram_min = std::min(dram_min, bps);
            dram_max = std::max(dram_max, bps);
          }
        }
      }
    }
    for (auto& v : avg) {
      v /= frames;
    }
    for (std::size_t i = 0; i < 4; ++i) {
      grand[i] += avg[i] / 10.0;
    }
    const auto& ref = paper.at(spec_t.title);
    table.add_row({spec_t.title, core::Table::num(avg[0]),
                   core::Table::num(avg[1]), core::Table::num(avg[2]),
                   core::Table::num(avg[3]), core::Table::num(ref[0]),
                   core::Table::num(ref[1]), core::Table::num(ref[2]),
                   core::Table::num(ref[3])});
  }
  table.print(std::cout);

  std::printf("\n--- aggregate shapes (paper reference in parentheses) ---\n");
  std::printf("concurrent speedup, our cascade : %.2fx  (paper ~2.0x)\n",
              grand[1] / grand[0]);
  std::printf("concurrent speedup, OpenCV-style: %.2fx  (paper ~2.0x)\n",
              grand[3] / grand[2]);
  std::printf("our cascade vs OpenCV, concurrent: %.2fx  (paper ~2.5x)\n",
              grand[2] / grand[0]);
  std::printf("combined speedup (ocv serial / ours conc): %.2fx  (paper ~5x)\n",
              grand[3] / grand[0]);
  std::printf("branch efficiency (ours, cascade kernel): %.1f%%  (paper 98.9%%)\n",
              100.0 * cascade_totals.branch_efficiency());
  if (dram_max > 0.0) {
    std::printf("cascade-kernel DRAM read throughput: %.2f .. %.0f MB/s "
                "(paper 9.57 .. 532 MB/s)\n",
                dram_min / 1e6, dram_max / 1e6);
  }
  const double avg_decode = sum_decode / frames_total;
  const double avg_detect = sum_ours_conc / frames_total;
  std::printf("decode latency: %.1f ms/frame (paper 8-10 ms)\n", avg_decode);
  std::printf("end-to-end throughput (decode || detect): %.0f fps "
              "(paper ~70 fps)\n",
              1000.0 / std::max(avg_decode, avg_detect));

  auto& metrics = run.metrics();
  metrics.gauge("bench.concurrent_speedup", {{"cascade", "ours"}})
      .set(grand[1] / grand[0]);
  metrics.gauge("bench.concurrent_speedup", {{"cascade", "opencv"}})
      .set(grand[3] / grand[2]);
  metrics.gauge("bench.combined_speedup").set(grand[3] / grand[0]);
  metrics.gauge("bench.decode_ms").set(avg_decode);
  metrics.gauge("bench.throughput_fps")
      .set(1000.0 / std::max(avg_decode, avg_detect));
  if (dram_max > 0.0) {
    metrics.gauge("bench.cascade_dram_read_mbps", {{"bound", "min"}})
        .set(dram_min / 1e6);
    metrics.gauge("bench.cascade_dram_read_mbps", {{"bound", "max"}})
        .set(dram_max / 1e6);
  }
  return run.finish();
}
