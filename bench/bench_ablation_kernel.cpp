// Ablation study of the cascade-kernel design choices the paper argues
// for (Sec. III-C): constant-memory feature storage vs global memory,
// compressed two-16-bit-word records vs the raw layout, and the shared
// tile block size. Also reports the constant-memory footprint win of the
// re-encoding.
#include "bench_common.h"
#include "haar/encoding.h"

int main(int argc, char** argv) {
  using namespace fdet;
  int width = 1920;
  int height = 1080;
  std::string cache_dir = bench::kDefaultCacheDir;
  bench::RunRecorder run("ablation");
  core::Cli cli("bench_ablation_kernel");
  cli.flag("width", width, "frame width");
  cli.flag("height", height, "frame height");
  cli.flag("cache-dir", cache_dir, "trained-cascade cache directory");
  run.add_flags(cli);
  if (!cli.parse(argc, argv)) {
    return 1;
  }
  bench::print_header("Ablation", "cascade-kernel design choices");

  const train::CascadePair pair = bench::load_cascades(cache_dir);
  const vgpu::DeviceSpec spec;
  const video::SyntheticTrailer trailer(
      video::table2_trailers(1, width, height)[1]);
  const img::ImageU8 luma = trailer.render_luma(0);

  struct Config {
    const char* name;
    detect::CascadeKernelOptions kernel;
  };
  const Config configs[] = {
      {"baseline (const mem, compressed, 32px blocks)", {}},
      {"features in global memory", {.constant_memory = false}},
      {"uncompressed records", {.compressed_records = false}},
      {"24px blocks", {.block_dim = 24}},
      {"global memory + uncompressed",
       {.constant_memory = false, .compressed_records = false}},
  };

  core::Table table({"configuration", "detect (ms)", "vs baseline"});
  double baseline_ms = 0.0;
  for (const Config& config : configs) {
    detect::PipelineOptions options;
    options.kernel = config.kernel;
    const detect::Pipeline pipeline(spec, pair.ours, options);
    const detect::FrameResult result = pipeline.process(luma);
    result.publish_metrics(run.metrics(), {{"config", config.name}});
    run.add_timeline(config.name, result.timeline);
    const double ms = result.detect_ms;
    if (baseline_ms == 0.0) {
      baseline_ms = ms;
    }
    char rel[32];
    std::snprintf(rel, sizeof(rel), "%+.1f%%",
                  100.0 * (ms - baseline_ms) / baseline_ms);
    table.add_row({config.name, core::Table::num(ms, 3), rel});
  }
  table.print(std::cout);

  const haar::ConstantBank ours_bank = haar::ConstantBank::build(pair.ours);
  const haar::ConstantBank ocv_bank =
      haar::ConstantBank::build(pair.opencv_like);
  std::printf("\nconstant-memory footprint (64 KiB budget):\n");
  core::Table mem({"cascade", "compressed (B)", "raw (B)", "fits 64KiB?"});
  for (const auto& [name, bank] :
       {std::pair<const char*, const haar::ConstantBank*>{"ours", &ours_bank},
        {"OpenCV-style", &ocv_bank}}) {
    mem.add_row({name, std::to_string(bank->bytes_compressed()),
                 std::to_string(bank->bytes_raw()),
                 bank->fits_constant_memory(64 * 1024) ? "yes" : "no"});
  }
  mem.print(std::cout);
  std::printf("\npaper: re-encoding into two 16-bit words is what lets the\n"
              "whole cascade live in constant memory for broadcast fetches.\n");
  return run.finish();
}
