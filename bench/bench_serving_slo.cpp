// Serving SLO artifact: streams a synthetic trailer through the
// fault-tolerant serving layer under a seeded fault plan and records the
// SLO engine's view of the run — sliding-window latency percentiles,
// deadline-miss ratios, burn rates, per-stage latency and queue-depth
// quantiles — as the BENCH_serving_slo run record. The fault plan keeps
// the miss ratio nonzero so the percentile/burn series are exercised,
// exactly like a production tail-latency incident.
//
// `fdet_report slo BENCH_serving_slo.json` renders the record.
#include "bench_common.h"

#include "serve/service.h"

int main(int argc, char** argv) {
  using namespace fdet;
  int frames = 96;
  int width = 320;
  int height = 240;
  double fps = 24.0;
  double deadline_ms = 0.0;  // 0 = derive from a fault-free probe run
  std::string faults =
      "decode@6x2,corrupt@12,launch@18x2,const@26,shared@34,"
      "decode@44x3,decode@45x3,decode@46x3";
  double seed = 20120926;
  std::string cache_dir = bench::kDefaultCacheDir;
  bench::RunRecorder run("serving_slo");
  core::Cli cli("bench_serving_slo");
  cli.flag("frames", frames, "frames to stream through the service");
  cli.flag("width", width, "trailer width");
  cli.flag("height", height, "trailer height");
  cli.flag("fps", fps, "stream arrival rate");
  cli.flag("deadline-ms", deadline_ms,
           "per-frame latency budget (0 = derive from a fault-free probe)");
  cli.flag("faults", faults, "fault plan spec (see serve/faults.h)");
  cli.flag("seed", seed, "fault-plan + jitter seed");
  cli.flag("cache-dir", cache_dir, "trained-cascade cache directory");
  run.add_flags(cli);
  if (!cli.parse(argc, argv)) {
    return 1;
  }
  bench::print_header("serving SLO",
                      "burn-rate + percentile engine under a fault plan");

  const train::CascadePair pair = bench::load_cascades(cache_dir);
  const vgpu::DeviceSpec spec;

  video::TrailerSpec preset;
  preset.title = "slo";
  preset.width = width;
  preset.height = height;
  preset.frames = frames;
  preset.shot_frames = 12;
  preset.face_density = 1.5;
  preset.seed = 7;
  const video::SyntheticTrailer trailer(preset);
  const video::MockH264Decoder decoder(trailer);
  const auto plan =
      serve::FaultPlan::parse(faults, static_cast<std::uint64_t>(seed));

  serve::ServiceOptions options;
  options.fps = fps;
  options.seed = static_cast<std::uint64_t>(seed);
  // Same calibration as fdet_chaos: deadline clears the healthy and the
  // serial envelopes (so the ladder can recover) but one retry backoff
  // blows it (so the plan's faults actually burn the SLO budget).
  {
    serve::StreamingService probe(spec, pair.ours, {}, options);
    const serve::ServiceReport calib = probe.run(decoder, frames);
    double max_ms = 0.0;
    for (const auto& frame : calib.frames) {
      max_ms = std::max(max_ms, frame.latency_ms);
    }
    detect::PipelineOptions serial_opts;
    serial_opts.mode = vgpu::ExecMode::kSerial;
    const detect::Pipeline serial_probe(spec, pair.ours, serial_opts);
    const double serial_ms =
        serial_probe.process(decoder.decode(0).frame.luma()).detect_ms +
        decoder.decode_latency_ms(0);
    if (deadline_ms <= 0.0) {
      deadline_ms = std::max(2.0 * max_ms, serial_ms / 0.6);
    }
    options.retry.base_backoff_ms = deadline_ms;
    options.retry.max_backoff_ms = 4.0 * deadline_ms;
  }
  options.deadline_ms = deadline_ms;
  std::printf("fault plan: %s\ndeadline: %.3f ms (virtual)\n\n",
              plan.describe().c_str(), deadline_ms);

  for (int rep = 0; rep < run.repeats(); ++rep) {
    run.begin_repeat(rep);
    serve::StreamingService service(spec, pair.ours, {}, options,
                                    &run.metrics());
    const serve::ServiceReport report = service.run(decoder, frames, &plan);
    const obs::SloSnapshot& slo = report.slo;

    if (rep == 0) {
      core::Table table({"quantity", "value"});
      table.add_row({"frames served", std::to_string(slo.frames)});
      table.add_row({"deadline misses", std::to_string(slo.misses)});
      table.add_row({"latency p50 (ms)", core::Table::num(slo.p50_ms)});
      table.add_row({"latency p95 (ms)", core::Table::num(slo.p95_ms)});
      table.add_row({"latency p99 (ms)", core::Table::num(slo.p99_ms)});
      table.add_row({"latency p99.9 (ms)", core::Table::num(slo.p999_ms)});
      table.add_row({"miss ratio (lifetime)",
                     core::Table::num(slo.miss_ratio)});
      table.add_row({"miss ratio (window)",
                     core::Table::num(slo.window_miss_ratio)});
      table.add_row({"burn rate (fast)", core::Table::num(slo.fast_burn)});
      table.add_row({"burn rate (slow)", core::Table::num(slo.slow_burn)});
      table.add_row({"sketch error bound",
                     core::Table::num(slo.max_relative_error)});
      table.print(std::cout);
      std::printf("\nrun: ok=%d degraded=%d dropped=%d failed=%d "
                  "retries=%d trips=%d shifts=%d dumps=%zu\n",
                  report.ok, report.degraded, report.dropped, report.failed,
                  report.retries, report.breaker_trips,
                  report.degradation_shifts, report.dumps.size());
    }
    // A record without misses would leave the burn-rate series degenerate
    // and the artifact would silently stop covering the SLO engine.
    FDET_CHECK(slo.misses > 0)
        << "fault plan produced no deadline misses; the SLO artifact "
           "needs a nonzero miss ratio";
  }
  return run.finish();
}
