// Extension bench (paper Sec. VII future work): soft cascade vs the
// staged cascade. Compares the average number of weak classifiers
// evaluated per window — the workload that dominates the detection
// kernel — and the hit rate on held-out synthetic faces.
#include "bench_common.h"
#include "detect/soft_cascade.h"
#include "facegen/dataset.h"
#include "integral/integral.h"

int main(int argc, char** argv) {
  using namespace fdet;
  int calibration_faces = 400;
  int holdout_faces = 300;
  int scenes = 4;
  std::string cache_dir = bench::kDefaultCacheDir;
  bench::RunRecorder run("softcascade");
  core::Cli cli("bench_softcascade");
  cli.flag("calibration-faces", calibration_faces, "faces for calibration");
  cli.flag("holdout-faces", holdout_faces, "held-out faces for hit rate");
  cli.flag("scenes", scenes, "background scenes for depth measurement");
  cli.flag("cache-dir", cache_dir, "trained-cascade cache directory");
  run.add_flags(cli);
  if (!cli.parse(argc, argv)) {
    return 1;
  }
  bench::print_header("Extension",
                      "soft cascade vs staged cascade (paper future work)");

  const train::CascadePair pair = bench::load_cascades(cache_dir);

  // Calibration faces (fresh seed, not the training set).
  core::Rng rng(20120924);
  std::vector<integral::IntegralImage> faces;
  faces.reserve(static_cast<std::size_t>(calibration_faces));
  for (int i = 0; i < calibration_faces; ++i) {
    faces.push_back(
        integral::integral_cpu(facegen::random_training_face(rng).image));
  }
  std::vector<const integral::IntegralImage*> face_ptrs;
  for (const auto& ii : faces) {
    face_ptrs.push_back(&ii);
  }

  core::Table table({"cascade", "avg weak evals/window (staged)",
                     "(soft)", "reduction", "hit staged", "hit soft"});
  for (const auto& [name, cascade] :
       {std::pair<const char*, const haar::Cascade*>{"ours", &pair.ours},
        {"OpenCV-style", &pair.opencv_like}}) {
    const detect::SoftCascade soft =
        detect::build_soft_cascade(*cascade, face_ptrs, {.hit_target = 0.985});

    // Average evaluation depth over background scenes.
    double staged_depth = 0.0;
    double soft_depth = 0.0;
    for (int s = 0; s < scenes; ++s) {
      const auto scene = facegen::render_background(320, 240, rng);
      const auto ii = integral::integral_cpu(scene);
      staged_depth += detect::average_depth(*cascade, ii, 2);
      soft_depth += detect::average_depth(soft, ii, 2);
    }
    staged_depth /= scenes;
    soft_depth /= scenes;

    // Held-out hit rates.
    core::Rng holdout_rng(777001);
    int staged_hits = 0;
    int soft_hits = 0;
    for (int i = 0; i < holdout_faces; ++i) {
      const auto face = facegen::random_training_face(holdout_rng);
      const auto ii = integral::integral_cpu(face.image);
      staged_hits += cascade->evaluate(ii, 0, 0).accepted;
      soft_hits += soft.evaluate(ii, 0, 0).accepted;
    }

    const obs::Labels labels = {{"cascade", name}};
    run.metrics().gauge("softcascade.staged_depth", labels).set(staged_depth);
    run.metrics().gauge("softcascade.soft_depth", labels).set(soft_depth);
    run.metrics()
        .gauge("softcascade.hit_rate_staged", labels)
        .set(double(staged_hits) / holdout_faces);
    run.metrics()
        .gauge("softcascade.hit_rate_soft", labels)
        .set(double(soft_hits) / holdout_faces);
    char reduction[32];
    std::snprintf(reduction, sizeof(reduction), "%.1f%%",
                  100.0 * (1.0 - soft_depth / staged_depth));
    table.add_row({name, core::Table::num(staged_depth, 2),
                   core::Table::num(soft_depth, 2), reduction,
                   core::Table::num(double(staged_hits) / holdout_faces, 3),
                   core::Table::num(double(soft_hits) / holdout_faces, 3)});
  }
  table.print(std::cout);
  std::printf("\nthe soft cascade rejects at every weak classifier instead\n"
              "of at stage boundaries, trimming the per-window workload at\n"
              "matched hit rates (Bourdev & Brandt, the paper's ref [32]).\n");
  return run.finish();
}
