// Google-benchmark microbenchmarks of the library's host-side hot paths:
// functional kernel execution throughput, the SIMD dataset-matrix row
// arithmetic (the paper's SSE4 inner loop), stump fitting, synthetic
// rendering and detection grouping. These measure the *simulator's* wall
// cost, not virtual GPU time — useful for keeping the reproduction fast.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.h"
#include "core/rng.h"
#include "detect/grouping.h"
#include "detect/kernels.h"
#include "facegen/dataset.h"
#include "haar/profile.h"
#include "integral/gpu.h"
#include "train/dataset_matrix.h"
#include "train/stump.h"
#include "video/trailer.h"

namespace {

using namespace fdet;

img::ImageU8 random_image(int w, int h, std::uint64_t seed) {
  core::Rng rng(seed);
  img::ImageU8 im(w, h);
  for (auto& p : im.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return im;
}

void BM_IntegralCpu(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const img::ImageU8 image = random_image(side, side, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(integral::integral_cpu(image));
  }
  state.SetItemsProcessed(state.iterations() * side * side);
}
BENCHMARK(BM_IntegralCpu)->Arg(256)->Arg(512)->Arg(1024);

void BM_GpuScanFunctional(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const vgpu::DeviceSpec spec;
  img::ImageI32 in(side, side, 3);
  img::ImageI32 out(side, side);
  for (auto _ : state) {
    benchmark::DoNotOptimize(integral::scan_rows_gpu(spec, in, out));
  }
  state.SetItemsProcessed(state.iterations() * side * side);
}
BENCHMARK(BM_GpuScanFunctional)->Arg(256)->Arg(512);

void BM_CascadeKernelFunctional(benchmark::State& state) {
  const vgpu::DeviceSpec spec;
  const img::ImageU8 image = random_image(256, 256, 2);
  const auto ii = integral::integral_cpu(image);
  haar::Cascade cascade = haar::build_profile_cascade(
      "bench", haar::compact_profile(), 3);
  haar::calibrate_stage_thresholds(cascade, {&ii},
                                   haar::paper_pass_profile(25), 4);
  const haar::ConstantBank bank = haar::ConstantBank::build(cascade);
  detect::CascadeKernelOutput out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detect::cascade_kernel(
        spec, bank, ii, out, detect::CascadeKernelOptions{}, "bench"));
  }
  state.SetItemsProcessed(state.iterations() * 256 * 256);
}
BENCHMARK(BM_CascadeKernelFunctional);

void BM_DatasetMatrixEvaluate(benchmark::State& state) {
  const int cols = static_cast<int>(state.range(0));
  core::Rng rng(4);
  train::DatasetMatrix matrix(cols);
  for (int i = 0; i < cols; ++i) {
    matrix.add_window(random_image(24, 24, static_cast<std::uint64_t>(i)));
  }
  const haar::HaarFeature feature{haar::HaarType::kLine, false, 2, 4, 5, 8};
  const auto terms = train::DatasetMatrix::feature_terms(feature);
  std::vector<std::int32_t> out(static_cast<std::size_t>(cols));
  for (auto _ : state) {
    matrix.evaluate_terms(terms, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * cols);
}
BENCHMARK(BM_DatasetMatrixEvaluate)->Arg(1000)->Arg(4000);

void BM_GentleStumpFit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::Rng rng(5);
  std::vector<std::int32_t> responses(static_cast<std::size_t>(n));
  std::vector<float> targets(static_cast<std::size_t>(n));
  std::vector<double> weights(static_cast<std::size_t>(n), 1.0 / n);
  for (int i = 0; i < n; ++i) {
    responses[static_cast<std::size_t>(i)] = rng.uniform_int(-10000, 10000);
    targets[static_cast<std::size_t>(i)] = rng.bernoulli(0.5) ? 1.0f : -1.0f;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        train::fit_gentle_stump(responses, targets, weights));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GentleStumpFit)->Arg(1000)->Arg(4000);

void BM_FaceRender(benchmark::State& state) {
  const int size = static_cast<int>(state.range(0));
  core::Rng rng(6);
  const facegen::FaceParams params = facegen::FaceParams::random(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(facegen::render_face(params, size));
  }
}
BENCHMARK(BM_FaceRender)->Arg(24)->Arg(96);

void BM_TrailerFrameRender(benchmark::State& state) {
  video::TrailerSpec spec;
  spec.width = 1920;
  spec.height = 1080;
  spec.frames = 8;
  spec.face_density = 4.0;
  spec.seed = 7;
  const video::SyntheticTrailer trailer(spec);
  int frame = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trailer.render_luma(frame));
    frame = (frame + 1) % 8;
  }
}
BENCHMARK(BM_TrailerFrameRender);

void BM_GroupDetections(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::Rng rng(8);
  std::vector<detect::Detection> raw;
  for (int i = 0; i < n; ++i) {
    const int cx = rng.uniform_int(0, 1800);
    const int cy = rng.uniform_int(0, 1000);
    raw.push_back({{cx, cy, 48, 48}, 1.0f, 1, 0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(detect::group_detections(raw));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GroupDetections)->Arg(50)->Arg(400);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): peel off --trace-out /
// --metrics-out with parse_known and hand everything else (including
// --benchmark_* flags) to google-benchmark untouched.
int main(int argc, char** argv) {
  fdet::bench::RunRecorder run("micro");
  fdet::core::Cli cli("bench_micro_kernels");
  run.add_flags(cli);
  std::vector<std::string> remaining;
  if (!cli.parse_known(argc, argv, remaining)) {
    return 1;
  }
  std::vector<char*> bench_argv;
  bench_argv.reserve(remaining.size());
  for (auto& arg : remaining) {
    bench_argv.push_back(arg.data());
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  {
    fdet::obs::ScopedSpan span("micro.run_benchmarks");
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  return run.finish();
}
