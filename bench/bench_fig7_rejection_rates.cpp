// Fig. 7: rejection rate per cascade stage and image scale, aggregated
// over the frames of the "What To Expect When You're Expecting" preset.
// Paper: 94.52 % of windows are rejected by stage 1, ~4 % by stage 2, and
// the remaining stages take a geometrically shrinking share.
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fdet;
  int frames = 6;
  int width = 1920;
  int height = 1080;
  std::string cache_dir = bench::kDefaultCacheDir;
  bench::RunRecorder run("fig7");
  core::Cli cli("bench_fig7_rejection_rates");
  cli.flag("frames", frames, "frames to aggregate");
  cli.flag("width", width, "frame width");
  cli.flag("height", height, "frame height");
  cli.flag("cache-dir", cache_dir, "trained-cascade cache directory");
  run.add_flags(cli);
  if (!cli.parse(argc, argv)) {
    return 1;
  }
  bench::print_header("Fig. 7", "rejection rate per stage and scale");

  const train::CascadePair pair = bench::load_cascades(cache_dir);
  const vgpu::DeviceSpec spec;
  const detect::Pipeline pipeline(spec, pair.ours, {});
  const int stages = pair.ours.stage_count();

  video::TrailerSpec preset =
      video::table2_trailers(frames, width, height)[9];  // WTEWYE preset
  preset.shot_frames = std::max(1, frames / 3);
  const video::SyntheticTrailer trailer(preset);
  const video::MockH264Decoder decoder(trailer);

  // aggregated[scale][depth]
  std::vector<std::vector<std::int64_t>> aggregated;
  for (int f = 0; f < frames; ++f) {
    const video::DecodedFrame frame = decoder.decode(f);
    const detect::FrameResult result = pipeline.process(frame.frame.luma());
    result.publish_metrics(run.metrics(), {{"mode", "concurrent"}});
    if (f == 0) {
      run.add_timeline("concurrent", result.timeline);
    }
    if (aggregated.empty()) {
      aggregated.resize(result.scales.size(),
                        std::vector<std::int64_t>(
                            static_cast<std::size_t>(stages) + 1, 0));
    }
    for (std::size_t s = 0; s < result.scales.size(); ++s) {
      for (std::size_t d = 0; d < result.scales[s].depth_histogram.size();
           ++d) {
        aggregated[s][d] += result.scales[s].depth_histogram[d];
      }
    }
  }

  // Overall per-stage rejection rates (all scales pooled).
  std::vector<std::int64_t> pooled(static_cast<std::size_t>(stages) + 1, 0);
  std::int64_t total = 0;
  for (const auto& scale : aggregated) {
    for (std::size_t d = 0; d < scale.size(); ++d) {
      pooled[d] += scale[d];
      total += scale[d];
    }
  }

  std::printf("windows evaluated: %lld over %zu scales x %d frames\n\n",
              static_cast<long long>(total), aggregated.size(), frames);
  core::Table table({"stage", "rejection rate", "(paper)"});
  const char* paper_ref[3] = {"94.52%", "4.00%", "(tail, log-decay)"};
  for (int d = 0; d < stages; ++d) {
    const double rate = 100.0 * static_cast<double>(pooled[static_cast<std::size_t>(d)]) /
                        static_cast<double>(total);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.5f%%", rate);
    table.add_row({std::to_string(d + 1), buf,
                   d < 2 ? paper_ref[d] : (d == 2 ? paper_ref[2] : "")});
  }
  {
    const double accepted = 100.0 *
                            static_cast<double>(pooled[static_cast<std::size_t>(stages)]) /
                            static_cast<double>(total);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.5f%%", accepted);
    table.add_row({"accepted", buf, ""});
  }
  table.print(std::cout);

  // Per-scale stage-1 rejection (the paper's 3-D plot ridge).
  std::printf("\nstage-1 rejection per scale:\n");
  core::Table per_scale({"scale", "windows", "stage-1 rejection"});
  for (std::size_t s = 0; s < aggregated.size(); ++s) {
    std::int64_t scale_total = 0;
    for (const auto count : aggregated[s]) {
      scale_total += count;
    }
    const double r1 = scale_total == 0
                          ? 0.0
                          : 100.0 * static_cast<double>(aggregated[s][0]) /
                                static_cast<double>(scale_total);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f%%", r1);
    per_scale.add_row({std::to_string(s), std::to_string(scale_total), buf});
  }
  per_scale.print(std::cout);

  // Pooled per-stage rejection rates as gauges (Fig. 7's y-axis).
  for (int d = 0; d < stages; ++d) {
    run.metrics()
        .gauge("bench.stage_rejection_rate",
               {{"stage", std::to_string(d + 1)}})
        .set(static_cast<double>(pooled[static_cast<std::size_t>(d)]) /
             static_cast<double>(total));
  }
  return run.finish();
}
