// Table I: possible Haar-like feature combinations in a 24x24 window.
//
// Prints the full-grid enumeration counts of this implementation next to
// the paper's reported values. The paper does not state its enumeration
// constraints, so its exact counts are not reproducible from first
// principles (see DESIGN.md); the magnitude of the hypothesis space — the
// quantity that matters for training cost — is reproduced.
#include "bench_common.h"
#include "core/stopwatch.h"
#include "haar/enumerate.h"

int main(int argc, char** argv) {
  using namespace fdet;
  bench::RunRecorder run("table1");
  core::Cli cli("bench_table1_feature_combinations");
  run.add_flags(cli);
  if (!cli.parse(argc, argv)) {
    return 1;
  }
  bench::print_header("Table I", "Haar-like feature combinations (24x24)");

  const struct {
    haar::HaarType type;
    std::int64_t paper;
  } rows[] = {
      {haar::HaarType::kEdge, haar::kPaperCombinations.edge},
      {haar::HaarType::kLine, haar::kPaperCombinations.line},
      {haar::HaarType::kCenterSurround,
       haar::kPaperCombinations.center_surround},
      {haar::HaarType::kDiagonal, haar::kPaperCombinations.diagonal},
  };

  core::Table table({"Haar-like Feature", "Combinations (ours, full grid)",
                     "Combinations (paper)"});
  std::int64_t total_ours = 0;
  std::int64_t total_paper = 0;
  core::Stopwatch watch;
  for (const auto& row : rows) {
    const std::int64_t ours = haar::count_features(row.type);
    table.add_row({haar::to_string(row.type), std::to_string(ours),
                   std::to_string(row.paper)});
    run.metrics()
        .gauge("haar.combinations", {{"family", haar::to_string(row.type)}})
        .set(static_cast<double>(ours));
    total_ours += ours;
    total_paper += row.paper;
  }
  table.add_row({"total", std::to_string(total_ours),
                 std::to_string(total_paper)});
  table.print(std::cout);
  std::printf("\nenumeration walked %lld hypotheses in %.1f ms\n",
              static_cast<long long>(total_ours), watch.elapsed_ms());
  std::printf("note: the paper's grid constraints are unstated; training\n"
              "benches size their workload with the paper's totals.\n");
  run.metrics().gauge("haar.combinations_total")
      .set(static_cast<double>(total_ours));
  return run.finish();
}
