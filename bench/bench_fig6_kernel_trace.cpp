// Fig. 6: execution trace of the cascade-evaluation kernels for one video
// frame under concurrent kernel execution — the small-scale kernels
// overlap almost completely, which is where the occupancy win comes from.
#include <algorithm>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fdet;
  int width = 1920;
  int height = 1080;
  std::string cache_dir = bench::kDefaultCacheDir;
  bench::RunRecorder run("fig6");
  core::Cli cli("bench_fig6_kernel_trace");
  cli.flag("width", width, "frame width");
  cli.flag("height", height, "frame height");
  cli.flag("cache-dir", cache_dir, "trained-cascade cache directory");
  run.add_flags(cli);
  if (!cli.parse(argc, argv)) {
    return 1;
  }
  bench::print_header("Fig. 6", "kernel execution trace, one 50/50 frame");

  const train::CascadePair pair = bench::load_cascades(cache_dir);
  const vgpu::DeviceSpec spec;
  const detect::Pipeline pipeline(spec, pair.ours, {});

  const video::SyntheticTrailer trailer(
      video::table2_trailers(1, width, height)[1]);
  const video::MockH264Decoder decoder(trailer);
  const video::DecodedFrame frame = decoder.decode(0);

  const auto [concurrent, serial] = pipeline.process_dual(frame.frame.luma());

  std::printf("--- concurrent kernel execution (one stream per scale) ---\n");
  std::printf("%s\n", concurrent.timeline.render_trace(100).c_str());
  std::printf("--- serial kernel execution (same launches) ---\n");
  std::printf("%s\n", serial.timeline.render_trace(100).c_str());

  // The paper's figure lists cascade kernels by stream with start/end
  // timestamps; print the same record.
  std::printf("--- cascade-kernel timestamps, concurrent mode ---\n");
  core::Table table({"kernel", "stream", "start (ms)", "end (ms)",
                     "duration (ms)", "blocks"});
  std::vector<vgpu::LaunchRecord> cascades;
  for (const auto& record : concurrent.timeline.records) {
    if (record.name.rfind("cascade", 0) == 0) {
      cascades.push_back(record);
    }
  }
  std::sort(cascades.begin(), cascades.end(),
            [](const auto& a, const auto& b) { return a.start_s < b.start_s; });
  for (const auto& record : cascades) {
    table.add_row({record.name, std::to_string(record.stream),
                   core::Table::num(record.start_s * 1e3, 3),
                   core::Table::num(record.end_s * 1e3, 3),
                   core::Table::num(record.duration_s() * 1e3, 3),
                   std::to_string(record.blocks)});
  }
  table.print(std::cout);

  // Overlap statistic: how many cascade kernels run simultaneously with at
  // least one other (the paper: small scales "executed completely
  // overlapped").
  int overlapping = 0;
  for (std::size_t i = 0; i < cascades.size(); ++i) {
    for (std::size_t j = 0; j < cascades.size(); ++j) {
      if (i != j && cascades[i].start_s < cascades[j].end_s &&
          cascades[j].start_s < cascades[i].end_s) {
        ++overlapping;
        break;
      }
    }
  }
  std::printf("\ncascade kernels overlapping with another: %d of %zu\n",
              overlapping, cascades.size());
  std::printf("concurrent makespan %.3f ms vs serial %.3f ms (%.2fx)\n",
              concurrent.detect_ms, serial.detect_ms,
              serial.detect_ms / concurrent.detect_ms);

  concurrent.publish_metrics(run.metrics(), {{"mode", "concurrent"}});
  serial.publish_metrics(run.metrics(), {{"mode", "serial"}});
  run.add_timeline("concurrent", concurrent.timeline);
  run.add_timeline("serial", serial.timeline);
  return run.finish();
}
