// Fig. 5: per-frame face-detection latency for the "50/50" trailer,
// serial vs concurrent kernel execution, OpenCV-style cascade vs ours.
// The paper's headline observation: the OpenCV cascade under serial
// execution repeatedly violates the 40 ms display deadline (24 fps),
// while our cascade under concurrent execution stays far below it.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fdet;
  int frames = 36;
  int width = 1920;
  int height = 1080;
  std::string cache_dir = bench::kDefaultCacheDir;
  bench::RunRecorder run("fig5");
  core::Cli cli("bench_fig5_frame_latency");
  cli.flag("frames", frames, "frames of the 50/50 preset to process");
  cli.flag("width", width, "frame width");
  cli.flag("height", height, "frame height");
  cli.flag("cache-dir", cache_dir, "trained-cascade cache directory");
  run.add_flags(cli);
  if (!cli.parse(argc, argv)) {
    return 1;
  }
  bench::print_header("Fig. 5", "per-frame detection latency, 50/50 trailer");

  const train::CascadePair pair = bench::load_cascades(cache_dir);
  const vgpu::DeviceSpec spec;
  const detect::Pipeline ours(spec, pair.ours, {});
  const detect::Pipeline opencv(spec, pair.opencv_like, {});

  video::TrailerSpec preset = video::table2_trailers(frames, width, height)[1];
  // ~6 shots across the sampled window: per-frame latency then shows the
  // shot-to-shot variability of paper Fig. 5.
  preset.shot_frames = std::max(1, frames / 6);
  const video::SyntheticTrailer trailer(preset);
  const video::MockH264Decoder decoder(trailer);

  constexpr double kDeadlineMs = 40.0;  // 24 fps display deadline
  // Each --repeat repetition re-measures the whole frame loop into a
  // fresh registry; tables print once, the run record aggregates all
  // repeats into per-metric median/MAD samples.
  for (int rep = 0; rep < run.repeats(); ++rep) {
    run.begin_repeat(rep);
    core::Table table({"frame", "faces", "ours-conc", "ours-serial",
                       "ocv-conc", "ocv-serial"});
    int violations_ocv_serial = 0;
    int violations_ours_conc = 0;
    double peak[4] = {0, 0, 0, 0};

    for (int f = 0; f < frames; ++f) {
      // One frame context per source frame (same seed every repeat, so
      // repeats fold into the same per-frame profile bucket); launches of
      // both cascades attribute to it.
      const obs::ScopedTraceContext frame_context(
          obs::make_frame_context(/*seed=*/5050, f));
      const video::DecodedFrame frame = decoder.decode(f);
      const auto [oc, os] = ours.process_dual(frame.frame.luma());
      const auto [cc, cs] = opencv.process_dual(frame.frame.luma());
      oc.publish_metrics(run.metrics(), {{"cascade", "ours"},
                                         {"mode", "concurrent"}});
      os.publish_metrics(run.metrics(), {{"cascade", "ours"},
                                         {"mode", "serial"}});
      cc.publish_metrics(run.metrics(), {{"cascade", "opencv"},
                                         {"mode", "concurrent"}});
      cs.publish_metrics(run.metrics(), {{"cascade", "opencv"},
                                         {"mode", "serial"}});
      if (rep == 0 && f == 0) {
        run.add_timeline("ours:concurrent:frame0", oc.timeline);
        run.add_timeline("ours:serial:frame0", os.timeline);
      }
      const double ms[4] = {oc.detect_ms, os.detect_ms, cc.detect_ms,
                            cs.detect_ms};
      for (int i = 0; i < 4; ++i) {
        peak[i] = std::max(peak[i], ms[i]);
      }
      // The paper's deadline discussion includes the decode latency for the
      // serial OpenCV configuration.
      violations_ocv_serial += (cs.detect_ms + frame.decode_ms > kDeadlineMs);
      violations_ours_conc += (oc.detect_ms + frame.decode_ms > kDeadlineMs);
      table.add_row({std::to_string(f),
                     std::to_string(frame.ground_truth.size()),
                     core::Table::num(ms[0]), core::Table::num(ms[1]),
                     core::Table::num(ms[2]), core::Table::num(ms[3])});
    }
    if (rep == 0) {
      table.print(std::cout);

      std::printf("\npeak latency (ms): ours-conc %.2f, ours-serial %.2f, "
                  "ocv-conc %.2f, ocv-serial %.2f\n",
                  peak[0], peak[1], peak[2], peak[3]);
      std::printf("40 ms deadline violations incl. decode: ocv-serial %d/%d, "
                  "ours-conc %d/%d\n",
                  violations_ocv_serial, frames, violations_ours_conc, frames);
      std::printf("(paper: the serial OpenCV configuration violates the "
                  "deadline several times; ours never does)\n");
    }

    run.metrics().gauge("bench.deadline_violations",
                        {{"config", "ocv-serial"}})
        .set(violations_ocv_serial);
    run.metrics().gauge("bench.deadline_violations",
                        {{"config", "ours-concurrent"}})
        .set(violations_ours_conc);
  }
  return run.finish();
}
