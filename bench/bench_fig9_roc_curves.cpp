// Fig. 9: TPR/FP curves for the OpenCV-style feature set and our compact
// cascade, truncated at 15, 20 and 25 stages, over the synthetic mugshot
// benchmark (the SCFace + 3000 backgrounds substitute).
//
// Reproduced shape: our cascade matches or beats the baseline despite
// having half the weak classifiers, and both improve with depth (fewer
// false positives at comparable TPR).
#include "bench_common.h"
#include "eval/accuracy.h"
#include "facegen/dataset.h"

int main(int argc, char** argv) {
  using namespace fdet;
  int mugshots = 120;
  int backgrounds = 150;
  int image_size = 128;
  std::string cache_dir = bench::kDefaultCacheDir;
  bench::RunRecorder rec("fig9");
  core::Cli cli("bench_fig9_roc_curves");
  cli.flag("mugshots", mugshots, "face images in the benchmark");
  cli.flag("backgrounds", backgrounds, "face-free images");
  cli.flag("image-size", image_size, "benchmark image side (px)");
  cli.flag("cache-dir", cache_dir, "trained-cascade cache directory");
  rec.add_flags(cli);
  if (!cli.parse(argc, argv)) {
    return 1;
  }
  bench::print_header("Fig. 9", "TPR/FP curves at 15/20/25 stages");

  const train::CascadePair pair = bench::load_cascades(cache_dir);
  const vgpu::DeviceSpec spec;
  const facegen::MugshotBenchmark bench_set =
      facegen::build_mugshot_benchmark(mugshots, backgrounds, image_size, 42);

  for (const int stages : {15, 20, 25}) {
    std::printf("--- %d stages ---\n", stages);
    core::Table table({"cascade", "classifiers", "TPR@0FP", "TPR@5FP",
                       "TPR@20FP", "max TPR", "FP total"});
    struct Row {
      const char* name;
      const haar::Cascade* cascade;
    };
    for (const Row& row : {Row{"ours", &pair.ours},
                           Row{"OpenCV-style", &pair.opencv_like}}) {
      const haar::Cascade truncated = row.cascade->prefix(stages);
      detect::PipelineOptions options;
      options.min_neighbors = 2;  // classic isolated-window pruning
      const detect::Pipeline pipeline(spec, truncated, options);
      const eval::BenchmarkRun run =
          eval::run_mugshot_benchmark(pipeline, bench_set);
      const auto curve = eval::roc_curve(run.scored, run.total_faces);

      const auto tpr_at_fp = [&curve](int budget) {
        double best = 0.0;
        for (const auto& p : curve) {
          if (p.false_positives <= budget) {
            best = std::max(best, p.true_positive_rate);
          }
        }
        return best;
      };
      const double max_tpr = curve.empty() ? 0.0 : curve.back().true_positive_rate;
      const int total_fp = curve.empty() ? 0 : curve.back().false_positives;
      const obs::Labels labels = {{"cascade", row.name},
                                  {"stages", std::to_string(stages)}};
      rec.metrics().gauge("eval.tpr_at_0fp", labels).set(tpr_at_fp(0));
      rec.metrics().gauge("eval.tpr_at_20fp", labels).set(tpr_at_fp(20));
      rec.metrics().gauge("eval.max_tpr", labels).set(max_tpr);
      rec.metrics().gauge("eval.false_positives", labels).set(total_fp);
      table.add_row({row.name, std::to_string(truncated.classifier_count()),
                     core::Table::num(tpr_at_fp(0), 3),
                     core::Table::num(tpr_at_fp(5), 3),
                     core::Table::num(tpr_at_fp(20), 3),
                     core::Table::num(max_tpr, 3), std::to_string(total_fp)});
    }
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf("paper: with 15 stages both cascades emit thousands of FPs;\n"
              "deeper cascades shrink FPs dramatically, and ours generally\n"
              "outperforms the OpenCV set despite having half the filters.\n");
  return rec.finish();
}
