// Sec. III-B study: integral-image computation, GPU vs CPU across
// resolutions. Paper: "For small resolutions a naive sequential O(n*m)
// CPU implementation beats the GPU due to the fact that the whole image
// fits in the L2 cache. However, the GPU implementation is 2.5 times
// faster on average for high resolution images."
#include "bench_common.h"
#include "core/rng.h"
#include "integral/cpu_model.h"
#include "integral/gpu.h"

int main(int argc, char** argv) {
  using namespace fdet;
  bench::RunRecorder run("integral");
  core::Cli cli("bench_integral_image");
  run.add_flags(cli);
  if (!cli.parse(argc, argv)) {
    return 1;
  }
  bench::print_header("Sec. III-B", "integral image: GPU vs CPU");

  const vgpu::DeviceSpec spec;
  const integral::CpuModel cpu_model;
  core::Rng rng(1);

  const std::pair<int, int> sizes[] = {{160, 120}, {320, 240},  {640, 480},
                                       {960, 540}, {1280, 720}, {1920, 1080},
                                       {2560, 1440}};
  // Each --repeat repetition re-runs the full resolution sweep into a
  // fresh registry; the table prints once, the run record gets one
  // sample per metric per repeat.
  for (int rep = 0; rep < run.repeats(); ++rep) {
    run.begin_repeat(rep);
    core::Table table({"resolution", "GPU virtual (ms)", "CPU model (ms)",
                       "GPU/CPU", "host wall CPU (ms)"});
    double hd_ratio = 0.0;
    for (const auto& [w, h] : sizes) {
      img::ImageU8 image(w, h);
      for (auto& p : image.pixels()) {
        p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      }
      // GPU pipeline: schedule the four kernels on an otherwise idle
      // device.
      const integral::GpuIntegralResult gpu =
          integral::integral_gpu(spec, image);
      std::vector<vgpu::Launch> launches;
      for (const auto& cost : gpu.launches) {
        launches.push_back({cost, 0});
      }
      const vgpu::Timeline tl =
          vgpu::schedule(spec, launches, vgpu::ExecMode::kConcurrent);
      const double gpu_ms = tl.makespan_s * 1e3;
      const double cpu_ms = cpu_model.integral_ms(w, h);

      char res_label[32];
      std::snprintf(res_label, sizeof(res_label), "%dx%d", w, h);
      obs::publish_timeline(run.metrics(), tl, {{"resolution", res_label}});
      run.metrics()
          .gauge("integral.cpu_model_ms", {{"resolution", res_label}})
          .set(cpu_ms);
      if (rep == 0) {
        run.add_timeline(res_label, tl);
      }

      core::Stopwatch watch;
      const auto host = integral::integral_cpu(image);
      const double host_ms = watch.elapsed_ms();
      (void)host;
      run.metrics()
          .gauge("integral.host_wall_ms", {{"resolution", res_label}})
          .set(host_ms);

      if (w == 1920) {
        hd_ratio = cpu_ms / gpu_ms;
      }
      table.add_row({res_label, core::Table::num(gpu_ms, 3),
                     core::Table::num(cpu_ms, 3),
                     core::Table::num(gpu_ms / cpu_ms, 2),
                     core::Table::num(host_ms, 3)});
    }
    if (rep == 0) {
      table.print(std::cout);
      std::printf("\nGPU advantage at 1080p: %.2fx (paper ~2.5x); the "
                  "modeled\nCPU wins below the cache-residency crossover.\n",
                  hd_ratio);
    }
    run.metrics().gauge("integral.gpu_advantage_1080p").set(hd_ratio);
  }
  return run.finish();
}
