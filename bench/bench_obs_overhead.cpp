// Observability overhead gate: serves the same faulted stream twice —
// once with the full observability layer (tracing, flight recorder, SLO
// engine, metrics) and once with all of it off — and gates the median
// virtual per-frame latency delta under 5%. A second arm repeats the
// contrast for the kernel profiler (obs/profile.h): collection scope on
// vs. suppressed, same budget.
//
// The observability layer charges no virtual time, so on the simulator
// the delta is deterministically 0: this gate fires if instrumentation
// ever perturbs the modeled latencies (e.g. an anomaly hook that charges
// time or reorders service work). Host wall time for each pass is
// recorded as informational `obs.overhead.host_wall_*` series, which the
// baseline comparator ignores by name.
#include "bench_common.h"

#include <algorithm>
#include <cmath>

#include "serve/service.h"

namespace {

double median(std::vector<double> values) {
  FDET_CHECK(!values.empty()) << "no latency samples";
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fdet;
  int frames = 72;
  int width = 320;
  int height = 240;
  double deadline_ms = 40.0;
  std::string faults =
      "decode@6x2,corrupt@12,launch@18x2,const@26,shared@34,"
      "decode@44x3,decode@45x3,decode@46x3";
  double seed = 20120926;
  double budget_pct = 5.0;
  std::string cache_dir = bench::kDefaultCacheDir;
  bench::RunRecorder run("obs_overhead");
  core::Cli cli("bench_obs_overhead");
  cli.flag("frames", frames, "frames to stream through the service");
  cli.flag("width", width, "trailer width");
  cli.flag("height", height, "trailer height");
  cli.flag("deadline-ms", deadline_ms, "per-frame latency budget");
  cli.flag("faults", faults, "fault plan spec (see serve/faults.h)");
  cli.flag("seed", seed, "fault-plan + jitter seed");
  cli.flag("budget-pct", budget_pct,
           "gate: tolerated median virtual-latency delta, percent");
  cli.flag("cache-dir", cache_dir, "trained-cascade cache directory");
  run.add_flags(cli);
  if (!cli.parse(argc, argv)) {
    return 1;
  }
  bench::print_header("obs overhead",
                      "recorder+SLO cost on the serving path, gated <5%");

  const train::CascadePair pair = bench::load_cascades(cache_dir);
  const vgpu::DeviceSpec spec;

  // Same 50/50 trailer preset as bench_fig5_frame_latency: the overhead
  // is measured on the paper's per-frame latency workload.
  video::TrailerSpec preset = video::table2_trailers(frames, width, height)[1];
  preset.shot_frames = std::max(1, frames / 6);
  const video::SyntheticTrailer trailer(preset);
  const video::MockH264Decoder decoder(trailer);
  const auto plan =
      serve::FaultPlan::parse(faults, static_cast<std::uint64_t>(seed));

  serve::ServiceOptions on_opts;
  on_opts.deadline_ms = deadline_ms;
  on_opts.seed = static_cast<std::uint64_t>(seed);

  serve::ServiceOptions off_opts = on_opts;
  off_opts.obs.tracing = false;
  off_opts.obs.flight_recorder = false;
  off_opts.obs.slo_ladder = false;  // legacy direct-ladder path

  for (int rep = 0; rep < run.repeats(); ++rep) {
    run.begin_repeat(rep);

    core::Stopwatch on_watch;
    serve::StreamingService on(spec, pair.ours, {}, on_opts, &run.metrics());
    const serve::ServiceReport with_obs = on.run(decoder, frames, &plan);
    const double on_host_s = on_watch.elapsed_seconds();

    core::Stopwatch off_watch;
    serve::StreamingService off(spec, pair.ours, {}, off_opts, nullptr);
    const serve::ServiceReport without_obs = off.run(decoder, frames, &plan);
    const double off_host_s = off_watch.elapsed_seconds();

    FDET_CHECK(with_obs.frames.size() == without_obs.frames.size())
        << "obs-on and obs-off runs served different frame counts";
    std::vector<double> on_ms;
    std::vector<double> off_ms;
    double max_frame_delta_ms = 0.0;
    for (std::size_t i = 0; i < with_obs.frames.size(); ++i) {
      on_ms.push_back(with_obs.frames[i].latency_ms);
      off_ms.push_back(without_obs.frames[i].latency_ms);
      max_frame_delta_ms =
          std::max(max_frame_delta_ms,
                   std::abs(on_ms.back() - off_ms.back()));
    }
    const double on_median = median(on_ms);
    const double off_median = median(off_ms);
    const double delta_pct =
        100.0 * std::abs(on_median - off_median) / off_median;

    if (rep == 0) {
      core::Table table({"quantity", "obs on", "obs off"});
      table.add_row({"median latency (ms)", core::Table::num(on_median),
                     core::Table::num(off_median)});
      table.add_row({"max latency (ms)",
                     core::Table::num(with_obs.max_latency_ms),
                     core::Table::num(without_obs.max_latency_ms)});
      table.add_row({"deadline misses",
                     std::to_string(with_obs.deadline_misses),
                     std::to_string(without_obs.deadline_misses)});
      table.add_row({"host wall (s)", core::Table::num(on_host_s),
                     core::Table::num(off_host_s)});
      table.print(std::cout);
      std::printf("\nmedian virtual-latency delta: %.6f%% (budget %.1f%%), "
                  "max per-frame delta %.6f ms\n",
                  delta_pct, budget_pct, max_frame_delta_ms);
    }

    run.metrics().gauge("obs.overhead.median_latency_delta_pct")
        .set(delta_pct);
    run.metrics().gauge("obs.overhead.max_frame_delta_ms")
        .set(max_frame_delta_ms);
    run.metrics().gauge("obs.overhead.host_wall_s", {{"obs", "on"}})
        .set(on_host_s);
    run.metrics().gauge("obs.overhead.host_wall_s", {{"obs", "off"}})
        .set(off_host_s);

    FDET_CHECK(delta_pct < budget_pct)
        << "observability layer perturbs virtual latency: median delta "
        << delta_pct << "% exceeds the " << budget_pct << "% budget";

    // Kernel-profiler arm of the same gate: the obs-off service once
    // under an explicit collection scope, once with profiling suppressed
    // (an empty hook shadows RunRecorder's ambient collector). The
    // profiler observes launches strictly after their cost is computed,
    // so the virtual latencies must be bit-identical.
    obs::KernelProfiler profiler;
    std::vector<double> prof_on_ms;
    {
      const obs::ScopedProfileCollection prof_scope(profiler);
      serve::StreamingService svc(spec, pair.ours, {}, off_opts, nullptr);
      const serve::ServiceReport r = svc.run(decoder, frames, &plan);
      for (const serve::ServedFrame& frame : r.frames) {
        prof_on_ms.push_back(frame.latency_ms);
      }
    }
    std::vector<double> prof_off_ms;
    {
      const vgpu::ScopedKernelProfileHook suppress(nullptr);
      serve::StreamingService svc(spec, pair.ours, {}, off_opts, nullptr);
      const serve::ServiceReport r = svc.run(decoder, frames, &plan);
      for (const serve::ServedFrame& frame : r.frames) {
        prof_off_ms.push_back(frame.latency_ms);
      }
    }
    FDET_CHECK(profiler.launches() > 0)
        << "profiler-on pass observed no kernel launches";
    const double prof_on_median = median(prof_on_ms);
    const double prof_off_median = median(prof_off_ms);
    const double prof_delta_pct =
        100.0 * std::abs(prof_on_median - prof_off_median) / prof_off_median;
    if (rep == 0) {
      std::printf("profiler on/off median latency: %.4f / %.4f ms, delta "
                  "%.6f%% (budget %.1f%%; %llu launches profiled)\n",
                  prof_on_median, prof_off_median, prof_delta_pct, budget_pct,
                  static_cast<unsigned long long>(profiler.launches()));
    }
    run.metrics().gauge("obs.overhead.profiler_latency_delta_pct")
        .set(prof_delta_pct);
    FDET_CHECK(prof_delta_pct < budget_pct)
        << "kernel profiler perturbs virtual latency: median delta "
        << prof_delta_pct << "% exceeds the " << budget_pct << "% budget";
  }
  return run.finish();
}
