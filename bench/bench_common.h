// Shared helpers for the benchmark binaries that regenerate the paper's
// tables and figures. Every binary prints the paper's reference values
// next to the measured ones so EXPERIMENTS.md can be assembled directly
// from bench output.
#pragma once

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/check.h"
#include "core/cli.h"
#include "core/stopwatch.h"
#include "core/table.h"
#include "detect/pipeline.h"
#include "obs/compare.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/runrecord.h"
#include "obs/trace.h"
#include "train/pretrained.h"
#include "video/decoder.h"
#include "video/trailer.h"

namespace fdet::bench {

inline constexpr const char* kDefaultCacheDir = "fdet_cache";

/// Loads (or trains once and caches) the paper's cascade pair.
inline train::CascadePair load_cascades(const std::string& cache_dir) {
  return train::get_or_train_cascades(cache_dir);
}

/// Banner shared by all bench binaries.
inline void print_header(const char* artifact, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("Reproduction of Oro et al., \"Accelerating Boosting-based\n");
  std::printf("Face Detection on GPUs\", ICPP 2012 (virtual-GPU simulator).\n");
  std::printf("==============================================================\n\n");
}

/// Machine-readable run record shared by every bench binary: a metrics
/// registry per measurement repeat plus an ambient trace session.
/// Construct before parsing, register flags via add_flags, and return
/// finish()'s exit code after the printed tables:
///
///   bench::RunRecorder run("fig6");
///   core::Cli cli("bench_fig6_kernel_trace");
///   run.add_flags(cli);
///   ...
///   for (int rep = 0; rep < run.repeats(); ++rep) {
///     run.begin_repeat(rep);
///     obs::publish_timeline(run.metrics(), tl, {{"mode", "concurrent"}});
///     if (rep == 0) run.add_timeline("concurrent", tl);
///   }
///   return run.finish();
///
/// Artifacts:
///   --trace-out         Chrome/Perfetto trace (ambient TraceSession; the
///                       binary's lifetime, so library-internal spans land
///                       automatically)
///   --metrics-out       metrics registry of the *last* repeat (JSON/CSV)
///   --profile-out       kernel profile (obs::ProfileRecord) aggregated
///                       over every launch of the binary's lifetime — the
///                       collector is installed from construction, so all
///                       repeats fold into one record
///   --record-out        obs::RunRecord aggregating all repeats (median +
///                       MAD per series); defaults to BENCH_<artifact>.json
///                       in the working directory, empty disables
///   --repeat            measurement repetitions folded into the record
///   --baseline          gate this run against a stored record
///                       (obs::compare_runs); finish() returns 2 on
///                       regression so the binary's exit status fails CI
///   --update-baseline   rewrite --baseline from this run instead of gating
///
/// finish() re-parses whatever it wrote — an invalid artifact fails
/// loudly, which is what the ctest smoke targets rely on.
class RunRecorder {
 public:
  explicit RunRecorder(std::string artifact)
      : artifact_(std::move(artifact)),
        record_out_(obs::run_record_path(artifact_)) {
    session_.install();
    repeats_.push_back(std::make_unique<obs::Registry>());
    metrics().gauge("bench.schema_version").set(1.0);
  }

  ~RunRecorder() { session_.uninstall(); }

  void add_flags(core::Cli& cli) {
    cli.flag("trace-out", trace_out_,
             "write a Chrome/Perfetto trace-event JSON file");
    cli.flag("metrics-out", metrics_out_,
             "write run metrics (JSON, or CSV when the path ends in .csv)");
    cli.flag("record-out", record_out_,
             "run-record path (empty disables writing)");
    cli.flag("profile-out", profile_out_,
             "kernel-profile record path (empty disables writing)");
    cli.flag("repeat", repeat_,
             "measurement repetitions aggregated into the run record");
    cli.flag("baseline", baseline_,
             "baseline run record to gate this run against");
    cli.flag("update-baseline", update_baseline_,
             "rewrite --baseline from this run instead of gating");
    cli.flag("variant", variant_,
             "configuration variant stamped into the run record");
  }

  /// Effective repetition count (>= 1 regardless of the flag value).
  int repeats() const { return repeat_ < 1 ? 1 : repeat_; }

  /// Registry of the current repeat. Call sites that don't loop keep
  /// publishing into repeat 0, exactly the pre-repeat behavior.
  obs::Registry& metrics() { return *repeats_.back(); }
  obs::TraceSession& trace() { return session_; }
  /// Kernel profiler collecting every launch on this thread (the
  /// collection scope lives as long as the recorder).
  obs::KernelProfiler& profiler() { return profiler_; }

  /// Starts measurement repetition `rep` (0-based): rep 0 reuses the
  /// registry that exists from construction, later reps get a fresh one
  /// so counters/gauges are per-repeat samples. Benches typically print
  /// their tables only when rep == 0.
  void begin_repeat(int rep) {
    FDET_CHECK(rep == static_cast<int>(repeats_.size()) - 1 || rep == static_cast<int>(repeats_.size()))
        << "begin_repeat(" << rep << ") out of order";
    if (rep == 0) {
      return;
    }
    if (rep == static_cast<int>(repeats_.size())) {
      repeats_.push_back(std::make_unique<obs::Registry>());
      metrics().gauge("bench.schema_version").set(1.0);
    }
  }

  /// True when --trace-out was given; use to skip building large device
  /// tracks no one will read.
  bool trace_enabled() const { return !trace_out_.empty(); }

  void add_timeline(const std::string& label, const vgpu::Timeline& tl) {
    if (trace_enabled()) {
      session_.add_timeline(label, tl);
    }
  }

  void add_timeline(const std::string& label,
                    const vgpu::MultiDeviceTimeline& tl) {
    if (trace_enabled()) {
      session_.add_timeline(label, tl);
    }
  }

  /// Writes the requested artifacts (validating each by re-parsing) and
  /// runs the baseline gate. Returns the process exit code: 0; 2 when
  /// --baseline comparison found a regressed or missing metric; 3 when
  /// the --baseline file is missing or corrupt (distinct from a gate
  /// failure so CI can tell "perf regressed" from "baseline is broken").
  int finish() {
    // A bench that accepts --repeat but never runs the begin_repeat()
    // loop would silently write a 1-repeat record claiming fewer
    // samples than the user asked for; refuse instead.
    FDET_CHECK(static_cast<int>(repeats_.size()) == repeats())
        << "--repeat=" << repeat_ << " requested but " << artifact_
        << " recorded " << repeats_.size()
        << " repeat(s); this bench does not implement the repeat loop";
    metrics().gauge("bench.wall_seconds").set(watch_.elapsed_seconds());
    if (!trace_out_.empty()) {
      session_.write_file(trace_out_);
      const obs::json::Value trace = obs::json::parse_file(trace_out_);
      FDET_CHECK(!trace.at("traceEvents").as_array().empty())
          << "trace '" << trace_out_ << "' has no events";
      std::printf("\n[%s] trace written to %s (%zu events)\n",
                  artifact_.c_str(), trace_out_.c_str(),
                  trace.at("traceEvents").as_array().size());
    }
    if (!metrics_out_.empty()) {
      metrics().write_file(metrics_out_);
      if (metrics_out_.size() < 4 ||
          metrics_out_.compare(metrics_out_.size() - 4, 4, ".csv") != 0) {
        const obs::json::Value doc = obs::json::parse_file(metrics_out_);
        FDET_CHECK(!doc.at("metrics").as_array().empty())
            << "metrics '" << metrics_out_ << "' is empty";
      }
      std::printf("[%s] metrics written to %s (%zu series)\n",
                  artifact_.c_str(), metrics_out_.c_str(), metrics().size());
    }

    if (!profile_out_.empty()) {
      const obs::ProfileRecord profile =
          profiler_.snapshot(artifact_, variant_);
      profile.write_file(profile_out_);
      const obs::ProfileRecord reparsed =
          obs::ProfileRecord::load_file(profile_out_);
      std::printf("[%s] kernel profile written to %s "
                  "(%zu kernels, %llu launches)\n",
                  artifact_.c_str(), profile_out_.c_str(),
                  reparsed.kernels.size(),
                  static_cast<unsigned long long>(reparsed.launches));
    }

    std::vector<const obs::Registry*> registries;
    for (const auto& registry : repeats_) {
      registries.push_back(registry.get());
    }
    const obs::RunRecord record =
        obs::build_run_record(artifact_, variant_, {}, registries);
    if (!record_out_.empty()) {
      record.write_file(record_out_);
      const obs::RunRecord reparsed = obs::RunRecord::load_file(record_out_);
      FDET_CHECK(!reparsed.metrics.empty())
          << "run record '" << record_out_ << "' has no series";
      std::printf("[%s] run record written to %s (%zu series, %d repeat%s)\n",
                  artifact_.c_str(), record_out_.c_str(),
                  reparsed.metrics.size(), reparsed.repeats,
                  reparsed.repeats == 1 ? "" : "s");
    }
    if (update_baseline_) {
      FDET_CHECK(!baseline_.empty()) << "--update-baseline needs --baseline";
      record.write_file(baseline_);
      std::printf("[%s] baseline updated: %s\n", artifact_.c_str(),
                  baseline_.c_str());
      return 0;
    }
    if (!baseline_.empty()) {
      obs::RunRecord baseline;
      try {
        baseline = obs::RunRecord::load_file(baseline_);
      } catch (const core::CheckError& error) {
        std::fprintf(stderr,
                     "[%s] cannot load baseline: %s\n"
                     "[%s] run with --baseline=%s --update-baseline to "
                     "(re)create it\n",
                     artifact_.c_str(), error.what(), artifact_.c_str(),
                     baseline_.c_str());
        return 3;
      }
      const obs::CompareReport report = obs::compare_runs(baseline, record);
      std::printf("\n[%s] baseline gate vs %s:\n%s", artifact_.c_str(),
                  baseline_.c_str(),
                  obs::render_text_report(report).c_str());
      return report.ok() ? 0 : 2;
    }
    return 0;
  }

 private:
  std::string artifact_;
  std::string variant_ = "default";
  std::string trace_out_;
  std::string metrics_out_;
  std::string record_out_;
  std::string profile_out_;
  std::string baseline_;
  bool update_baseline_ = false;
  int repeat_ = 1;
  std::vector<std::unique_ptr<obs::Registry>> repeats_;
  obs::TraceSession session_;
  obs::KernelProfiler profiler_;
  obs::ScopedProfileCollection profile_scope_{profiler_};
  core::Stopwatch watch_;
};

}  // namespace fdet::bench
