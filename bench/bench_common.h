// Shared helpers for the benchmark binaries that regenerate the paper's
// tables and figures. Every binary prints the paper's reference values
// next to the measured ones so EXPERIMENTS.md can be assembled directly
// from bench output.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "core/cli.h"
#include "core/stopwatch.h"
#include "core/table.h"
#include "detect/pipeline.h"
#include "train/pretrained.h"
#include "video/decoder.h"
#include "video/trailer.h"

namespace fdet::bench {

inline constexpr const char* kDefaultCacheDir = "fdet_cache";

/// Loads (or trains once and caches) the paper's cascade pair.
inline train::CascadePair load_cascades(const std::string& cache_dir) {
  return train::get_or_train_cascades(cache_dir);
}

/// Banner shared by all bench binaries.
inline void print_header(const char* artifact, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("Reproduction of Oro et al., \"Accelerating Boosting-based\n");
  std::printf("Face Detection on GPUs\", ICPP 2012 (virtual-GPU simulator).\n");
  std::printf("==============================================================\n\n");
}

}  // namespace fdet::bench
