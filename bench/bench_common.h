// Shared helpers for the benchmark binaries that regenerate the paper's
// tables and figures. Every binary prints the paper's reference values
// next to the measured ones so EXPERIMENTS.md can be assembled directly
// from bench output.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "core/check.h"
#include "core/cli.h"
#include "core/stopwatch.h"
#include "core/table.h"
#include "detect/pipeline.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "train/pretrained.h"
#include "video/decoder.h"
#include "video/trailer.h"

namespace fdet::bench {

inline constexpr const char* kDefaultCacheDir = "fdet_cache";

/// Loads (or trains once and caches) the paper's cascade pair.
inline train::CascadePair load_cascades(const std::string& cache_dir) {
  return train::get_or_train_cascades(cache_dir);
}

/// Banner shared by all bench binaries.
inline void print_header(const char* artifact, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("Reproduction of Oro et al., \"Accelerating Boosting-based\n");
  std::printf("Face Detection on GPUs\", ICPP 2012 (virtual-GPU simulator).\n");
  std::printf("==============================================================\n\n");
}

/// Machine-readable run record shared by every bench binary: a metrics
/// registry plus an ambient trace session, written to the paths given by
/// the --trace-out / --metrics-out flags (nothing is written when a flag
/// is unset). Construct before parsing, register flags via add_flags, and
/// call finish() after the printed tables:
///
///   bench::RunRecorder run("fig6");
///   core::Cli cli("bench_fig6_kernel_trace");
///   run.add_flags(cli);
///   ...
///   obs::publish_timeline(run.metrics(), tl, {{"mode", "concurrent"}});
///   run.add_timeline("concurrent", tl);
///   run.finish();
///
/// The trace session is installed as the ambient obs::TraceSession for
/// the binary's lifetime, so library-internal spans (pipeline stages,
/// boosting rounds) land in the trace automatically. finish() re-parses
/// whatever it wrote — an invalid artifact fails loudly, which is what
/// the ctest smoke target relies on.
class RunRecorder {
 public:
  explicit RunRecorder(std::string artifact) : artifact_(std::move(artifact)) {
    session_.install();
    metrics_.gauge("bench.schema_version").set(1.0);
  }

  ~RunRecorder() { session_.uninstall(); }

  void add_flags(core::Cli& cli) {
    cli.flag("trace-out", trace_out_,
             "write a Chrome/Perfetto trace-event JSON file");
    cli.flag("metrics-out", metrics_out_,
             "write run metrics (JSON, or CSV when the path ends in .csv)");
  }

  obs::Registry& metrics() { return metrics_; }
  obs::TraceSession& trace() { return session_; }

  /// True when --trace-out was given; use to skip building large device
  /// tracks no one will read.
  bool trace_enabled() const { return !trace_out_.empty(); }

  void add_timeline(const std::string& label, const vgpu::Timeline& tl) {
    if (trace_enabled()) {
      session_.add_timeline(label, tl);
    }
  }

  void add_timeline(const std::string& label,
                    const vgpu::MultiDeviceTimeline& tl) {
    if (trace_enabled()) {
      session_.add_timeline(label, tl);
    }
  }

  /// Writes the requested artifacts and validates them by re-parsing.
  void finish() {
    metrics_.gauge("bench.wall_seconds").set(watch_.elapsed_seconds());
    if (!trace_out_.empty()) {
      session_.write_file(trace_out_);
      const obs::json::Value trace = obs::json::parse_file(trace_out_);
      FDET_CHECK(!trace.at("traceEvents").as_array().empty())
          << "trace '" << trace_out_ << "' has no events";
      std::printf("\n[%s] trace written to %s (%zu events)\n",
                  artifact_.c_str(), trace_out_.c_str(),
                  trace.at("traceEvents").as_array().size());
    }
    if (!metrics_out_.empty()) {
      metrics_.write_file(metrics_out_);
      if (metrics_out_.size() < 4 ||
          metrics_out_.compare(metrics_out_.size() - 4, 4, ".csv") != 0) {
        const obs::json::Value doc = obs::json::parse_file(metrics_out_);
        FDET_CHECK(!doc.at("metrics").as_array().empty())
            << "metrics '" << metrics_out_ << "' is empty";
      }
      std::printf("[%s] metrics written to %s (%zu series)\n",
                  artifact_.c_str(), metrics_out_.c_str(), metrics_.size());
    }
  }

 private:
  std::string artifact_;
  std::string trace_out_;
  std::string metrics_out_;
  obs::Registry metrics_;
  obs::TraceSession session_;
  core::Stopwatch watch_;
};

}  // namespace fdet::bench
