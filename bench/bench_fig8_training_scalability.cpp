// Fig. 8: execution time of one GentleBoost iteration vs thread count on
// the two SMP platforms of the paper (dual Xeon E5472 and Core i7-2600K).
//
// The reproduction host may be single-core, so the figure's numbers come
// from the calibrated SMP model (Amdahl + bandwidth ceiling, see
// train/smp_model.h); the real OpenMP training loop is exercised and its
// measured wall time reported alongside for reference.
#include <thread>

#include "bench_common.h"
#include "facegen/dataset.h"
#include "haar/enumerate.h"
#include "train/boost.h"
#include "train/smp_model.h"

int main(int argc, char** argv) {
  using namespace fdet;
  int faces = 400;
  int pool = 800;
  int max_threads = 8;
  bench::RunRecorder run("fig8");
  core::Cli cli("bench_fig8_training_scalability");
  cli.flag("faces", faces, "training faces for the measured iteration");
  cli.flag("pool", pool, "hypothesis pool for the measured iteration");
  cli.flag("max-threads", max_threads, "thread sweep upper bound");
  run.add_flags(cli);
  if (!cli.parse(argc, argv)) {
    return 1;
  }
  bench::print_header("Fig. 8",
                      "one parallel GentleBoost iteration vs threads");

  const train::SmpPlatform xeon = train::dual_xeon_e5472();
  const train::SmpPlatform i7 = train::core_i7_2600k();

  std::printf("modeled iteration time (full workload: %lld hypotheses x\n"
              "11742+3500 images, as in the paper):\n\n",
              static_cast<long long>(haar::kPaperCombinations.total()));
  core::Table table({"threads", "Dual Xeon E5472 (s)", "Core i7-2600K (s)",
                     "Xeon speedup", "i7 speedup"});
  for (int t = 1; t <= max_threads; ++t) {
    table.add_row({std::to_string(t),
                   core::Table::num(xeon.iteration_seconds(t), 1),
                   core::Table::num(i7.iteration_seconds(t), 1),
                   core::Table::num(xeon.speedup(t), 2),
                   core::Table::num(i7.speedup(t), 2)});
    run.metrics()
        .gauge("train.modeled_iteration_s",
               {{"platform", "xeon_e5472"}, {"threads", std::to_string(t)}})
        .set(xeon.iteration_seconds(t));
    run.metrics()
        .gauge("train.modeled_iteration_s",
               {{"platform", "i7_2600k"}, {"threads", std::to_string(t)}})
        .set(i7.iteration_seconds(t));
  }
  table.print(std::cout);
  std::printf("\npaper: ~3.5x speedup at 8 threads on both platforms; the\n"
              "i7-2600K is ~2x faster than the dual Xeon per thread.\n");

  // Real OpenMP measurement on this host (scaled-down workload).
  std::printf("\nmeasured on this host (OpenMP, %d hypotheses x %d images —\n"
              "wall time is hardware-dependent and flat on a 1-core host):\n\n",
              pool, 2 * faces);
  const facegen::TrainingSet set =
      facegen::build_training_set(faces, 40, 64, 8);
  core::Table measured({"threads", "iteration (s)"});
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  for (int t = 1; t <= std::min(max_threads, std::max(1, hw) * 2); t *= 2) {
    const double seconds = train::boosting_iteration_seconds(set, pool, t, 3);
    run.metrics()
        .gauge("train.measured_iteration_s", {{"threads", std::to_string(t)}})
        .set(seconds);
    measured.add_row({std::to_string(t), core::Table::num(seconds, 3)});
  }
  measured.print(std::cout);
  return run.finish();
}
