#include "obs/verify.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace fdet::obs {
namespace {

const Registry::Sample* find_sample(const std::vector<Registry::Sample>& all,
                                    const std::string& name,
                                    const Labels& labels) {
  const auto it = std::find_if(
      all.begin(), all.end(), [&](const Registry::Sample& s) {
        return s.name == name && s.labels == labels;
      });
  return it == all.end() ? nullptr : &*it;
}

vgpu::CheckReport dirty_report() {
  vgpu::CheckReport report;
  report.kernel = "tile_kernel";
  report.phases = 2;
  report.blocks = 4;
  report.shared_accesses_checked = 128;
  report.unattributed_shared_accesses = 3;
  report.carves_checked = 8;
  report.global_ops_checked = 64;
  vgpu::Hazard race;
  race.kind = vgpu::HazardKind::kIntraPhaseRace;
  race.kernel = report.kernel;
  report.hazards.push_back(race);
  report.hazards.push_back(race);
  vgpu::Hazard uninit;
  uninit.kind = vgpu::HazardKind::kUninitializedSharedRead;
  uninit.kernel = report.kernel;
  report.hazards.push_back(uninit);
  report.suppressed_hazards = 5;
  return report;
}

TEST(PublishCheckReport, EmitsFullMetricFamily) {
  Registry registry;
  publish_check_report(registry, dirty_report());
  const auto samples = registry.samples();

  const Labels kernel{{"kernel", "tile_kernel"}};
  const Registry::Sample* clean =
      find_sample(samples, "vgpu.check.clean", kernel);
  ASSERT_NE(clean, nullptr);
  EXPECT_EQ(clean->kind, "gauge");
  EXPECT_EQ(clean->value, 0.0);

  const Registry::Sample* shared =
      find_sample(samples, "vgpu.check.shared_accesses", kernel);
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->value, 128.0);
  EXPECT_EQ(find_sample(samples, "vgpu.check.unattributed_shared", kernel)
                ->value,
            3.0);
  EXPECT_EQ(find_sample(samples, "vgpu.check.carves", kernel)->value, 8.0);
  EXPECT_EQ(find_sample(samples, "vgpu.check.global_ops", kernel)->value,
            64.0);

  // Hazards are counted per kind, suppressed ones under their own label.
  Labels race = kernel;
  race.emplace_back("kind", "intra-phase-race");
  EXPECT_EQ(find_sample(samples, "vgpu.check.hazards", race)->value, 2.0);
  Labels uninit = kernel;
  uninit.emplace_back("kind", "uninitialized-shared-read");
  EXPECT_EQ(find_sample(samples, "vgpu.check.hazards", uninit)->value, 1.0);
  Labels suppressed = kernel;
  suppressed.emplace_back("kind", "suppressed");
  EXPECT_EQ(find_sample(samples, "vgpu.check.hazards", suppressed)->value,
            5.0);
}

TEST(PublishCheckReport, CleanReportEmitsNoHazardCounters) {
  Registry registry;
  vgpu::CheckReport report;
  report.kernel = "clean_kernel";
  report.shared_accesses_checked = 10;
  publish_check_reports(registry, {report}, {{"corpus", "production"}});

  const auto samples = registry.samples();
  const Labels labels{{"corpus", "production"}, {"kernel", "clean_kernel"}};
  const Registry::Sample* clean =
      find_sample(samples, "vgpu.check.clean", labels);
  ASSERT_NE(clean, nullptr);
  EXPECT_EQ(clean->value, 1.0);
  for (const Registry::Sample& sample : samples) {
    EXPECT_NE(sample.name, "vgpu.check.hazards");
  }
}

}  // namespace
}  // namespace fdet::obs
